#!/bin/sh
# Offline CI: build, test, lint, and run the static-verification audit.
# The workspace has no external dependencies, so everything here works
# without network access.
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo run --release -p realistic-pe --example verify

# Fault injection: hostile input against every entry point, then the
# deep-input stack smoke in the DEBUG profile (unoptimized frames are
# the worst case for host-stack recursion, so unbounded recursion
# aborts here rather than in a user's process).
cargo test -q -p pe-faultline
cargo run -p pe-faultline --example stack_smoke
