#!/bin/sh
# Offline CI: build, test, lint, and run the static-verification audit.
# The workspace has no external dependencies, so everything here works
# without network access.
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo run --release -p realistic-pe --example verify

# pe-flow translation validation: the whole Gabriel suite is compiled
# with the flow optimizer off and on, differentially executed on the
# VM, and every optimized residual must re-pass verification with zero
# flow lints (the `verify` example above exits non-zero on any).  The
# --flow report must render and schema-validate its event stream.
cargo test -q -p realistic-pe --test flow_integration
cargo run --release -p realistic-pe --example pe-explain -- --flow > /dev/null

# pe-sct termination analysis: every benchmark classified, sct on/off
# differentially executed on the VM, zero pass-7 termination warnings,
# and suite-wide dynamic widenings must drop under static control.  The
# --sct report must render and schema-validate its event stream.
cargo test -q -p realistic-pe --test sct_integration
cargo run --release -p realistic-pe --example pe-explain -- --sct > /dev/null

# Fault injection: hostile input against every entry point (including
# the printer-totality and pretty/read round-trip tests), then the
# deep-input stack smoke in the DEBUG profile (unoptimized frames are
# the worst case for host-stack recursion, so unbounded recursion
# aborts here rather than in a user's process).
cargo test -q -p pe-faultline
cargo run -p pe-faultline --example stack_smoke

# Trace smoke: pe-explain in JSONL mode self-validates its own stream
# (schema, span balance) and exits non-zero on any violation; the
# human-readable report and the trap census must render without error.
cargo run --release -p realistic-pe --example pe-explain -- --json tak > /dev/null
cargo run --release -p realistic-pe --example pe-explain -- deriv fibclos > /dev/null
cargo run --release -p pe-faultline --example trap_census > /dev/null

# pe-prof cost attribution: every benchmark's traced compile + profiled
# VM run must produce a per-residual-procedure attribution table whose
# per-phase sums balance against the span totals within 5%, and whose
# event stream (attr + hist lines included) passes the JSONL schema.
# Exits non-zero on unbalanced books or a schema violation.
cargo run --release -p realistic-pe --example pe-explain -- --prof > /dev/null

# The offline benchmark harness in quick mode: compiles and times the
# whole Gabriel suite on every engine (small inputs, few reps) so each
# CI run checks the harness end to end and leaves BENCH_pe.json behind.
# --check gates against the committed baseline: large timing multiples
# or >5% growth in the deterministic size metrics fail the run.
cargo run --release -p pe-bench -- --quick --check BENCH_baseline.json

# pe-siege robustness harness.  First the corpus gate: every minimal
# reproducer ever banked under crates/siege/corpus must stay clean
# (differential agreement across all eight engines plus a crash-free
# budget ladder).  Then the fixed-seed quick campaign: 400 generated
# programs + mutants through the full oracle/chaos/shrink loop —
# deterministic, <30s, exits non-zero on any panic, value split, or
# ladder violation, and leaves a schema-validated SIEGE_pe.json behind.
cargo run --release -p pe-siege -- --replay
cargo run --release -p pe-siege -- --quick

# pe-serve determinism gate: the compile service answers a fixed
# request mix (suite + seed-pinned generated programs, with duplicates)
# cold on N threads, warm from the artifact cache, and warm-started
# from memo snapshots on a capacity-starved cache — every pass must be
# byte-identical to a sequential reference and the hit/miss accounting
# must balance.  Deterministic, <30s, exits non-zero on any divergence.
cargo run --release -p pe-serve -- --gate
