#!/bin/sh
# Offline CI: build, test, lint, and run the static-verification audit.
# The workspace has no external dependencies, so everything here works
# without network access.
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo run --release -p realistic-pe --example verify
