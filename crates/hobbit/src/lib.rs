//! A Hobbit-like baseline compiler (the §6 comparator).
//!
//! Tammet's Hobbit compiles Scheme to C by mapping Scheme procedures
//! directly onto C functions — recursion uses the **native stack**, no
//! evaluation-context closures are ever allocated — with lambda lifting,
//! fixnum arithmetic and local optimization.  This crate reproduces that
//! architectural signature on the Rust host:
//!
//! * every procedure becomes a code tree with **pre-resolved frame
//!   slots** (no environment lookups at run time) executed by direct
//!   host-stack recursion ("compiled closures" technique);
//! * constant subexpressions are folded at compile time;
//! * closures are flat records created only for genuine `lambda`s — the
//!   compiler never allocates for control flow.
//!
//! Relative to the partial-evaluation pipeline this baseline is strong
//! on first-order, deeply recursive code (tak, deriv, queens: the native
//! stack is free) and weak on higher-order/CPS code (every closure call
//! is an indirect dispatch through a record) — the precise shape of the
//! paper's Fig. 8.

use pe_frontend::ast::{Expr, Prim, Program};
use pe_intern::FxHashMap;
use pe_interp::value::{apply_prim, Value};
use pe_interp::{Datum, Fuel, InterpError, Limits};
use std::fmt;
use std::rc::Rc;

/// A runtime closure of the baseline: lifted-lambda index + captures.
#[derive(Debug, Clone, PartialEq)]
pub struct HobClosure {
    lam: usize,
    captures: Rc<[V]>,
}

type V = Value<HobClosure>;

/// An error while compiling with the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HobError {
    /// A variable was not in scope (hand-built ASTs only).
    Unbound(String),
    /// The entry procedure is missing.
    NoSuchProc(String),
}

impl fmt::Display for HobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HobError::Unbound(v) => write!(f, "hobbit: unbound variable {v}"),
            HobError::NoSuchProc(p) => write!(f, "hobbit: no such procedure {p}"),
        }
    }
}

impl std::error::Error for HobError {}

/// Compiled code: a tree with resolved slots, executed on the host stack.
#[derive(Debug, Clone)]
enum Code {
    Const(V),
    Slot(usize),
    If(Box<Code>, Box<Code>, Box<Code>),
    Prim(Prim, Vec<Code>),
    /// Direct call of a top-level procedure — native-stack recursion.
    Call(usize, Vec<Code>),
    /// Allocate a closure for a lifted lambda, capturing listed slots.
    MakeClosure { lam: usize, capture_slots: Vec<usize> },
    /// Indirect call through a closure record.
    CallClosure(Box<Code>, Box<Code>),
    /// `(let ((v e)) body)` — push a frame slot for the body.
    Let(Box<Code>, Box<Code>),
}

struct LiftedLambda {
    /// Body code; frame layout: slot 0 = parameter, slots 1.. = captures.
    body: Code,
}

struct ProcDef {
    arity: usize,
    body: Code,
}

/// A program compiled by the baseline.
pub struct Hobbit {
    procs: Vec<ProcDef>,
    lambdas: Vec<LiftedLambda>,
    names: FxHashMap<String, usize>,
}

/// Compile-time scope: name → frame slot.
struct Scope {
    names: Vec<String>,
}

impl Scope {
    fn slot(&self, v: &str) -> Option<usize> {
        self.names.iter().rposition(|n| n == v)
    }
}

struct Compiler<'p> {
    prog: &'p Program,
    proc_index: FxHashMap<&'p str, usize>,
    lambdas: Vec<LiftedLambda>,
}

impl Compiler<'_> {
    fn compile_expr(&mut self, e: &Expr, scope: &mut Scope) -> Result<Code, HobError> {
        Ok(match e {
            Expr::Var(_, v) => {
                Code::Slot(scope.slot(v).ok_or_else(|| HobError::Unbound(v.to_string()))?)
            }
            Expr::Const(_, k) => Code::Const(Value::from_constant(k)),
            Expr::If(_, c, t, f) => {
                let c = self.compile_expr(c, scope)?;
                let t = self.compile_expr(t, scope)?;
                let f = self.compile_expr(f, scope)?;
                // Fold constant conditions.
                match c {
                    Code::Const(v) => {
                        if v.is_truthy() {
                            t
                        } else {
                            f
                        }
                    }
                    c => Code::If(Box::new(c), Box::new(t), Box::new(f)),
                }
            }
            Expr::Prim(_, op, args) => {
                let args = args
                    .iter()
                    .map(|a| self.compile_expr(a, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                // Constant folding when every operand is a literal and
                // the operation cannot fault.
                if args.iter().all(|a| matches!(a, Code::Const(_))) {
                    let vals: Vec<V> = args
                        .iter()
                        .map(|a| match a {
                            Code::Const(v) => v.clone(),
                            _ => unreachable!(),
                        })
                        .collect();
                    if let Ok(v) = apply_prim(*op, &vals) {
                        return Ok(Code::Const(v));
                    }
                }
                Code::Prim(*op, args)
            }
            Expr::Call(_, p, args) => {
                let idx = *self
                    .proc_index
                    .get(&**p)
                    .ok_or_else(|| HobError::NoSuchProc(p.to_string()))?;
                let args = args
                    .iter()
                    .map(|a| self.compile_expr(a, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                Code::Call(idx, args)
            }
            Expr::Let(_, v, rhs, body) => {
                let rhs = self.compile_expr(rhs, scope)?;
                scope.names.push(v.to_string());
                let body = self.compile_expr(body, scope)?;
                scope.names.pop();
                Code::Let(Box::new(rhs), Box::new(body))
            }
            Expr::Lambda(_, v, body) => {
                // Lambda lifting: compile the body in a fresh frame
                // [param, captures…]; captures are the body's free
                // variables resolved in the current scope.
                let mut fv = std::collections::BTreeSet::new();
                free_vars(body, &mut fv);
                fv.remove(v.as_ref());
                // Only variables actually in scope are captured (free
                // names that are top-level procs were rejected earlier by
                // the parser).
                let mut captured: Vec<String> = Vec::new();
                let mut capture_slots: Vec<usize> = Vec::new();
                for n in fv {
                    if let Some(s) = scope.slot(n) {
                        captured.push(n.to_string());
                        capture_slots.push(s);
                    }
                }
                let mut inner = Scope { names: Vec::with_capacity(1 + captured.len()) };
                inner.names.push(v.to_string());
                inner.names.extend(captured.iter().cloned());
                let body = self.compile_expr(body, &mut inner)?;
                let lam = self.lambdas.len();
                self.lambdas.push(LiftedLambda { body });
                Code::MakeClosure { lam, capture_slots }
            }
            Expr::App(_, f, a) => {
                let f = self.compile_expr(f, scope)?;
                let a = self.compile_expr(a, scope)?;
                Code::CallClosure(Box::new(f), Box::new(a))
            }
        })
    }
}

fn free_vars<'p>(e: &'p Expr, out: &mut std::collections::BTreeSet<&'p str>) {
    match e {
        Expr::Var(_, v) => {
            out.insert(v);
        }
        Expr::Const(_, _) => {}
        Expr::If(_, c, t, f) => {
            free_vars(c, out);
            free_vars(t, out);
            free_vars(f, out);
        }
        Expr::Prim(_, _, args) | Expr::Call(_, _, args) => {
            args.iter().for_each(|a| free_vars(a, out));
        }
        Expr::Let(_, v, rhs, body) => {
            free_vars(rhs, out);
            let mut inner = std::collections::BTreeSet::new();
            free_vars(body, &mut inner);
            inner.remove(v.as_ref());
            out.extend(inner);
        }
        Expr::Lambda(_, v, body) => {
            let mut inner = std::collections::BTreeSet::new();
            free_vars(body, &mut inner);
            inner.remove(v.as_ref());
            out.extend(inner);
        }
        Expr::App(_, f, a) => {
            free_vars(f, out);
            free_vars(a, out);
        }
    }
}

impl Hobbit {
    /// Compiles a whole program.
    ///
    /// # Errors
    ///
    /// Returns a [`HobError`] only for hand-built (non-parser) ASTs.
    pub fn compile(prog: &Program) -> Result<Hobbit, HobError> {
        let proc_index: FxHashMap<&str, usize> =
            prog.defs.iter().enumerate().map(|(i, d)| (&*d.name, i)).collect();
        let mut c = Compiler { prog, proc_index, lambdas: Vec::new() };
        let _ = c.prog;
        let mut procs = Vec::new();
        for d in &prog.defs {
            let mut scope = Scope { names: d.params.iter().map(|p| p.to_string()).collect() };
            let body = c.compile_expr(&d.body, &mut scope)?;
            procs.push(ProcDef { arity: d.params.len(), body });
        }
        Ok(Hobbit {
            procs,
            lambdas: c.lambdas,
            names: prog
                .defs
                .iter()
                .enumerate()
                .map(|(i, d)| (d.name.to_string(), i))
                .collect(),
        })
    }

    /// Runs `entry` on first-order arguments.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on dynamic faults, missing or
    /// wrong-arity entry, exhausted fuel, or higher-order results.
    pub fn run(
        &self,
        entry: &str,
        args: &[Datum],
        limits: Limits,
    ) -> Result<Datum, InterpError> {
        self.run_with(entry, args, limits, &mut pe_trace::NullSink)
    }

    /// Like [`Hobbit::run`], but reports step/alloc counters (and, on a
    /// trap, the meter gauges) to `sink`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hobbit::run`].
    pub fn run_with(
        &self,
        entry: &str,
        args: &[Datum],
        limits: Limits,
        sink: &mut dyn pe_trace::Sink,
    ) -> Result<Datum, InterpError> {
        let idx = *self
            .names
            .get(entry)
            .ok_or_else(|| InterpError::NoSuchProc(entry.to_string()))?;
        let def = &self.procs[idx];
        if def.arity != args.len() {
            return Err(InterpError::EntryArity {
                name: entry.to_string(),
                expected: def.arity,
                got: args.len(),
            });
        }
        let mut frame: Vec<V> = args.iter().map(Datum::embed).collect();
        // Calls recurse on the host stack (the point of this baseline),
        // so the call-depth cap applies in addition to fuel and heap.
        let mut fuel = Fuel::new(&limits);
        let result = self
            .exec(&def.body, &mut frame, &mut fuel)
            .and_then(|v| v.to_datum().ok_or(InterpError::ResultNotFirstOrder));
        if sink.enabled() {
            sink.counter(pe_trace::Counter::EvalSteps, fuel.steps_used());
            sink.counter(pe_trace::Counter::EvalAllocs, fuel.cells_used());
            if result.is_err() {
                let snap = fuel.snapshot();
                pe_trace::trap_gauges(sink, snap.steps, snap.cells, snap.peak_depth as u64);
            }
        }
        result
    }

    fn exec(&self, code: &Code, frame: &mut Vec<V>, fuel: &mut Fuel) -> Result<V, InterpError> {
        match code {
            Code::Const(v) => Ok(v.clone()),
            Code::Slot(i) => Ok(frame[*i].clone()),
            Code::If(c, t, f) => {
                if self.exec(c, frame, fuel)?.is_truthy() {
                    self.exec(t, frame, fuel)
                } else {
                    self.exec(f, frame, fuel)
                }
            }
            Code::Prim(op, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.exec(a, frame, fuel)?);
                }
                if matches!(op, Prim::Cons) {
                    fuel.alloc(1)?;
                }
                Ok(apply_prim(*op, &vals)?)
            }
            Code::Call(idx, args) => {
                fuel.step()?;
                let mut next = Vec::with_capacity(args.len());
                for a in args {
                    next.push(self.exec(a, frame, fuel)?);
                }
                // Native-stack recursion: this is the whole point of the
                // baseline.
                fuel.enter_call()?;
                let r = self.exec(&self.procs[*idx].body, &mut next, fuel);
                fuel.exit_call();
                r
            }
            Code::MakeClosure { lam, capture_slots } => {
                fuel.alloc(1)?;
                let captures: Vec<V> =
                    capture_slots.iter().map(|&s| frame[s].clone()).collect();
                Ok(Value::Closure(HobClosure { lam: *lam, captures: captures.into() }))
            }
            Code::CallClosure(f, a) => {
                fuel.step()?;
                let fv = self.exec(f, frame, fuel)?;
                let av = self.exec(a, frame, fuel)?;
                match fv {
                    Value::Closure(c) => {
                        let lam = &self.lambdas[c.lam];
                        let mut next = Vec::with_capacity(1 + c.captures.len());
                        next.push(av);
                        next.extend(c.captures.iter().cloned());
                        fuel.enter_call()?;
                        let r = self.exec(&lam.body, &mut next, fuel);
                        fuel.exit_call();
                        r
                    }
                    v => Err(InterpError::NotAProcedure(v.to_string())),
                }
            }
            Code::Let(rhs, body) => {
                let v = self.exec(rhs, frame, fuel)?;
                frame.push(v);
                let r = self.exec(body, frame, fuel);
                frame.pop();
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::parse_source;
    use pe_interp::Trap;

    type R = Result<(), Box<dyn std::error::Error>>;

    fn go(src: &str, entry: &str, args: &[Datum]) -> Result<Datum, Box<dyn std::error::Error>> {
        Ok(Hobbit::compile(&parse_source(src)?)?.run(entry, args, Limits::default())?)
    }

    #[test]
    fn first_order_recursion() -> R {
        let src = "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))";
        assert_eq!(go(src, "fact", &[Datum::Int(12)])?, Datum::Int(479_001_600));
        Ok(())
    }

    #[test]
    fn closures_capture_correctly() -> R {
        let src = "(define (main a)
                     (let ((adda (lambda (b) (+ a b))))
                       (let ((a 100)) (adda 1))))";
        assert_eq!(go(src, "main", &[Datum::Int(5)])?, Datum::Int(6));
        Ok(())
    }

    #[test]
    fn cps_append_runs() -> R {
        let src = "(define (append x y) (cps-append x y (lambda (v) v)))
                   (define (cps-append x y c)
                     (if (null? x) (c y)
                         (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";
        let r = go(src, "append", &[Datum::parse("(1 2)")?, Datum::parse("(3)")?])?;
        assert_eq!(r.to_string(), "(1 2 3)");
        Ok(())
    }

    #[test]
    fn constant_folding_happens_at_compile_time() -> R {
        let prog = parse_source("(define (f) (+ 1 (* 2 3)))")?;
        let h = Hobbit::compile(&prog)?;
        assert!(matches!(h.procs[0].body, Code::Const(Value::Int(7))));
        Ok(())
    }

    #[test]
    fn faulting_constants_are_not_folded() -> R {
        // (car 5) as a "constant" must fault at run time, not compile time.
        let prog = parse_source("(define (f) (car 5))")?;
        let h = Hobbit::compile(&prog)?;
        assert!(matches!(h.procs[0].body, Code::Prim(Prim::Car, _)));
        assert!(h.run("f", &[], Limits::default()).is_err());
        Ok(())
    }

    #[test]
    fn agreement_with_reference_interpreter() -> R {
        let src = "(define (map-sq l) (if (null? l) '() (cons (* (car l) (car l)) (map-sq (cdr l)))))";
        let p = parse_source(src)?;
        let h = Hobbit::compile(&p)?;
        let input = Datum::parse("(1 2 3 4)")?;
        let a = h.run("map-sq", std::slice::from_ref(&input), Limits::default())?;
        let b = pe_interp::standard::run(&p, "map-sq", &[input], Limits::default())?;
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "(1 4 9 16)");
        Ok(())
    }

    #[test]
    fn fuel_limits_divergence() -> R {
        // Small fuel: divergence is cut off before the depth cap bites.
        let src = "(define (f x) (f x))";
        let h = Hobbit::compile(&parse_source(src)?)?;
        assert_eq!(
            h.run(
                "f",
                &[Datum::Int(0)],
                Limits { fuel: 200, max_call_depth: 1_000_000, ..Limits::default() },
            ),
            Err(InterpError::FuelExhausted)
        );
        Ok(())
    }

    #[test]
    fn depth_cap_traps_host_stack_recursion() -> R {
        // The baseline recurses on the host stack, so a divergent program
        // with plenty of fuel must hit the call-depth cap instead of
        // overflowing the native stack.
        let src = "(define (f x) (f x))";
        let h = Hobbit::compile(&parse_source(src)?)?;
        assert_eq!(
            h.run(
                "f",
                &[Datum::Int(0)],
                Limits { max_call_depth: 50, ..Limits::default() },
            ),
            Err(InterpError::Trap(Trap::CallDepth { limit: 50 }))
        );
        Ok(())
    }
}
