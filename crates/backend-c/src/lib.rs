//! The S₀ → C translator of §5.1.
//!
//! The translation produces a single C function `program`:
//!
//! * procedure headers become **labels**, tail calls become assignments
//!   to **global parameter variables** followed by `goto`;
//! * on entry to a procedure a fresh scope copies the global parameter
//!   variables into private ones, so argument lists can be built without
//!   interference;
//! * every simple expression is an assignment to a **single-use
//!   temporary**, sequentialized with C's comma operator — register
//!   allocation is left to the C compiler;
//! * closures are **flat vectors** (label + captured values) and closure
//!   application compiles to the same sequential label dispatch as in
//!   the Scheme residual code;
//! * data objects are a tagged union.
//!
//! The paper uses the Boehm collector with "no cooperation between the
//! translation and the garbage collector"; allocation strategy being
//! orthogonal, the emitted runtime uses a self-contained bump arena
//! (documented substitution — benchmarks are sized for it).

use pe_core::{S0Program, S0Simple, S0Tail};
use pe_frontend::ast::{Constant, Prim};
use pe_governor::{Fuel, Limits};
use pe_interp::Datum;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Options for the C translation.
#[derive(Debug, Clone)]
pub struct COptions {
    /// Bytes of the bump arena in the emitted runtime.
    pub arena_bytes: usize,
    /// Elide global-parameter moves that dataflow analysis proves
    /// redundant: identity moves (`gᵢ = pᵢ` when argument *i* is the
    /// caller's own *i*-th parameter, so the global already holds the
    /// value), trivial moves into parameters the callee never reads, and
    /// prologue copies of parameters `pe-flow` liveness proves dead.
    pub elide_moves: bool,
}

impl Default for COptions {
    fn default() -> Self {
        COptions { arena_bytes: 256 << 20, elide_moves: true }
    }
}

/// The result of a translation.
#[derive(Debug, Clone)]
pub struct CProgram {
    /// The complete C source text.
    pub source: String,
    /// Global-parameter moves and prologue copies elided because
    /// liveness proved the value already in place or never read.
    pub moves_elided: usize,
}

impl CProgram {
    /// Size of the generated C text in bytes (§8 code-size experiment).
    pub fn size_bytes(&self) -> usize {
        self.source.len()
    }
}

struct Emitter {
    out: String,
    /// S₀ name → sanitized unique C label.
    labels: HashMap<String, String>,
    used: HashMap<String, usize>,
    symbols: Vec<String>,
    strings: Vec<String>,
    next_temp: usize,
    max_arity: usize,
    elide: bool,
    moves_elided: usize,
}

/// Per-procedure dataflow facts driving move elision: which parameter
/// positions of each procedure are dead (never read), per `pe-flow`
/// liveness.
struct MoveFacts<'a> {
    /// Procedure name → one flag per parameter, `true` when dead.
    dead: &'a HashMap<&'a str, Vec<bool>>,
    /// The current procedure's parameters, in declaration order.
    caller_params: &'a [String],
}

impl Emitter {
    fn label_of(&mut self, name: &str) -> String {
        if let Some(l) = self.labels.get(name) {
            return l.clone();
        }
        let base: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let base = if base.starts_with(|c: char| c.is_ascii_digit()) {
            format!("p_{base}")
        } else {
            base
        };
        let n = self.used.entry(base.clone()).or_insert(0);
        let unique = if *n == 0 { format!("L_{base}") } else { format!("L_{base}_{n}") };
        *n += 1;
        self.labels.insert(name.to_string(), unique.clone());
        unique
    }

    fn sym_index(&mut self, s: &str) -> usize {
        if let Some(i) = self.symbols.iter().position(|x| x == s) {
            return i;
        }
        self.symbols.push(s.to_string());
        self.symbols.len() - 1
    }

    fn str_index(&mut self, s: &str) -> usize {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return i;
        }
        self.strings.push(s.to_string());
        self.strings.len() - 1
    }

    fn temp(&mut self) -> String {
        let t = format!("t{}", self.next_temp);
        self.next_temp += 1;
        t
    }

    /// Emits a constant as a C expression.
    fn constant(&mut self, k: &Constant) -> String {
        match k {
            Constant::Int(n) => format!("rt_int({n}L)"),
            Constant::Bool(b) => format!("rt_bool({})", i32::from(*b)),
            Constant::Char(c) => format!("rt_char({})", *c as u32),
            Constant::Nil => "rt_nil()".to_string(),
            Constant::Sym(s) => {
                let i = self.sym_index(s);
                format!("rt_sym({i})")
            }
            Constant::Str(s) => {
                let i = self.str_index(s);
                format!("rt_str({i})")
            }
            Constant::Pair(a, d) => {
                let a = self.constant(a);
                let d = self.constant(d);
                format!("rt_cons({a}, {d})")
            }
        }
    }

    /// Translates a simple expression into a C expression that assigns
    /// every intermediate result to a fresh single-use temporary,
    /// sequenced with the comma operator (§5.1), and evaluates to the
    /// final temporary.  Temporary declarations accumulate in `temps`.
    fn simple(&mut self, s: &S0Simple, params: &HashMap<&str, String>, temps: &mut Vec<String>) -> String {
        let expr = match s {
            S0Simple::Var(v) => return params[v.as_str()].clone(),
            S0Simple::Const(k) => self.constant(k),
            S0Simple::Prim(op, args) => {
                let xs: Vec<String> =
                    args.iter().map(|a| self.simple(a, params, temps)).collect();
                prim_call(*op, &xs)
            }
            S0Simple::MakeClosure(l, args) => {
                let xs: Vec<String> =
                    args.iter().map(|a| self.simple(a, params, temps)).collect();
                let mut call = format!("rt_closure({l}, {}", xs.len());
                for x in &xs {
                    let _ = write!(call, ", {x}");
                }
                call.push(')');
                call
            }
            S0Simple::ClosureLabel(a) => {
                let x = self.simple(a, params, temps);
                format!("rt_closure_label({x})")
            }
            S0Simple::ClosureFreeval(a, i) => {
                let x = self.simple(a, params, temps);
                format!("rt_closure_freeval({x}, {i})")
            }
        };
        let t = self.temp();
        temps.push(t.clone());
        format!("({t} = {expr}, {t})")
    }

    fn tail(
        &mut self,
        t: &S0Tail,
        params: &HashMap<&str, String>,
        facts: &MoveFacts<'_>,
        temps: &mut Vec<String>,
        indent: usize,
        body: &mut String,
    ) {
        let pad = "  ".repeat(indent);
        match t {
            S0Tail::Return(s) => {
                let e = self.simple(s, params, temps);
                let _ = writeln!(body, "{pad}return {e};");
            }
            S0Tail::If(c, a, b) => {
                let e = self.simple(c, params, temps);
                let _ = writeln!(body, "{pad}if (rt_truthy({e})) {{");
                self.tail(a, params, facts, temps, indent + 1, body);
                let _ = writeln!(body, "{pad}}} else {{");
                self.tail(b, params, facts, temps, indent + 1, body);
                let _ = writeln!(body, "{pad}}}");
            }
            S0Tail::TailCall(callee, args) => {
                // Arguments are simple expressions over private variables
                // (never over the globals), so computing and storing each
                // one in turn is safe.  Two moves are provably redundant:
                //
                // * **identity** — argument *i* is the caller's own *i*-th
                //   parameter.  Globals are written only at a tail call,
                //   and each path through a body reaches exactly one, so
                //   `gᵢ` still holds the entry value of `pᵢ`;
                // * **dead target** — liveness shows the callee never
                //   reads parameter *i*, and the argument is a variable or
                //   constant, so skipping its evaluation cannot suppress a
                //   runtime error.
                let dead_target = facts.dead.get(callee.as_str());
                for (i, a) in args.iter().enumerate() {
                    if self.elide {
                        let identity = matches!(a, S0Simple::Var(v)
                            if facts.caller_params.get(i).map(String::as_str) == Some(v.as_str()));
                        let dead = dead_target
                            .is_some_and(|d| d.get(i).copied().unwrap_or(false))
                            && matches!(a, S0Simple::Var(_) | S0Simple::Const(_));
                        if identity || dead {
                            self.moves_elided += 1;
                            continue;
                        }
                    }
                    let x = self.simple(a, params, temps);
                    let _ = writeln!(body, "{pad}g{i} = {x};");
                }
                let l = self.label_of(callee);
                let _ = writeln!(body, "{pad}goto {l};");
            }
            S0Tail::Fail(m) => {
                let _ = writeln!(body, "{pad}rt_die({:?});", m);
            }
        }
    }
}

fn prim_call(op: Prim, args: &[String]) -> String {
    let f = match op {
        Prim::Cons => "rt_cons",
        Prim::Car => "rt_car",
        Prim::Cdr => "rt_cdr",
        Prim::NullP => "rt_nullp",
        Prim::PairP => "rt_pairp",
        Prim::Not => "rt_not",
        Prim::EqP | Prim::EqvP => "rt_eqp",
        Prim::EqualP => "rt_equalp",
        Prim::Add => "rt_add",
        Prim::Sub => "rt_sub",
        Prim::Mul => "rt_mul",
        Prim::Quotient => "rt_quotient",
        Prim::Remainder => "rt_remainder",
        Prim::NumEq => "rt_numeq",
        Prim::Lt => "rt_lt",
        Prim::Gt => "rt_gt",
        Prim::Le => "rt_le",
        Prim::Ge => "rt_ge",
        Prim::ZeroP => "rt_zerop",
        Prim::Add1 => "rt_add1",
        Prim::Sub1 => "rt_sub1",
        Prim::SymbolP => "rt_symbolp",
        Prim::NumberP => "rt_numberp",
        Prim::BooleanP => "rt_booleanp",
    };
    format!("{f}({})", args.join(", "))
}

fn datum_literal(e: &mut Emitter, d: &Datum) -> String {
    match d {
        Datum::Int(n) => format!("rt_int({n}L)"),
        Datum::Bool(b) => format!("rt_bool({})", i32::from(*b)),
        Datum::Char(c) => format!("rt_char({})", *c as u32),
        Datum::Nil => "rt_nil()".to_string(),
        Datum::Sym(s) => {
            let i = e.sym_index(s);
            format!("rt_sym({i})")
        }
        Datum::Str(s) => {
            let i = e.str_index(s);
            format!("rt_str({i})")
        }
        Datum::Pair(p) => {
            let a = datum_literal(e, &p.0);
            let d = datum_literal(e, &p.1);
            format!("rt_cons({a}, {d})")
        }
        Datum::Closure(c) => match *c {},
    }
}

/// Translates an S₀ program to a standalone C source file whose `main`
/// runs the entry procedure on `args` and prints the result as an
/// S-expression.
pub fn emit_c(p: &S0Program, args: &[Datum], opts: &COptions) -> CProgram {
    let mut e = Emitter {
        out: String::new(),
        labels: HashMap::new(),
        used: HashMap::new(),
        symbols: Vec::new(),
        strings: Vec::new(),
        next_temp: 0,
        max_arity: p.procs.iter().map(|q| q.params.len()).max().unwrap_or(0),
        elide: opts.elide_moves,
        moves_elided: 0,
    };

    // Per-procedure liveness, computed once up front: parameter
    // positions never read drive both prologue skipping and dead-target
    // move elision.  A trapped analysis budget degrades to "all live"
    // (no elision), never to a wrong answer.
    let dead: HashMap<&str, Vec<bool>> = if opts.elide_moves {
        let mut fuel = Fuel::new(&Limits::default());
        p.procs
            .iter()
            .map(|q| {
                let flags = match pe_flow::liveness::live_at_entry(q, &mut fuel) {
                    Ok(live) => q.params.iter().map(|v| !live.contains(v)).collect(),
                    Err(_) => vec![false; q.params.len()],
                };
                (q.name.as_str(), flags)
            })
            .collect()
    } else {
        HashMap::new()
    };

    // Bodies first, so the symbol/string tables fill up.
    let mut bodies = String::new();
    for q in &p.procs {
        let label = e.label_of(&q.name);
        let _ = writeln!(bodies, "{label}: {{");
        let params: HashMap<&str, String> = q
            .params
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), format!("p{i}")))
            .collect();
        let facts = MoveFacts { dead: &dead, caller_params: &q.params };
        // Fresh scope: copy the globals into private parameter
        // variables — except the ones liveness proves are never read.
        let dead_here = facts.dead.get(q.name.as_str());
        let mut copied = 0usize;
        for i in 0..q.params.len() {
            if e.elide && dead_here.is_some_and(|d| d[i]) {
                e.moves_elided += 1;
                continue;
            }
            let _ = writeln!(bodies, "  Obj *p{i} = g{i};");
            copied += 1;
        }
        if copied == 0 {
            let _ = writeln!(bodies, "  ;");
        }
        let mut temps = Vec::new();
        let mut body = String::new();
        e.tail(&q.body, &params, &facts, &mut temps, 1, &mut body);
        if !temps.is_empty() {
            let _ = writeln!(bodies, "  Obj *{};", temps.join(", *"));
        }
        bodies.push_str(&body);
        let _ = writeln!(bodies, "}}");
    }

    let mut main_args = String::new();
    let entry_args: Vec<String> = args.iter().map(|d| datum_literal(&mut e, d)).collect();
    for (i, a) in entry_args.iter().enumerate() {
        let _ = writeln!(main_args, "  g{i} = {a};");
    }

    // Now assemble the file.
    let mut out = String::new();
    out.push_str(&runtime_header(opts, &e.symbols, &e.strings));
    let _ = writeln!(out, "/* global parameter variables (§5.1) */");
    for i in 0..e.max_arity.max(args.len()) {
        let _ = writeln!(out, "static Obj *g{i};");
    }
    let _ = writeln!(out, "\nstatic Obj *program(void) {{");
    let entry_label = e.label_of(&p.entry);
    let _ = writeln!(out, "  goto {entry_label};");
    out.push_str(&bodies);
    let _ = writeln!(out, "}}");
    let _ = writeln!(out, "\nint main(void) {{");
    let _ = writeln!(out, "  rt_init();");
    out.push_str(&main_args);
    let _ = writeln!(out, "  rt_print(program());");
    let _ = writeln!(out, "  printf(\"\\n\");");
    let _ = writeln!(out, "  return 0;");
    let _ = writeln!(out, "}}");

    let _ = &e.out;
    CProgram { source: out, moves_elided: e.moves_elided }
}

fn runtime_header(opts: &COptions, symbols: &[String], strings: &[String]) -> String {
    let mut h = String::new();
    let _ = writeln!(
        h,
        r#"/* generated by pe-backend-c — S0-to-C translation (Sperber/Thiemann §5.1) */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

enum {{ T_INT, T_BOOL, T_CHAR, T_NIL, T_SYM, T_STR, T_PAIR, T_CLO }};

typedef struct Obj Obj;
struct Obj {{
  int tag;
  union {{
    long i;
    struct {{ Obj *car, *cdr; }} pair;
    struct {{ long label; int n; Obj **fv; }} clo;
  }} u;
}};
"#
    );
    let _ = writeln!(h, "static const char *rt_symbols[] = {{");
    for s in symbols {
        let _ = writeln!(h, "  {:?},", s);
    }
    let _ = writeln!(h, "  0\n}};");
    let _ = writeln!(h, "static const char *rt_strings[] = {{");
    for s in strings {
        let _ = writeln!(h, "  {:?},", s);
    }
    let _ = writeln!(h, "  0\n}};");
    let _ = writeln!(
        h,
        r##"
/* Bump arena: substitution for the Boehm collector (see DESIGN.md). */
static char *rt_arena, *rt_free_ptr, *rt_end;
static void rt_init(void) {{
  rt_arena = (char *)malloc({arena});
  if (!rt_arena) {{ fprintf(stderr, "arena allocation failed\n"); exit(2); }}
  rt_free_ptr = rt_arena;
  rt_end = rt_arena + {arena};
}}
static void rt_die(const char *msg) {{
  fprintf(stderr, "runtime error: %s\n", msg);
  exit(1);
}}
static void *rt_alloc(size_t n) {{
  n = (n + 15) & ~(size_t)15;
  if (rt_free_ptr + n > rt_end) rt_die("arena exhausted");
  {{ void *p = rt_free_ptr; rt_free_ptr += n; return p; }}
}}
static Obj *rt_new(int tag) {{
  Obj *o = (Obj *)rt_alloc(sizeof(Obj));
  o->tag = tag;
  return o;
}}
static Obj *rt_int(long n) {{ Obj *o = rt_new(T_INT); o->u.i = n; return o; }}
static Obj *rt_bool(int b) {{ Obj *o = rt_new(T_BOOL); o->u.i = b; return o; }}
static Obj *rt_char(long c) {{ Obj *o = rt_new(T_CHAR); o->u.i = c; return o; }}
static Obj *rt_nil(void) {{ Obj *o = rt_new(T_NIL); return o; }}
static Obj *rt_sym(long i) {{ Obj *o = rt_new(T_SYM); o->u.i = i; return o; }}
static Obj *rt_str(long i) {{ Obj *o = rt_new(T_STR); o->u.i = i; return o; }}
static Obj *rt_cons(Obj *a, Obj *d) {{
  Obj *o = rt_new(T_PAIR); o->u.pair.car = a; o->u.pair.cdr = d; return o;
}}
static int rt_truthy(Obj *o) {{ return !(o->tag == T_BOOL && o->u.i == 0); }}
static Obj *rt_car(Obj *o) {{ if (o->tag != T_PAIR) rt_die("car: not a pair"); return o->u.pair.car; }}
static Obj *rt_cdr(Obj *o) {{ if (o->tag != T_PAIR) rt_die("cdr: not a pair"); return o->u.pair.cdr; }}
static Obj *rt_nullp(Obj *o) {{ return rt_bool(o->tag == T_NIL); }}
static Obj *rt_pairp(Obj *o) {{ return rt_bool(o->tag == T_PAIR); }}
static Obj *rt_not(Obj *o) {{ return rt_bool(!rt_truthy(o)); }}
static Obj *rt_symbolp(Obj *o) {{ return rt_bool(o->tag == T_SYM); }}
static Obj *rt_numberp(Obj *o) {{ return rt_bool(o->tag == T_INT); }}
static Obj *rt_booleanp(Obj *o) {{ return rt_bool(o->tag == T_BOOL); }}
static long rt_ival(Obj *o) {{ if (o->tag != T_INT) rt_die("expected number"); return o->u.i; }}
static Obj *rt_add(Obj *a, Obj *b) {{ return rt_int(rt_ival(a) + rt_ival(b)); }}
static Obj *rt_sub(Obj *a, Obj *b) {{ return rt_int(rt_ival(a) - rt_ival(b)); }}
static Obj *rt_mul(Obj *a, Obj *b) {{ return rt_int(rt_ival(a) * rt_ival(b)); }}
static Obj *rt_quotient(Obj *a, Obj *b) {{
  long d = rt_ival(b); if (d == 0) rt_die("quotient: division by zero");
  return rt_int(rt_ival(a) / d);
}}
static Obj *rt_remainder(Obj *a, Obj *b) {{
  long d = rt_ival(b); if (d == 0) rt_die("remainder: division by zero");
  return rt_int(rt_ival(a) % d);
}}
static Obj *rt_numeq(Obj *a, Obj *b) {{ return rt_bool(rt_ival(a) == rt_ival(b)); }}
static Obj *rt_lt(Obj *a, Obj *b) {{ return rt_bool(rt_ival(a) < rt_ival(b)); }}
static Obj *rt_gt(Obj *a, Obj *b) {{ return rt_bool(rt_ival(a) > rt_ival(b)); }}
static Obj *rt_le(Obj *a, Obj *b) {{ return rt_bool(rt_ival(a) <= rt_ival(b)); }}
static Obj *rt_ge(Obj *a, Obj *b) {{ return rt_bool(rt_ival(a) >= rt_ival(b)); }}
static Obj *rt_zerop(Obj *o) {{ return rt_bool(rt_ival(o) == 0); }}
static Obj *rt_add1(Obj *o) {{ return rt_int(rt_ival(o) + 1); }}
static Obj *rt_sub1(Obj *o) {{ return rt_int(rt_ival(o) - 1); }}
static int rt_eq_raw(Obj *a, Obj *b) {{
  if (a == b) return 1;
  if (a->tag != b->tag) return 0;
  switch (a->tag) {{
    case T_INT: case T_BOOL: case T_CHAR: case T_SYM: case T_STR: return a->u.i == b->u.i;
    case T_NIL: return 1;
    default: return 0;
  }}
}}
static Obj *rt_eqp(Obj *a, Obj *b) {{ return rt_bool(rt_eq_raw(a, b)); }}
static int rt_equal_raw(Obj *a, Obj *b) {{
  if (rt_eq_raw(a, b)) return 1;
  if (a->tag == T_PAIR && b->tag == T_PAIR)
    return rt_equal_raw(a->u.pair.car, b->u.pair.car) &&
           rt_equal_raw(a->u.pair.cdr, b->u.pair.cdr);
  return 0;
}}
static Obj *rt_equalp(Obj *a, Obj *b) {{ return rt_bool(rt_equal_raw(a, b)); }}
static Obj *rt_closure(long label, int n, ...) {{
  __builtin_va_list ap;
  Obj *o = rt_new(T_CLO);
  int i;
  o->u.clo.label = label;
  o->u.clo.n = n;
  o->u.clo.fv = (Obj **)rt_alloc(sizeof(Obj *) * (n ? n : 1));
  __builtin_va_start(ap, n);
  for (i = 0; i < n; i++) o->u.clo.fv[i] = __builtin_va_arg(ap, Obj *);
  __builtin_va_end(ap);
  return o;
}}
static Obj *rt_closure_label(Obj *o) {{
  if (o->tag != T_CLO) rt_die("closure-label: not a closure");
  return rt_int(o->u.clo.label);
}}
static Obj *rt_closure_freeval(Obj *o, int i) {{
  if (o->tag != T_CLO) rt_die("closure-freeval: not a closure");
  if (i >= o->u.clo.n) rt_die("closure-freeval: index out of range");
  return o->u.clo.fv[i];
}}
static void rt_print(Obj *o) {{
  switch (o->tag) {{
    case T_INT: printf("%ld", o->u.i); break;
    case T_BOOL: printf(o->u.i ? "#t" : "#f"); break;
    case T_CHAR: printf("#\\%c", (char)o->u.i); break;
    case T_NIL: printf("()"); break;
    case T_SYM: printf("%s", rt_symbols[o->u.i]); break;
    case T_STR: printf("%c%s%c", 34, rt_strings[o->u.i], 34); break;
    case T_CLO: printf("#<procedure %ld>", o->u.clo.label); break;
    case T_PAIR: {{
      printf("(");
      for (;;) {{
        rt_print(o->u.pair.car);
        o = o->u.pair.cdr;
        if (o->tag == T_NIL) break;
        if (o->tag != T_PAIR) {{ printf(" . "); rt_print(o); break; }}
        printf(" ");
      }}
      printf(")");
      break;
    }}
  }}
}}
"##,
        arena = opts.arena_bytes
    );
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::{compile, CompileOptions};
    use pe_frontend::{desugar, parse_source};
    use std::process::Command;

    fn cc_available() -> bool {
        Command::new("cc").arg("--version").output().is_ok()
    }

    fn run_c(c: &CProgram, tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("pe-backend-c-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("prog.c");
        let bin = dir.join("prog");
        std::fs::write(&src, &c.source).unwrap();
        let out = Command::new("cc")
            .arg("-O1")
            .arg("-o")
            .arg(&bin)
            .arg(&src)
            .output()
            .expect("cc runs");
        assert!(
            out.status.success(),
            "cc failed:\n{}\n--- source ---\n{}",
            String::from_utf8_lossy(&out.stderr),
            c.source
        );
        let out = Command::new(&bin).output().expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).trim().to_string()
    }

    fn compile_and_run(src: &str, entry: &str, args: &[Datum], tag: &str) -> String {
        let p = parse_source(src).unwrap();
        let d = desugar(&p).unwrap();
        let s0 = compile(&d, entry, &CompileOptions::default()).unwrap();
        let c = emit_c(&s0, args, &COptions::default());
        run_c(&c, tag)
    }

    #[test]
    fn emitted_c_has_the_paper_shape() {
        let p = parse_source("(define (f x) (g (+ x 1))) (define (g y) (cons y '()))").unwrap();
        let d = desugar(&p).unwrap();
        let s0 = compile(&d, "f", &CompileOptions::default()).unwrap();
        let c = emit_c(&s0, &[Datum::Int(1)], &COptions::default());
        // labels + gotos + global parameter variables + temporaries
        assert!(c.source.contains("goto L_"), "{}", c.source);
        assert!(c.source.contains("static Obj *g0;"), "{}", c.source);
        assert!(c.source.contains("Obj *p0 = g0;"), "{}", c.source);
        assert!(c.source.contains("(t0 = "), "{}", c.source);
    }

    #[test]
    fn c_runs_cps_append() {
        if !cc_available() {
            eprintln!("cc not available; skipping");
            return;
        }
        let src = "(define (append x y) (cps-append x y (lambda (v) v)))
                   (define (cps-append x y c)
                     (if (null? x) (c y)
                         (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";
        let out = compile_and_run(
            src,
            "append",
            &[Datum::parse("(1 2)").unwrap(), Datum::parse("(3 4)").unwrap()],
            "append",
        );
        assert_eq!(out, "(1 2 3 4)");
    }

    #[test]
    fn c_runs_tak() {
        if !cc_available() {
            eprintln!("cc not available; skipping");
            return;
        }
        let src = "(define (tak x y z)
                     (if (not (< y x)) z
                         (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))";
        let out = compile_and_run(
            src,
            "tak",
            &[Datum::Int(14), Datum::Int(7), Datum::Int(3)],
            "tak",
        );
        assert_eq!(out, "7");
    }

    #[test]
    fn c_prints_symbols_and_structures() {
        if !cc_available() {
            eprintln!("cc not available; skipping");
            return;
        }
        let src = "(define (f) (cons 'alpha (cons #t (cons #\\x '()))))";
        let out = compile_and_run(src, "f", &[], "syms");
        assert_eq!(out, "(alpha #t #\\x)");
    }

    #[test]
    fn identity_moves_are_elided() {
        // `acc` rides along in its own position on the self call, so
        // `g1` already holds it at the goto; the move disappears.
        let src = "(define (count n acc) (if (zero? n) acc (count (- n 1) acc)))";
        let p = parse_source(src).unwrap();
        let d = desugar(&p).unwrap();
        let s0 = compile(&d, "count", &CompileOptions::default()).unwrap();
        let on = emit_c(&s0, &[Datum::Int(5), Datum::Int(0)], &COptions::default());
        let off = emit_c(
            &s0,
            &[Datum::Int(5), Datum::Int(0)],
            &COptions { elide_moves: false, ..COptions::default() },
        );
        assert!(on.moves_elided >= 1, "no move elided:\n{}", on.source);
        assert_eq!(off.moves_elided, 0);
        assert!(!on.source.contains("g1 = p1;"), "{}", on.source);
        assert!(off.source.contains("g1 = p1;"), "{}", off.source);
        assert!(on.size_bytes() < off.size_bytes());
        if cc_available() {
            assert_eq!(run_c(&on, "elide-on"), "0");
            assert_eq!(run_c(&off, "elide-off"), "0");
        }
    }

    #[test]
    fn dead_parameter_prologue_and_moves_are_skipped() {
        use pe_core::{S0Proc, S0Program};
        // `sink`'s second parameter is never read: its prologue copy is
        // skipped, and the constant argument's move is elided outright.
        // The effectful `cons` argument still evaluates into the global.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::TailCall(
                        "sink".into(),
                        vec![
                            S0Simple::Var("x".into()),
                            S0Simple::Const(pe_frontend::ast::Constant::Int(9)),
                        ],
                    ),
                },
                S0Proc {
                    name: "sink".into(),
                    params: vec!["v".into(), "junk".into()],
                    body: S0Tail::Return(S0Simple::Var("v".into())),
                },
            ],
        };
        let c = emit_c(&p, &[Datum::Int(1)], &COptions::default());
        assert!(!c.source.contains("Obj *p1 = g1;"), "{}", c.source);
        assert!(!c.source.contains("g1 = "), "{}", c.source);
        assert!(c.moves_elided >= 2, "{}", c.source);
        if cc_available() {
            assert_eq!(run_c(&c, "dead-param"), "1");
        }
    }

    #[test]
    fn c_runtime_faults_cleanly() {
        if !cc_available() {
            eprintln!("cc not available; skipping");
            return;
        }
        let src = "(define (f x) (car x))";
        let p = parse_source(src).unwrap();
        let d = desugar(&p).unwrap();
        let s0 = compile(&d, "f", &CompileOptions::default()).unwrap();
        let c = emit_c(&s0, &[Datum::Int(7)], &COptions::default());
        let dir = std::env::temp_dir().join(format!("pe-backend-c-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let srcf = dir.join("prog.c");
        let bin = dir.join("prog");
        std::fs::write(&srcf, &c.source).unwrap();
        let out = Command::new("cc").arg("-o").arg(&bin).arg(&srcf).output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let out = Command::new(&bin).output().unwrap();
        assert!(!out.status.success());
        assert!(String::from_utf8_lossy(&out.stderr).contains("car: not a pair"));
    }
}
