//! Validation for the JSONL trace stream emitted by
//! [`JsonlSink`](crate::JsonlSink).
//!
//! The stream schema is deliberately flat — one JSON object per line,
//! string and unsigned-integer values only — so this module carries
//! its own ~100-line parser instead of a JSON dependency.  The `ci.sh`
//! trace-smoke step and the golden schema test both funnel through
//! [`validate`], so the emitter and the checker cannot drift apart
//! silently.

/// Summary of a validated stream.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Total lines validated.
    pub lines: usize,
    /// `span_open` lines seen.
    pub spans_opened: usize,
    /// `span_close` lines seen.
    pub spans_closed: usize,
    /// Deepest nesting reached.
    pub max_depth: usize,
    /// Counter totals by name, in first-emission order.
    pub counters: Vec<(String, u64)>,
}

impl Summary {
    /// Total for a counter name, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// Validates a whole JSONL stream: every line parses as a flat JSON
/// object, carries the fields its `type` requires, names come from the
/// published vocabulary, and spans open/close in balanced LIFO order
/// with consistent depths.
///
/// Besides the four event types, a `{"type":"run",...}` header line is
/// accepted — `pe-explain --json` writes one per benchmark so streams
/// for several programs can share a file.
///
/// # Errors
///
/// A message naming the first offending line (1-based) and why.
pub fn validate(stream: &str) -> Result<Summary, String> {
    let mut summary = Summary::default();
    let mut stack: Vec<String> = Vec::new();
    for (i, line) in stream.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields =
            parse_flat_object(line).map_err(|e| format!("line {lineno}: {e}"))?;
        summary.lines += 1;
        let ty = match field_str(&fields, "type") {
            Some(t) => t,
            None => return Err(format!("line {lineno}: missing string field \"type\"")),
        };
        match ty {
            "span_open" => {
                let phase = require_str(&fields, "phase", lineno)?;
                require_phase(phase, lineno)?;
                let depth = require_u64(&fields, "depth", lineno)? as usize;
                if depth != stack.len() {
                    return Err(format!(
                        "line {lineno}: span_open depth {depth}, expected {}",
                        stack.len()
                    ));
                }
                stack.push(phase.to_string());
                summary.spans_opened += 1;
                summary.max_depth = summary.max_depth.max(stack.len());
            }
            "span_close" => {
                let phase = require_str(&fields, "phase", lineno)?;
                require_phase(phase, lineno)?;
                let depth = require_u64(&fields, "depth", lineno)? as usize;
                require_u64(&fields, "dur_ns", lineno)?;
                match stack.pop() {
                    Some(open) if open == phase => {
                        if depth != stack.len() {
                            return Err(format!(
                                "line {lineno}: span_close depth {depth}, expected {}",
                                stack.len()
                            ));
                        }
                    }
                    Some(open) => {
                        return Err(format!(
                            "line {lineno}: span_close {phase} while {open} open"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {lineno}: span_close {phase} with no span open"
                        ))
                    }
                }
                summary.spans_closed += 1;
            }
            "counter" => {
                let name = require_str(&fields, "name", lineno)?;
                if !crate::Counter::ALL.iter().any(|c| c.name() == name) {
                    return Err(format!("line {lineno}: unknown counter \"{name}\""));
                }
                let delta = require_u64(&fields, "delta", lineno)?;
                match summary.counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, v)) => *v += delta,
                    None => summary.counters.push((name.to_string(), delta)),
                }
            }
            "gauge" => {
                let name = require_str(&fields, "name", lineno)?;
                if !crate::Gauge::ALL.iter().any(|g| g.name() == name) {
                    return Err(format!("line {lineno}: unknown gauge \"{name}\""));
                }
                require_u64(&fields, "value", lineno)?;
            }
            "attr" => {
                let phase = require_str(&fields, "phase", lineno)?;
                require_phase(phase, lineno)?;
                require_str(&fields, "label", lineno)?;
                require_u64(&fields, "ns", lineno)?;
                require_u64(&fields, "units", lineno)?;
            }
            "hist" => {
                let name = require_str(&fields, "name", lineno)?;
                if !crate::Hist::ALL.iter().any(|h| h.name() == name) {
                    return Err(format!("line {lineno}: unknown hist \"{name}\""));
                }
                let count = require_u64(&fields, "count", lineno)?;
                let buckets = fields
                    .iter()
                    .find(|(k, _)| k == "buckets")
                    .and_then(|(_, v)| match v {
                        Value::Arr(xs) => Some(xs),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        format!("line {lineno}: missing array field \"buckets\"")
                    })?;
                if buckets.len() != crate::HIST_BUCKETS {
                    return Err(format!(
                        "line {lineno}: hist has {} buckets, expected {}",
                        buckets.len(),
                        crate::HIST_BUCKETS
                    ));
                }
                let sum: u64 = buckets.iter().sum();
                if sum != count {
                    return Err(format!(
                        "line {lineno}: hist count {count} != bucket sum {sum}"
                    ));
                }
            }
            "run" => {
                // Benchmark header written by pe-explain; only legal
                // between balanced groups of spans.
                if !stack.is_empty() {
                    return Err(format!(
                        "line {lineno}: run header while span {} open",
                        stack[stack.len() - 1]
                    ));
                }
            }
            other => return Err(format!("line {lineno}: unknown type \"{other}\"")),
        }
    }
    if let Some(open) = stack.pop() {
        return Err(format!("span {open} never closed"));
    }
    Ok(summary)
}

/// One parsed field value: this schema only ever uses strings,
/// unsigned integers, and (for histogram buckets) flat arrays of
/// unsigned integers.
#[derive(Debug, PartialEq, Eq)]
enum Value {
    Str(String),
    Num(u64),
    Arr(Vec<u64>),
}

fn field_str<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    })
}

fn require_str<'a>(
    fields: &'a [(String, Value)],
    key: &str,
    lineno: usize,
) -> Result<&'a str, String> {
    field_str(fields, key)
        .ok_or_else(|| format!("line {lineno}: missing string field \"{key}\""))
}

fn require_u64(fields: &[(String, Value)], key: &str, lineno: usize) -> Result<u64, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Num(n) => Some(*n),
            _ => None,
        })
        .ok_or_else(|| format!("line {lineno}: missing numeric field \"{key}\""))
}

fn require_phase(phase: &str, lineno: usize) -> Result<(), String> {
    if crate::Phase::ALL.iter().any(|p| p.name() == phase) {
        Ok(())
    } else {
        Err(format!("line {lineno}: unknown phase \"{phase}\""))
    }
}

/// Parses one flat JSON object: `{"k":"v","n":123,...}`.  No nesting,
/// no floats, no booleans, no escapes beyond `\"` and `\\` — exactly
/// what the emitter produces.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.trim().chars().peekable();
    if chars.next() != Some('{') {
        return Err("expected '{'".to_string());
    }
    let mut fields = Vec::new();
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            Some(c) => return Err(format!("expected '\"' or '}}', found {c:?}")),
            None => return Err("unterminated object".to_string()),
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        let value = match chars.peek() {
            Some('"') => Value::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => Value::Num(parse_u64(&mut chars, &key)?),
            Some('[') => {
                chars.next();
                let mut xs = Vec::new();
                if chars.peek() == Some(&']') {
                    chars.next();
                } else {
                    loop {
                        match chars.peek() {
                            Some(c) if c.is_ascii_digit() => {
                                xs.push(parse_u64(&mut chars, &key)?);
                            }
                            _ => {
                                return Err(format!(
                                    "expected digit in array for key {key:?}"
                                ))
                            }
                        }
                        match chars.next() {
                            Some(',') => {}
                            Some(']') => break,
                            _ => {
                                return Err(format!(
                                    "expected ',' or ']' in array for key {key:?}"
                                ))
                            }
                        }
                    }
                }
                Value::Arr(xs)
            }
            Some(c) => return Err(format!("unsupported value start {c:?} for key {key:?}")),
            None => return Err("unterminated object".to_string()),
        };
        fields.push((key, value));
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            Some(c) => return Err(format!("expected ',' or '}}', found {c:?}")),
            None => return Err("unterminated object".to_string()),
        }
    }
    if chars.next().is_some() {
        return Err("trailing characters after object".to_string());
    }
    Ok(fields)
}

fn parse_u64(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    key: &str,
) -> Result<u64, String> {
    let mut n: u64 = 0;
    while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
        chars.next();
        n = n
            .checked_mul(10)
            .and_then(|n| n.checked_add(u64::from(d)))
            .ok_or_else(|| format!("number overflow in field {key:?}"))?;
    }
    Ok(n)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".to_string());
    }
    let mut s = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some(c) => return Err(format!("unsupported escape \\{c}")),
                None => return Err("unterminated string".to_string()),
            },
            Some(c) => s.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{begin, end, Counter, Gauge, JsonlSink, Phase, Sink};

    #[test]
    fn validates_emitter_output_round_trip() {
        let mut s = JsonlSink::new(Vec::new());
        let outer = begin(&mut s, Phase::Specialize);
        let inner = begin(&mut s, Phase::Post);
        s.counter(Counter::MemoHits, 4);
        s.counter(Counter::MemoHits, 6);
        end(&mut s, inner);
        s.gauge(Gauge::CallDepth, 12);
        end(&mut s, outer);
        let text = String::from_utf8(s.finish().expect("vec")).expect("utf8");
        let sum = validate(&text).expect("stream validates");
        assert_eq!(sum.spans_opened, 2);
        assert_eq!(sum.spans_closed, 2);
        assert_eq!(sum.max_depth, 2);
        assert_eq!(sum.counter("memo_hits"), 10);
        assert_eq!(sum.counter("memo_misses"), 0);
    }

    #[test]
    fn rejects_unbalanced_and_unknown() {
        assert!(validate("{\"type\":\"span_open\",\"phase\":\"read\",\"depth\":0}").is_err());
        assert!(validate("{\"type\":\"span_close\",\"phase\":\"read\",\"depth\":0,\"dur_ns\":1}")
            .is_err());
        assert!(validate("{\"type\":\"counter\",\"name\":\"bogus\",\"delta\":1}").is_err());
        assert!(validate("{\"type\":\"mystery\"}").is_err());
        assert!(validate("not json").is_err());
        let crossed = "{\"type\":\"span_open\",\"phase\":\"read\",\"depth\":0}\n\
                       {\"type\":\"span_close\",\"phase\":\"parse\",\"depth\":0,\"dur_ns\":1}";
        assert!(validate(crossed).is_err());
    }

    #[test]
    fn accepts_run_headers_between_groups() {
        let ok = "{\"type\":\"run\",\"benchmark\":\"tak\"}\n\
                  {\"type\":\"span_open\",\"phase\":\"read\",\"depth\":0}\n\
                  {\"type\":\"span_close\",\"phase\":\"read\",\"depth\":0,\"dur_ns\":5}\n\
                  {\"type\":\"run\",\"benchmark\":\"deriv\"}";
        assert!(validate(ok).is_ok());
        let bad = "{\"type\":\"span_open\",\"phase\":\"read\",\"depth\":0}\n\
                   {\"type\":\"run\",\"benchmark\":\"tak\"}";
        assert!(validate(bad).is_err());
    }

    #[test]
    fn validates_attr_and_hist_lines() {
        let mut s = JsonlSink::new(Vec::new());
        s.attr(Phase::Post, "sl-eval-$2", 1234, 55);
        let mut buckets = [0u64; crate::HIST_BUCKETS];
        buckets[7] = 2;
        buckets[9] = 1;
        s.hist(crate::Hist::ServeColdMissNs, &buckets);
        let text = String::from_utf8(s.finish().expect("vec")).expect("utf8");
        validate(&text).expect("attr + hist validate");

        // Unknown phase, unknown hist name, wrong bucket arity, and a
        // count that disagrees with the bucket sum are all refused.
        assert!(validate("{\"type\":\"attr\",\"phase\":\"nope\",\"label\":\"x\",\"ns\":1,\"units\":1}").is_err());
        assert!(validate("{\"type\":\"hist\",\"name\":\"bogus\",\"count\":0,\"buckets\":[]}").is_err());
        assert!(validate("{\"type\":\"hist\",\"name\":\"serve_hit_ns\",\"count\":0,\"buckets\":[0,0]}").is_err());
        let mut wrong = String::from("{\"type\":\"hist\",\"name\":\"serve_hit_ns\",\"count\":5,\"buckets\":[");
        wrong.push_str(&vec!["0"; crate::HIST_BUCKETS].join(","));
        wrong.push_str("]}");
        assert!(validate(&wrong).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let sum = validate("\n\n").expect("empty ok");
        assert_eq!(sum.lines, 0);
    }
}
