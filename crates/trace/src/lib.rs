//! pe-trace: the pipeline's observability layer.
//!
//! The paper's claims are quantitative-behavioral — memoization bounds
//! specialization, The Trick bounds code duplication, unfolding does
//! the constant propagation — so the pipeline emits three kinds of
//! telemetry through one [`Sink`] trait:
//!
//! * **Spans** ([`Phase`]): one open/close pair per pipeline phase
//!   (read, parse, desugar, cfa, bta, specialize, post, flow, verify,
//!   vm-load, emit-c, vm-run) with monotonic nanosecond durations and
//!   parent nesting by depth.
//! * **Counters** ([`Counter`]): monotone event totals from the
//!   specializers (memo lookups/hits/misses, unfold steps,
//!   generalizations, widenings, Trick dispatches/arms, residual
//!   procedure and node counts), the pe-flow optimizer (copies
//!   propagated, dead bindings, slots pruned, arms folded, moves
//!   elided, CFG nodes/edges) and the run-time engines (dispatch
//!   steps, allocations, calls).
//! * **Gauges** ([`Gauge`]): point-in-time snapshots of governor
//!   meters (fuel, heap, peak call depth), emitted when an engine
//!   traps so every `Trap` carries the metrics at trap time.
//!
//! The default sink is [`NullSink`]: every method is an inlined no-op
//! and [`Sink::enabled`] returns `false`, so instrumented code can
//! skip even the cost of assembling event data.  Hot loops never call
//! the sink per event — engines accumulate into plain integers (their
//! existing fuel/stats counters) and flush totals once per run.
//!
//! The crate is dependency-free and std-only by design: it sits below
//! every other crate in the workspace.

use std::fmt;
use std::io::Write;
use std::time::Instant;

pub mod jsonl;
pub mod report;

/// A pipeline phase, the unit of span attribution.
///
/// Phases are coarse on purpose: one span per phase per compile, so a
/// report's per-phase durations sum to ≈ the end-to-end wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reading source text into S-expressions.
    Read,
    /// Parsing S-expressions into the surface AST (Fig. 2).
    Parse,
    /// Desugaring into the tail form (Fig. 5).
    Desugar,
    /// Control-flow + generalization pre-analyses of the specializer.
    Cfa,
    /// Size-change termination analysis (pe-sct).
    Sct,
    /// Binding-time analysis (the Unmix offline path).
    Bta,
    /// The specialization loop proper.
    Specialize,
    /// Residual post-processing (inlining, renaming).
    Post,
    /// Dataflow optimization of the residual program (pe-flow).
    Flow,
    /// Static verification of the residual program.
    Verify,
    /// Loading S₀ into the VM (resolver + code layout).
    VmLoad,
    /// Emitting the §5.1 C translation.
    EmitC,
    /// Executing on the VM.
    VmRun,
    /// One pe-siege robustness case: generation, differential oracle,
    /// and chaos ladder for a single subject program.
    Siege,
    /// One pe-serve compile request: fingerprinting, cache lookup, and
    /// (on a miss) the full compile pipeline.
    Serve,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 15] = [
        Phase::Read,
        Phase::Parse,
        Phase::Desugar,
        Phase::Cfa,
        Phase::Sct,
        Phase::Bta,
        Phase::Specialize,
        Phase::Post,
        Phase::Flow,
        Phase::Verify,
        Phase::VmLoad,
        Phase::EmitC,
        Phase::VmRun,
        Phase::Siege,
        Phase::Serve,
    ];

    /// The stable snake/kebab-case name used in JSONL and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Read => "read",
            Phase::Parse => "parse",
            Phase::Desugar => "desugar",
            Phase::Cfa => "cfa",
            Phase::Sct => "sct",
            Phase::Bta => "bta",
            Phase::Specialize => "specialize",
            Phase::Post => "post",
            Phase::Flow => "flow",
            Phase::Verify => "verify",
            Phase::VmLoad => "vm-load",
            Phase::EmitC => "emit-c",
            Phase::VmRun => "vm-run",
            Phase::Siege => "siege",
            Phase::Serve => "serve",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A monotone event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Specialization-point memo-table lookups (§4.2).
    MemoLookups,
    /// Lookups answered from the memo table.
    MemoHits,
    /// Lookups that seeded a new pending specialization.
    MemoMisses,
    /// Call unfoldings performed in place of residual calls.
    UnfoldSteps,
    /// Generalization firings (§4.5): a description replaced by a
    /// strictly less static one.
    Generalizations,
    /// Widening firings: bounded-static-variation caps, prefix caps,
    /// and context-stack flushes that keep descriptions finite —
    /// discovered dynamically, at points pe-sct did not flag.
    Widenings,
    /// Generalizations pre-annotated by the termination analysis:
    /// unbounded slots generalized on sight and stack flushes at
    /// statically anticipated labels.
    EagerGeneralizations,
    /// Size-change graphs built from syntactic call edges (pe-sct).
    SctGraphs,
    /// Graph compositions performed closing the size-change set.
    SctCompositions,
    /// Procedures classified `bounded` by pe-sct.
    SctBounded,
    /// Procedures classified `unbounded` by pe-sct.
    SctUnbounded,
    /// Procedures classified `unknown` by pe-sct.
    SctUnknown,
    /// Programs refused before specialization because pe-sct proved
    /// divergence on every input (0 or 1 per compile).
    SctEarlyRejects,
    /// The-Trick dispatch expansions (one per dispatched call site).
    TrickDispatches,
    /// Total arms materialized across all Trick dispatches.
    TrickArms,
    /// Procedures in the residual S₀ program.
    ResidualProcs,
    /// Syntax nodes in the residual S₀ program.
    ResidualNodes,
    /// Variable occurrences replaced by known constants (pe-flow
    /// copy/constant propagation).
    CopiesPropagated,
    /// Dead parameter bindings eliminated by interprocedural liveness.
    DeadBindings,
    /// Closure freeval slots pruned from flat closure vectors.
    SlotsPruned,
    /// Dispatch arms folded away by closure-label reachability.
    ArmsFolded,
    /// Identity global-parameter moves elided by the C backend.
    MovesElided,
    /// CFG nodes built over the final residual program.
    CfgNodes,
    /// CFG edges built over the final residual program.
    CfgEdges,
    /// VM dispatch steps.
    VmSteps,
    /// VM heap cells allocated.
    VmAllocs,
    /// VM procedure calls.
    VmCalls,
    /// Interpreter/`core::eval` evaluation steps.
    EvalSteps,
    /// Interpreter/`core::eval` heap cells allocated.
    EvalAllocs,
    /// pe-siege: subject programs put through the oracle (generated,
    /// mutated, and corpus cases alike).
    SiegeCases,
    /// pe-siege: hostile mutants grafted onto generated programs.
    SiegeMutants,
    /// pe-siege: individual engine executions across all cases.
    SiegeEngineRuns,
    /// pe-siege: structured traps observed across all engine runs.
    SiegeTraps,
    /// pe-siege: oracle disagreements (value mismatches, class
    /// mismatches, panics) — each one is a finding.
    SiegeDisagreements,
    /// pe-siege: chaos budget-ladder executions.
    SiegeLadderRuns,
    /// pe-siege: accepted shrink steps while minimizing a finding.
    SiegeShrinkSteps,
    /// pe-serve: compile requests handled (cached and compiled alike).
    ServeRequests,
    /// pe-serve: residual-cache lookups answered from the cache.
    CacheHits,
    /// pe-serve: residual-cache lookups that required a compile.
    CacheMisses,
    /// pe-serve: cache entries evicted to stay within capacity.
    CacheEvictions,
    /// pe-serve: compiles seeded from a prior memo-table snapshot
    /// instead of starting cold.
    WarmStarts,
}

impl Counter {
    /// All counters, in report order.
    pub const ALL: [Counter; 41] = [
        Counter::MemoLookups,
        Counter::MemoHits,
        Counter::MemoMisses,
        Counter::UnfoldSteps,
        Counter::Generalizations,
        Counter::Widenings,
        Counter::EagerGeneralizations,
        Counter::SctGraphs,
        Counter::SctCompositions,
        Counter::SctBounded,
        Counter::SctUnbounded,
        Counter::SctUnknown,
        Counter::SctEarlyRejects,
        Counter::TrickDispatches,
        Counter::TrickArms,
        Counter::ResidualProcs,
        Counter::ResidualNodes,
        Counter::CopiesPropagated,
        Counter::DeadBindings,
        Counter::SlotsPruned,
        Counter::ArmsFolded,
        Counter::MovesElided,
        Counter::CfgNodes,
        Counter::CfgEdges,
        Counter::VmSteps,
        Counter::VmAllocs,
        Counter::VmCalls,
        Counter::EvalSteps,
        Counter::EvalAllocs,
        Counter::SiegeCases,
        Counter::SiegeMutants,
        Counter::SiegeEngineRuns,
        Counter::SiegeTraps,
        Counter::SiegeDisagreements,
        Counter::SiegeLadderRuns,
        Counter::SiegeShrinkSteps,
        Counter::ServeRequests,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheEvictions,
        Counter::WarmStarts,
    ];

    /// The stable snake_case name used in JSONL and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::MemoLookups => "memo_lookups",
            Counter::MemoHits => "memo_hits",
            Counter::MemoMisses => "memo_misses",
            Counter::UnfoldSteps => "unfold_steps",
            Counter::Generalizations => "generalizations",
            Counter::Widenings => "widenings",
            Counter::EagerGeneralizations => "eager_generalizations",
            Counter::SctGraphs => "sct_graphs",
            Counter::SctCompositions => "sct_compositions",
            Counter::SctBounded => "sct_bounded",
            Counter::SctUnbounded => "sct_unbounded",
            Counter::SctUnknown => "sct_unknown",
            Counter::SctEarlyRejects => "sct_early_rejects",
            Counter::TrickDispatches => "trick_dispatches",
            Counter::TrickArms => "trick_arms",
            Counter::ResidualProcs => "residual_procs",
            Counter::ResidualNodes => "residual_nodes",
            Counter::CopiesPropagated => "copies_propagated",
            Counter::DeadBindings => "dead_bindings",
            Counter::SlotsPruned => "slots_pruned",
            Counter::ArmsFolded => "arms_folded",
            Counter::MovesElided => "moves_elided",
            Counter::CfgNodes => "cfg_nodes",
            Counter::CfgEdges => "cfg_edges",
            Counter::VmSteps => "vm_steps",
            Counter::VmAllocs => "vm_allocs",
            Counter::VmCalls => "vm_calls",
            Counter::EvalSteps => "eval_steps",
            Counter::EvalAllocs => "eval_allocs",
            Counter::SiegeCases => "siege_cases",
            Counter::SiegeMutants => "siege_mutants",
            Counter::SiegeEngineRuns => "siege_engine_runs",
            Counter::SiegeTraps => "siege_traps",
            Counter::SiegeDisagreements => "siege_disagreements",
            Counter::SiegeLadderRuns => "siege_ladder_runs",
            Counter::SiegeShrinkSteps => "siege_shrink_steps",
            Counter::ServeRequests => "serve_requests",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheEvictions => "cache_evictions",
            Counter::WarmStarts => "warm_starts",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A point-in-time governor meter snapshot, emitted at trap time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Fuel (evaluation steps) consumed so far.
    FuelUsed,
    /// Heap cells accounted so far.
    HeapUsed,
    /// High-water call depth reached.
    CallDepth,
    /// Requests currently being handled by the compile service.
    InFlight,
    /// High-water in-flight request count over a service batch.
    InFlightPeak,
}

impl Gauge {
    /// All gauges, in report order.
    pub const ALL: [Gauge; 5] = [
        Gauge::FuelUsed,
        Gauge::HeapUsed,
        Gauge::CallDepth,
        Gauge::InFlight,
        Gauge::InFlightPeak,
    ];

    /// The stable snake_case name used in JSONL and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::FuelUsed => "fuel_used",
            Gauge::HeapUsed => "heap_used",
            Gauge::CallDepth => "call_depth",
            Gauge::InFlight => "in_flight",
            Gauge::InFlightPeak => "in_flight_peak",
        }
    }
}

impl fmt::Display for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The number of buckets in every published histogram.  Fixed so that
/// histograms from different workers, runs, and processes merge by
/// element-wise addition with no negotiation.
pub const HIST_BUCKETS: usize = 64;

/// A named latency/value distribution published as a log-bucketed
/// histogram (see `pe-prof`'s `Histogram` for the bucketing rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Serve latency for artifact cache hits (ns).
    ServeHitNs,
    /// Serve latency for warm-started compile misses (ns).
    ServeWarmMissNs,
    /// Serve latency for cold compile misses (ns).
    ServeColdMissNs,
    /// Time a request waited in the service queue before a worker
    /// picked it up (ns).
    ServeQueueNs,
}

impl Hist {
    /// All histogram ids, in report order.
    pub const ALL: [Hist; 4] = [
        Hist::ServeHitNs,
        Hist::ServeWarmMissNs,
        Hist::ServeColdMissNs,
        Hist::ServeQueueNs,
    ];

    /// The stable snake_case name used in JSONL and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::ServeHitNs => "serve_hit_ns",
            Hist::ServeWarmMissNs => "serve_warm_miss_ns",
            Hist::ServeColdMissNs => "serve_cold_miss_ns",
            Hist::ServeQueueNs => "serve_queue_ns",
        }
    }
}

impl fmt::Display for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded trace event, as captured by [`CollectingSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A phase began, at the given nesting depth (0 = top level).
    SpanOpen {
        /// The phase that opened.
        phase: Phase,
        /// Nesting depth at open time.
        depth: u32,
    },
    /// A phase ended after `dur_ns` monotonic nanoseconds.
    SpanClose {
        /// The phase that closed.
        phase: Phase,
        /// Nesting depth the span was opened at.
        depth: u32,
        /// Monotonic duration in nanoseconds.
        dur_ns: u64,
    },
    /// A counter advanced by `delta`.
    Counter {
        /// Which counter.
        counter: Counter,
        /// The (non-negative) increment.
        delta: u64,
    },
    /// A gauge snapshot.
    Gauge {
        /// Which gauge.
        gauge: Gauge,
        /// The snapshotted value.
        value: u64,
    },
    /// A cost-attribution row: within `phase`, the item named `label`
    /// (typically a residual procedure) accounted for `ns` of the
    /// phase's wall time and `units` of its deterministic work measure
    /// (AST nodes, VM block entries, …).
    Attr {
        /// The phase the cost belongs to.
        phase: Phase,
        /// What the cost is attributed to.
        label: String,
        /// Attributed wall time (ns); 0 when only units are meaningful.
        ns: u64,
        /// Deterministic work units (nodes, entries, rewrites, …).
        units: u64,
    },
    /// A published histogram snapshot: [`HIST_BUCKETS`] log-bucket
    /// counts for the named distribution.
    Hist {
        /// Which distribution.
        hist: Hist,
        /// Per-bucket sample counts.
        buckets: Box<[u64; HIST_BUCKETS]>,
    },
}

impl Event {
    /// The event with any wall-clock measurement zeroed, for comparing
    /// two runs of the same deterministic pipeline.
    #[must_use]
    pub fn redacted(&self) -> Event {
        match self {
            Event::SpanClose { phase, depth, .. } => Event::SpanClose {
                phase: *phase,
                depth: *depth,
                dur_ns: 0,
            },
            Event::Attr { phase, label, units, .. } => Event::Attr {
                phase: *phase,
                label: label.clone(),
                ns: 0,
                units: *units,
            },
            other => other.clone(),
        }
    }
}

/// Receiver for trace events.
///
/// Implementations must be cheap to call; the engines only call them
/// at phase boundaries and run boundaries, never per evaluation step.
pub trait Sink {
    /// False when events will be discarded, letting instrumented code
    /// skip assembling them.  [`NullSink`] returns false; everything
    /// else defaults to true.
    fn enabled(&self) -> bool {
        true
    }

    /// A phase began.
    fn span_open(&mut self, phase: Phase);

    /// The most recently opened phase ended after `dur_ns` monotonic
    /// nanoseconds.  Spans close strictly LIFO.
    fn span_close(&mut self, phase: Phase, dur_ns: u64);

    /// Advance `counter` by `delta` (deltas of 0 may be elided).
    fn counter(&mut self, counter: Counter, delta: u64);

    /// Record a point-in-time `gauge` snapshot.
    fn gauge(&mut self, gauge: Gauge, value: u64);

    /// Record a cost-attribution row (see [`Event::Attr`]).  Defaults
    /// to a no-op so existing sinks keep compiling; recording sinks
    /// override it.
    fn attr(&mut self, phase: Phase, label: &str, ns: u64, units: u64) {
        let _ = (phase, label, ns, units);
    }

    /// Record a histogram snapshot (see [`Event::Hist`]).  Defaults to
    /// a no-op, like [`Sink::attr`].
    fn hist(&mut self, hist: Hist, buckets: &[u64; HIST_BUCKETS]) {
        let _ = (hist, buckets);
    }
}

/// The default sink: discards everything at zero cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span_open(&mut self, _phase: Phase) {}

    #[inline(always)]
    fn span_close(&mut self, _phase: Phase, _dur_ns: u64) {}

    #[inline(always)]
    fn counter(&mut self, _counter: Counter, _delta: u64) {}

    #[inline(always)]
    fn gauge(&mut self, _gauge: Gauge, _value: u64) {}

    #[inline(always)]
    fn attr(&mut self, _phase: Phase, _label: &str, _ns: u64, _units: u64) {}

    #[inline(always)]
    fn hist(&mut self, _hist: Hist, _buckets: &[u64; HIST_BUCKETS]) {}
}

/// A sink that records every event in order, for tests and reports.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Vec<Event>,
    depth: u32,
}

impl CollectingSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The recorded events with durations zeroed, for determinism
    /// comparisons across runs.
    #[must_use]
    pub fn redacted_events(&self) -> Vec<Event> {
        self.events.iter().map(Event::redacted).collect()
    }

    /// Checks that spans open and close in balanced LIFO order and
    /// that recorded depths are consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn check_balanced(&self) -> Result<(), String> {
        let mut stack: Vec<Phase> = Vec::new();
        for ev in &self.events {
            match ev {
                Event::SpanOpen { phase, depth } => {
                    if *depth as usize != stack.len() {
                        return Err(format!(
                            "span {phase} opened at depth {depth}, expected {}",
                            stack.len()
                        ));
                    }
                    stack.push(*phase);
                }
                Event::SpanClose { phase, depth, .. } => match stack.pop() {
                    Some(open) if open == *phase => {
                        if *depth as usize != stack.len() {
                            return Err(format!(
                                "span {phase} closed at depth {depth}, expected {}",
                                stack.len()
                            ));
                        }
                    }
                    Some(open) => {
                        return Err(format!("span {phase} closed while {open} was open"))
                    }
                    None => return Err(format!("span {phase} closed with no span open")),
                },
                Event::Counter { .. }
                | Event::Gauge { .. }
                | Event::Attr { .. }
                | Event::Hist { .. } => {}
            }
        }
        if let Some(open) = stack.pop() {
            return Err(format!("span {open} was never closed"));
        }
        Ok(())
    }

    /// Total recorded delta for `counter`.
    #[must_use]
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Counter { counter: c, delta } if *c == counter => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// The last recorded value for `gauge`, if any.
    #[must_use]
    pub fn gauge_last(&self, gauge: Gauge) -> Option<u64> {
        self.events.iter().rev().find_map(|e| match e {
            Event::Gauge { gauge: g, value } if *g == gauge => Some(*value),
            _ => None,
        })
    }

    /// Summed close durations for `phase` (nanoseconds).
    #[must_use]
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::SpanClose { phase: p, dur_ns, .. } if *p == phase => Some(*dur_ns),
                _ => None,
            })
            .sum()
    }

    /// Summed attributed nanoseconds for `phase` across all
    /// [`Event::Attr`] rows.
    #[must_use]
    pub fn attr_ns(&self, phase: Phase) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Attr { phase: p, ns, .. } if *p == phase => Some(*ns),
                _ => None,
            })
            .sum()
    }
}

impl Sink for CollectingSink {
    fn span_open(&mut self, phase: Phase) {
        self.events.push(Event::SpanOpen { phase, depth: self.depth });
        self.depth += 1;
    }

    fn span_close(&mut self, phase: Phase, dur_ns: u64) {
        self.depth = self.depth.saturating_sub(1);
        self.events.push(Event::SpanClose { phase, depth: self.depth, dur_ns });
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        if delta > 0 {
            self.events.push(Event::Counter { counter, delta });
        }
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        self.events.push(Event::Gauge { gauge, value });
    }

    fn attr(&mut self, phase: Phase, label: &str, ns: u64, units: u64) {
        self.events.push(Event::Attr { phase, label: label.to_string(), ns, units });
    }

    fn hist(&mut self, hist: Hist, buckets: &[u64; HIST_BUCKETS]) {
        self.events.push(Event::Hist { hist, buckets: Box::new(*buckets) });
    }
}

/// A sink that writes one JSON object per line to any [`Write`].
///
/// The schema is flat and stable (see [`jsonl`]):
///
/// ```json
/// {"type":"span_open","phase":"specialize","depth":1}
/// {"type":"span_close","phase":"specialize","depth":1,"dur_ns":12345}
/// {"type":"counter","name":"memo_hits","delta":17}
/// {"type":"gauge","name":"fuel_used","value":500000000}
/// {"type":"attr","phase":"specialize","label":"sl-eval-$3","ns":41000,"units":212}
/// {"type":"hist","name":"serve_hit_ns","count":12,"buckets":[0,0,3,...]}
/// ```
///
/// Write errors are sticky: the first one is kept and later events
/// are dropped, so instrumented engines never see I/O failures.
pub struct JsonlSink<W: Write> {
    out: W,
    depth: u32,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out, depth: 0, error: None }
    }

    /// Unwraps the writer, returning the first write error if any
    /// event was lost.
    ///
    /// # Errors
    ///
    /// The first sticky I/O error.
    pub fn finish(self) -> Result<W, std::io::Error> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }

    fn line(&mut self, s: &str) {
        if self.error.is_none() {
            if let Err(e) = writeln!(self.out, "{s}") {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn span_open(&mut self, phase: Phase) {
        let d = self.depth;
        self.line(&format!(
            "{{\"type\":\"span_open\",\"phase\":\"{}\",\"depth\":{d}}}",
            phase.name()
        ));
        self.depth += 1;
    }

    fn span_close(&mut self, phase: Phase, dur_ns: u64) {
        self.depth = self.depth.saturating_sub(1);
        let d = self.depth;
        self.line(&format!(
            "{{\"type\":\"span_close\",\"phase\":\"{}\",\"depth\":{d},\"dur_ns\":{dur_ns}}}",
            phase.name()
        ));
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        if delta > 0 {
            self.line(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
                counter.name()
            ));
        }
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        self.line(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            gauge.name()
        ));
    }

    fn attr(&mut self, phase: Phase, label: &str, ns: u64, units: u64) {
        self.line(&format!(
            "{{\"type\":\"attr\",\"phase\":\"{}\",\"label\":\"{}\",\"ns\":{ns},\"units\":{units}}}",
            phase.name(),
            escape_json(label)
        ));
    }

    fn hist(&mut self, hist: Hist, buckets: &[u64; HIST_BUCKETS]) {
        let count: u64 = buckets.iter().sum();
        let mut body = String::with_capacity(HIST_BUCKETS * 3);
        for (i, b) in buckets.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&b.to_string());
        }
        self.line(&format!(
            "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{count},\"buckets\":[{body}]}}",
            hist.name()
        ));
    }
}

/// Escapes `"` and `\` for embedding in a JSON string — the only
/// escapes the flat schema (and its validator) supports.
fn escape_json(s: &str) -> String {
    if !s.contains(['"', '\\']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// A pass-through sink that also accumulates per-phase durations,
/// counter totals, and last gauge values — the data behind
/// `CompileReport`.
pub struct Aggregator<'a> {
    inner: &'a mut dyn Sink,
    phases: Vec<(Phase, u64)>,
    counters: Vec<(Counter, u64)>,
    gauges: Vec<(Gauge, u64)>,
}

impl<'a> Aggregator<'a> {
    /// Wraps `inner`; every event is forwarded and aggregated.
    pub fn new(inner: &'a mut dyn Sink) -> Aggregator<'a> {
        Aggregator { inner, phases: Vec::new(), counters: Vec::new(), gauges: Vec::new() }
    }

    /// Per-phase summed durations (ns), in first-close order.
    #[must_use]
    pub fn phases(&self) -> &[(Phase, u64)] {
        &self.phases
    }

    /// Counter totals, in first-emission order.
    #[must_use]
    pub fn counters(&self) -> &[(Counter, u64)] {
        &self.counters
    }

    /// Last-seen gauge values, in first-emission order.
    #[must_use]
    pub fn gauges(&self) -> &[(Gauge, u64)] {
        &self.gauges
    }

    /// Consumes the aggregator, returning (phases, counters, gauges).
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (Vec<(Phase, u64)>, Vec<(Counter, u64)>, Vec<(Gauge, u64)>) {
        (self.phases, self.counters, self.gauges)
    }
}

impl Sink for Aggregator<'_> {
    fn enabled(&self) -> bool {
        true
    }

    fn span_open(&mut self, phase: Phase) {
        self.inner.span_open(phase);
    }

    fn span_close(&mut self, phase: Phase, dur_ns: u64) {
        match self.phases.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, ns)) => *ns += dur_ns,
            None => self.phases.push((phase, dur_ns)),
        }
        self.inner.span_close(phase, dur_ns);
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        if delta > 0 {
            match self.counters.iter_mut().find(|(c, _)| *c == counter) {
                Some((_, n)) => *n += delta,
                None => self.counters.push((counter, delta)),
            }
        }
        self.inner.counter(counter, delta);
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        match self.gauges.iter_mut().find(|(g, _)| *g == gauge) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((gauge, value)),
        }
        self.inner.gauge(gauge, value);
    }

    fn attr(&mut self, phase: Phase, label: &str, ns: u64, units: u64) {
        self.inner.attr(phase, label, ns, units);
    }

    fn hist(&mut self, hist: Hist, buckets: &[u64; HIST_BUCKETS]) {
        self.inner.hist(hist, buckets);
    }
}

/// A cloneable, thread-safe handle to one shared [`Sink`].
///
/// The compile service runs one pipeline per worker thread but reports
/// into a single stream; wrapping the stream's sink in a `SharedSink`
/// makes every event delivery atomic.  For [`JsonlSink`] specifically,
/// each event is written as one complete line *inside* the lock, so
/// concurrent workers can never interleave bytes mid-line.
///
/// Events from different workers still interleave at event granularity,
/// which would break span/depth validation if workers opened spans
/// directly on the shared stream.  Workers should instead record each
/// request into a private [`CollectingSink`] and publish the finished
/// group atomically with [`SharedSink::append`] — the published stream
/// is then a sequence of balanced per-request groups, exactly what the
/// [`jsonl`] validator accepts.
pub struct SharedSink<S: Sink>(std::sync::Arc<std::sync::Mutex<S>>);

impl<S: Sink> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(std::sync::Arc::clone(&self.0))
    }
}

impl<S: Sink> SharedSink<S> {
    /// Wraps `sink` for shared use.
    pub fn new(sink: S) -> SharedSink<S> {
        SharedSink(std::sync::Arc::new(std::sync::Mutex::new(sink)))
    }

    /// Publishes a batch of events under one lock acquisition, so the
    /// whole group lands contiguously in the shared stream.
    pub fn append(&self, events: &[Event]) {
        if let Ok(mut guard) = self.0.lock() {
            replay(&mut *guard, events);
        }
    }

    /// Runs `f` with exclusive access to the wrapped sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> Option<R> {
        self.0.lock().ok().map(|mut guard| f(&mut *guard))
    }

    /// Unwraps the sink if this is the last handle.
    pub fn try_unwrap(self) -> Option<S> {
        std::sync::Arc::try_unwrap(self.0).ok().and_then(|m| m.into_inner().ok())
    }
}

impl<S: Sink> Sink for SharedSink<S> {
    fn enabled(&self) -> bool {
        self.0.lock().map(|g| g.enabled()).unwrap_or(false)
    }

    fn span_open(&mut self, phase: Phase) {
        if let Ok(mut g) = self.0.lock() {
            g.span_open(phase);
        }
    }

    fn span_close(&mut self, phase: Phase, dur_ns: u64) {
        if let Ok(mut g) = self.0.lock() {
            g.span_close(phase, dur_ns);
        }
    }

    fn counter(&mut self, counter: Counter, delta: u64) {
        if let Ok(mut g) = self.0.lock() {
            g.counter(counter, delta);
        }
    }

    fn gauge(&mut self, gauge: Gauge, value: u64) {
        if let Ok(mut g) = self.0.lock() {
            g.gauge(gauge, value);
        }
    }

    fn attr(&mut self, phase: Phase, label: &str, ns: u64, units: u64) {
        if let Ok(mut g) = self.0.lock() {
            g.attr(phase, label, ns, units);
        }
    }

    fn hist(&mut self, hist: Hist, buckets: &[u64; HIST_BUCKETS]) {
        if let Ok(mut g) = self.0.lock() {
            g.hist(hist, buckets);
        }
    }
}

/// Replays recorded events into another sink, preserving order.  The
/// span timings are already measured, so close events carry their
/// recorded durations through unchanged.
pub fn replay(sink: &mut dyn Sink, events: &[Event]) {
    for ev in events {
        match ev {
            Event::SpanOpen { phase, .. } => sink.span_open(*phase),
            Event::SpanClose { phase, dur_ns, .. } => sink.span_close(*phase, *dur_ns),
            Event::Counter { counter, delta } => sink.counter(*counter, *delta),
            Event::Gauge { gauge, value } => sink.gauge(*gauge, *value),
            Event::Attr { phase, label, ns, units } => {
                sink.attr(*phase, label, *ns, *units);
            }
            Event::Hist { hist, buckets } => sink.hist(*hist, buckets),
        }
    }
}

/// An open span: holds the phase and its start instant.  Create with
/// [`begin`], finish with [`end`].  Dropping a timer without calling
/// [`end`] leaves the span unclosed — pair them along every path.
#[derive(Debug)]
pub struct SpanTimer {
    phase: Phase,
    start: Option<Instant>,
}

/// Opens a span for `phase` on `sink` and starts the clock.
///
/// When the sink is disabled this is a no-op returning an inert timer,
/// so the monotonic clock is never read on the NullSink path.
pub fn begin(sink: &mut dyn Sink, phase: Phase) -> SpanTimer {
    if !sink.enabled() {
        return SpanTimer { phase, start: None };
    }
    sink.span_open(phase);
    SpanTimer { phase, start: Some(Instant::now()) }
}

/// Closes the span opened by [`begin`], reporting its duration.
pub fn end(sink: &mut dyn Sink, timer: SpanTimer) {
    if let Some(start) = timer.start {
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        sink.span_close(timer.phase, dur);
    }
}

/// Emits the three governor gauges from raw meter readings — the
/// shared "metrics snapshot at trap time" helper for every engine.
pub fn trap_gauges(sink: &mut dyn Sink, fuel_used: u64, heap_used: u64, call_depth: u64) {
    if sink.enabled() {
        sink.gauge(Gauge::FuelUsed, fuel_used);
        sink.gauge(Gauge::HeapUsed, heap_used);
        sink.gauge(Gauge::CallDepth, call_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        let t = begin(&mut s, Phase::Specialize);
        assert!(t.start.is_none());
        end(&mut s, t);
    }

    #[test]
    fn collecting_sink_tracks_depth_and_balance() {
        let mut s = CollectingSink::new();
        let outer = begin(&mut s, Phase::Specialize);
        let inner = begin(&mut s, Phase::Post);
        s.counter(Counter::MemoHits, 3);
        end(&mut s, inner);
        end(&mut s, outer);
        assert!(s.check_balanced().is_ok());
        assert_eq!(s.counter_total(Counter::MemoHits), 3);
        assert_eq!(
            s.events()[0],
            Event::SpanOpen { phase: Phase::Specialize, depth: 0 }
        );
        assert_eq!(s.events()[1], Event::SpanOpen { phase: Phase::Post, depth: 1 });
        match s.events()[2] {
            Event::Counter { counter: Counter::MemoHits, delta: 3 } => {}
            ref e => panic!("unexpected event {e:?}"),
        }
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let mut s = CollectingSink::new();
        s.span_open(Phase::Read);
        assert!(s.check_balanced().is_err());
        s.span_close(Phase::Parse, 1);
        assert!(s.check_balanced().is_err());
    }

    #[test]
    fn zero_deltas_are_elided() {
        let mut s = CollectingSink::new();
        s.counter(Counter::UnfoldSteps, 0);
        assert!(s.events().is_empty());
    }

    #[test]
    fn redaction_zeroes_durations_only() {
        let ev = Event::SpanClose { phase: Phase::Cfa, depth: 2, dur_ns: 99 };
        assert_eq!(
            ev.redacted(),
            Event::SpanClose { phase: Phase::Cfa, depth: 2, dur_ns: 0 }
        );
        let c = Event::Counter { counter: Counter::VmSteps, delta: 5 };
        assert_eq!(c.redacted(), c);
    }

    #[test]
    fn jsonl_sink_emits_stable_lines() {
        let mut s = JsonlSink::new(Vec::new());
        let t = begin(&mut s, Phase::Bta);
        s.counter(Counter::MemoLookups, 7);
        s.gauge(Gauge::HeapUsed, 42);
        end(&mut s, t);
        let buf = s.finish().expect("no I/O error on Vec");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"type\":\"span_open\",\"phase\":\"bta\",\"depth\":0}");
        assert_eq!(lines[1], "{\"type\":\"counter\",\"name\":\"memo_lookups\",\"delta\":7}");
        assert_eq!(lines[2], "{\"type\":\"gauge\",\"name\":\"heap_used\",\"value\":42}");
        assert!(lines[3].starts_with("{\"type\":\"span_close\",\"phase\":\"bta\",\"depth\":0,\"dur_ns\":"));
    }

    #[test]
    fn aggregator_sums_and_forwards() {
        let mut under = CollectingSink::new();
        let mut agg = Aggregator::new(&mut under);
        let t = begin(&mut agg, Phase::Specialize);
        agg.counter(Counter::UnfoldSteps, 2);
        agg.counter(Counter::UnfoldSteps, 3);
        agg.gauge(Gauge::FuelUsed, 10);
        agg.gauge(Gauge::FuelUsed, 20);
        end(&mut agg, t);
        assert_eq!(agg.counters(), &[(Counter::UnfoldSteps, 5)]);
        assert_eq!(agg.gauges(), &[(Gauge::FuelUsed, 20)]);
        assert_eq!(agg.phases().len(), 1);
        assert_eq!(agg.phases()[0].0, Phase::Specialize);
        drop(agg);
        assert!(under.check_balanced().is_ok());
        assert_eq!(under.counter_total(Counter::UnfoldSteps), 5);
    }

    #[test]
    fn shared_sink_appends_groups_atomically() {
        let shared = SharedSink::new(CollectingSink::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut local = CollectingSink::new();
                    let t = begin(&mut local, Phase::Serve);
                    local.counter(Counter::CacheMisses, 1);
                    local.counter(Counter::ServeRequests, i + 1);
                    end(&mut local, t);
                    shared.append(local.events());
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let collected = shared.try_unwrap().expect("last handle");
        // Each group was published atomically, so the merged stream is
        // a sequence of balanced spans, never a cross-worker interleave.
        assert!(collected.check_balanced().is_ok());
        assert_eq!(collected.counter_total(Counter::CacheMisses), 4);
        assert_eq!(collected.counter_total(Counter::ServeRequests), 1 + 2 + 3 + 4);
    }

    #[test]
    fn shared_jsonl_lines_never_tear() {
        // Many workers hammering one JSONL stream: every line of the
        // result must still parse and validate in isolation (the
        // "concurrent reports don't interleave mid-line" guarantee).
        let shared = SharedSink::new(JsonlSink::new(Vec::new()));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let mut local = CollectingSink::new();
                        let t = begin(&mut local, Phase::Serve);
                        local.counter(Counter::CacheHits, 2);
                        end(&mut local, t);
                        shared.append(local.events());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let jsonl = shared.try_unwrap().expect("last handle");
        let buf = jsonl.finish().expect("no I/O error");
        let text = String::from_utf8(buf).expect("utf8 stream");
        let sum = jsonl::validate(&text).expect("stream validates");
        assert_eq!(sum.spans_opened, 8 * 50);
        assert_eq!(sum.counter("cache_hits"), 8 * 50 * 2);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.name()), "duplicate phase name {}", p.name());
        }
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate counter name {}", c.name());
        }
        for g in Gauge::ALL {
            assert!(seen.insert(g.name()), "duplicate gauge name {}", g.name());
        }
        for h in Hist::ALL {
            assert!(seen.insert(h.name()), "duplicate hist name {}", h.name());
        }
    }

    #[test]
    fn attr_and_hist_round_trip_through_sinks() {
        let mut s = CollectingSink::new();
        s.attr(Phase::Specialize, "sl-eval-$3", 41_000, 212);
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets[2] = 3;
        buckets[10] = 9;
        s.hist(Hist::ServeHitNs, &buckets);
        assert_eq!(s.attr_ns(Phase::Specialize), 41_000);
        assert_eq!(
            s.events()[0],
            Event::Attr {
                phase: Phase::Specialize,
                label: "sl-eval-$3".to_string(),
                ns: 41_000,
                units: 212
            }
        );
        // Redaction keeps labels and units, zeroes wall time.
        match s.events()[0].redacted() {
            Event::Attr { ns: 0, units: 212, .. } => {}
            ref e => panic!("unexpected redaction {e:?}"),
        }
        // Replay into a JSONL sink produces schema-valid lines.
        let mut j = JsonlSink::new(Vec::new());
        replay(&mut j, s.events());
        let text = String::from_utf8(j.finish().expect("vec")).expect("utf8");
        assert!(text.contains("\"type\":\"attr\""), "{text}");
        assert!(text.contains("\"type\":\"hist\""), "{text}");
        assert!(text.contains("\"count\":12"), "{text}");
        jsonl::validate(&text).expect("attr/hist lines validate");
    }
}
