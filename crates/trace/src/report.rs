//! Human-readable rendering of a collected trace — the body of the
//! `pe-explain` report.

use crate::{Counter, Event, Gauge, Phase};

/// Renders a recorded event stream as an indented per-phase timing
/// table followed by counter totals and gauge snapshots.
///
/// Span rows appear in close order (a parent closes after its
/// children) but are printed in *open* order with nesting shown by
/// indentation, so the report reads like the pipeline runs.
#[must_use]
pub fn render(events: &[Event]) -> String {
    let mut out = String::new();
    render_into(&mut out, events);
    out
}

fn render_into(out: &mut String, events: &[Event]) {
    // Pair each open with its close duration by replaying the stack.
    let mut rows: Vec<(Phase, u32, Option<u64>)> = Vec::new();
    let mut open: Vec<usize> = Vec::new();
    for ev in events {
        match ev {
            Event::SpanOpen { phase, depth } => {
                rows.push((*phase, *depth, None));
                open.push(rows.len() - 1);
            }
            Event::SpanClose { dur_ns, .. } => {
                if let Some(i) = open.pop() {
                    rows[i].2 = Some(*dur_ns);
                }
            }
            _ => {}
        }
    }
    if !rows.is_empty() {
        let total: u64 = rows
            .iter()
            .filter(|(_, depth, _)| *depth == 0)
            .map(|(_, _, ns)| ns.unwrap_or(0))
            .sum();
        out.push_str("phase                         ms      % of total\n");
        for (phase, depth, ns) in &rows {
            let ns = ns.unwrap_or(0);
            let ms = ns as f64 / 1e6;
            let pct = if total > 0 { ns as f64 * 100.0 / total as f64 } else { 0.0 };
            let indent = "  ".repeat(*depth as usize);
            let name = format!("{indent}{phase}");
            out.push_str(&format!("  {name:<22} {ms:>10.3} {pct:>9.1}%\n"));
        }
        out.push_str(&format!(
            "  {:<22} {:>10.3}\n",
            "total (top-level)",
            total as f64 / 1e6
        ));
    }

    let mut counters: Vec<(Counter, u64)> = Vec::new();
    let mut gauges: Vec<(Gauge, u64)> = Vec::new();
    for ev in events {
        match ev {
            Event::Counter { counter, delta } => {
                match counters.iter_mut().find(|(c, _)| c == counter) {
                    Some((_, n)) => *n += delta,
                    None => counters.push((*counter, *delta)),
                }
            }
            Event::Gauge { gauge, value } => {
                match gauges.iter_mut().find(|(g, _)| g == gauge) {
                    Some((_, v)) => *v = *value,
                    None => gauges.push((*gauge, *value)),
                }
            }
            _ => {}
        }
    }
    if !counters.is_empty() {
        out.push_str("counters\n");
        // Report in the published Counter::ALL order, not emission
        // order, so reports for different benchmarks line up.
        for c in Counter::ALL {
            if let Some((_, n)) = counters.iter().find(|(k, _)| *k == c) {
                out.push_str(&format!("  {:<22} {n:>10}\n", c.name()));
            }
        }
    }
    if !gauges.is_empty() {
        out.push_str("gauges (at trap)\n");
        for g in Gauge::ALL {
            if let Some((_, v)) = gauges.iter().find(|(k, _)| *k == g) {
                out.push_str(&format!("  {:<22} {v:>10}\n", g.name()));
            }
        }
    }

    // Attribution rows, grouped by phase in Phase::ALL order, top 5
    // per phase by attributed time (then units, then label).
    let mut attrs: Vec<(Phase, &str, u64, u64)> = Vec::new();
    for ev in events {
        if let Event::Attr { phase, label, ns, units } = ev {
            attrs.push((*phase, label.as_str(), *ns, *units));
        }
    }
    if !attrs.is_empty() {
        out.push_str("attribution (top 5 per phase)\n");
        for p in Phase::ALL {
            let mut rows: Vec<_> =
                attrs.iter().filter(|(ph, ..)| *ph == p).collect();
            if rows.is_empty() {
                continue;
            }
            rows.sort_by(|a, b| {
                b.2.cmp(&a.2).then(b.3.cmp(&a.3)).then(a.1.cmp(b.1))
            });
            for (_, label, ns, units) in rows.into_iter().take(5) {
                out.push_str(&format!(
                    "  {:<12} {label:<28} {:>9.3}ms {units:>8} units\n",
                    p.name(),
                    *ns as f64 / 1e6
                ));
            }
        }
    }

    for ev in events {
        if let Event::Hist { hist, buckets } = ev {
            let count: u64 = buckets.iter().sum();
            out.push_str(&format!("hist {:<22} count {count}\n", hist.name()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectingSink, Sink};

    #[test]
    fn renders_nested_spans_and_counters() {
        let mut s = CollectingSink::new();
        s.span_open(Phase::Specialize);
        s.span_open(Phase::Post);
        s.span_close(Phase::Post, 1_000_000);
        s.span_close(Phase::Specialize, 4_000_000);
        s.counter(Counter::MemoHits, 9);
        s.gauge(Gauge::FuelUsed, 77);
        let text = render(s.events());
        assert!(text.contains("specialize"), "{text}");
        assert!(text.contains("  post"), "missing indented child:\n{text}");
        assert!(text.contains("memo_hits"), "{text}");
        assert!(text.contains("fuel_used"), "{text}");
        assert!(text.contains("total (top-level)"), "{text}");
    }

    #[test]
    fn empty_stream_renders_empty() {
        assert_eq!(render(&[]), "");
    }
}
