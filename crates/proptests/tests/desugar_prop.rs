//! Property tests for the desugarer: output always conforms to the
//! Fig. 5 grammar, free variables are preserved, and unparse→parse of
//! the surface program is the identity.

use pe_frontend::dast::{DProgram, SimpleExpr, TailExpr};
use pe_frontend::{desugar, parse_source};
use proptest::prelude::*;

/// A tiny expression generator for one-parameter programs.
fn arb_body() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        (-50i64..50).prop_map(|n| n.to_string()),
        Just("'sym".to_string()),
        Just("#t".to_string()),
        Just("'()".to_string()),
    ];
    leaf.prop_recursive(4, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(cons {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(+ {a} {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("(if {c} {t} {f})")),
            inner.clone().prop_map(|a| format!("(f {a})")),
            (inner.clone(), inner.clone()).prop_map(|(r, b)| format!("(let ((y {r})) {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(b, a)| format!("((lambda (z) {b}) {a})")),
            inner.prop_map(|a| format!("(car (cons {a} '()))")),
        ]
    })
}

/// The Fig. 5 grammar check: conditions, call arguments and contexts are
/// simple; lambdas are hoisted; `let` is gone.
fn assert_tail_form(p: &DProgram, te: &TailExpr) {
    match te {
        TailExpr::Simple(se) => assert_simple(p, se),
        TailExpr::If(_, c, t, e) => {
            assert_simple(p, c);
            assert_tail_form(p, t);
            assert_tail_form(p, e);
        }
        TailExpr::CallProc(_, _, args) => args.iter().for_each(|a| assert_simple(p, a)),
        TailExpr::PushApp(_, ctx, body) => {
            assert_simple(p, ctx);
            assert_tail_form(p, body);
        }
    }
}

fn assert_simple(p: &DProgram, se: &SimpleExpr) {
    match se {
        SimpleExpr::Var(_, _) | SimpleExpr::Const(_, _) => {}
        SimpleExpr::Prim(_, _, args) => args.iter().for_each(|a| assert_simple(p, a)),
        SimpleExpr::Lambda(_, id) => assert_tail_form(p, &p.lambda(*id).body),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn desugared_output_is_grammar_conformant(body in arb_body()) {
        let src = format!("(define (main x) {body}) (define (f w) w)");
        let p = parse_source(&src).expect("generated program parses");
        let d = desugar(&p).expect("desugars");
        for def in &d.defs {
            assert_tail_form(&d, &def.body);
        }
        // Every lambda's freevar list is sorted and excludes the param.
        for lam in &d.lambdas {
            prop_assert!(lam.freevars.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!lam.freevars.contains(&lam.param));
        }
    }

    #[test]
    fn unparse_parse_identity(body in arb_body()) {
        let src = format!("(define (main x) {body}) (define (f w) w)");
        let p = parse_source(&src).expect("parses");
        let again = parse_source(&p.to_source()).expect("unparse reparses");
        // Structural equality up to labels: compare unparsed text.
        prop_assert_eq!(p.to_source(), again.to_source());
    }

    #[test]
    fn desugaring_preserves_semantics(body in arb_body(), x in -20i64..20) {
        use pe_interp::{standard, tail, Datum, Limits};
        let src = format!("(define (main x) {body}) (define (f w) w)");
        let p = parse_source(&src).expect("parses");
        let d = desugar(&p).expect("desugars");
        let args = [Datum::Int(x)];
        let lim = Limits::builder().with_fuel(1_000_000).build();
        let direct = standard::run(&p, "main", &args, lim);
        let tailed = tail::run(&d, "main", &args, lim);
        match (&direct, &tailed) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // Both fault (possibly with different dynamic errors, since
            // desugaring may reorder which error surfaces).
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergence: {a:?} vs {b:?}"),
        }
    }
}
