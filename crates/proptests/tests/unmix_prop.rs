//! Property tests for the Unmix clone: for random first-order programs
//! and a random static/dynamic division of the entry's arguments, the
//! residual program applied to the dynamic arguments computes what the
//! source computes on all arguments.

use pe_frontend::parse_source;
use pe_interp::{standard, Datum, Limits};
use pe_unmix::{specialize, UnmixOptions};
use proptest::prelude::*;

/// First-order bodies over `a` (number), `b` (number) and `l` (list),
/// with structural recursion through `walk` — always terminating.
fn arb_body() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("l".to_string()),
        (-9i64..10).prop_map(|n| n.to_string()),
        Just("'()".to_string()),
    ];
    leaf.prop_recursive(4, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("(+ {x} {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("(- {x} {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("(cons {x} {y})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("(if (null? {c}) {t} {f})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("(if (< {c} 0) {t} {f})")),
            inner.clone().prop_map(|x| format!("(walk {x})")),
            inner.clone().prop_map(|x| format!("(if (pair? {x}) (car {x}) {x})")),
            (inner.clone(), inner.clone()).prop_map(|(r, bd)| format!("(let ((m {r})) {bd})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn residual_computes_the_source_function(
        body in arb_body(),
        a in -20i64..20,
        b in -20i64..20,
        l in proptest::collection::vec(-5i64..5, 0..4),
        a_static in any::<bool>(),
        b_static in any::<bool>(),
    ) {
        let src = format!(
            "(define (main a b l) {body})
             (define (walk v) (if (pair? v) (walk (cdr v)) v))"
        );
        let p = parse_source(&src).expect("parses");
        let ldat = Datum::parse(&format!(
            "({})",
            l.iter().map(i64::to_string).collect::<Vec<_>>().join(" ")
        )).unwrap();
        let lim = Limits::builder().with_fuel(500_000).build();
        let all_args = [Datum::Int(a), Datum::Int(b), ldat.clone()];
        let reference = standard::run(&p, "main", &all_args, lim);

        // The list stays dynamic (it drives `walk`); numbers split
        // randomly between static and dynamic.
        let slots = vec![
            a_static.then(|| Datum::Int(a)),
            b_static.then(|| Datum::Int(b)),
            None,
        ];
        let residual = specialize(&p, "main", &slots, &UnmixOptions::default());
        let residual = match residual {
            Ok(r) => r,
            // A static fault aborts specialization (classic Mix) — the
            // faulting expression may sit on a dynamically dead path, so
            // nothing can be concluded about the reference run.
            Err(pe_unmix::UnmixError::StaticError(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("specialize: {e}"))),
        };
        let dyn_args: Vec<Datum> = [
            (!a_static).then(|| Datum::Int(a)),
            (!b_static).then(|| Datum::Int(b)),
            Some(ldat),
        ]
        .into_iter()
        .flatten()
        .collect();
        let via = standard::run(&residual, "main-$1", &dyn_args, lim);
        match (&reference, &via) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "{}", residual.to_source()),
            // Residual code may be more defined (dead faulting code can
            // vanish) but must never fault when the source succeeds.
            (Err(_), _) => {}
            (Ok(x), Err(e)) => prop_assert!(
                false,
                "source ok {x} but residual faulted {e}\n{}",
                residual.to_source()
            ),
        }
    }

    /// The residual program is always well-scoped: it reparses through
    /// the front end (which checks scope and arity).
    #[test]
    fn residual_is_wellformed(body in arb_body(), a_static in any::<bool>()) {
        let src = format!(
            "(define (main a b l) {body})
             (define (walk v) (if (pair? v) (walk (cdr v)) v))"
        );
        let p = parse_source(&src).expect("parses");
        let slots = vec![a_static.then(|| Datum::Int(3)), None, None];
        if let Ok(r) = specialize(&p, "main", &slots, &UnmixOptions::default()) {
            let text = r.to_source();
            prop_assert!(
                parse_source(&text).is_ok(),
                "residual does not reparse:\n{text}"
            );
        }
    }
}
