//! Property tests for the pe-flow dataflow framework: liveness is a
//! sound (and, for parameters, exact) over-approximation of syntactic
//! reads, and the flow optimizer is a semantics-preserving shrink on
//! randomly generated programs.

use pe_core::{compile, eval, CompileOptions};
use pe_flow::s0::{S0Proc, S0Program, S0Simple, S0Tail};
use pe_governor::{Fuel, Limits as GovLimits};
use pe_interp::{Datum, Limits};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Generates bodies over `x` (number) and `l` (list) — the same shape
/// as `spec_prop.rs`, giving structurally terminating programs whose
/// residuals exercise closures, dispatch, and dead code.
fn arb_body() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("l".to_string()),
        (-9i64..10).prop_map(|n| n.to_string()),
        Just("'a".to_string()),
        Just("'()".to_string()),
        Just("#f".to_string()),
    ];
    leaf.prop_recursive(4, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(cons {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(+ {a} {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("(if (null? {c}) {t} {f})")),
            inner.clone().prop_map(|a| format!("(walk {a})")),
            (inner.clone(), inner.clone()).prop_map(|(r, b)| format!("(let ((w {r})) {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(b, a)| format!("((lambda (v) {b}) {a})")),
            inner.clone().prop_map(|a| format!("(if (pair? {a}) (car {a}) {a})")),
            inner.prop_map(|a| format!("(if (pair? {a}) (cdr {a}) '())")),
        ]
    })
}

fn compile_unoptimized(body: &str) -> S0Program {
    let src = format!(
        "(define (main x l) {body})
         (define (walk v) (if (pair? v) (walk (cdr v)) v))"
    );
    let p = pe_frontend::parse_source(&src).expect("parses");
    let d = pe_frontend::desugar(&p).expect("desugars");
    // Flow disabled: the raw residual is the test subject.
    compile(&d, "main", &CompileOptions { flow: false, ..CompileOptions::default() })
        .expect("compiles")
}

/// Every variable the procedure body mentions, collected syntactically.
fn reads(q: &S0Proc) -> BTreeSet<String> {
    fn simple(s: &S0Simple, out: &mut BTreeSet<String>) {
        match s {
            S0Simple::Var(v) => {
                out.insert(v.clone());
            }
            S0Simple::Const(_) => {}
            S0Simple::Prim(_, args) | S0Simple::MakeClosure(_, args) => {
                args.iter().for_each(|a| simple(a, out));
            }
            S0Simple::ClosureLabel(a) | S0Simple::ClosureFreeval(a, _) => simple(a, out),
        }
    }
    fn walk(t: &S0Tail, out: &mut BTreeSet<String>) {
        match t {
            S0Tail::Return(s) => simple(s, out),
            S0Tail::Fail(_) => {}
            S0Tail::If(c, a, b) => {
                simple(c, out);
                walk(a, out);
                walk(b, out);
            }
            S0Tail::TailCall(_, args) => args.iter().for_each(|a| simple(a, out)),
        }
    }
    let mut out = BTreeSet::new();
    walk(&q.body, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Soundness of liveness: in S₀, parameters are the only binders
    /// and are never rebound, so a parameter is live at entry *iff* the
    /// body syntactically reads it.  A parameter the analysis declares
    /// dead must therefore never be mentioned — the direction the
    /// optimizer relies on when pruning.
    #[test]
    fn liveness_over_approximates_reads(body in arb_body()) {
        let s0 = compile_unoptimized(&body);
        let mut fuel = Fuel::new(&GovLimits::default());
        for q in &s0.procs {
            let live = pe_flow::liveness::live_at_entry(q, &mut fuel).expect("fuel");
            let read = reads(q);
            for p in &q.params {
                prop_assert_eq!(
                    live.contains(p),
                    read.contains(p),
                    "proc {} param {}: live_at_entry disagrees with syntactic reads",
                    q.name, p
                );
            }
            // Soundness proper: everything read is live somewhere, so
            // nothing the body mentions may be missing from the entry
            // set *if it is a parameter* (non-parameters cannot be live
            // at entry in well-formed S₀).
            for v in &read {
                if q.params.contains(v) {
                    prop_assert!(live.contains(v), "proc {}: read {} not live", q.name, v);
                }
            }
        }
    }

    /// Translation validation of the optimizer on random programs:
    /// optimized output verifies cleanly, never grows, and computes the
    /// same result on the S₀ evaluator for random inputs.
    #[test]
    fn optimize_preserves_meaning_and_never_grows(
        body in arb_body(),
        x in -30i64..30,
        l in proptest::collection::vec(-3i64..4, 0..4),
    ) {
        let s0 = compile_unoptimized(&body);
        let mut fuel = Fuel::new(&GovLimits::default());
        let (opt, stats) = pe_flow::optimize(s0.clone(), &mut fuel).expect("fuel");
        prop_assert!(opt.size() <= s0.size(), "grew: {} -> {}", s0.size(), opt.size());
        prop_assert!(stats.cfg_nodes > 0);
        let report = pe_verify::verify(&opt);
        prop_assert!(report.is_clean(), "{report}");

        let args = [
            Datum::Int(x),
            Datum::parse(&format!("({})", l.iter().map(i64::to_string)
                .collect::<Vec<_>>().join(" "))).unwrap(),
        ];
        let lim = Limits::builder().with_fuel(1_000_000).build();
        let base = eval::run(&s0, &args, lim);
        let flow = eval::run(&opt, &args, lim);
        match (&base, &flow) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), _) => {
                // Like specialization itself, the optimizer may delete a
                // faulting computation whose value is never observed;
                // optimized code is at least as defined as its input.
            }
            (Ok(a), Err(e)) => prop_assert!(
                false, "base ok {a} but optimized faulted {e}\n{opt}"
            ),
        }
    }

    /// The flow analyses respect the governor: a starved fuel budget
    /// traps instead of looping or returning a wrong program.
    #[test]
    fn starved_fuel_traps_cleanly(body in arb_body()) {
        let s0 = compile_unoptimized(&body);
        let mut fuel = Fuel::new(&GovLimits::builder().with_fuel(1).build());
        prop_assert!(pe_flow::optimize(s0, &mut fuel).is_err());
    }
}
