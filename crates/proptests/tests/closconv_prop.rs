//! Property test for Reynolds defunctionalization (Fig. 3 vs Fig. 4):
//! capturing the whole environment and capturing only the free
//! variables are observationally equivalent, on randomly generated
//! higher-order programs with shadowing, currying and captured state.

use pe_frontend::parse_source;
use pe_interp::{closconv, standard, Datum, Limits};
use proptest::prelude::*;

/// Generates closure-heavy bodies over a number `x`; every construct
/// terminates structurally.
fn arb_body() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        (-9i64..10).prop_map(|n| n.to_string()),
    ];
    leaf.prop_recursive(5, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(+ {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(* {a} {b})")),
            // Application of a unary lambda (fresh binder name x —
            // deliberate shadowing).
            (inner.clone(), inner.clone())
                .prop_map(|(b, a)| format!("((lambda (x) {b}) {a})")),
            // Curried two-argument function.
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(b, a1, a2)| {
                format!("(((lambda (u) (lambda (w) {b})) {a1}) {a2})")
            }),
            // A let capturing a closure.
            (inner.clone(), inner.clone()).prop_map(|(b, a)| {
                format!("(let ((k (lambda (y) (+ y {a})))) (k {b}))")
            }),
            // Conditional on a computed number.
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("(if (< {c} 0) {t} {f})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    #[test]
    fn defunctionalization_is_observationally_equivalent(
        body in arb_body(),
        x in -50i64..50,
    ) {
        let src = format!("(define (main x) {body})");
        let p = parse_source(&src).expect("generated program parses");
        let lim = Limits::builder().with_fuel(500_000).build();
        let a = standard::run(&p, "main", &[Datum::Int(x)], lim);
        let b = closconv::run(&p, "main", &[Datum::Int(x)], lim);
        match (&a, &b) {
            (Ok(va), Ok(vb)) => prop_assert_eq!(va, vb),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergence: {a:?} vs {b:?}\n{src}"),
        }
    }
}
