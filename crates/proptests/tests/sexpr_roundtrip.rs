//! Property tests: printing and re-reading any S-expression is the
//! identity, for both the flat printer and the pretty printer.

use pe_sexpr::{pretty_width, read, read_one, Sexpr};
use proptest::prelude::*;

fn arb_sexpr() -> impl Strategy<Value = Sexpr> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Sexpr::Int),
        any::<bool>().prop_map(Sexpr::Bool),
        // Symbols: initial char that cannot start a number.
        "[a-zA-Z!?*+<=>_-][a-zA-Z0-9!?*+<=>_-]{0,8}".prop_filter_map(
            "not-an-integer-looking symbol",
            |s| {
                let body = s.strip_prefix(['-', '+']).unwrap_or(&s);
                if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
                    None
                } else {
                    Some(Sexpr::Sym(s.into()))
                }
            }
        ),
        // Strings over printable ASCII (reader unescapes exactly these).
        "[ -~]{0,12}".prop_map(|s| Sexpr::Str(s.into())),
        prop_oneof![
            Just(Sexpr::Char('a')),
            Just(Sexpr::Char('Z')),
            Just(Sexpr::Char('0')),
            Just(Sexpr::Char(' ')),
            Just(Sexpr::Char('\n')),
        ],
    ];
    leaf.prop_recursive(4, 32, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Sexpr::List)
    })
}

proptest! {
    #[test]
    fn print_read_roundtrip(e in arb_sexpr()) {
        let printed = e.to_string();
        let back = read_one(&printed).expect("printed form reads back");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn pretty_read_roundtrip(e in arb_sexpr(), width in 4usize..100) {
        let printed = pretty_width(&e, width);
        let back = read_one(&printed).expect("pretty form reads back");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn read_never_panics(s in "[ -~\\n]{0,64}") {
        let _ = read(&s);
    }

    #[test]
    fn multiple_expressions_concatenate(a in arb_sexpr(), b in arb_sexpr()) {
        let src = format!("{a} {b}");
        let es = read(&src).expect("reads");
        prop_assert_eq!(es, vec![a, b]);
    }
}
