//! Property tests for the size-change termination analysis: bounded
//! programs compile without any dynamic control firing, classification
//! is deterministic, and the analysis never changes a residual's
//! meaning.

use pe_core::{compile, compile_audited_with, eval, CompileOptions};
use pe_frontend::{desugar, parse_source};
use pe_interp::{tail, Datum, Limits};
use proptest::prelude::*;

/// Generates bodies over `x` (number) and `l` (list) whose only
/// recursion is `walk`'s structural descent — every program terminates
/// and every procedure is provably bounded.
fn arb_body() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("l".to_string()),
        (-9i64..10).prop_map(|n| n.to_string()),
        Just("'a".to_string()),
        Just("'()".to_string()),
        Just("#f".to_string()),
    ];
    leaf.prop_recursive(4, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(cons {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(+ {a} {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("(if (null? {c}) {t} {f})")),
            inner.clone().prop_map(|a| format!("(walk {a})")),
            (inner.clone(), inner.clone()).prop_map(|(r, b)| format!("(let ((w {r})) {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(b, a)| format!("((lambda (v) {b}) {a})")),
            inner.clone().prop_map(|a| format!("(if (pair? {a}) (car {a}) {a})")),
            inner.prop_map(|a| format!("(if (pair? {a}) (cdr {a}) '())")),
        ]
    })
}

fn program_for(body: &str) -> String {
    format!(
        "(define (main x l) {body})
         (define (walk v) (if (pair? v) (walk (cdr v)) v))"
    )
}

fn list_datum(l: &[i64]) -> Datum {
    Datum::parse(&format!(
        "({})",
        l.iter().map(i64::to_string).collect::<Vec<_>>().join(" ")
    ))
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Structurally descending programs are classified bounded on every
    /// procedure, are never rejected, and compile with *zero* dynamic
    /// control: no widening trap, no budget exhaustion, and a silent
    /// termination audit (pass 7).
    #[test]
    fn bounded_programs_compile_without_dynamic_control(body in arb_body()) {
        let src = program_for(&body);
        let p = parse_source(&src).expect("parses");
        let d = desugar(&p).expect("desugars");
        let flow = pe_frontend::flow::FlowAnalysis::analyze(&d);
        let a = pe_sct::analyze(&d, &flow, "main");
        prop_assert!(a.divergence.is_none(), "a terminating program was rejected");
        prop_assert!(
            a.verdicts.procs.iter().all(|&v| v == pe_sct::Verdict::Bounded),
            "not all bounded: {:?}",
            a.named_verdicts(&d)
        );
        let (_, audit) = compile_audited_with(
            &d,
            "main",
            &CompileOptions::default(),
            &mut pe_trace::NullSink,
        )
        .expect("compiles without a budget or divergence trap");
        let report = pe_verify::verify_audit(&audit);
        prop_assert!(
            report.is_clean() && report.warning_count() == 0,
            "the termination audit found unanticipated control:\n{report}"
        );
    }

    /// Classification is a pure function of the program: two analyses of
    /// the same source agree on every verdict, annotation, and counter.
    #[test]
    fn classification_is_deterministic(body in arb_body()) {
        let src = program_for(&body);
        let parse = || {
            let p = parse_source(&src).expect("parses");
            desugar(&p).expect("desugars")
        };
        let (d1, d2) = (parse(), parse());
        let f1 = pe_frontend::flow::FlowAnalysis::analyze(&d1);
        let f2 = pe_frontend::flow::FlowAnalysis::analyze(&d2);
        let a1 = pe_sct::analyze(&d1, &f1, "main");
        let a2 = pe_sct::analyze(&d2, &f2, "main");
        prop_assert_eq!(a1.named_verdicts(&d1), a2.named_verdicts(&d2));
        prop_assert_eq!(&a1.verdicts.exempt_vars, &a2.verdicts.exempt_vars);
        prop_assert_eq!(&a1.verdicts.eager_vars, &a2.verdicts.eager_vars);
        prop_assert_eq!(&a1.verdicts.stack_labels, &a2.verdicts.stack_labels);
        prop_assert_eq!(a1.stats.graphs, a2.stats.graphs);
        prop_assert_eq!(a1.stats.compositions, a2.stats.compositions);
    }

    /// The analysis is control, not transformation: residuals compiled
    /// with it on and off compute the same results on the VM-grade
    /// evaluator.
    #[test]
    fn residuals_agree_with_the_analysis_on_and_off(
        body in arb_body(),
        x in -30i64..30,
        l in proptest::collection::vec(-3i64..4, 0..4),
    ) {
        let src = program_for(&body);
        let p = parse_source(&src).expect("parses");
        let d = desugar(&p).expect("desugars");
        let args = [Datum::Int(x), list_datum(&l)];
        let lim = Limits::builder().with_fuel(1_000_000).build();
        let reference = tail::run(&d, "main", &args, lim);

        let s0_on = compile(&d, "main", &CompileOptions::default()).expect("compiles (on)");
        let off_opts = CompileOptions { sct: false, ..CompileOptions::default() };
        let s0_off = compile(&d, "main", &off_opts).expect("compiles (off)");
        let r_on = eval::run(&s0_on, &args, lim);
        let r_off = eval::run(&s0_off, &args, lim);
        match (&r_on, &r_off) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "the analysis changed the result"),
            // Residuals are at least as defined as the source; a fault
            // in dead code may fold away differently on the two paths,
            // but live results must agree — checked against the
            // reference run.
            _ => {
                if let Ok(want) = &reference {
                    prop_assert!(
                        false,
                        "reference {want} but on={r_on:?} off={r_off:?}"
                    );
                }
            }
        }
    }
}
