//! Property tests for the specializing compiler: compiled ≡ interpreted
//! on randomly generated programs, residual programs always pass the S₀
//! checker, and specialization to static inputs preserves meaning.

use pe_core::{compile, eval, specialize, CompileOptions, GenStrategy};
use pe_frontend::{desugar, parse_source};
use pe_interp::{tail, Datum, Limits};
use proptest::prelude::*;

/// Generates bodies over `x` (number) and `l` (list) with structural
/// recursion through `walk`, lambdas and lets — always terminating.
fn arb_body() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("l".to_string()),
        (-9i64..10).prop_map(|n| n.to_string()),
        Just("'a".to_string()),
        Just("'()".to_string()),
        Just("#f".to_string()),
    ];
    leaf.prop_recursive(4, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(cons {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(+ {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(- {a} {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("(if (null? {c}) {t} {f})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| format!("(if (< {c} 0) {t} {f})")),
            inner.clone().prop_map(|a| format!("(walk {a})")),
            (inner.clone(), inner.clone()).prop_map(|(r, b)| format!("(let ((w {r})) {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(b, a)| format!("((lambda (v) {b}) {a})")),
            inner.clone().prop_map(|a| format!("(if (pair? {a}) (car {a}) {a})")),
            inner.prop_map(|a| format!("(if (pair? {a}) (cdr {a}) '())")),
        ]
    })
}

fn program_for(body: &str) -> String {
    format!(
        "(define (main x l) {body})
         (define (walk v) (if (pair? v) (walk (cdr v)) v))"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Compiled code computes exactly what the Fig. 6 interpreter
    /// computes — value or fault — for both generalization strategies.
    #[test]
    fn compiled_equals_interpreted(
        body in arb_body(),
        x in -30i64..30,
        l in proptest::collection::vec(-3i64..4, 0..4),
    ) {
        let src = program_for(&body);
        let p = parse_source(&src).expect("parses");
        let d = desugar(&p).expect("desugars");
        let args = [
            Datum::Int(x),
            Datum::parse(&format!("({})", l.iter().map(i64::to_string)
                .collect::<Vec<_>>().join(" "))).unwrap(),
        ];
        let lim = Limits::builder().with_fuel(1_000_000).build();
        let reference = tail::run(&d, "main", &args, lim);
        for strategy in [GenStrategy::Offline, GenStrategy::Online] {
            let opts = CompileOptions { strategy, ..CompileOptions::default() };
            let s0 = compile(&d, "main", &opts).expect("compiles");
            let report = pe_verify::verify(&s0);
            prop_assert!(report.is_clean(), "{report}");
            let compiled = eval::run(&s0, &args, lim);
            match (&reference, &compiled) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{:?}", strategy),
                (Err(_), _) => {
                    // Residual code is *at least as defined* as the
                    // source: a dynamic computation whose result is never
                    // used may be discarded, so an error in dead code can
                    // disappear (standard for PE of pure languages; see
                    // DESIGN.md).  A fault in live code is preserved.
                }
                (Ok(a), Err(e)) => prop_assert!(
                    false,
                    "strategy {strategy:?}: interp ok {a} but compiled faulted {e}\n{s0}"
                ),
            }
        }
    }

    /// The first specializer projection preserves meaning: specializing
    /// to a static list argument and then supplying only the number
    /// computes the same result.
    #[test]
    fn specialization_preserves_meaning(
        body in arb_body(),
        x in -30i64..30,
        l in proptest::collection::vec(-3i64..4, 0..4),
    ) {
        let src = program_for(&body);
        let p = parse_source(&src).expect("parses");
        let d = desugar(&p).expect("desugars");
        let ldat = Datum::parse(&format!("({})", l.iter().map(i64::to_string)
            .collect::<Vec<_>>().join(" "))).unwrap();
        let lim = Limits::builder().with_fuel(1_000_000).build();
        let reference = tail::run(&d, "main", &[Datum::Int(x), ldat.clone()], lim);
        let opts = CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };
        let s0 = specialize(&d, "main", &[None, Some(ldat)], &opts).expect("specializes");
        prop_assert!(pe_verify::verify(&s0).is_clean());
        let specialized = eval::run(&s0, &[Datum::Int(x)], lim);
        match (&reference, &specialized) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            // Specialization may evaluate a faulting static expression
            // lazily (residualized) or the reference may fault on a path
            // the residual program folded away; only a success/success
            // mismatch is a bug.
            (Ok(a), Err(e)) => prop_assert!(false, "reference {a} but specialized faulted: {e}\n{s0}"),
            (Err(_), Ok(_)) => {}
        }
    }
}
