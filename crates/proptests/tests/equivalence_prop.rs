//! Property-based cross-engine equivalence: randomly generated programs
//! must evaluate identically on every engine (interpreters, compiled VM
//! with both generalization strategies, Hobbit baseline) — including
//! agreeing on *whether* evaluation faults.

use proptest::prelude::*;
use realistic_pe::{CompileOptions, Datum, GenStrategy, Limits, Pipeline};

/// A generated first-order expression over parameters `p0..p2` (numbers)
/// and `l0` (a list of numbers), with recursion through `walk`, a
/// structural loop that is always terminating.
#[derive(Debug, Clone)]
enum GenExpr {
    ParamNum(u8),
    ParamList,
    Lit(i8),
    Add(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
    If(Box<GenExpr>, Box<GenExpr>, Box<GenExpr>),
    Lt(Box<GenExpr>, Box<GenExpr>),
    Cons(Box<GenExpr>, Box<GenExpr>),
    CarOrZero(Box<GenExpr>),
    IsNull(Box<GenExpr>),
    WalkList(Box<GenExpr>),
    LetNum(Box<GenExpr>, Box<GenExpr>),
    /// A higher-order twist: ((lambda (v) body) arg).
    LamApp(Box<GenExpr>, Box<GenExpr>),
    LamVar,
}

impl GenExpr {
    fn to_src(&self) -> String {
        match self {
            GenExpr::ParamNum(i) => format!("p{}", i % 3),
            GenExpr::ParamList => "l0".to_string(),
            GenExpr::Lit(n) => format!("{n}"),
            GenExpr::Add(a, b) => format!("(+ {} {})", a.to_src(), b.to_src()),
            GenExpr::Sub(a, b) => format!("(- {} {})", a.to_src(), b.to_src()),
            GenExpr::Mul(a, b) => format!("(* {} {})", a.to_src(), b.to_src()),
            GenExpr::If(c, t, f) => {
                format!("(if {} {} {})", c.to_src(), t.to_src(), f.to_src())
            }
            GenExpr::Lt(a, b) => format!("(< {} {})", a.to_src(), b.to_src()),
            GenExpr::Cons(a, b) => format!("(cons {} {})", a.to_src(), b.to_src()),
            GenExpr::CarOrZero(a) => {
                let x = a.to_src();
                format!("(if (pair? {x}) (car {x}) 0)")
            }
            GenExpr::IsNull(a) => format!("(null? {})", a.to_src()),
            GenExpr::WalkList(a) => format!("(walk {})", a.to_src()),
            GenExpr::LetNum(rhs, body) => {
                format!("(let ((w {})) {})", rhs.to_src(), body.to_src())
            }
            GenExpr::LamApp(body, arg) => {
                format!("((lambda (v) {}) {})", body.to_src(), arg.to_src())
            }
            GenExpr::LamVar => "v".to_string(),
        }
    }
}

fn gen_expr(lam_depth: u32) -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(GenExpr::ParamNum),
        Just(GenExpr::ParamList),
        any::<i8>().prop_map(GenExpr::Lit),
        if lam_depth > 0 { Just(GenExpr::LamVar).boxed() } else { any::<i8>().prop_map(GenExpr::Lit).boxed() },
    ];
    leaf.prop_recursive(4, 24, 3, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| GenExpr::If(Box::new(c), Box::new(t), Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Cons(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| GenExpr::CarOrZero(Box::new(a))),
            inner.clone().prop_map(|a| GenExpr::IsNull(Box::new(a))),
            inner.clone().prop_map(|a| GenExpr::WalkList(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(r, b)| GenExpr::LetNum(Box::new(r), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(b, a)| GenExpr::LamApp(Box::new(b), Box::new(a))),
        ]
    })
}

fn program_for(body: &GenExpr) -> String {
    format!(
        "(define (main p0 p1 p2 l0) {})
         (define (walk l) (if (pair? l) (walk (cdr l)) l))",
        body.to_src()
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Generated programs evaluate identically on all engines — both
    /// values and fault behaviour.
    #[test]
    fn engines_agree_on_random_programs(
        body in gen_expr(0),
        p0 in -20i64..20,
        p1 in -20i64..20,
        p2 in -20i64..20,
        l0 in proptest::collection::vec(-5i64..5, 0..5),
    ) {
        let src = program_for(&body);
        let pipe = Pipeline::new(&src).expect("generated programs parse");
        let args = vec![
            Datum::Int(p0),
            Datum::Int(p1),
            Datum::Int(p2),
            Datum::parse(&format!(
                "({})",
                l0.iter().map(i64::to_string).collect::<Vec<_>>().join(" ")
            )).unwrap(),
        ];
        let lim = Limits::builder().with_fuel(2_000_000).build();
        let reference = pipe.run_standard("main", &args, lim);
        let tail = pipe.run_tail("main", &args, lim);
        let cc = pipe.run_closconv("main", &args, lim);
        let hob = pipe.compile_hobbit().unwrap().run("main", &args, lim);
        // Values must agree when evaluation succeeds; all engines agree
        // on success-vs-failure (the pure language has deterministic
        // semantics; desugaring only reorders which *error* surfaces, so
        // compare values only on success).
        match &reference {
            Ok(v) => {
                prop_assert_eq!(tail.as_ref().ok(), Some(v), "tail");
                prop_assert_eq!(cc.as_ref().ok(), Some(v), "closconv");
                prop_assert_eq!(hob.as_ref().ok(), Some(v), "hobbit");
                for strategy in [GenStrategy::Offline, GenStrategy::Online] {
                    let opts = CompileOptions { strategy, ..CompileOptions::default() };
                    let compiled = pipe.run_compiled("main", &args, &opts, lim);
                    match compiled {
                        Ok((got, _)) => prop_assert_eq!(&got, v, "compiled {:?}", strategy),
                        Err(e) => prop_assert!(false, "compiled {strategy:?} failed: {e}"),
                    }
                }
            }
            Err(_) => {
                // Reference faults ⇒ every engine faults (possibly with a
                // different error message; the language is pure).
                prop_assert!(tail.is_err(), "tail succeeded where reference faulted");
                prop_assert!(cc.is_err());
                prop_assert!(hob.is_err());
            }
        }
    }

    /// Compiled programs never produce ill-formed S₀ on random inputs —
    /// the language preservation property as a property test.
    #[test]
    fn residual_programs_always_check(body in gen_expr(0)) {
        let src = program_for(&body);
        let pipe = Pipeline::new(&src).expect("generated programs parse");
        for strategy in [GenStrategy::Offline, GenStrategy::Online] {
            let opts = CompileOptions { strategy, ..CompileOptions::default() };
            let s0 = pipe.compile("main", &opts).expect("compiles");
            prop_assert!(pe_verify::verify(&s0).is_clean());
            prop_assert!(!s0.to_source().contains("lambda"));
        }
    }
}
