//! Property tests for the pe-prof histogram: the bucket rule is
//! monotone and total, merge is associative and agrees with pooled
//! recording, and percentiles bound the exact order statistics from
//! above within one power-of-two bucket.

use pe_prof::Histogram;
use proptest::prelude::*;

/// Arbitrary latency samples spanning the full bucket range.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0u64),
            1u64..1024,
            1024u64..1_000_000,
            1_000_000u64..u64::MAX,
        ],
        0..200,
    )
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn bucketing_is_monotone_and_total(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (Histogram::bucket_of(a), Histogram::bucket_of(b));
        prop_assert!(ba < pe_trace::HIST_BUCKETS);
        prop_assert!(bb < pe_trace::HIST_BUCKETS);
        if a <= b {
            prop_assert!(ba <= bb, "bucket_of not monotone: {a}->{ba}, {b}->{bb}");
        }
        // The value lands inside its bucket's advertised bounds.
        let (lo, hi) = Histogram::bucket_bounds(ba);
        prop_assert!(lo <= a && a <= hi, "{a} outside [{lo}, {hi}] of bucket {ba}");
    }

    #[test]
    fn merge_is_associative_and_matches_pooled_recording(
        xs in arb_samples(),
        ys in arb_samples(),
        zs in arb_samples(),
    ) {
        let (hx, hy, hz) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        // (x + y) + z == x + (y + z)
        let mut left = hx.clone();
        left.merge(&hy);
        left.merge(&hz);
        let mut right_tail = hy.clone();
        right_tail.merge(&hz);
        let mut right = hx.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        // Merging equals recording the pooled samples directly.
        let mut pooled: Vec<u64> = xs.clone();
        pooled.extend(&ys);
        pooled.extend(&zs);
        prop_assert_eq!(&left, &hist_of(&pooled));
        prop_assert_eq!(left.count(), pooled.len() as u64);
    }

    #[test]
    fn percentiles_bound_exact_order_statistics(xs in arb_samples(), p in 1u8..=100) {
        let h = hist_of(&xs);
        if xs.is_empty() {
            prop_assert_eq!(h.percentile(p), 0);
            return Ok(());
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        // The exact p-th percentile (nearest-rank definition).
        let rank = ((p as usize * sorted.len()).div_ceil(100)).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let got = h.percentile(p);
        // The histogram reports the upper bound of the bucket holding
        // the exact order statistic: never an underestimate, and at
        // most one power-of-two bucket above.
        prop_assert!(got >= exact, "p{p}: {got} < exact {exact}");
        let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_of(exact));
        prop_assert!(lo <= exact && got <= hi, "p{p}: {got} beyond bucket of {exact}");
    }

    #[test]
    fn percentiles_are_monotone_in_p(xs in arb_samples(), a in 1u8..=100, b in 1u8..=100) {
        let h = hist_of(&xs);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.percentile(lo) <= h.percentile(hi));
    }
}
