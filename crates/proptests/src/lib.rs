//! Host crate for the workspace's property-test suites (see `tests/`).
//!
//! This crate is **excluded** from the main workspace so that the
//! library crates resolve and build with no registry access; `proptest`
//! is only required when testing from this directory.
