//! Automatic reproducer minimization.
//!
//! Given a case with a finding and a predicate that re-checks the
//! finding, the shrinker applies structural reductions — drop a whole
//! definition, collapse a subtree to an atom, prune oversized
//! literals — keeping each reduction only if the finding survives.
//! Classic greedy delta debugging over the S-expression tree; the
//! budget caps total predicate evaluations, since each one re-runs the
//! whole engine family.

use crate::gen::{expr_paths, node_at, render};
use crate::Case;
use pe_sexpr::Sexpr;

/// Shrinks `case` while `still_fails` holds, spending at most `budget`
/// predicate calls.  Returns the smallest failing case found and the
/// number of *accepted* reductions (reported as `siege_shrink_steps`).
pub fn shrink(
    case: &Case,
    still_fails: impl Fn(&Case) -> bool,
    budget: usize,
) -> (Case, u64) {
    let mut best = case.clone();
    let mut accepted = 0u64;
    let mut spent = 0usize;

    loop {
        let Ok(defs) = pe_sexpr::read(&best.source) else {
            // Textual mutants (truncation) are not tree-shrinkable.
            return (best, accepted);
        };
        let mut improved = false;
        for candidate in candidates(&defs, &best.entry) {
            if spent >= budget {
                return (best, accepted);
            }
            let next = Case { source: candidate, ..best.clone() };
            if next.source.len() >= best.source.len() {
                continue;
            }
            spent += 1;
            if still_fails(&next) {
                best = next;
                accepted += 1;
                improved = true;
                break; // restart from the reduced program
            }
        }
        if !improved {
            return (best, accepted);
        }
    }
}

/// Candidate reductions, biggest first: whole definitions, then large
/// subtrees replaced by atoms, then literal pruning.
fn candidates(defs: &[Sexpr], entry: &str) -> Vec<String> {
    let mut out = Vec::new();

    // 1. Drop a non-entry definition.
    for i in 0..defs.len() {
        let is_entry = defs[i]
            .form_args("define")
            .and_then(|a| a.first())
            .and_then(Sexpr::list)
            .and_then(|h| h.first())
            .and_then(Sexpr::sym)
            == Some(entry);
        if defs.len() > 1 && !is_entry {
            let mut d = defs.to_vec();
            d.remove(i);
            out.push(render(&d));
        }
    }

    // 2. Replace subtrees by atoms, biggest subtree first.
    let mut paths = expr_paths(defs);
    paths.sort_by_key(|p| std::cmp::Reverse(subtree_size(defs, p)));
    for p in paths.iter().take(40) {
        if subtree_size(defs, p) <= 1 {
            continue;
        }
        for atom in [Sexpr::Int(0), Sexpr::list_of([Sexpr::sym_of("quote"), Sexpr::nil()])] {
            let mut d = defs.to_vec();
            if let Some(node) = node_at(&mut d, p) {
                *node = atom;
                out.push(render(&d));
            }
        }
    }

    // 3. Prune oversized literals.
    for p in &expr_paths(defs) {
        let mut d = defs.to_vec();
        if let Some(node) = node_at(&mut d, p) {
            if let Sexpr::Int(n) = node {
                if n.unsigned_abs() > 9 {
                    *node = Sexpr::Int(1);
                    out.push(render(&d));
                }
            }
        }
    }
    out
}

fn subtree_size(defs: &[Sexpr], path: &[usize]) -> usize {
    fn size(e: &Sexpr) -> usize {
        match e.list() {
            Some(xs) => 1 + xs.iter().map(size).sum::<usize>(),
            None => 1,
        }
    }
    let mut d = defs.to_vec();
    node_at(&mut d, path).map_or(0, |n| size(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_interp::Datum;

    #[test]
    fn shrinks_to_the_failing_core() {
        // Predicate: the program still contains a call to `poison`.
        // The shrinker should strip the unrelated definitions and
        // collapse the payload around the call.
        let case = Case {
            name: "shrink-me".to_string(),
            source: "(define (main n) (+ (helper n) (poison (* n (+ 2 3)))))\n\
                     (define (helper n) (* n 17))\n\
                     (define (poison x) x)\n\
                     (define (unused a) (cons a (quote ())))\n"
                .to_string(),
            entry: "main".to_string(),
            args: vec![Datum::Int(1)],
        };
        let (small, steps) = shrink(
            &case,
            |c| c.source.contains("poison") && c.source.contains("(define (main"),
            200,
        );
        assert!(steps > 0, "no reduction accepted");
        assert!(small.source.len() < case.source.len());
        assert!(small.source.contains("poison"));
        assert!(!small.source.contains("unused"), "{}", small.source);
    }

    #[test]
    fn textual_garbage_is_returned_unchanged() {
        let case = Case {
            name: "garbage".to_string(),
            source: "(define (main n".to_string(),
            entry: "main".to_string(),
            args: vec![],
        };
        let (same, steps) = shrink(&case, |_| true, 50);
        assert_eq!(same.source, case.source);
        assert_eq!(steps, 0);
    }
}
