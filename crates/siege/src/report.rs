//! The `SIEGE_pe.json` soak report.
//!
//! The report is a JSONL stream in the pe-trace schema — the same one
//! `pe-explain --json` emits and `pe_trace::jsonl::validate` checks:
//! a `run` header line, one balanced `siege` span carrying the
//! harness counters and peak gauges, then `run`-typed data rows for
//! the engine-agreement matrix, the trap census, the ladder summary
//! and any findings.  [`render`] self-validates before returning, so
//! a schema-breaking report can never be written to disk.

use crate::{SiegeConfig, Totals};
use pe_trace::{Counter, Gauge, JsonlSink, Phase, Sink};

/// Renders the validated JSONL report.
///
/// # Errors
///
/// The validator's message if the rendered stream does not conform
/// (a harness bug, not an input property).
pub fn render(totals: &Totals, cfg: &SiegeConfig, elapsed_ns: u64) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"run\",\"tool\":\"pe-siege\",\"seed\":{},\"cases\":{},\
         \"mutants\":{},\"corpus\":{},\"refused\":{},\"ladder_rungs\":{},\
         \"findings\":{}}}\n",
        cfg.seed,
        totals.cases,
        totals.mutants,
        totals.corpus_cases,
        totals.refused_cases,
        cfg.ladder_rungs,
        totals.findings.len(),
    ));

    // The harness counters and peak meters travel inside one balanced
    // `siege` span, emitted through the real JSONL sink so the event
    // format cannot drift from the schema.
    let mut sink = JsonlSink::new(Vec::new());
    sink.span_open(Phase::Siege);
    sink.counter(Counter::SiegeCases, totals.cases);
    sink.counter(Counter::SiegeMutants, totals.mutants);
    sink.counter(Counter::SiegeEngineRuns, totals.engine_runs);
    sink.counter(Counter::SiegeTraps, totals.trap_census.values().sum());
    sink.counter(Counter::SiegeDisagreements, totals.findings.len() as u64);
    sink.counter(Counter::SiegeLadderRuns, totals.ladder_runs);
    sink.counter(Counter::SiegeShrinkSteps, totals.shrink_steps);
    sink.gauge(Gauge::FuelUsed, totals.peak_fuel);
    sink.gauge(Gauge::HeapUsed, totals.peak_heap);
    sink.gauge(Gauge::CallDepth, totals.peak_depth);
    sink.span_close(Phase::Siege, elapsed_ns);
    let events = sink.finish().map_err(|e| e.to_string())?;
    out.push_str(&String::from_utf8(events).map_err(|e| e.to_string())?);

    for row in &totals.agreement {
        out.push_str(&format!(
            "{{\"type\":\"run\",\"kind\":\"agreement\",\"engine\":\"{}\",\
             \"value_agree\":{},\"trap_agree\":{},\"budget_divergence\":{},\
             \"documented\":{},\"disagree\":{}}}\n",
            row.engine,
            row.value_agree,
            row.trap_agree,
            row.budget_divergence,
            row.documented,
            row.disagree,
        ));
    }

    for (class, count) in &totals.trap_census {
        out.push_str(&format!(
            "{{\"type\":\"run\",\"kind\":\"trap\",\"class\":\"{class}\",\"count\":{count}}}\n",
        ));
    }

    out.push_str(&format!(
        "{{\"type\":\"run\",\"kind\":\"ladder\",\"runs\":{},\"degraded\":{}}}\n",
        totals.ladder_runs, totals.degraded_runs,
    ));

    for f in &totals.findings {
        out.push_str(&format!(
            "{{\"type\":\"run\",\"kind\":\"finding\",\"case\":\"{}\",\"class\":\"{}\",\
             \"detail\":\"{}\"}}\n",
            sanitize(&f.case_name),
            sanitize(&f.class),
            sanitize(&f.detail),
        ));
    }

    pe_trace::jsonl::validate(&out).map_err(|e| format!("siege report invalid: {e}"))?;
    Ok(out)
}

/// Restricts a string to characters that can never interact with JSON
/// string syntax — the flat-schema parser has no use for exotic
/// escapes, and a finding detail quoting program text easily contains
/// quotes and backslashes.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' => c,
            ' ' | '-' | '_' | '.' | ':' | ';' | ',' | '(' | ')' | '+' | '*' | '<' | '>'
            | '=' | '?' | '!' | '#' | '/' => c,
            _ => '~',
        })
        .take(400)
        .collect()
}

/// A short human-readable summary for the terminal.
#[must_use]
pub fn summarize(totals: &Totals, elapsed_ns: u64) -> String {
    let mut s = format!(
        "pe-siege: {} cases ({} mutants, {} corpus, {} refused), {} engine runs, \
         {} ladder rungs ({} degraded), {} traps, {} findings in {:.2}s\n",
        totals.cases,
        totals.mutants,
        totals.corpus_cases,
        totals.refused_cases,
        totals.engine_runs,
        totals.ladder_runs,
        totals.degraded_runs,
        totals.trap_census.values().sum::<u64>(),
        totals.findings.len(),
        elapsed_ns as f64 / 1e9,
    );
    for row in &totals.agreement {
        s.push_str(&format!(
            "  {:<10} value={:<6} trap={:<6} budget-div={:<5} documented={:<5} DISAGREE={}\n",
            row.engine,
            row.value_agree,
            row.trap_agree,
            row.budget_divergence,
            row.documented,
            row.disagree,
        ));
    }
    for f in &totals.findings {
        s.push_str(&format!("  FINDING [{}] {}: {}\n", f.class, f.case_name, f.detail));
        for line in f.source.lines().take(12) {
            s.push_str(&format!("    | {line}\n"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AgreementRow;

    fn sample_totals() -> Totals {
        let mut t = Totals {
            cases: 10,
            mutants: 3,
            engine_runs: 80,
            ladder_runs: 40,
            degraded_runs: 5,
            peak_fuel: 50_000,
            peak_heap: 123,
            peak_depth: 17,
            ..Totals::default()
        };
        t.trap_census.insert("fuel", 6);
        t.trap_census.insert("heap", 2);
        t.agreement.push(AgreementRow {
            engine: "vm",
            value_agree: 7,
            trap_agree: 2,
            budget_divergence: 1,
            ..AgreementRow::default()
        });
        t
    }

    #[test]
    fn report_validates_and_counts_round_trip() {
        let cfg = SiegeConfig::quick();
        let text = render(&sample_totals(), &cfg, 1_000_000).expect("renders");
        let summary = pe_trace::jsonl::validate(&text).expect("validates");
        assert_eq!(summary.counter("siege_cases"), 10);
        assert_eq!(summary.counter("siege_mutants"), 3);
        assert_eq!(summary.counter("siege_engine_runs"), 80);
        assert_eq!(summary.counter("siege_ladder_runs"), 40);
        assert_eq!(summary.spans_opened, 1);
        assert_eq!(summary.spans_closed, 1);
    }

    #[test]
    fn hostile_finding_text_cannot_break_the_schema() {
        let mut t = sample_totals();
        t.findings.push(crate::Finding {
            case_name: "gen-1-omega".to_string(),
            class: "value-mismatch".to_string(),
            detail: "tail = \"quote\\evil\" but vm = {weird}\n(newline)".to_string(),
            source: "(define (main n) n)".to_string(),
            residual_verified: Some(true),
        });
        let text = render(&t, &SiegeConfig::quick(), 5).expect("renders");
        pe_trace::jsonl::validate(&text).expect("validates despite hostile detail");
    }

    #[test]
    fn summary_mentions_findings() {
        let mut t = sample_totals();
        t.findings.push(crate::Finding {
            case_name: "gen-9".to_string(),
            class: "panic".to_string(),
            detail: "boom".to_string(),
            source: "(define (main n) n)".to_string(),
            residual_verified: None,
        });
        let s = summarize(&t, 2_000_000_000);
        assert!(s.contains("FINDING [panic]"));
        assert!(s.contains("1 findings"));
    }
}
