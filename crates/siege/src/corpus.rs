//! The persistent reproducer corpus.
//!
//! Every finding the harness ever shrank is kept as a small `.scm`
//! file under `crates/siege/corpus/`, alongside hand-seeded regression
//! anchors for historically interesting shapes (Ω, arithmetic ascent,
//! mutual recursion, heap growth, dispatch-heavy closures).  Every
//! siege run replays the corpus *first*: a reproducer that ever
//! slipped through stays fixed forever.
//!
//! A corpus file is ordinary subject-language source preceded by one
//! metadata form:
//!
//! ```text
//! (siege-case (entry main) (args 3 (1 2)))
//! (define (main n l) ...)
//! ```
//!
//! Arguments are first-order data; a list argument is written as the
//! list itself.  Storing the program as forms (not a string) keeps the
//! corpus diffable and free of escaping.

use crate::gen::render;
use crate::Case;
use pe_interp::Datum;
use pe_sexpr::Sexpr;
use std::path::{Path, PathBuf};

/// Parses one corpus file.
///
/// # Errors
///
/// A description of the malformed metadata or unreadable source.
pub fn parse_case(name: &str, text: &str) -> Result<Case, String> {
    let forms = pe_sexpr::read(text).map_err(|e| format!("{name}: {e}"))?;
    let (meta, program) = forms
        .split_first()
        .ok_or_else(|| format!("{name}: empty corpus file"))?;
    let meta = meta
        .form_args("siege-case")
        .ok_or_else(|| format!("{name}: first form must be (siege-case ...)"))?;
    let mut entry = None;
    let mut args = Vec::new();
    for m in meta {
        if let Some(e) = m.form_args("entry") {
            entry = e.first().and_then(Sexpr::sym).map(str::to_string);
        } else if let Some(a) = m.form_args("args") {
            args = a.iter().map(Datum::from_sexpr).collect();
        }
    }
    let entry = entry.ok_or_else(|| format!("{name}: missing (entry ...)"))?;
    if program.is_empty() {
        return Err(format!("{name}: no program after the metadata form"));
    }
    Ok(Case {
        name: name.to_string(),
        source: render(program),
        entry,
        args,
    })
}

/// Renders a case back into corpus-file text.
///
/// # Errors
///
/// When the case source does not read back as forms (textual mutants
/// cannot be persisted in structural format).
pub fn render_case(case: &Case) -> Result<String, String> {
    let forms = pe_sexpr::read(&case.source).map_err(|e| e.to_string())?;
    let mut meta = vec![
        Sexpr::sym_of("siege-case"),
        Sexpr::list_of([Sexpr::sym_of("entry"), Sexpr::sym_of(&case.entry)]),
    ];
    let mut args = vec![Sexpr::sym_of("args")];
    args.extend(case.args.iter().map(datum_to_sexpr));
    meta.push(Sexpr::List(args));
    Ok(format!("{}\n{}", Sexpr::List(meta), render(&forms)))
}

fn datum_to_sexpr(d: &Datum) -> Sexpr {
    use pe_interp::Value;
    match d {
        Value::Int(n) => Sexpr::Int(*n),
        Value::Bool(b) => Sexpr::Bool(*b),
        Value::Char(c) => Sexpr::Char(*c),
        Value::Str(s) => Sexpr::Str(s.clone()),
        Value::Sym(s) => Sexpr::Sym(s.clone()),
        Value::Nil => Sexpr::nil(),
        Value::Pair(_) => {
            // Proper spines render as lists; an improper tail is not
            // producible by `Datum::from_sexpr`, so flatten greedily.
            let mut items = Vec::new();
            let mut cur = d.clone();
            loop {
                match cur {
                    Value::Pair(ref pp) => {
                        items.push(datum_to_sexpr(&pp.0));
                        cur = pp.1.clone();
                    }
                    Value::Nil => break,
                    ref other => {
                        items.push(datum_to_sexpr(other));
                        break;
                    }
                }
            }
            Sexpr::List(items)
        }
        Value::Closure(c) => match *c {},
    }
}

/// Loads every `.scm` case in `dir`, sorted by file name so replay
/// order (and therefore the whole run) is deterministic.
///
/// # Errors
///
/// The first unreadable or malformed file.
pub fn load_dir(dir: &Path) -> Result<Vec<Case>, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "scm"))
        .collect();
    entries.sort();
    let mut cases = Vec::with_capacity(entries.len());
    for path in entries {
        let name = path
            .file_stem()
            .map_or_else(|| "case".to_string(), |s| s.to_string_lossy().into_owned());
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        cases.push(parse_case(&name, &text)?);
    }
    Ok(cases)
}

/// Persists a (shrunk) finding reproducer under `dir`, returning the
/// path.  File names carry the finding class so the corpus doubles as
/// a census of what ever went wrong.
///
/// # Errors
///
/// I/O failure, or a case whose source cannot be rendered structurally.
pub fn save_case(dir: &Path, case: &Case, class: &str) -> Result<PathBuf, String> {
    let text = render_case(case)?;
    let slug: String = class
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!("finding-{slug}-{}.scm", case.name));
    std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_case() {
        let case = Case {
            name: "rt".to_string(),
            source: "(define (main n l) (cons n l))\n".to_string(),
            entry: "main".to_string(),
            args: vec![Datum::Int(3), Datum::parse("(1 2)").unwrap()],
        };
        let text = render_case(&case).unwrap();
        let back = parse_case("rt", &text).unwrap();
        assert_eq!(back.entry, "main");
        assert_eq!(back.args, case.args);
        assert!(back.source.contains("(define (main n l)"));
        // And the round-tripped text parses as a program.
        pe_frontend::parse_source(&back.source).unwrap();
    }

    #[test]
    fn missing_entry_is_rejected() {
        let err = parse_case("x", "(siege-case (args 1))\n(define (f n) n)").unwrap_err();
        assert!(err.contains("entry"), "{err}");
    }

    #[test]
    fn empty_program_is_rejected() {
        let err = parse_case("x", "(siege-case (entry f) (args))").unwrap_err();
        assert!(err.contains("no program"), "{err}");
    }
}
