//! Structured program generation and hostility-grafting mutation.
//!
//! The generator emits well-scoped subject-language programs (Fig. 2
//! grammar) spanning what the suite exercises: first-order recursion
//! with arithmetic descent *and* ascent (straddling the size-change
//! analysis's Bounded/Unbounded line), list recursion, mutual
//! recursion, closures passed as arguments, dispatch over
//! conditionally-chosen lambdas (The Trick's food), quoted data, and
//! the occasional deliberately partial primitive (`car` of whatever
//! happens to be there).  Programs are mostly terminating by
//! construction — generic call sites form a DAG over later-defined
//! procedures; recursion enters only through guarded descent
//! templates — so the differential oracle sees values, not just fuel
//! traps.
//!
//! Mutation then grafts faultline-style hostility onto a healthy
//! program: Ω-cycles spliced into expression position, hundreds of
//! `add1` wrappers, `i64`-edge literals, descent flipped to ascent,
//! truncated and paren-bombed source.  Scope discipline is preserved
//! where the mutation is structural (the spliced Ω binds its own
//! variables) and deliberately violated where it is textual.

use crate::rng::Rng;
use pe_interp::Datum;
use pe_sexpr::{pretty, Sexpr};

/// A generated (or mutated) test case: source text plus an entry call.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// Subject program source.
    pub source: String,
    /// Entry procedure name.
    pub entry: String,
    /// First-order entry arguments.
    pub args: Vec<Datum>,
}

/// The three first-order value shapes the generator tracks so that
/// emitted programs are well-typed-ish: integers flow into arithmetic,
/// lists into `car`/`cdr`/`null?`, and `Data` is the any-type used for
/// quoted leaves and cons payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    List,
    Data,
}

#[derive(Debug, Clone)]
struct Sig {
    name: String,
    params: Vec<(String, Ty)>,
    ret: Ty,
}

/// How a procedure's body recurses on its first parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecStyle {
    /// `(if (< n 1) base (.. (self (sub1 n) ..)))` — terminating.
    IntDescent,
    /// Same skeleton with `add1`: dynamically divergent, and exactly
    /// what the size-change analysis calls Unbounded.
    IntAscent,
    /// `(if (null? l) base (.. (self (cdr l) ..)))` — terminating.
    ListDescent,
    /// No self-call; body is a plain expression DAG.
    None,
}

struct Ctx {
    sigs: Vec<Sig>,
    higher_order: bool,
    fresh: u32,
}

impl Ctx {
    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("t{}", self.fresh)
    }
}

fn sym(s: &str) -> Sexpr {
    Sexpr::sym_of(s)
}

fn list(xs: Vec<Sexpr>) -> Sexpr {
    Sexpr::List(xs)
}

fn call1(op: &str, a: Sexpr) -> Sexpr {
    list(vec![sym(op), a])
}

fn call2(op: &str, a: Sexpr, b: Sexpr) -> Sexpr {
    list(vec![sym(op), a, b])
}

/// `(quote d)`.
fn quoted(d: Sexpr) -> Sexpr {
    list(vec![sym("quote"), d])
}

/// Generates one structured program with a deterministic argument
/// vector for its entry point.
pub fn gen_case(rng: &mut Rng) -> GenCase {
    let mut ctx = plan(rng);
    let mut defs: Vec<Sexpr> = Vec::new();

    // Mutual-recursion pair: the last two auxiliaries become an
    // even/odd-style cycle, each descending before handing off.
    let n_aux = ctx.sigs.len() - 1; // sigs[0] is main
    let mutual = n_aux >= 2
        && ctx.sigs[n_aux - 1].params.first().map(|p| p.1) == Some(Ty::Int)
        && ctx.sigs[n_aux].params.first().map(|p| p.1) == Some(Ty::Int)
        && rng.chance(4);

    for i in 1..=n_aux {
        let body = if mutual && i >= n_aux - 1 {
            let partner = if i == n_aux { n_aux - 1 } else { n_aux };
            mutual_body(&mut ctx, rng, i, partner)
        } else {
            let style = rec_style(&ctx.sigs[i], rng);
            proc_body(&mut ctx, rng, i, style)
        };
        defs.push(define(&ctx.sigs[i], body));
    }
    let main_body = main_body(&mut ctx, rng);
    defs.insert(0, define(&ctx.sigs[0], main_body));

    if ctx.higher_order {
        // A small CPS library generic expressions may call into.
        defs.push(
            pe_sexpr::read_one("(define (apply1 f x) (f x))").expect("fixed helper"),
        );
        defs.push(
            pe_sexpr::read_one("(define (twice f x) (f (f x)))").expect("fixed helper"),
        );
    }

    let args = ctx.sigs[0]
        .params
        .iter()
        .map(|&(_, ty)| gen_arg(rng, ty))
        .collect();
    GenCase {
        source: render(&defs),
        entry: ctx.sigs[0].name.clone(),
        args,
    }
}

/// Pretty-prints top-level forms as program source.
pub fn render(defs: &[Sexpr]) -> String {
    let mut out = String::new();
    for d in defs {
        out.push_str(&pretty(d));
        out.push('\n');
    }
    out
}

fn plan(rng: &mut Rng) -> Ctx {
    let n_aux = 2 + rng.below(4) as usize; // 2..=5 auxiliaries
    let higher_order = rng.chance(3);
    let mut sigs = Vec::with_capacity(n_aux + 1);

    let main_params = 1 + rng.below(2) as usize;
    sigs.push(Sig {
        name: "main".to_string(),
        params: (0..main_params)
            .map(|k| (format!("a{k}"), if rng.chance(3) { Ty::List } else { Ty::Int }))
            .collect(),
        ret: if rng.chance(4) { Ty::List } else { Ty::Int },
    });

    for i in 0..n_aux {
        let n_params = 1 + rng.below(2) as usize;
        let first_ty = if rng.below(10) < 6 { Ty::Int } else { Ty::List };
        let mut params = vec![(format!("x{i}0"), first_ty)];
        for k in 1..n_params {
            params.push((
                format!("x{i}{k}"),
                *rng.pick(&[Ty::Int, Ty::List, Ty::Data]),
            ));
        }
        let ret = match rng.below(4) {
            0 | 1 => Ty::Int,
            2 => Ty::List,
            _ => Ty::Data,
        };
        sigs.push(Sig { name: format!("p{i}"), params, ret });
    }
    Ctx { sigs, higher_order, fresh: 0 }
}

fn rec_style(sig: &Sig, rng: &mut Rng) -> RecStyle {
    match sig.params.first().map(|p| p.1) {
        Some(Ty::Int) => match rng.below(100) {
            0..=69 => RecStyle::IntDescent,
            70..=77 => RecStyle::IntAscent,
            _ => RecStyle::None,
        },
        Some(Ty::List) => {
            if rng.below(4) < 3 {
                RecStyle::ListDescent
            } else {
                RecStyle::None
            }
        }
        _ => RecStyle::None,
    }
}

fn define(sig: &Sig, body: Sexpr) -> Sexpr {
    let mut head = vec![sym(&sig.name)];
    head.extend(sig.params.iter().map(|(n, _)| sym(n)));
    list(vec![sym("define"), list(head), body])
}

/// `(if GUARD base step)` recursion skeleton for auxiliary `i`; the
/// step calls `self` (or `partner` for mutual pairs) on a shrunk or
/// grown first argument, with fresh expressions for the other slots.
fn proc_body(ctx: &mut Ctx, rng: &mut Rng, i: usize, style: RecStyle) -> Sexpr {
    let sig = ctx.sigs[i].clone();
    let env: Vec<(String, Ty)> = sig.params.clone();
    match style {
        RecStyle::None => expr(ctx, rng, &env, sig.ret, 3, i + 1),
        RecStyle::IntDescent | RecStyle::IntAscent => {
            let n = sym(&sig.params[0].0);
            let guard = if rng.chance(2) {
                call2("<", n.clone(), Sexpr::Int(1))
            } else {
                call1("zero?", n.clone())
            };
            let step_op = if style == RecStyle::IntAscent { "add1" } else { "sub1" };
            let rec = rec_call(ctx, rng, &env, i, i, call1(step_op, n));
            let base = expr(ctx, rng, &env, sig.ret, 2, i + 1);
            let step = combine(ctx, rng, &env, sig.ret, rec, i + 1);
            list(vec![sym("if"), guard, base, step])
        }
        RecStyle::ListDescent => {
            let l = sym(&sig.params[0].0);
            let guard = call1("null?", l.clone());
            let rec = rec_call(ctx, rng, &env, i, i, call1("cdr", l));
            let base = expr(ctx, rng, &env, sig.ret, 2, i + 1);
            let step = combine(ctx, rng, &env, sig.ret, rec, i + 1);
            list(vec![sym("if"), guard, base, step])
        }
    }
}

/// Even/odd-style body: descend, then hand off to the partner.
fn mutual_body(ctx: &mut Ctx, rng: &mut Rng, i: usize, partner: usize) -> Sexpr {
    let sig = ctx.sigs[i].clone();
    let env: Vec<(String, Ty)> = sig.params.clone();
    let n = sym(&sig.params[0].0);
    let guard = call2("<", n.clone(), Sexpr::Int(1));
    let rec = rec_call(ctx, rng, &env, i, partner, call1("sub1", n));
    let base = expr(ctx, rng, &env, sig.ret, 1, ctx.sigs.len());
    let step = coerce(rec, ctx.sigs[partner].ret, sig.ret);
    list(vec![sym("if"), guard, base, step])
}

/// A call to `sigs[target]` with `first` in the recursion slot and
/// generated expressions (from `env`, calls only to procs after
/// `caller`) everywhere else.
fn rec_call(
    ctx: &mut Ctx,
    rng: &mut Rng,
    env: &[(String, Ty)],
    caller: usize,
    target: usize,
    first: Sexpr,
) -> Sexpr {
    let target_sig = ctx.sigs[target].clone();
    let mut call = vec![sym(&target_sig.name), first];
    for &(_, ty) in &target_sig.params[1..] {
        call.push(expr(ctx, rng, env, ty, 1, caller + 1));
    }
    list(call)
}

/// Folds a recursive result into the procedure's return type.
fn combine(
    ctx: &mut Ctx,
    rng: &mut Rng,
    env: &[(String, Ty)],
    ret: Ty,
    rec: Sexpr,
    callable_from: usize,
) -> Sexpr {
    match ret {
        Ty::Int => {
            let rhs = expr(ctx, rng, env, Ty::Int, 1, callable_from);
            let op = *rng.pick(&["+", "-", "*"]);
            call2(op, rec, rhs)
        }
        Ty::List => {
            if rng.chance(2) {
                call2("cons", expr(ctx, rng, env, Ty::Data, 1, callable_from), rec)
            } else {
                rec
            }
        }
        Ty::Data => {
            if rng.chance(2) {
                call2("cons", rec, quoted(Sexpr::nil()))
            } else {
                rec
            }
        }
    }
}

/// Adapts an expression of type `have` into type `want` (cheaply; the
/// mutual-pair hand-off is the only caller).  `(if (number? e) e 0)`
/// evaluates `e` twice, which is fine for the pure subject language.
fn coerce(e: Sexpr, have: Ty, want: Ty) -> Sexpr {
    if have == want || want == Ty::Data {
        return e;
    }
    match want {
        Ty::Int => list(vec![
            sym("if"),
            call1("number?", e.clone()),
            e,
            Sexpr::Int(0),
        ]),
        Ty::List => call2("cons", e, quoted(Sexpr::nil())),
        Ty::Data => e,
    }
}

fn main_body(ctx: &mut Ctx, rng: &mut Rng) -> Sexpr {
    let sig = ctx.sigs[0].clone();
    let env: Vec<(String, Ty)> = sig.params.clone();
    if rng.chance(3) {
        let v = ctx.fresh_var();
        let bound = expr(ctx, rng, &env, Ty::Int, 2, 1);
        let mut inner_env = env.clone();
        inner_env.push((v.clone(), Ty::Int));
        let body = expr(ctx, rng, &inner_env, sig.ret, 3, 1);
        list(vec![
            sym("let"),
            list(vec![list(vec![sym(&v), bound])]),
            body,
        ])
    } else {
        expr(ctx, rng, &env, sig.ret, 3, 1)
    }
}

/// A random expression of type `ty` with nesting budget `depth`,
/// referring only to `env` variables and procedures `callable_from..`
/// (so generic call sites form a DAG — recursion lives only in the
/// guarded templates above).
fn expr(
    ctx: &mut Ctx,
    rng: &mut Rng,
    env: &[(String, Ty)],
    ty: Ty,
    depth: usize,
    callable_from: usize,
) -> Sexpr {
    if depth == 0 {
        return leaf(rng, env, ty);
    }
    match ty {
        Ty::Int => match rng.below(12) {
            0..=2 => {
                let op = *rng.pick(&["+", "-", "*"]);
                call2(
                    op,
                    expr(ctx, rng, env, Ty::Int, depth - 1, callable_from),
                    expr(ctx, rng, env, Ty::Int, depth - 1, callable_from),
                )
            }
            3 => call1(
                rng.pick::<&str>(&["add1", "sub1"]),
                expr(ctx, rng, env, Ty::Int, depth - 1, callable_from),
            ),
            4 => {
                let c = cond(ctx, rng, env, depth - 1, callable_from);
                list(vec![
                    sym("if"),
                    c,
                    expr(ctx, rng, env, Ty::Int, depth - 1, callable_from),
                    expr(ctx, rng, env, Ty::Int, depth - 1, callable_from),
                ])
            }
            5 | 6 => proc_call(ctx, rng, env, Ty::Int, depth, callable_from)
                .unwrap_or_else(|| leaf(rng, env, Ty::Int)),
            7 => {
                // Dispatch over conditionally-chosen lambdas: the
                // operator is an `if`, The Trick's favourite meal.
                let c = cond(ctx, rng, env, depth - 1, callable_from);
                let v = ctx.fresh_var();
                let mut env2 = env.to_vec();
                env2.push((v.clone(), Ty::Int));
                let arm = |ctx: &mut Ctx, rng: &mut Rng| {
                    list(vec![
                        sym("lambda"),
                        list(vec![sym(&v)]),
                        expr(ctx, rng, &env2, Ty::Int, depth - 1, callable_from),
                    ])
                };
                let f1 = arm(ctx, rng);
                let f2 = arm(ctx, rng);
                list(vec![
                    list(vec![sym("if"), c, f1, f2]),
                    expr(ctx, rng, env, Ty::Int, depth - 1, callable_from),
                ])
            }
            8 if ctx.higher_order => {
                let v = ctx.fresh_var();
                let mut env2 = env.to_vec();
                env2.push((v.clone(), Ty::Int));
                let f = list(vec![
                    sym("lambda"),
                    list(vec![sym(&v)]),
                    expr(ctx, rng, &env2, Ty::Int, depth - 1, callable_from),
                ]);
                let helper = *rng.pick(&["apply1", "twice"]);
                list(vec![
                    sym(helper),
                    f,
                    expr(ctx, rng, env, Ty::Int, depth - 1, callable_from),
                ])
            }
            9 if rng.chance(4) => {
                // Partial primitive on purpose: a deterministic
                // runtime error every engine must report identically.
                call1("car", expr(ctx, rng, env, Ty::List, depth - 1, callable_from))
            }
            _ => leaf(rng, env, Ty::Int),
        },
        Ty::List => match rng.below(8) {
            0..=2 => call2(
                "cons",
                expr(ctx, rng, env, Ty::Data, depth - 1, callable_from),
                expr(ctx, rng, env, Ty::List, depth - 1, callable_from),
            ),
            3 => {
                let c = cond(ctx, rng, env, depth - 1, callable_from);
                list(vec![
                    sym("if"),
                    c,
                    expr(ctx, rng, env, Ty::List, depth - 1, callable_from),
                    expr(ctx, rng, env, Ty::List, depth - 1, callable_from),
                ])
            }
            4 => proc_call(ctx, rng, env, Ty::List, depth, callable_from)
                .unwrap_or_else(|| leaf(rng, env, Ty::List)),
            5 if rng.chance(3) => {
                call1("cdr", expr(ctx, rng, env, Ty::List, depth - 1, callable_from))
            }
            _ => leaf(rng, env, Ty::List),
        },
        Ty::Data => match rng.below(4) {
            0 => expr(ctx, rng, env, Ty::Int, depth, callable_from),
            1 => expr(ctx, rng, env, Ty::List, depth, callable_from),
            _ => leaf(rng, env, Ty::Data),
        },
    }
}

fn cond(
    ctx: &mut Ctx,
    rng: &mut Rng,
    env: &[(String, Ty)],
    depth: usize,
    callable_from: usize,
) -> Sexpr {
    match rng.below(5) {
        0 => call1("zero?", expr(ctx, rng, env, Ty::Int, depth, callable_from)),
        1 => call1("null?", expr(ctx, rng, env, Ty::List, depth, callable_from)),
        2 => call2(
            "<",
            expr(ctx, rng, env, Ty::Int, depth, callable_from),
            expr(ctx, rng, env, Ty::Int, depth, callable_from),
        ),
        3 => call2(
            "equal?",
            expr(ctx, rng, env, Ty::Data, depth.min(1), callable_from),
            expr(ctx, rng, env, Ty::Data, depth.min(1), callable_from),
        ),
        _ => call1("pair?", expr(ctx, rng, env, Ty::Data, depth, callable_from)),
    }
}

/// A call to some procedure (index `>= callable_from`) returning `ty`,
/// or `None` when no such procedure exists.
fn proc_call(
    ctx: &mut Ctx,
    rng: &mut Rng,
    env: &[(String, Ty)],
    ty: Ty,
    depth: usize,
    callable_from: usize,
) -> Option<Sexpr> {
    let candidates: Vec<usize> = (callable_from..ctx.sigs.len())
        .filter(|&j| ctx.sigs[j].ret == ty || ctx.sigs[j].ret == Ty::Data)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let j = *rng.pick(&candidates);
    let target = ctx.sigs[j].clone();
    let mut call = vec![sym(&target.name)];
    for &(_, pty) in &target.params {
        call.push(expr(ctx, rng, env, pty, depth.saturating_sub(1).min(1), j + 1));
    }
    Some(list(call))
}

fn leaf(rng: &mut Rng, env: &[(String, Ty)], ty: Ty) -> Sexpr {
    let vars: Vec<&String> =
        env.iter().filter(|(_, t)| *t == ty).map(|(n, _)| n).collect();
    if !vars.is_empty() && rng.below(10) < 6 {
        return sym(rng.pick(&vars).as_str());
    }
    match ty {
        Ty::Int => Sexpr::Int(rng.below(10) as i64),
        Ty::List => match rng.below(3) {
            0 => quoted(Sexpr::nil()),
            1 => quoted(list(vec![Sexpr::Int(1), Sexpr::Int(2)])),
            _ => quoted(list(vec![
                Sexpr::Int(rng.below(9) as i64),
                sym("a"),
                Sexpr::Int(rng.below(9) as i64),
            ])),
        },
        Ty::Data => match rng.below(5) {
            0 => Sexpr::Int(rng.below(10) as i64),
            1 => quoted(sym(rng.pick::<&str>(&["a", "b", "c"]))),
            2 => Sexpr::Bool(rng.chance(2)),
            3 => quoted(Sexpr::nil()),
            _ => quoted(list(vec![sym("k"), Sexpr::Int(rng.below(5) as i64)])),
        },
    }
}

fn gen_arg(rng: &mut Rng, ty: Ty) -> Datum {
    match ty {
        Ty::Int => Datum::Int(rng.below(6) as i64),
        Ty::List => {
            let n = rng.below(4);
            let items: Vec<Datum> = (0..n).map(|_| Datum::Int(rng.below(9) as i64)).collect();
            pe_interp::Value::list(items)
        }
        Ty::Data => match rng.below(3) {
            0 => Datum::Int(rng.below(9) as i64),
            1 => Datum::Sym("a".into()),
            _ => Datum::Bool(true),
        },
    }
}

// ---------------------------------------------------------------------
// Mutation: grafting hostility onto a healthy program.
// ---------------------------------------------------------------------

/// The mutation operators, in the order [`mutate`] cycles through them.
pub const MUTATIONS: [&str; 6] =
    ["omega", "deepwrap", "hugelit", "ascent", "truncate", "dropdef"];

/// Applies the mutation named `tag` to `base`, returning `None` when it
/// does not apply (e.g. no integer literal to inflate).  Structural
/// mutations keep the program readable; textual ones (`truncate`) aim
/// at the reader itself.
pub fn mutate(rng: &mut Rng, base: &GenCase, tag: &str) -> Option<GenCase> {
    match tag {
        "truncate" => {
            let len = base.source.len();
            if len < 8 {
                return None;
            }
            let mut cut = len / 2 + (rng.below((len / 2) as u64) as usize);
            while !base.source.is_char_boundary(cut) {
                cut -= 1;
            }
            let mut source = base.source[..cut].to_string();
            if rng.chance(2) {
                source.push_str(")))");
            }
            Some(GenCase { source, ..base.clone() })
        }
        _ => {
            let mut defs = pe_sexpr::read(&base.source).ok()?;
            match tag {
                "omega" => {
                    let omega = pe_sexpr::read_one(pe_faultline::omega_expr())
                        .expect("omega parses");
                    replace_random_expr(rng, &mut defs, |_| omega.clone())?;
                }
                "deepwrap" => {
                    // Deep enough to stress unfolding and the syntax
                    // meters, shallow enough that a debug-build parser
                    // on a default thread stack survives (the CLI runs
                    // on a big-stack worker regardless).
                    let n = 80 + rng.below(140) as usize;
                    replace_random_expr(rng, &mut defs, |e| {
                        let mut w = e.clone();
                        for _ in 0..n {
                            w = call1("add1", w);
                        }
                        w
                    })?;
                }
                "hugelit" => {
                    let edge = [i64::MAX, i64::MAX - 1, i64::MIN + 1][rng.below(3) as usize];
                    replace_random_int(rng, &mut defs, edge)?;
                }
                "ascent" => {
                    if !flip_descent(&mut defs) {
                        return None;
                    }
                }
                "dropdef" => {
                    let droppable: Vec<usize> = defs
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| def_name(d) != Some(base.entry.as_str()))
                        .map(|(i, _)| i)
                        .collect();
                    if droppable.is_empty() {
                        return None;
                    }
                    defs.remove(*rng.pick(&droppable));
                }
                _ => return None,
            }
            Some(GenCase { source: render(&defs), ..base.clone() })
        }
    }
}

fn def_name(d: &Sexpr) -> Option<&str> {
    d.form_args("define")?.first()?.list()?.first()?.sym()
}

/// Walks every expression position of every definition body (skipping
/// binder lists and quoted data) and collects mutable pointers as
/// index paths; used by the structural mutators and the shrinker.
pub(crate) fn expr_paths(defs: &[Sexpr]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for (i, d) in defs.iter().enumerate() {
        if let Some(args) = d.form_args("define") {
            if args.len() == 2 {
                // Body of (define (f ..) body) sits at defs[i][2].
                walk(&args[1], vec![i, 2], &mut out);
            }
        }
    }
    out
}

fn walk(e: &Sexpr, path: Vec<usize>, out: &mut Vec<Vec<usize>>) {
    out.push(path.clone());
    let Some(xs) = e.list() else { return };
    if xs.is_empty() {
        return;
    }
    match xs[0].sym() {
        Some("quote") => {}
        Some("lambda") if xs.len() == 3 => {
            let mut p = path;
            p.push(2);
            walk(&xs[2], p, out);
        }
        Some("let") if xs.len() == 3 => {
            // (let ((v E)) B): E at [1][0][1], B at [2].
            if let Some(binding) =
                xs[1].list().and_then(|bs| bs.first()).and_then(Sexpr::list)
            {
                if binding.len() == 2 {
                    let mut p = path.clone();
                    p.extend([1, 0, 1]);
                    walk(&binding[1], p, out);
                }
            }
            let mut p = path;
            p.push(2);
            walk(&xs[2], p, out);
        }
        Some("if") => {
            for (k, x) in xs.iter().enumerate().skip(1) {
                let mut p = path.clone();
                p.push(k);
                walk(x, p, out);
            }
        }
        Some(_) => {
            // (op e ...) — arguments only; the head is a name.
            for (k, x) in xs.iter().enumerate().skip(1) {
                let mut p = path.clone();
                p.push(k);
                walk(x, p, out);
            }
        }
        None => {
            // Computed operator: every element is an expression.
            for (k, x) in xs.iter().enumerate() {
                let mut p = path.clone();
                p.push(k);
                walk(x, p, out);
            }
        }
    }
}

pub(crate) fn node_at<'a>(defs: &'a mut [Sexpr], path: &[usize]) -> Option<&'a mut Sexpr> {
    let (&first, rest) = path.split_first()?;
    let mut cur = defs.get_mut(first)?;
    for &k in rest {
        match cur {
            Sexpr::List(xs) => cur = xs.get_mut(k)?,
            _ => return None,
        }
    }
    Some(cur)
}

fn replace_random_expr(
    rng: &mut Rng,
    defs: &mut [Sexpr],
    f: impl Fn(&Sexpr) -> Sexpr,
) -> Option<()> {
    let paths = expr_paths(defs);
    if paths.is_empty() {
        return None;
    }
    let path = rng.pick(&paths).clone();
    let node = node_at(defs, &path)?;
    *node = f(node);
    Some(())
}

fn replace_random_int(rng: &mut Rng, defs: &mut [Sexpr], value: i64) -> Option<()> {
    let paths: Vec<Vec<usize>> = expr_paths(defs)
        .into_iter()
        .filter(|p| {
            matches!(
                node_at(defs, p).map(|e| matches!(e, Sexpr::Int(_))),
                Some(true)
            )
        })
        .collect();
    if paths.is_empty() {
        return None;
    }
    let path = rng.pick(&paths).clone();
    *node_at(defs, &path)? = Sexpr::Int(value);
    Some(())
}

/// Rewrites every `(sub1 e)` into `(add1 e)`: descent becomes ascent,
/// which is exactly the Bounded→Unbounded flip the size-change
/// analysis must catch statically and the fuel meter dynamically.
fn flip_descent(defs: &mut [Sexpr]) -> bool {
    let mut flipped = false;
    let paths = expr_paths(defs);
    for p in paths {
        if let Some(node) = node_at(defs, &p) {
            let is_sub1 = node.is_form("sub1");
            if is_sub1 {
                if let Sexpr::List(xs) = node {
                    xs[0] = sym("add1");
                    flipped = true;
                }
            }
        }
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_parse_and_are_deterministic() {
        for seed in 0..40 {
            let a = gen_case(&mut Rng::new(seed));
            let b = gen_case(&mut Rng::new(seed));
            assert_eq!(a.source, b.source, "seed {seed} not deterministic");
            assert_eq!(a.args, b.args);
            pe_frontend::parse_source(&a.source)
                .unwrap_or_else(|e| panic!("seed {seed} does not parse: {e}\n{}", a.source));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen_case(&mut Rng::new(1));
        let b = gen_case(&mut Rng::new(2));
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn structural_mutants_parse_or_fail_structurally() {
        // Big-stack worker: deep-wrap mutants drive the (recursive,
        // debug-build) parser hundreds of frames down.
        realistic_pe::with_big_stack(|| {
            let mut rng = Rng::new(99);
            let base = gen_case(&mut rng);
            for tag in MUTATIONS {
                let mut r = Rng::new(7);
                if let Some(m) = mutate(&mut r, &base, tag) {
                    // A mutant either parses or the parser reports a
                    // structured error — never a panic (no_panic would
                    // catch one as an Err with a payload).
                    let r = pe_faultline::no_panic(|| pe_frontend::parse_source(&m.source));
                    assert!(r.is_ok(), "{tag}: parser panicked: {:?}", r.err());
                }
            }
        });
    }

    #[test]
    fn ascent_mutation_flips_sub1() {
        let base = GenCase {
            source: "(define (f n) (if (< n 1) 0 (f (sub1 n))))".to_string(),
            entry: "f".to_string(),
            args: vec![Datum::Int(3)],
        };
        let mut rng = Rng::new(1);
        let m = mutate(&mut rng, &base, "ascent").expect("applies");
        assert!(m.source.contains("add1"));
        assert!(!m.source.contains("sub1"));
    }

    #[test]
    fn dropdef_never_drops_entry() {
        let base = GenCase {
            source: "(define (main n) (helper n))\n(define (helper n) n)\n".to_string(),
            entry: "main".to_string(),
            args: vec![Datum::Int(1)],
        };
        for seed in 0..8 {
            let mut rng = Rng::new(seed);
            let m = mutate(&mut rng, &base, "dropdef").expect("applies");
            assert!(m.source.contains("main"));
            assert!(!m.source.contains("helper n) n"));
        }
    }

    #[test]
    fn expr_paths_skip_binders_and_quotes() {
        let defs =
            pe_sexpr::read("(define (f x) (let ((v (quote (1 2)))) (lambda (y) (+ x 1))))")
                .unwrap();
        let paths = expr_paths(&defs);
        let mut defs2 = defs.clone();
        for p in &paths {
            let node = node_at(&mut defs2, p).expect("path resolves");
            // No param list or binding head should be reachable.
            assert!(node.sym() != Some("v") && node.sym() != Some("y"), "{node}");
        }
    }
}
