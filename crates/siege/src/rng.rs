//! A tiny deterministic pseudo-random source (SplitMix64).
//!
//! Every siege run is driven by one seed; a run with the same seed
//! generates byte-identical programs, mutants and argument vectors, so
//! a finding's case can always be regenerated from `(seed, index)`
//! even before the shrinker persists it to the corpus.  No external
//! randomness, no global state, no dependency.

/// SplitMix64: passes BigCrush, two lines of state transition, and —
/// the property siege actually needs — identical output on every
/// platform for a given seed.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..bound` (`bound` of 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift range reduction; the modulo bias of a 64-bit
        // source over fuzzer-sized bounds is far below anything that
        // could skew case selection.
        self.next_u64() % bound
    }

    /// True once in `n` (n = 1 is always true).
    pub fn chance(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }

    /// An independent generator split off from this one; streams do not
    /// overlap for practical purposes.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }

    /// Picks an element of `xs` (must be non-empty).
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn forks_diverge_from_parent() {
        let mut r = Rng::new(9);
        let mut f = r.fork();
        let parent: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let child: Vec<u64> = (0..4).map(|_| f.next_u64()).collect();
        assert_ne!(parent, child);
    }
}
