//! The chaos-budget layer: every case, re-run under starvation.
//!
//! [`Limits::ladder`] produces a shrinking sequence of budgets — each
//! rung halves fuel, call depth, unfold depth, heap and residual
//! count, ending at the all-floors-1 starvation rung.  Robust
//! execution ([`Pipeline::compile_robust`]) is driven once per rung
//! and must *never* do anything other than return a value or a
//! structured trap:
//!
//! * a panic at any rung is a finding;
//! * an `Ok` value must equal the oracle's reference value (budget
//!   starvation may stop a program, never corrupt it);
//! * an `Err` must be a budget trap, or the same runtime-error class
//!   the full-budget oracle saw for that execution mode;
//! * within one execution mode (compiled / degraded-to-interpreter),
//!   success is monotone in budget: once a mode fails at some rung it
//!   must not succeed again at a *lower* rung.
//!
//! Mode switches themselves are expected — tighter compile budgets
//! push cases from compiled to degraded — which is why monotonicity is
//! tracked per mode rather than globally.

use crate::oracle::Outcome;
use pe_core::CompileOptions;
use pe_faultline::no_panic;
use pe_governor::Limits;
use pe_interp::Datum;
use pe_trace::Sink;
use realistic_pe::{Pipeline, PipelineError, RobustExec};

/// What the ladder observed for one case.
#[derive(Debug, Default)]
pub struct LadderReport {
    /// Rungs executed.
    pub runs: u64,
    /// Rungs that fell back to the degraded interpreter.
    pub degraded: u64,
    /// First violation, as `(class, detail)`.
    pub finding: Option<(&'static str, String)>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Compiled = 0,
    Degraded = 1,
}

/// Runs the full ladder for one case.  `reference` is the oracle's
/// tail-interpreter outcome at full budget (the value any successful
/// rung must reproduce); `vm_reference` the default-VM outcome (the
/// error class a compiled rung may legitimately repeat).
#[allow(clippy::too_many_arguments)] // one call site; a params struct would just rename the arguments
pub fn ladder_check(
    pipe: &Pipeline,
    entry: &str,
    args: &[Datum],
    base: Limits,
    rungs: usize,
    reference: &Outcome,
    vm_reference: &Outcome,
    sink: &mut dyn Sink,
) -> LadderReport {
    let mut report = LadderReport::default();
    let ref_value = match reference {
        Outcome::Value(d) => Some(d),
        _ => match vm_reference {
            Outcome::Value(d) => Some(d),
            _ => None,
        },
    };
    // Per-mode: has this mode already failed at a (higher) rung?
    let mut failed = [false, false];

    for rung in base.ladder(rungs) {
        report.runs += 1;
        if sink.enabled() {
            sink.counter(pe_trace::Counter::SiegeLadderRuns, 1);
        }
        let opts = CompileOptions { limits: rung, ..CompileOptions::default() };
        let step = no_panic(|| match pipe.compile_robust(entry, &opts) {
            Ok(RobustExec::Compiled(vm)) => (
                Mode::Compiled,
                vm.run(args, rung).map(|(d, _)| d).map_err(RungError::from),
            ),
            Ok(RobustExec::Degraded { .. }) => (
                Mode::Degraded,
                pe_interp::tail::run(&pipe.dprog, entry, args, rung)
                    .map_err(RungError::from),
            ),
            Err(e) => (Mode::Compiled, Err(compile_refusal(&e))),
        });
        let (mode, result) = match step {
            Ok(pair) => pair,
            Err(panic_msg) => {
                report.finding = Some(("panic", format!("ladder rung panicked: {panic_msg}")));
                return report;
            }
        };
        if mode == Mode::Degraded {
            report.degraded += 1;
        }
        let mode_ref = match mode {
            Mode::Compiled => vm_reference,
            Mode::Degraded => reference,
        };
        match result {
            Ok(v) => {
                if failed[mode as usize] {
                    report.finding = Some((
                        "ladder-non-monotone",
                        format!(
                            "{} mode succeeded at fuel {} after failing at a higher budget",
                            mode_name(mode),
                            rung.fuel
                        ),
                    ));
                    return report;
                }
                if let Some(want) = ref_value {
                    if &v != want {
                        report.finding = Some((
                            "ladder-wrong-value",
                            format!(
                                "{} mode at fuel {} returned {v} but the oracle value is {want}",
                                mode_name(mode),
                                rung.fuel
                            ),
                        ));
                        return report;
                    }
                }
            }
            Err(e) => {
                failed[mode as usize] = true;
                if let Some(problem) = illegal_rung_error(&e, mode_ref, reference) {
                    report.finding = Some((
                        problem,
                        format!("{} mode at fuel {}: {e:?}", mode_name(mode), rung.fuel),
                    ));
                    return report;
                }
            }
        }
    }
    report
}

fn mode_name(m: Mode) -> &'static str {
    match m {
        Mode::Compiled => "compiled",
        Mode::Degraded => "degraded",
    }
}

/// Non-degradable compile failures surfaced at a rung, folded into the
/// run-error space so one classifier below judges everything.
fn compile_refusal(e: &PipelineError) -> RungError {
    use pe_core::SpecError;
    match e {
        PipelineError::IllFormed(errs) => {
            RungError::Machine(format!("ill-formed residual: {}", errs.join("; ")))
        }
        // A missing or wrong-arity entry refuses identically at every
        // budget; the oracle saw the same class at full budget.
        PipelineError::Spec(
            s @ (SpecError::NoSuchProc(_) | SpecError::EntryArity { .. }),
        ) => RungError::Classed("refused", s.to_string()),
        PipelineError::Spec(s) => RungError::Machine(format!("non-degradable spec error: {s}")),
        other => RungError::Machine(format!("unexpected compile failure: {other}")),
    }
}

/// A rung execution error, normalized.
#[derive(Debug)]
pub enum RungError {
    /// Budget trap — always legal under starvation.
    Budget,
    /// Structured runtime error / refusal, with its class tag.
    Classed(&'static str, String),
    /// Machine trap or internal fault — always a finding.
    Machine(String),
}

impl From<pe_interp::InterpError> for RungError {
    fn from(e: pe_interp::InterpError) -> RungError {
        use pe_interp::InterpError as IE;
        match &e {
            IE::FuelExhausted => RungError::Budget,
            IE::Trap(t) if t.is_budget() => RungError::Budget,
            IE::Trap(t) => RungError::Machine(t.to_string()),
            IE::Prim(_) | IE::NotAProcedure(_) | IE::Unbound(_) => {
                RungError::Classed("runtime", e.to_string())
            }
            IE::ResultNotFirstOrder => RungError::Classed("higher-order", e.to_string()),
            IE::NoSuchProc(_) | IE::EntryArity { .. } => {
                RungError::Classed("refused", e.to_string())
            }
        }
    }
}

/// Decides whether a rung error is legal given the full-budget
/// reference outcomes.  Budget traps are always legal;
/// runtime/higher-order/refused errors only when the same-mode
/// reference *or* the strict (tail) reference saw the same class.  The
/// strict reference matters for compiled rungs: a tighter compile
/// budget yields a *less* specialized residual, which may retain an
/// erroring computation the full-budget residual eliminated — the
/// error class then matches the source semantics even though the
/// full-budget VM returned a value.
fn illegal_rung_error(
    e: &RungError,
    mode_ref: &Outcome,
    strict_ref: &Outcome,
) -> Option<&'static str> {
    match e {
        RungError::Budget => None,
        RungError::Machine(_) => Some("machine-trap"),
        RungError::Classed(class, _) => {
            // Degraded references mean the mode never ran at full
            // budget; accept structured classes rather than invent a
            // baseline that does not exist.
            if mode_ref.tag() == *class
                || strict_ref.tag() == *class
                || matches!(mode_ref, Outcome::Degraded(_))
            {
                None
            } else {
                Some("ladder-bad-error")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{self, oracle_limits};
    use pe_trace::NullSink;

    fn ladder(src: &str, entry: &str, args: &[Datum]) -> LadderReport {
        let pipe = oracle::build(src).expect("no panic").expect("parses");
        let exam = oracle::examine(&pipe, entry, args, oracle_limits(), &mut NullSink);
        ladder_check(
            &pipe,
            entry,
            args,
            oracle_limits(),
            3,
            exam.reference(),
            exam.vm_outcome(),
            &mut NullSink,
        )
    }

    #[test]
    fn terminating_program_survives_starvation() {
        let r = ladder(
            "(define (main n) (add n 0)) (define (add a b) (if (< a 1) b (add (sub1 a) (add1 b))))",
            "main",
            &[Datum::Int(6)],
        );
        assert!(r.finding.is_none(), "{:?}", r.finding);
        assert!(r.runs >= 5); // 3 rungs + top + starvation
    }

    #[test]
    fn divergent_program_traps_structurally_at_every_rung() {
        let r = ladder(pe_faultline::ascent_src(), "climb", &[Datum::Int(1)]);
        assert!(r.finding.is_none(), "{:?}", r.finding);
    }

    #[test]
    fn runtime_error_class_is_stable_down_the_ladder() {
        let r = ladder("(define (main l) (car l))", "main", &[Datum::Int(3)]);
        assert!(r.finding.is_none(), "{:?}", r.finding);
    }

    #[test]
    fn dead_error_elimination_survives_the_ladder() {
        // Full-budget compile eliminates the dead erroring binding
        // (vm = value, tail = runtime error); starved rungs may either
        // degrade into the error or trap on budget, never panic.
        let r = ladder(
            "(define (main a) (let ((t (+ (quote ()) 0))) a))",
            "main",
            &[Datum::Int(7)],
        );
        assert!(r.finding.is_none(), "{:?}", r.finding);
    }

    #[test]
    fn heap_hungry_program_degrades_not_crashes() {
        let r = ladder(
            "(define (main n) (grow n (quote ()))) \
             (define (grow n acc) (if (< n 1) acc (grow (sub1 n) (cons n acc))))",
            "main",
            &[Datum::Int(5)],
        );
        assert!(r.finding.is_none(), "{:?}", r.finding);
    }
}
