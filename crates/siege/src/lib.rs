//! pe-siege: differential fuzzing, chaos budgets, and a sustained-
//! attack soak harness for the realistic-pe suite.
//!
//! The compiler's claim is not just "fast" but "never worse than a
//! structured trap": every engine in the family — interpreters,
//! baseline, specializer, VM — must agree on values, agree on error
//! classes, and degrade gracefully under any budget.  This crate
//! besieges that claim with four layers:
//!
//! 1. **Generation** ([`gen`]): deterministic, seed-driven structured
//!    programs spanning the Fig. 2 grammar, plus mutation operators
//!    that graft faultline-style hostility onto healthy programs.
//! 2. **Differential oracle** ([`oracle`]): every case through every
//!    engine under identical limits; value mismatches, panics and
//!    machine traps are findings, budget splits are documented.
//! 3. **Chaos budgets** ([`chaos`]): every case re-run down a halving
//!    [`pe_governor::Limits::ladder`] to outright starvation, asserting
//!    crash-freedom and value-or-structured-trap at every rung.
//! 4. **Shrink & corpus** ([`shrink`], [`corpus`]): findings are
//!    minimized automatically and persisted as corpus files that
//!    replay first on every subsequent run.
//!
//! The soak entry point emits a `SIEGE_pe.json` report through the
//! pe-trace JSONL sink, so the existing stream validator checks it.

pub mod chaos;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod report;
pub mod rng;
pub mod shrink;

use oracle::{agreement, Agreement, Outcome, ENGINES, REFERENCE};
use pe_governor::TrapClass;
use pe_interp::Datum;
use pe_trace::{Counter, Gauge, Phase, Sink};
use rng::Rng;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// One siege test case: a subject program plus an entry call.
#[derive(Debug, Clone)]
pub struct Case {
    /// Stable case name (`gen-17`, `gen-17-omega`, corpus file stem).
    pub name: String,
    /// Subject program source text.
    pub source: String,
    /// Entry procedure.
    pub entry: String,
    /// First-order entry arguments.
    pub args: Vec<Datum>,
}

impl Case {
    fn from_gen(name: String, g: gen::GenCase) -> Case {
        Case { name, source: g.source, entry: g.entry, args: g.args }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct SiegeConfig {
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Number of base programs to generate (mutants ride on top).
    pub cases: usize,
    /// Halving rungs between full budget and starvation.
    pub ladder_rungs: usize,
    /// Shrink findings before reporting.
    pub shrink: bool,
    /// Corpus directory: replayed first, and findings are persisted
    /// here when set.
    pub corpus_dir: Option<PathBuf>,
    /// Persist shrunk findings into the corpus.
    pub persist_findings: bool,
}

impl SiegeConfig {
    /// The deterministic CI configuration: fixed seed, enough cases
    /// that every grammar corner and mutation fires, small ladder.
    #[must_use]
    pub fn quick() -> SiegeConfig {
        SiegeConfig {
            seed: 0xC0FF_EE00,
            cases: 400,
            ladder_rungs: 2,
            shrink: true,
            corpus_dir: None,
            persist_findings: false,
        }
    }

    /// The sustained-attack configuration.
    #[must_use]
    pub fn soak() -> SiegeConfig {
        SiegeConfig {
            seed: 0xC0FF_EE00,
            cases: 2_000,
            ladder_rungs: 3,
            shrink: true,
            corpus_dir: None,
            persist_findings: true,
        }
    }
}

/// A confirmed robustness violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Case name (post-shrink reproducers keep the original name).
    pub case_name: String,
    /// Finding class tag (`panic`, `value-mismatch`, …).
    pub class: String,
    /// Human-readable description.
    pub detail: String,
    /// The (possibly shrunk) reproducer source.
    pub source: String,
    /// Residual verification result, when a residual existed:
    /// `Some(true)` = clean, `Some(false)` = verifier also rejects.
    pub residual_verified: Option<bool>,
}

/// Per-engine agreement tallies against the reference engine.
#[derive(Debug, Clone, Default)]
pub struct AgreementRow {
    /// Engine name.
    pub engine: &'static str,
    /// Identical values.
    pub value_agree: u64,
    /// Identical structured-failure class.
    pub trap_agree: u64,
    /// Documented budget divergence.
    pub budget_divergence: u64,
    /// Documented non-budget divergence (degraded, refused, …).
    pub documented: u64,
    /// Real disagreements (each also produces a [`Finding`]).
    pub disagree: u64,
}

/// Aggregated results of one siege run.
#[derive(Debug, Default)]
pub struct Totals {
    /// Cases examined (generated + mutants + corpus).
    pub cases: u64,
    /// Of which mutants.
    pub mutants: u64,
    /// Of which corpus replays.
    pub corpus_cases: u64,
    /// Individual engine executions (compiles included).
    pub engine_runs: u64,
    /// Budget-ladder rungs executed.
    pub ladder_runs: u64,
    /// Ladder rungs that fell back to the degraded interpreter.
    pub degraded_runs: u64,
    /// Structured traps observed, by [`TrapClass`] name.
    pub trap_census: BTreeMap<&'static str, u64>,
    /// Shrinker reductions accepted.
    pub shrink_steps: u64,
    /// Cases the front end refused structurally (hostile mutants).
    pub refused_cases: u64,
    /// Agreement matrix, one row per non-reference engine.
    pub agreement: Vec<AgreementRow>,
    /// Peak trap-time meters across every engine run.
    pub peak_fuel: u64,
    /// Peak heap cells at trap time.
    pub peak_heap: u64,
    /// Peak call depth at trap time.
    pub peak_depth: u64,
    /// All findings (must be empty for a healthy tree).
    pub findings: Vec<Finding>,
}

/// A sink that remembers gauge high-water marks and otherwise discards
/// events: engine runs stream through it so the soak report can state
/// the worst meters any trap ever reached.
#[derive(Debug, Default)]
pub struct PeakSink {
    peaks: [u64; 3],
    counters: Vec<(Counter, u64)>,
}

impl PeakSink {
    /// Fresh sink with zeroed peaks.
    #[must_use]
    pub fn new() -> PeakSink {
        PeakSink::default()
    }

    /// `(peak fuel, peak heap, peak depth)` observed so far.
    #[must_use]
    pub fn peaks(&self) -> (u64, u64, u64) {
        (self.peaks[0], self.peaks[1], self.peaks[2])
    }

    /// Total for `c` across every run streamed through this sink.
    #[must_use]
    pub fn counter_total(&self, c: Counter) -> u64 {
        self.counters.iter().find(|&&(k, _)| k == c).map_or(0, |&(_, v)| v)
    }
}

impl Sink for PeakSink {
    fn span_open(&mut self, _phase: Phase) {}
    fn span_close(&mut self, _phase: Phase, _dur_ns: u64) {}
    fn counter(&mut self, counter: Counter, delta: u64) {
        match self.counters.iter_mut().find(|(k, _)| *k == counter) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((counter, delta)),
        }
    }
    fn gauge(&mut self, gauge: Gauge, value: u64) {
        let i = match gauge {
            Gauge::FuelUsed => 0,
            Gauge::HeapUsed => 1,
            Gauge::CallDepth => 2,
            // Service-level gauges: not a trap-time peak this harness
            // tracks.
            Gauge::InFlight | Gauge::InFlightPeak => return,
        };
        self.peaks[i] = self.peaks[i].max(value);
    }
}

/// Runs the whole siege: corpus replay first, then seeded generation
/// with mutants, oracle and ladder per case, shrinking on findings.
///
/// The campaign executes on a big-stack worker thread: the host-stack
/// engines and the (debug-build) front end both recurse proportionally
/// to input depth, and siege inputs are hostile by design.
#[must_use]
pub fn run_siege(cfg: &SiegeConfig) -> Totals {
    realistic_pe::with_big_stack(|| run_siege_here(cfg))
}

fn run_siege_here(cfg: &SiegeConfig) -> Totals {
    let mut totals = Totals::default();
    for &e in ENGINES.iter().filter(|&&e| e != ENGINES[REFERENCE]) {
        totals.agreement.push(AgreementRow { engine: e, ..AgreementRow::default() });
    }
    let mut sink = PeakSink::new();

    // Corpus replay comes first: past findings are the cheapest bugs
    // to re-find.
    if let Some(dir) = &cfg.corpus_dir {
        match corpus::load_dir(dir) {
            Ok(cases) => {
                for case in cases {
                    totals.corpus_cases += 1;
                    besiege_case(&case, cfg, &mut totals, &mut sink);
                }
            }
            Err(e) => totals.findings.push(Finding {
                case_name: "corpus".to_string(),
                class: "corpus-unreadable".to_string(),
                detail: e,
                source: String::new(),
                residual_verified: None,
            }),
        }
    }

    let mut master = Rng::new(cfg.seed);
    for i in 0..cfg.cases {
        let mut rng = master.fork();
        let base = Case::from_gen(format!("gen-{i}"), gen::gen_case(&mut rng));
        besiege_case(&base, cfg, &mut totals, &mut sink);

        // 0–2 mutants per base program, deterministic per seed.
        let n_mutants = rng.below(3);
        for _ in 0..n_mutants {
            let tag = *rng.pick(&gen::MUTATIONS);
            let g = gen::GenCase {
                source: base.source.clone(),
                entry: base.entry.clone(),
                args: base.args.clone(),
            };
            if let Some(m) = gen::mutate(&mut rng, &g, tag) {
                let case = Case::from_gen(format!("gen-{i}-{tag}"), m);
                totals.mutants += 1;
                besiege_case(&case, cfg, &mut totals, &mut sink);
            }
        }
    }

    let (pf, ph, pd) = sink.peaks();
    totals.peak_fuel = pf;
    totals.peak_heap = ph;
    totals.peak_depth = pd;
    totals
}

/// Oracle + ladder for one case; findings are shrunk and recorded.
fn besiege_case(case: &Case, cfg: &SiegeConfig, totals: &mut Totals, sink: &mut PeakSink) {
    totals.cases += 1;
    let limits = oracle::oracle_limits();

    let pipe = match oracle::build(&case.source) {
        Err(panic_msg) => {
            record_finding(
                case,
                "panic",
                format!("front end panicked: {panic_msg}"),
                None,
                cfg,
                totals,
            );
            return;
        }
        Ok(Err(_structured_rejection)) => {
            // Hostile mutants are *supposed* to be refused; the
            // interesting property is that the refusal is structured,
            // which reaching this arm proves.
            totals.refused_cases += 1;
            return;
        }
        Ok(Ok(pipe)) => pipe,
    };

    let exam = oracle::examine(&pipe, &case.entry, &case.args, limits, sink);
    totals.engine_runs += exam.runs;
    for (_, o) in &exam.outcomes {
        match o {
            Outcome::Trap(c) => *totals.trap_census.entry(c.name()).or_insert(0) += 1,
            Outcome::Machine(_) => {
                *totals.trap_census.entry(TrapClass::Machine.name()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    let reference = exam.reference().clone();
    for (name, o) in &exam.outcomes {
        if *name == ENGINES[REFERENCE] {
            continue;
        }
        let row = totals
            .agreement
            .iter_mut()
            .find(|r| r.engine == *name)
            .expect("row pre-seeded");
        match agreement(name, o, &reference) {
            Agreement::ValueAgree => row.value_agree += 1,
            Agreement::TrapAgree => row.trap_agree += 1,
            Agreement::BudgetDivergence => row.budget_divergence += 1,
            Agreement::Documented => row.documented += 1,
            Agreement::Disagree => row.disagree += 1,
        }
    }

    if let Some((class, detail)) = exam.finding() {
        let verified = exam.residual.as_ref().map(|s0| !pe_verify::verify(s0).has_errors());
        record_finding(case, class, detail, verified, cfg, totals);
        return;
    }

    let ladder = chaos::ladder_check(
        &pipe,
        &case.entry,
        &case.args,
        limits,
        cfg.ladder_rungs,
        &reference,
        exam.vm_outcome(),
        sink,
    );
    totals.ladder_runs += ladder.runs;
    totals.degraded_runs += ladder.degraded;
    if let Some((class, detail)) = ladder.finding {
        let verified = exam.residual.as_ref().map(|s0| !pe_verify::verify(s0).has_errors());
        record_finding(case, class, detail, verified, cfg, totals);
    }
}

fn record_finding(
    case: &Case,
    class: &str,
    detail: String,
    residual_verified: Option<bool>,
    cfg: &SiegeConfig,
    totals: &mut Totals,
) {
    let reproducer = if cfg.shrink {
        let class_owned = class.to_string();
        let (small, steps) = shrink::shrink(
            case,
            |c| refind(c, cfg.ladder_rungs).is_some_and(|k| k == class_owned),
            120,
        );
        totals.shrink_steps += steps;
        small
    } else {
        case.clone()
    };
    if cfg.persist_findings {
        if let Some(dir) = &cfg.corpus_dir {
            // Best effort: a read-only checkout must not turn one
            // finding into two.
            let _ = corpus::save_case(dir, &reproducer, class);
        }
    }
    totals.findings.push(Finding {
        case_name: case.name.clone(),
        class: class.to_string(),
        detail,
        source: reproducer.source,
        residual_verified,
    });
}

/// Re-runs oracle + ladder on a candidate reproducer, returning the
/// finding class if one (still) fires.  Used by the shrinker.
#[must_use]
pub fn refind(case: &Case, ladder_rungs: usize) -> Option<String> {
    let limits = oracle::oracle_limits();
    let pipe = match oracle::build(&case.source) {
        Err(_) => return Some("panic".to_string()),
        Ok(Err(_)) => return None,
        Ok(Ok(p)) => p,
    };
    let mut sink = pe_trace::NullSink;
    let exam = oracle::examine(&pipe, &case.entry, &case.args, limits, &mut sink);
    if let Some((class, _)) = exam.finding() {
        return Some(class.to_string());
    }
    let ladder = chaos::ladder_check(
        &pipe,
        &case.entry,
        &case.args,
        limits,
        ladder_rungs,
        exam.reference(),
        exam.vm_outcome(),
        &mut sink,
    );
    ladder.finding.map(|(class, _)| class.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SiegeConfig {
        SiegeConfig {
            seed: 7,
            cases: 12,
            ladder_rungs: 2,
            shrink: true,
            corpus_dir: None,
            persist_findings: false,
        }
    }

    #[test]
    fn tiny_siege_is_clean_and_deterministic() {
        let a = run_siege(&tiny());
        assert!(a.findings.is_empty(), "findings: {:#?}", a.findings);
        assert_eq!(a.cases, 12 + a.mutants);
        assert!(a.engine_runs > 0 && a.ladder_runs > 0);

        let b = run_siege(&tiny());
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.mutants, b.mutants);
        assert_eq!(a.engine_runs, b.engine_runs);
        assert_eq!(a.ladder_runs, b.ladder_runs);
        assert_eq!(a.trap_census, b.trap_census);
        for (ra, rb) in a.agreement.iter().zip(&b.agreement) {
            assert_eq!(ra.value_agree, rb.value_agree, "{}", ra.engine);
            assert_eq!(ra.disagree, rb.disagree, "{}", ra.engine);
        }
    }

    #[test]
    fn peak_sink_tracks_high_water_marks() {
        let mut s = PeakSink::new();
        s.gauge(Gauge::FuelUsed, 10);
        s.gauge(Gauge::FuelUsed, 4);
        s.gauge(Gauge::HeapUsed, 9);
        s.counter(Counter::VmSteps, 5);
        s.counter(Counter::VmSteps, 6);
        assert_eq!(s.peaks(), (10, 9, 0));
        assert_eq!(s.counter_total(Counter::VmSteps), 11);
    }

    #[test]
    fn refind_reports_nothing_on_a_healthy_case() {
        let case = Case {
            name: "ok".to_string(),
            source: "(define (main n) (add1 n))".to_string(),
            entry: "main".to_string(),
            args: vec![Datum::Int(1)],
        };
        assert_eq!(refind(&case, 2), None);
    }
}
