//! `pe-siege` — drive the robustness harness from the command line.
//!
//! ```text
//! pe-siege --quick              # fixed-seed CI smoke: corpus + 400 programs
//! pe-siege --soak               # sustained attack: corpus + 2000 programs
//! pe-siege --replay             # corpus only
//! pe-siege --seed N --cases N   # custom campaign
//! ```
//!
//! Exit status: 0 on a clean run, 1 when any finding survived, 2 on
//! usage or I/O errors.  Every mode writes `SIEGE_pe.json` (validated
//! against the pe-trace stream schema) to the working directory.

use pe_siege::{report, run_siege, SiegeConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: pe-siege [--quick | --soak | --replay] [--seed N] [--cases N] \
         [--rungs N] [--corpus DIR] [--out FILE] [--no-shrink]"
    );
    std::process::exit(2);
}

/// The corpus directory baked into the source tree, used unless
/// `--corpus` overrides it.
fn default_corpus() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

fn parse_args() -> (SiegeConfig, PathBuf, bool) {
    let mut cfg = SiegeConfig::quick();
    let mut out = PathBuf::from("SIEGE_pe.json");
    let mut corpus = Some(default_corpus());
    let mut replay_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cfg = SiegeConfig::quick(),
            "--soak" => cfg = SiegeConfig::soak(),
            "--replay" => replay_only = true,
            "--no-shrink" => cfg.shrink = false,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => usage(),
            },
            "--cases" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.cases = v,
                None => usage(),
            },
            "--rungs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.ladder_rungs = v,
                None => usage(),
            },
            "--corpus" => match args.next() {
                Some(v) => corpus = Some(PathBuf::from(v)),
                None => usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if replay_only {
        cfg.cases = 0;
        cfg.persist_findings = false;
    }
    cfg.corpus_dir = corpus;
    (cfg, out, replay_only)
}

fn main() -> ExitCode {
    let (cfg, out, replay_only) = parse_args();
    let t0 = Instant::now();
    let totals = run_siege(&cfg); // runs on a big-stack worker
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    print!("{}", report::summarize(&totals, elapsed_ns));

    if !replay_only {
        // Replay mode is a gate, not a campaign; only full runs leave
        // a report behind.
        match report::render(&totals, &cfg, elapsed_ns) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&out, text) {
                    eprintln!("pe-siege: cannot write {}: {e}", out.display());
                    return ExitCode::from(2);
                }
                println!("report: {}", out.display());
            }
            Err(e) => {
                eprintln!("pe-siege: {e}");
                return ExitCode::from(2);
            }
        }
    }

    ExitCode::from(u8::from(!totals.findings.is_empty()))
}
