//! The differential oracle: one subject program, every engine, one
//! verdict.
//!
//! Each case is run through the whole engine family — the three §4
//! interpreters (standard, closure-converted, tail), the Hobbit-like
//! baseline, the S₀ evaluator on the default residual, and the VM on
//! three compilation variants (default, flow optimizer off,
//! size-change analysis off) — under identical [`Limits`].  The
//! trichotomy the suite promises: every pair of engines either agrees
//! on the value, agrees on the structured trap class, or diverges for
//! a *documented* budget reason (different engines meter fuel, heap
//! and depth differently).  Anything else — a panic, two different
//! values, a machine trap out of a verified residual, a value against
//! a runtime error — is a finding.

use pe_core::{CompileOptions, S0Program, SpecError};
use pe_faultline::no_panic;
use pe_governor::{Limits, TrapClass};
use pe_interp::{Datum, InterpError};
use pe_trace::Sink;
use realistic_pe::{Pipeline, PipelineError};

/// Engine names, in report order.  `tail` (index [`REFERENCE`]) is the
/// reference: it is the engine the paper specializes, and the engine
/// robust execution degrades to.
pub const ENGINES: [&str; 8] = [
    "standard", "closconv", "tail", "hobbit", "s0-eval", "vm", "vm-noflow", "vm-nosct",
];

/// Index of the reference engine in [`ENGINES`].
pub const REFERENCE: usize = 2;

/// What one engine produced for one case, normalized for comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A first-order value.
    Value(Datum),
    /// A budget trap (fuel, depth, heap, …) of the given class.
    Trap(TrapClass),
    /// A machine trap or internal error: never legitimate from a
    /// parser-built, verified program — always a finding.
    Machine(String),
    /// A structured runtime error in the subject program (`car` of a
    /// non-pair, division by zero…).  Engines must agree on these.
    Runtime(String),
    /// The result contains a closure; first-order printing refused.
    HigherOrder,
    /// The engine refused the case up front (no such entry, arity).
    Refused(String),
    /// Specialization was cut off by its budget; the compiled engine
    /// has no result (robust execution would fall back to `tail`).
    Degraded(String),
    /// The engine panicked — the harness's reason to exist.
    Panicked(String),
}

impl Outcome {
    /// Short class tag used in findings and reports.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Value(_) => "value",
            Outcome::Trap(_) => "trap",
            Outcome::Machine(_) => "machine",
            Outcome::Runtime(_) => "runtime",
            Outcome::HigherOrder => "higher-order",
            Outcome::Refused(_) => "refused",
            Outcome::Degraded(_) => "degraded",
            Outcome::Panicked(_) => "panic",
        }
    }
}

/// How a pair of outcomes relates under the trichotomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agreement {
    /// Same value.
    ValueAgree,
    /// Same structured failure (same trap class, or both runtime
    /// errors, both refusals, both higher-order).
    TrapAgree,
    /// Both failed structurally but under different budgets — the
    /// documented cross-engine metering divergence.
    BudgetDivergence,
    /// Documented non-budget divergence: degraded compiles, refusals
    /// or higher-order results on one side, and the strictness
    /// improvement (a specialized engine returning a value where the
    /// strict reference errors — partial evaluation may eliminate dead
    /// erroring code, so residuals are *more* defined, never less).
    Documented,
    /// A real disagreement: a finding.
    Disagree,
}

/// True for the engines that execute specialized residuals (and may
/// therefore be more defined than the strict interpreters: unfolding,
/// dead-parameter elimination and constant folding legitimately drop
/// erroring code whose value is never consumed).
#[must_use]
pub fn is_specialized(engine: &str) -> bool {
    matches!(engine, "s0-eval" | "vm" | "vm-noflow" | "vm-nosct")
}

/// Classifies `engine`'s outcome `o` against the strict reference
/// outcome `reference` (the tail interpreter's).
#[must_use]
pub fn agreement(engine: &str, o: &Outcome, reference: &Outcome) -> Agreement {
    use Outcome::*;
    match (o, reference) {
        (Panicked(_), _) | (_, Panicked(_)) | (Machine(_), _) | (_, Machine(_)) => {
            Agreement::Disagree
        }
        (Value(x), Value(y)) => {
            if x == y {
                Agreement::ValueAgree
            } else {
                Agreement::Disagree
            }
        }
        (Trap(x), Trap(y)) => {
            if x == y {
                Agreement::TrapAgree
            } else {
                Agreement::BudgetDivergence
            }
        }
        // A budget trap against any completed outcome: the trapped
        // engine ran out of meter where the other finished.
        (Trap(_), _) | (_, Trap(_)) => Agreement::BudgetDivergence,
        (Runtime(_), Runtime(_)) => Agreement::TrapAgree,
        (Refused(_), Refused(_)) => Agreement::TrapAgree,
        (HigherOrder, HigherOrder) => Agreement::TrapAgree,
        // Degradation, one-sided refusals and higher-order results are
        // documented engine differences, not semantic splits.
        (Degraded(_), _) | (_, Degraded(_)) => Agreement::Documented,
        (Refused(_), _) | (_, Refused(_)) => Agreement::Documented,
        (HigherOrder, _) | (_, HigherOrder) => Agreement::Documented,
        // Specialized value where the strict reference errors: the
        // documented strictness improvement.  The reverse — an engine
        // *inventing* an error, or a strict interpreter skipping one —
        // is a semantic split.
        (Value(_), Runtime(_)) => {
            if is_specialized(engine) {
                Agreement::Documented
            } else {
                Agreement::Disagree
            }
        }
        (Runtime(_), Value(_)) => Agreement::Disagree,
    }
}

/// The oracle's full output for one case.
#[derive(Debug)]
pub struct Exam {
    /// `(engine name, outcome)` in [`ENGINES`] order.
    pub outcomes: Vec<(&'static str, Outcome)>,
    /// The default-options residual, when compilation succeeded —
    /// kept so findings can be re-verified against the S₀ checker.
    pub residual: Option<S0Program>,
    /// Engine executions performed (compiles included).
    pub runs: u64,
}

impl Exam {
    /// The reference (tail interpreter) outcome.
    #[must_use]
    pub fn reference(&self) -> &Outcome {
        &self.outcomes[REFERENCE].1
    }

    /// The default-VM outcome.
    #[must_use]
    pub fn vm_outcome(&self) -> &Outcome {
        &self.outcomes[5].1
    }

    /// The first finding-grade problem in this exam, if any: a panic,
    /// a machine trap / internal error, a value mismatch, or an
    /// invented runtime error (some engine errs where a strict
    /// interpreter computed a value).
    ///
    /// The converse split — strict interpreters err while specialized
    /// engines return values — is *not* a finding: partial evaluation
    /// eliminates dead erroring computations (unused let bindings,
    /// arguments to dead parameters, folded selectors), so residuals
    /// are legitimately more defined than the source.
    #[must_use]
    pub fn finding(&self) -> Option<(&'static str, String)> {
        for (name, o) in &self.outcomes {
            if let Outcome::Panicked(msg) = o {
                return Some(("panic", format!("{name}: {msg}")));
            }
        }
        for (name, o) in &self.outcomes {
            if let Outcome::Machine(msg) = o {
                return Some(("machine-trap", format!("{name}: {msg}")));
            }
        }
        let values: Vec<(&str, &Datum)> = self
            .outcomes
            .iter()
            .filter_map(|(n, o)| match o {
                Outcome::Value(d) => Some((*n, d)),
                _ => None,
            })
            .collect();
        if let Some((first_name, first)) = values.first() {
            for (n, d) in &values[1..] {
                if d != first {
                    return Some((
                        "value-mismatch",
                        format!("{first_name} = {first} but {n} = {d}"),
                    ));
                }
            }
        }
        // Class check anchored on the strict side only: a runtime
        // error anywhere is a finding iff some *interpreter* holds a
        // value for the same program.
        if let Some((strict_name, strict)) =
            values.iter().find(|(n, _)| !is_specialized(n))
        {
            for (n, o) in &self.outcomes {
                if let Outcome::Runtime(msg) = o {
                    return Some((
                        "class-mismatch",
                        format!("{strict_name} = {strict} but {n} errored: {msg}"),
                    ));
                }
            }
        }
        None
    }
}

/// Builds the pipeline for a case, reporting panics and structured
/// front-end rejections separately.
///
/// # Errors
///
/// `Ok(Err(msg))` is a structured parse/desugar rejection (a legal
/// outcome for hostile mutants); `Err(msg)` is a front-end panic (a
/// finding).
pub fn build(source: &str) -> Result<Result<Pipeline, String>, String> {
    no_panic(|| Pipeline::new(source).map_err(|e| e.to_string()))
}

fn classify(r: Result<Datum, InterpError>) -> Outcome {
    match r {
        Ok(d) => Outcome::Value(d),
        Err(InterpError::FuelExhausted) => Outcome::Trap(TrapClass::Fuel),
        Err(InterpError::Trap(t)) => {
            if t.is_budget() {
                Outcome::Trap(t.class())
            } else {
                Outcome::Machine(t.to_string())
            }
        }
        Err(e @ (InterpError::Prim(_)
        | InterpError::NotAProcedure(_)
        | InterpError::Unbound(_))) => Outcome::Runtime(e.to_string()),
        Err(InterpError::ResultNotFirstOrder) => Outcome::HigherOrder,
        Err(e @ (InterpError::NoSuchProc(_) | InterpError::EntryArity { .. })) => {
            Outcome::Refused(e.to_string())
        }
    }
}

fn classify_compile_err(e: &PipelineError) -> Outcome {
    match e {
        PipelineError::Spec(s) if s.is_degradable() => Outcome::Degraded(s.to_string()),
        PipelineError::Spec(SpecError::NoSuchProc(_) | SpecError::EntryArity { .. }) => {
            Outcome::Refused(e.to_string())
        }
        // Internal specializer faults, ill-formed residuals, VM or
        // baseline compile errors: never legitimate from parsed input.
        _ => Outcome::Machine(e.to_string()),
    }
}

fn guarded(f: impl FnOnce() -> Outcome) -> Outcome {
    match no_panic(f) {
        Ok(o) => o,
        Err(msg) => Outcome::Panicked(msg),
    }
}

/// Runs every engine on the case under `limits`, streaming engine
/// meters to `sink` (peaks end up in the soak report).
pub fn examine(
    pipe: &Pipeline,
    entry: &str,
    args: &[Datum],
    limits: Limits,
    sink: &mut dyn Sink,
) -> Exam {
    let mut outcomes: Vec<(&'static str, Outcome)> = Vec::with_capacity(ENGINES.len());
    let mut runs = 0u64;

    runs += 1;
    outcomes.push((
        "standard",
        guarded(|| classify(pe_interp::standard::run_with(&pipe.program, entry, args, limits, sink))),
    ));
    runs += 1;
    outcomes.push((
        "closconv",
        guarded(|| classify(pe_interp::closconv::run_with(&pipe.program, entry, args, limits, sink))),
    ));
    runs += 1;
    outcomes.push((
        "tail",
        guarded(|| classify(pe_interp::tail::run_with(&pipe.dprog, entry, args, limits, sink))),
    ));
    runs += 1;
    outcomes.push((
        "hobbit",
        guarded(|| match pe_hobbit::Hobbit::compile(&pipe.program) {
            Ok(h) => classify(h.run_with(entry, args, limits, sink)),
            Err(e) => Outcome::Machine(format!("hobbit compile: {e}")),
        }),
    ));

    // Default compilation feeds two engines: the S₀ evaluator and the
    // VM.  Compile once.
    let opts = CompileOptions { limits, ..CompileOptions::default() };
    let mut residual = None;
    runs += 1;
    let compiled = no_panic(|| pipe.compile(entry, &opts).map_err(|e| classify_compile_err(&e)));
    match compiled {
        Err(panic_msg) => {
            outcomes.push(("s0-eval", Outcome::Panicked(panic_msg.clone())));
            outcomes.push(("vm", Outcome::Panicked(panic_msg)));
        }
        Ok(Err(o)) => {
            outcomes.push(("s0-eval", o.clone()));
            outcomes.push(("vm", o));
        }
        Ok(Ok(s0)) => {
            runs += 2;
            outcomes.push((
                "s0-eval",
                guarded(|| classify(pe_core::eval::run_with(&s0, args, limits, sink))),
            ));
            outcomes.push((
                "vm",
                guarded(|| match pe_vm::Vm::compile(&s0) {
                    Ok(vm) => classify(vm.run_with(args, limits, sink).map(|(d, _)| d)),
                    Err(e) => Outcome::Machine(format!("vm compile: {e}")),
                }),
            ));
            residual = Some(s0);
        }
    }

    for (name, opts) in [
        ("vm-noflow", CompileOptions { limits, flow: false, trick_flow: false, ..CompileOptions::default() }),
        ("vm-nosct", CompileOptions { limits, sct: false, ..CompileOptions::default() }),
    ] {
        runs += 1;
        outcomes.push((
            name,
            guarded(|| match pipe.compile_vm(entry, &opts) {
                Ok(vm) => classify(vm.run_with(args, limits, sink).map(|(d, _)| d)),
                Err(e) => classify_compile_err(&e),
            }),
        ));
    }

    Exam { outcomes, residual, runs }
}

/// The shared oracle budget: small enough that divergent cases settle
/// in microseconds, large enough that the generator's terminating
/// programs finish with values.  The call-depth cap keeps the
/// host-stack engines (standard, closconv, hobbit) well inside a
/// default thread stack.
#[must_use]
pub fn oracle_limits() -> Limits {
    Limits::builder()
        .with_fuel(50_000)
        .with_depth(160)
        .with_syntax_depth(1_000)
        .with_unfold_depth(48)
        .with_heap(50_000)
        .with_residual(192)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_trace::NullSink;

    fn exam(src: &str, entry: &str, args: &[Datum]) -> Exam {
        let pipe = build(src).expect("no panic").expect("parses");
        examine(&pipe, entry, args, oracle_limits(), &mut NullSink)
    }

    #[test]
    fn all_engines_agree_on_a_value() {
        let e = exam(
            "(define (main n) (fact n)) (define (fact n) (if (< n 1) 1 (* n (fact (sub1 n)))))",
            "main",
            &[Datum::Int(5)],
        );
        for (name, o) in &e.outcomes {
            assert_eq!(o, &Outcome::Value(Datum::Int(120)), "{name}");
        }
        assert!(e.finding().is_none());
    }

    #[test]
    fn runtime_errors_agree_across_engines() {
        let e = exam("(define (main l) (car l))", "main", &[Datum::Int(7)]);
        for (name, o) in &e.outcomes {
            assert!(matches!(o, Outcome::Runtime(_)), "{name}: {o:?}");
        }
        assert!(e.finding().is_none());
    }

    #[test]
    fn omega_is_budget_divergence_not_a_finding() {
        let src = format!("(define (main n) {})", pe_faultline::omega_expr());
        let e = exam(&src, "main", &[Datum::Int(0)]);
        assert!(e.finding().is_none(), "{:?}", e.outcomes);
        // The reference interpreter burns fuel or unfolding depth; the
        // compiled engines degrade at specialization time.  Every
        // outcome stays in the structured family.
        for (name, o) in &e.outcomes {
            assert!(
                matches!(o, Outcome::Trap(_) | Outcome::Degraded(_)),
                "{name}: {o:?}"
            );
        }
    }

    #[test]
    fn higher_order_results_are_documented() {
        let e = exam("(define (main n) (lambda (y) n))", "main", &[Datum::Int(1)]);
        assert!(e.finding().is_none(), "{:?}", e.outcomes);
        let r = e.reference();
        assert!(matches!(r, Outcome::HigherOrder), "{r:?}");
    }

    #[test]
    fn agreement_flags_value_splits_and_documents_strictness() {
        let v1 = Outcome::Value(Datum::Int(1));
        let v2 = Outcome::Value(Datum::Int(2));
        let tf = Outcome::Trap(TrapClass::Fuel);
        let th = Outcome::Trap(TrapClass::Heap);
        let re = Outcome::Runtime("car of 7".into());
        assert_eq!(agreement("vm", &v1, &v1.clone()), Agreement::ValueAgree);
        assert_eq!(agreement("vm", &v1, &v2), Agreement::Disagree);
        assert_eq!(agreement("vm", &tf, &th), Agreement::BudgetDivergence);
        assert_eq!(agreement("vm", &tf, &v1), Agreement::BudgetDivergence);
        // A specialized engine may be more defined than the strict
        // reference (dead erroring code eliminated)...
        assert_eq!(agreement("vm", &v1, &re), Agreement::Documented);
        assert_eq!(agreement("s0-eval", &v1, &re), Agreement::Documented);
        // ...but a strict interpreter may not skip an error, and no
        // engine may invent one.
        assert_eq!(agreement("hobbit", &v1, &re), Agreement::Disagree);
        assert_eq!(agreement("vm", &re, &v1), Agreement::Disagree);
        assert_eq!(agreement("vm", &re, &re.clone()), Agreement::TrapAgree);
    }

    #[test]
    fn dead_erroring_binding_is_documented_not_a_finding() {
        // The interpreters evaluate the dead binding strictly and err;
        // specialization discards it and every compiled engine returns
        // the value.  This is the documented strictness improvement.
        let e = exam(
            "(define (main a) (let ((t (+ (quote ()) 0))) a))",
            "main",
            &[Datum::Int(7)],
        );
        assert!(e.finding().is_none(), "{:?}", e.outcomes);
        assert!(matches!(e.reference(), Outcome::Runtime(_)));
        assert_eq!(*e.vm_outcome(), Outcome::Value(Datum::Int(7)));
    }
}
