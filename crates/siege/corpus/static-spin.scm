; Dynamically divergent with a *static* restart: (spin 7) gives the
; specializer a fully static call it must memoize rather than unfold
; forever, and gives every engine an infinite runtime loop the fuel
; meter must cut.
(siege-case (entry main) (args 3))
(define (main n) (spin n))
(define (spin k) (if (zero? k) (spin 7) (spin (sub1 k))))
