; Checked arithmetic at the i64 edge: every engine must report the
; same structured overflow error; the specializer must residualize the
; erroring primitive, never evaluate it at compile time.
(siege-case (entry main) (args 3))
(define (main n) (+ n 9223372036854775806))
