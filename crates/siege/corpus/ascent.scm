; Arithmetic ascent: the size-change analysis calls this Unbounded and
; refuses it statically; without sct the residual loops until the fuel
; meter fires.  Engines split between depth and fuel traps -- a
; documented budget divergence, not a finding.
(siege-case (entry climb) (args 1))
(define (climb n) (if (zero? n) 0 (climb (add1 n))))
