; Mutual recursion across two procedures: terminating, value-agreeing,
; and a size-change graph with a two-step cycle.
(siege-case (entry main) (args 9))
(define (main n) (even n))
(define (even n) (if (< n 1) 1 (odd (sub1 n))))
(define (odd n) (if (< n 1) 0 (even (sub1 n))))
