; The Omega combinator in expression position: specialization must
; degrade on unfold depth and the interpreters must trap on fuel --
; never hang, never panic.
(siege-case (entry main) (args 0))
(define (main d) ((lambda (x) (x x)) (lambda (x) (x x))))
