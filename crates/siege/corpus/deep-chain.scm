; A 64-deep non-tail call chain at runtime plus nested arithmetic in
; the body: exercises the call-depth meter of the host-stack engines
; against the flat engines' indifference.
(siege-case (entry main) (args 64))
(define (main n) (down n))
(define (down n)
  (if (< n 1)
      0
      (add1 (down (sub1 n)))))
