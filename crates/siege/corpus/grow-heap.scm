; A cons loop that builds a 60-element list: finishes with a value at
; full budget, and must trap on the heap meter -- structurally -- as
; the chaos ladder halves the allowance.
(siege-case (entry main) (args 60))
(define (main n) (grow n (quote ())))
(define (grow n acc) (if (< n 1) acc (grow (sub1 n) (cons n acc))))
