; Dispatch over conditionally-chosen lambdas (The Trick's favourite
; shape) feeding a CPS helper: the closure-converted interpreter, the
; specializer's dispatch code and the flow optimizer all take
; different routes to the same value.
(siege-case (entry main) (args 4))
(define (main n)
  (apply1 (if (zero? n) (lambda (v) (add1 v)) (lambda (v) (sub1 v)))
          (pick n)))
(define (apply1 f x) (f x))
(define (pick n) (* n 3))
