//! End-to-end tests for pe-prof cost attribution: every phase that
//! claims attribution balances its books against the span totals, and
//! the deterministic part of the table (labels, phases, work units) is
//! identical across repeated traced compiles.

use pe_prof::Attribution;
use pe_trace::{CollectingSink, Phase};
use realistic_pe::{CompileOptions, Limits, Pipeline, SUITE};

type R = Result<(), Box<dyn std::error::Error>>;

/// One traced compile + hot-label profiled run, returning the sink.
fn trace_profiled(source: &str, entry: &str, inputs: &[realistic_pe::Datum]) -> R2 {
    let mut sink = CollectingSink::new();
    let pipe = Pipeline::new_traced(source, &mut sink)?;
    let (vm, _) = pipe.compile_vm_traced(entry, &CompileOptions::default(), &mut sink)?;
    vm.run_profiled_with(inputs, Limits::default(), &mut sink)?;
    Ok(sink)
}
type R2 = Result<CollectingSink, Box<dyn std::error::Error>>;

#[test]
fn every_benchmark_attributes_all_five_phases() -> R {
    for b in SUITE {
        let sink = trace_profiled(b.source, b.entry, &b.test_inputs())?;
        sink.check_balanced().map_err(|e| format!("{}: {e}", b.name))?;
        let table = Attribution::from_events(sink.events());
        let expect =
            [Phase::Specialize, Phase::Post, Phase::Flow, Phase::Verify, Phase::VmRun];
        assert_eq!(table.phases(), expect, "{}", b.name);
        // Every attributed label is a residual procedure (or the
        // explicit audit row), never empty.
        assert!(
            table.rows().iter().all(|r| !r.label.is_empty()),
            "{}: empty label",
            b.name
        );
    }
    Ok(())
}

#[test]
fn attribution_books_balance_against_span_totals() -> R {
    // The strict 5% gate runs in release mode via `pe-explain --prof`
    // (ci.sh); under the unoptimized test profile with a parallel test
    // harness stealing cores, allow more relative headroom and an
    // absolute floor so this never flakes while still catching a
    // broken accounting scheme (which is off by whole phases, not
    // percents).
    for b in SUITE {
        let sink = trace_profiled(b.source, b.entry, &b.test_inputs())?;
        let table = Attribution::from_events(sink.events());
        table
            .check_sums(sink.events(), 25, 5_000_000)
            .map_err(|e| format!("{}: {e}", b.name))?;
    }
    Ok(())
}

#[test]
fn redacted_attribution_is_deterministic_across_compiles() -> R {
    for b in SUITE {
        let a = trace_profiled(b.source, b.entry, &b.test_inputs())?;
        let b2 = trace_profiled(b.source, b.entry, &b.test_inputs())?;
        let ta = Attribution::from_events(a.events()).redacted();
        let tb = Attribution::from_events(b2.events()).redacted();
        // Same labels, same phases, same work units, same order — wall
        // times are the only nondeterministic column.
        assert_eq!(ta, tb, "{}: attribution tables diverged", b.name);
        assert!(!ta.is_empty(), "{}", b.name);
    }
    Ok(())
}

#[test]
fn vm_profile_ranks_hot_labels_deterministically() -> R {
    let b = realistic_pe::benchmark("tak").expect("tak exists");
    let pipe = Pipeline::new(b.source)?;
    let vm = pipe.compile_vm(b.entry, &CompileOptions::default())?;
    let mut sink = pe_trace::NullSink;
    let (v1, s1, p1) = vm.run_profiled_with(&b.test_inputs(), Limits::default(), &mut sink)?;
    let (v2, s2, p2) = vm.run_profiled_with(&b.test_inputs(), Limits::default(), &mut sink)?;
    assert_eq!(v1, v2);
    assert_eq!(s1.steps, s2.steps);
    assert_eq!(p1.entries, p2.entries, "hot-label counts must be exact");
    assert_eq!(p1.hottest(), p2.hottest());
    let (r, _) = vm.run(&b.test_inputs(), Limits::default())?;
    assert_eq!(v1, r, "profiling must not change results");
    Ok(())
}
