//! Translation validation for the pe-flow optimizer, over the whole
//! Fig. 8 Gabriel suite.
//!
//! The flow passes (copy/constant propagation, dead-binding
//! elimination, closure-slot pruning, dispatch-arm folding) rewrite the
//! residual program after specialization.  This suite checks the three
//! properties the optimizer must preserve:
//!
//! 1. **semantics** — the optimized program produces VM output
//!    identical to the unoptimized one on every benchmark;
//! 2. **verification** — the optimized program still passes every
//!    pe-verify pass, with zero flow-pass *warnings* (the flow lints
//!    mirror the optimizer, so clean output is by construction);
//! 3. **size** — optimization never grows a residual, and shrinks at
//!    least one benchmark (S₀ nodes and emitted C bytes).

use pe_verify::Pass;
use realistic_pe::{verify, COptions, CompileOptions, Datum, Limits, Pipeline, SUITE};

fn flow_off() -> CompileOptions {
    CompileOptions { flow: false, ..CompileOptions::default() }
}

#[test]
fn optimized_suite_is_differentially_equal_on_the_vm() {
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let args = b.test_inputs();
        let expect = Datum::parse(b.test_expect).unwrap();
        let (base, _) = pipe
            .run_compiled(b.entry, &args, &flow_off(), Limits::default())
            .unwrap();
        let (opt, _) = pipe
            .run_compiled(b.entry, &args, &CompileOptions::default(), Limits::default())
            .unwrap();
        assert_eq!(base, opt, "{}: flow changed the VM result", b.name);
        assert_eq!(opt, expect, "{}: wrong answer", b.name);
    }
}

#[test]
fn optimized_suite_repasses_verification_with_no_flow_warnings() {
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let s0 = pipe.compile(b.entry, &CompileOptions::default()).unwrap();
        let report = verify(&s0);
        assert!(report.is_clean(), "{}:\n{report}", b.name);
        let stuck: Vec<_> =
            report.warnings().filter(|d| d.pass == Pass::Flow).collect();
        assert!(
            stuck.is_empty(),
            "{}: optimized residual still carries flow findings: {stuck:?}",
            b.name
        );
    }
}

#[test]
fn optimization_never_grows_a_residual_and_shrinks_at_least_one() {
    let mut shrank_nodes = 0usize;
    let mut shrank_c = 0usize;
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let base = pipe.compile(b.entry, &flow_off()).unwrap();
        let opt = pipe.compile(b.entry, &CompileOptions::default()).unwrap();
        assert!(
            opt.size() <= base.size(),
            "{}: flow grew the residual ({} → {} nodes)",
            b.name,
            base.size(),
            opt.size()
        );
        assert!(opt.procs.len() <= base.procs.len(), "{}", b.name);
        if opt.size() < base.size() {
            shrank_nodes += 1;
        }

        let args = b.test_inputs();
        let c_base = realistic_pe::emit_c(&base, &args, &COptions::default());
        let c_opt = realistic_pe::emit_c(&opt, &args, &COptions::default());
        if c_opt.size_bytes() < c_base.size_bytes() {
            shrank_c += 1;
        }
    }
    assert!(shrank_nodes >= 1, "no benchmark shrank in S0 nodes");
    assert!(shrank_c >= 1, "no benchmark shrank in emitted C bytes");
}

#[test]
fn elided_moves_are_measured_and_safe_on_the_suite() {
    // The C emitter's liveness-driven move elision must fire somewhere
    // on the suite, and eliding must never change the generated
    // program's structure beyond removing moves (size can only shrink).
    let mut total_elided = 0usize;
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let args = b.test_inputs();
        let s0 = pipe.compile(b.entry, &CompileOptions::default()).unwrap();
        let on = realistic_pe::emit_c(&s0, &args, &COptions::default());
        let off = realistic_pe::emit_c(
            &s0,
            &args,
            &COptions { elide_moves: false, ..COptions::default() },
        );
        assert!(on.size_bytes() <= off.size_bytes(), "{}", b.name);
        assert_eq!(off.moves_elided, 0, "{}", b.name);
        total_elided += on.moves_elided;
    }
    assert!(total_elided >= 1, "move elision never fired on the suite");
}
