//! End-to-end §5 tests: the whole Fig. 8 suite through the C back end,
//! compiled with the system C compiler and executed, outputs compared
//! with the VM.  Skipped when no `cc` is installed.

use realistic_pe::{COptions, CompileOptions, Limits, Pipeline, SUITE};
use std::process::Command;

fn cc_available() -> bool {
    Command::new("cc").arg("--version").output().is_ok()
}

#[test]
fn whole_suite_through_c() {
    if !cc_available() {
        eprintln!("cc not available; skipping");
        return;
    }
    let dir = std::env::temp_dir().join(format!("pe-suite-c-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let args = b.test_inputs();
        let opts = CompileOptions::default();
        let s0 = pipe.compile(b.entry, &opts).unwrap();
        let c = realistic_pe::emit_c(&s0, &args, &COptions::default());
        let c_path = dir.join(format!("{}.c", b.name));
        let bin = dir.join(b.name);
        std::fs::write(&c_path, &c.source).unwrap();
        let out = Command::new("cc")
            .arg("-O1")
            .arg("-o")
            .arg(&bin)
            .arg(&c_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}: cc failed:\n{}",
            b.name,
            String::from_utf8_lossy(&out.stderr)
        );
        let out = Command::new(&bin).output().unwrap();
        assert!(out.status.success(), "{}: {}", b.name, String::from_utf8_lossy(&out.stderr));
        let c_result = String::from_utf8_lossy(&out.stdout).trim().to_string();

        let (vm_result, _) = pipe.run_compiled(b.entry, &args, &opts, Limits::default()).unwrap();
        assert_eq!(c_result, vm_result.to_string(), "{}: C vs VM", b.name);
        assert_eq!(c_result, b.test_expect, "{}: C vs expected", b.name);
    }
}

#[test]
fn c_sources_are_self_contained_ansi_ish() {
    // The generated file must compile alone with warnings-as-errors on
    // the constructs we control.
    if !cc_available() {
        eprintln!("cc not available; skipping");
        return;
    }
    let pipe = Pipeline::new("(define (f x) (+ x 1))").unwrap();
    let c = pipe.emit_c("f", &[realistic_pe::Datum::Int(1)], &CompileOptions::default()).unwrap();
    let dir = std::env::temp_dir().join(format!("pe-ansi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let c_path = dir.join("f.c");
    std::fs::write(&c_path, &c.source).unwrap();
    let out = Command::new("cc")
        // The fixed runtime header legitimately contains helpers a given
        // program does not call.
        .args(["-Wall", "-Wextra", "-Werror", "-Wno-unused-function", "-o"])
        .arg(dir.join("f"))
        .arg(&c_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "warnings in generated C:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
