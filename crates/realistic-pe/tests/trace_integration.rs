//! End-to-end tests for the pe-trace observability layer: span balance
//! and nesting across the whole pipeline, counter invariants, replay
//! determinism, and the JSONL schema.

use pe_trace::{jsonl, CollectingSink, Counter, Event, JsonlSink, Phase};
use realistic_pe::{benchmark, CompileOptions, Datum, Limits, Pipeline, SUITE};

type R = Result<(), Box<dyn std::error::Error>>;

/// Traces a full new → compile-vm → run round for `name` into a fresh
/// [`CollectingSink`], returning the sink.
fn trace_bench(name: &str) -> Result<CollectingSink, Box<dyn std::error::Error>> {
    let b = benchmark(name).expect("known benchmark");
    let mut sink = CollectingSink::new();
    let pipe = Pipeline::new_traced(b.source, &mut sink)?;
    let (vm, _) = pipe.compile_vm_traced(b.entry, &CompileOptions::default(), &mut sink)?;
    vm.run_with(&b.test_inputs(), Limits::default(), &mut sink)?;
    Ok(sink)
}

#[test]
fn suite_spans_balance_on_every_benchmark() -> R {
    for b in SUITE {
        let sink = trace_bench(b.name)?;
        sink.check_balanced().map_err(|e| format!("{}: {e}", b.name))?;
        // Every phase of the full path appears exactly once, in order.
        let opens: Vec<Phase> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SpanOpen { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        let expect = [
            Phase::Read,
            Phase::Parse,
            Phase::Desugar,
            Phase::Cfa,
            Phase::Sct,
            Phase::Specialize,
            Phase::Post,
            Phase::Flow,
            Phase::Verify,
            Phase::VmLoad,
            Phase::VmRun,
        ];
        assert_eq!(opens, expect, "{}", b.name);
        Ok::<(), Box<dyn std::error::Error>>(())?;
    }
    Ok(())
}

#[test]
fn memo_counter_invariant_holds() -> R {
    // The specializer's memo table: every lookup is either a hit or a
    // miss, and every miss creates at most one residual procedure.
    for b in SUITE {
        let sink = trace_bench(b.name)?;
        let lookups = sink.counter_total(Counter::MemoLookups);
        let hits = sink.counter_total(Counter::MemoHits);
        let misses = sink.counter_total(Counter::MemoMisses);
        assert_eq!(hits + misses, lookups, "{}", b.name);
        assert!(lookups > 0, "{}: no memo activity", b.name);
        assert!(
            sink.counter_total(Counter::ResidualProcs) <= misses + 1,
            "{}: more residual procedures than memo misses",
            b.name
        );
    }
    Ok(())
}

#[test]
fn residual_procs_counter_matches_program() -> R {
    let b = benchmark("tak").expect("known benchmark");
    let pipe = Pipeline::new(b.source)?;
    let mut sink = CollectingSink::new();
    let report = pipe.compile_traced(b.entry, &CompileOptions::default(), &mut sink)?;
    assert_eq!(report.counter(Counter::ResidualProcs), report.s0.procs.len() as u64);
    assert_eq!(report.counter(Counter::ResidualNodes), report.s0.size() as u64);
    // The aggregated report and the raw event stream agree.
    assert_eq!(
        report.counter(Counter::MemoLookups),
        sink.counter_total(Counter::MemoLookups)
    );
    Ok(())
}

#[test]
fn compile_report_covers_compile_phases() -> R {
    let b = benchmark("cps-append").expect("known benchmark");
    let pipe = Pipeline::new(b.source)?;
    let (_, report) =
        pipe.compile_vm_traced(b.entry, &CompileOptions::default(), &mut pe_trace::NullSink)?;
    let phases: Vec<Phase> = report.phases.iter().map(|&(p, _)| p).collect();
    assert_eq!(
        phases,
        [
            Phase::Cfa,
            Phase::Sct,
            Phase::Specialize,
            Phase::Post,
            Phase::Flow,
            Phase::Verify,
            Phase::VmLoad
        ]
    );
    // Phase times are genuine measurements summing to the total.
    assert_eq!(report.total_ns(), report.phases.iter().map(|&(_, ns)| ns).sum::<u64>());
    Ok(())
}

#[test]
fn tracing_is_deterministic_modulo_time() -> R {
    // Two traced compilations of the same program produce the same
    // event stream once durations are redacted.
    for name in ["tak", "fibclos", "queens"] {
        let a = trace_bench(name)?;
        let b = trace_bench(name)?;
        assert_eq!(a.redacted_events(), b.redacted_events(), "{name}");
    }
    Ok(())
}

#[test]
fn traced_and_untraced_compilation_agree() -> R {
    let b = benchmark("deriv").expect("known benchmark");
    let pipe = Pipeline::new(b.source)?;
    let plain = pipe.compile(b.entry, &CompileOptions::default())?;
    let report =
        pipe.compile_traced(b.entry, &CompileOptions::default(), &mut pe_trace::NullSink)?;
    assert_eq!(plain.to_source(), report.s0.to_source());
    Ok(())
}

#[test]
fn jsonl_stream_validates_against_schema() -> R {
    let b = benchmark("takl").expect("known benchmark");
    let mut sink = JsonlSink::new(Vec::new());
    let pipe = Pipeline::new_traced(b.source, &mut sink)?;
    let (vm, _) = pipe.compile_vm_traced(b.entry, &CompileOptions::default(), &mut sink)?;
    vm.run_with(&b.test_inputs(), Limits::default(), &mut sink)?;
    let text = String::from_utf8(sink.finish()?)?;
    let summary = jsonl::validate(&text).map_err(|e| format!("schema: {e}"))?;
    assert_eq!(summary.spans_opened, summary.spans_closed);
    assert_eq!(summary.spans_closed, 11);
    assert_eq!(summary.max_depth, 1);
    assert!(summary.counter("vm_steps") > 0);
    Ok(())
}

#[test]
fn golden_jsonl_shape_for_a_tiny_program() -> R {
    // A golden test pinning the JSONL schema: field names, field order,
    // and event sequence for a fixed program (durations vary, so close
    // lines are matched by prefix).
    let pipe = Pipeline::new("(define (id x) x)")?;
    let mut sink = JsonlSink::new(Vec::new());
    let report = pipe.compile_traced("id", &CompileOptions::default(), &mut sink)?;
    let text = String::from_utf8(sink.finish()?)?;
    let golden: &[&str] = &[
        r#"{"type":"span_open","phase":"cfa","depth":0}"#,
        r#"{"type":"span_close","phase":"cfa","depth":0,"dur_ns":"#,
        r#"{"type":"span_open","phase":"sct","depth":0}"#,
        r#"{"type":"span_close","phase":"sct","depth":0,"dur_ns":"#,
        r#"{"type":"counter","name":"sct_bounded","delta":1}"#,
        r#"{"type":"span_open","phase":"specialize","depth":0}"#,
        r#"{"type":"counter","name":"memo_lookups","delta":1}"#,
        r#"{"type":"counter","name":"memo_misses","delta":1}"#,
        r#"{"type":"counter","name":"unfold_steps","delta":1}"#,
        r#"{"type":"attr","phase":"specialize","label":"id","ns":"#,
        r#"{"type":"attr","phase":"specialize","label":"sl-eval-$1","ns":"#,
        r#"{"type":"span_close","phase":"specialize","depth":0,"dur_ns":"#,
        r#"{"type":"span_open","phase":"post","depth":0}"#,
        r#"{"type":"attr","phase":"post","label":"id","ns":"#,
        r#"{"type":"span_close","phase":"post","depth":0,"dur_ns":"#,
        r#"{"type":"span_open","phase":"flow","depth":0}"#,
        r#"{"type":"attr","phase":"flow","label":"id","ns":"#,
        r#"{"type":"span_close","phase":"flow","depth":0,"dur_ns":"#,
        r#"{"type":"counter","name":"cfg_nodes","delta":2}"#,
        r#"{"type":"counter","name":"cfg_edges","delta":1}"#,
        r#"{"type":"counter","name":"residual_procs","delta":1}"#,
        r#"{"type":"counter","name":"residual_nodes","delta":"#,
        r#"{"type":"span_open","phase":"verify","depth":0}"#,
        r#"{"type":"attr","phase":"verify","label":"id","ns":"#,
        r#"{"type":"attr","phase":"verify","label":"<audit>","ns":"#,
        r#"{"type":"span_close","phase":"verify","depth":0,"dur_ns":"#,
    ];
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), golden.len(), "{text}");
    for (line, want) in lines.iter().zip(golden) {
        assert!(line.starts_with(want), "line {line:?} does not match {want:?}");
    }
    // One reduction step: the entry body itself (no call unfolding).
    assert_eq!(report.counter(Counter::UnfoldSteps), 1);
    Ok(())
}

#[test]
fn unmix_specialize_with_emits_bta_span_and_counters() -> R {
    let p = realistic_pe::parse_source(
        "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))",
    )?;
    let mut sink = CollectingSink::new();
    let r = pe_unmix::specialize_with(
        &p,
        "power",
        &[None, Some(Datum::Int(5))],
        &pe_unmix::UnmixOptions::default(),
        &mut sink,
    )?;
    assert!(!r.to_source().contains("(if"));
    sink.check_balanced().map_err(|e| format!("unbalanced: {e}"))?;
    let opens: Vec<Phase> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::SpanOpen { phase, .. } => Some(*phase),
            _ => None,
        })
        .collect();
    assert_eq!(opens, [Phase::Bta, Phase::Specialize, Phase::Post]);
    // Power recurses on its static exponent: the division residualizes
    // it and memoization specializes one variant per exponent value
    // (post-unfolding then collapses them — hence no `(if` above).
    let lookups = sink.counter_total(Counter::MemoLookups);
    let hits = sink.counter_total(Counter::MemoHits);
    let misses = sink.counter_total(Counter::MemoMisses);
    assert_eq!(hits + misses, lookups);
    assert!(misses >= 5, "one memo miss per static exponent value, got {misses}");
    Ok(())
}

#[test]
fn trap_carries_gauge_snapshot() -> R {
    // A fuel-exhausted VM run flushes its meters as gauges so the trap
    // can be explained post mortem.
    let b = benchmark("tak").expect("known benchmark");
    let pipe = Pipeline::new(b.source)?;
    let (vm, _) =
        pipe.compile_vm_traced(b.entry, &CompileOptions::default(), &mut pe_trace::NullSink)?;
    let mut sink = CollectingSink::new();
    let tight = Limits { fuel: 100, ..Limits::default() };
    let r = vm.run_with(&b.test_inputs(), tight, &mut sink);
    assert!(r.is_err(), "expected a fuel trap");
    sink.check_balanced().map_err(|e| format!("unbalanced: {e}"))?;
    assert_eq!(sink.gauge_last(pe_trace::Gauge::FuelUsed), Some(100));
    Ok(())
}
