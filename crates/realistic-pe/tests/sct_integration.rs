//! Integration tests for the size-change termination analysis (pe-sct)
//! over the whole Fig. 8 Gabriel suite.
//!
//! The analysis classifies every specialization-point candidate before
//! the specializer runs and feeds the verdicts back as static control:
//! eager generalization where growth is provable, no widening machinery
//! where descent is provable, and an outright reject where divergence
//! is provable.  This suite checks the properties that feedback must
//! preserve:
//!
//! 1. **coverage** — every benchmark procedure receives a verdict and
//!    none is (wrongly) rejected as divergent;
//! 2. **semantics** — residuals compiled with the analysis on and off
//!    produce identical VM results on every benchmark;
//! 3. **prediction** — pass 7 of pe-verify reports zero termination
//!    warnings on every compile path: no widening the analysis failed
//!    to anticipate;
//! 4. **effect** — suite-wide dynamic widenings drop when the analysis
//!    is on, replaced by statically anticipated eager generalizations.

use pe_verify::Pass;
use realistic_pe::{
    CompileOptions, Counter, Datum, Limits, Pipeline, Verdict, SUITE,
};

fn sct_off() -> CompileOptions {
    CompileOptions { sct: false, ..CompileOptions::default() }
}

#[test]
fn every_benchmark_is_classified_and_none_rejected() {
    let mut bounded = 0usize;
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let flow = pe_frontend::flow::FlowAnalysis::analyze(&pipe.dprog);
        let a = pe_sct::analyze(&pipe.dprog, &flow, b.entry);
        assert!(
            a.divergence.is_none(),
            "{}: a terminating benchmark was rejected as divergent",
            b.name
        );
        let verdicts = a.named_verdicts(&pipe.dprog);
        assert_eq!(
            verdicts.len(),
            pipe.dprog.defs.len(),
            "{}: a procedure escaped classification",
            b.name
        );
        bounded += verdicts.iter().filter(|&&(_, v)| v == Verdict::Bounded).count();
        // The stats cross-check the verdict list exactly.
        assert_eq!(
            (a.stats.bounded + a.stats.unbounded + a.stats.unknown) as usize,
            verdicts.len(),
            "{}",
            b.name
        );
    }
    assert!(bounded >= 4, "the analysis proved almost nothing on the suite");
}

#[test]
fn entry_verdicts_match_the_known_shapes() {
    // Spot checks pinning the analysis against hand-derived verdicts:
    // deriv destructs its expression tree (structural descent), the
    // CPS benchmarks grow their continuation (unbounded-or-eager
    // territory), tak shuffles its arguments through context lambdas
    // (no provable descent).
    let expect = [
        ("deriv", "deriv", Verdict::Bounded),
        ("cps-append", "cps-append", Verdict::Bounded),
        ("fibclos", "fib-k", Verdict::Bounded),
        ("tak", "tak", Verdict::Unknown),
    ];
    for (bench, proc_name, want) in expect {
        let b = realistic_pe::benchmark(bench).unwrap();
        let pipe = Pipeline::new(b.source).unwrap();
        let flow = pe_frontend::flow::FlowAnalysis::analyze(&pipe.dprog);
        let a = pe_sct::analyze(&pipe.dprog, &flow, b.entry);
        let got = a
            .named_verdicts(&pipe.dprog)
            .into_iter()
            .find(|(n, _)| *n == proc_name)
            .map(|(_, v)| v);
        assert_eq!(got, Some(want), "{bench}/{proc_name}");
    }
}

#[test]
fn suite_is_differentially_equal_with_the_analysis_on_and_off() {
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let args = b.test_inputs();
        let expect = Datum::parse(b.test_expect).unwrap();
        let (off, _) =
            pipe.run_compiled(b.entry, &args, &sct_off(), Limits::default()).unwrap();
        let (on, _) = pipe
            .run_compiled(b.entry, &args, &CompileOptions::default(), Limits::default())
            .unwrap();
        assert_eq!(off, on, "{}: the analysis changed the VM result", b.name);
        assert_eq!(on, expect, "{}: wrong answer", b.name);
    }
}

#[test]
fn compile_paths_carry_zero_termination_warnings() {
    // The acceptance bar for the prediction: on every benchmark the
    // specializer performs no widening the analysis failed to
    // anticipate — pass 7 stays silent.
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let report = pipe.verify(b.entry, &CompileOptions::default()).unwrap();
        assert!(report.is_clean(), "{}:\n{report}", b.name);
        let noisy: Vec<_> =
            report.warnings().filter(|d| d.pass == Pass::Termination).collect();
        assert!(
            noisy.is_empty(),
            "{}: unanticipated dynamic control: {noisy:?}",
            b.name
        );
    }
}

#[test]
fn suite_wide_widenings_drop_with_the_analysis_on() {
    let mut widen_on = 0u64;
    let mut widen_off = 0u64;
    let mut eager_on = 0u64;
    for b in SUITE {
        let pipe = Pipeline::new(b.source).unwrap();
        let on = pipe
            .compile_traced(b.entry, &CompileOptions::default(), &mut pe_trace::NullSink)
            .unwrap();
        let off = pipe
            .compile_traced(b.entry, &sct_off(), &mut pe_trace::NullSink)
            .unwrap();
        widen_on += on.counter(Counter::Widenings);
        widen_off += off.counter(Counter::Widenings);
        eager_on += on.counter(Counter::EagerGeneralizations);
        // Per benchmark the analysis never *adds* dynamic widenings.
        assert!(
            on.counter(Counter::Widenings) <= off.counter(Counter::Widenings),
            "{}: the analysis added widenings ({} → {})",
            b.name,
            off.counter(Counter::Widenings),
            on.counter(Counter::Widenings)
        );
    }
    assert!(
        widen_on < widen_off,
        "suite-wide dynamic widenings did not drop ({widen_off} → {widen_on})"
    );
    assert!(eager_on > 0, "no eager generalization ever fired on the suite");
}
