//! Integration tests for the Futamura-projection route (§3) and the
//! interplay between the Unmix clone and the rest of the pipeline.

use realistic_pe::{compile_by_futamura, parse_source, Datum, Limits, UnmixOptions, FUTAMURA_ENTRY};

fn run_prog(
    p: &realistic_pe::Program,
    entry: &str,
    args: &[Datum],
) -> Result<Datum, pe_interp::InterpError> {
    pe_interp::standard::run(p, entry, args, Limits::default())
}

#[test]
fn futamura_compiles_recursive_list_programs() {
    for (src, entry, input, expect) in [
        (
            "(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))",
            "sum",
            "(1 2 3 4 5)",
            "15",
        ),
        (
            "(define (rev l) (rev-acc l '()))
             (define (rev-acc l acc)
               (if (null? l) acc (rev-acc (cdr l) (cons (car l) acc))))",
            "rev",
            "(1 2 3)",
            "(3 2 1)",
        ),
        (
            "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
            "fib",
            "12",
            "144",
        ),
    ] {
        let subject = parse_source(src).unwrap();
        let compiled = compile_by_futamura(&subject, &UnmixOptions::default()).unwrap();
        let arg = Datum::parse(input).unwrap();
        let direct = run_prog(&subject, entry, std::slice::from_ref(&arg)).unwrap();
        let via = run_prog(&compiled, FUTAMURA_ENTRY, &[pe_interp::Value::list([arg])]).unwrap();
        assert_eq!(direct, via, "{entry}");
        assert_eq!(direct.to_string(), expect);
    }
}

#[test]
fn futamura_target_has_no_interpretive_dispatch() {
    let subject =
        parse_source("(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))").unwrap();
    let compiled = compile_by_futamura(&subject, &UnmixOptions::default()).unwrap();
    let text = compiled.to_source();
    // The expression-tag dispatch of sint's `ev` is all static: none of
    // the tags survive into the target.
    for tag in ["'var", "'const", "'prim", "'call", "bad-expression", "bad-prim"] {
        assert!(!text.contains(tag), "interpretive residue {tag} in:\n{text}");
    }
}

#[test]
fn arity_raising_flattens_interpreter_environments() {
    // Without the arity raiser + post-unfolding, sint's runtime value
    // lists survive as (car (cons …)) chains; with it they are gone —
    // the paper's "crucial" claim, as a testable fact.
    let subject =
        parse_source("(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))").unwrap();
    let on = compile_by_futamura(&subject, &UnmixOptions::default()).unwrap();
    let off = compile_by_futamura(
        &subject,
        &UnmixOptions { postprocess: false, ..UnmixOptions::default() },
    )
    .unwrap();
    let on_text = on.to_source();
    let off_text = off.to_source();
    assert!(
        on_text.len() < off_text.len(),
        "post-processing must shrink the target: {} vs {}",
        on_text.len(),
        off_text.len()
    );
    // The raised target destructs no interpreter-built argument lists.
    assert!(!on_text.contains("(car (cons"), "{on_text}");
}

#[test]
fn futamura_and_direct_pipeline_agree() {
    // The same subject program compiled through both routes — the
    // specializer-projection compiler (pe-core) and the Futamura
    // projection over sint (pe-unmix) — computes the same function.
    let src = "(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))";
    let subject = parse_source(src).unwrap();
    let futamura = compile_by_futamura(&subject, &UnmixOptions::default()).unwrap();

    let pipe = realistic_pe::Pipeline::new(src).unwrap();
    let vm = pipe.compile_vm("sum", &realistic_pe::CompileOptions::default()).unwrap();

    for input in ["()", "(1)", "(1 2 3)", "(5 5 5 5)"] {
        let arg = Datum::parse(input).unwrap();
        let (core_result, _) = vm.run(std::slice::from_ref(&arg), Limits::default()).unwrap();
        let unmix_result =
            run_prog(&futamura, FUTAMURA_ENTRY, &[pe_interp::Value::list([arg])]).unwrap();
        assert_eq!(core_result, unmix_result, "input {input}");
    }
}
