//! End-to-end reproduction of the paper's §1 worked example.

use realistic_pe::{
    specialize, CompileOptions, Datum, GenStrategy, Limits, Pipeline, Vm,
};

const CPS_APPEND: &str = "(define (append x y) (cps-append x y (lambda (v) v)))
(define (cps-append x y c)
  (if (null? x) (c y)
      (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";

/// "The compiler converts the program to first-order tail-recursive
/// Scheme.  It residualizes the lambda appearing in the program, and
/// represents the resulting functions by closures."
#[test]
fn compilation_produces_closure_converted_tail_code() {
    let pipe = Pipeline::new(CPS_APPEND).unwrap();
    let s0 = pipe.compile("append", &CompileOptions::default()).unwrap();
    let text = s0.to_source();
    // Closures are constructed with make-closure and dispatched on
    // closure-label, exactly as in the paper's listing.
    assert!(text.contains("make-closure"), "{text}");
    assert!(text.contains("closure-label"), "{text}");
    assert!(text.contains("closure-freeval"), "{text}");
    // The identity continuation's closure has no free values: there is a
    // make-closure with only a label argument.
    assert!(
        s0.procs.iter().any(|p| format!("{}", p.to_sexpr()).contains("(make-closure ")),
        "{text}"
    );
    // Dispatch is sequential: an equal? test against a closure label.
    assert!(text.contains("(equal? "), "{text}");

    // And of course it runs.
    let vm = Vm::compile(&s0).unwrap();
    let (r, _) = vm
        .run(
            &[Datum::parse("(1 2)").unwrap(), Datum::parse("(3 4)").unwrap()],
            Limits::default(),
        )
        .unwrap();
    assert_eq!(r.to_string(), "(1 2 3 4)");
}

/// "When given a known first argument (foo bar), the compiler performs
/// specialization: (define (append-$1 y) (cons foo (cons bar y)))"
#[test]
fn specialization_matches_paper_output() {
    let pipe = Pipeline::new(CPS_APPEND).unwrap();
    let opts = CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };
    let s0 = specialize(
        &pipe.dprog,
        "append",
        &[Some(Datum::parse("(foo bar)").unwrap()), None],
        &opts,
    )
    .unwrap();
    // Exactly one residual procedure with exactly the paper's body.
    assert_eq!(s0.procs.len(), 1, "{s0}");
    let text = s0.procs[0].to_sexpr().to_string();
    assert_eq!(
        text,
        "(define (append-$1 y) (cons (quote foo) (cons (quote bar) y)))"
    );
}

/// The §1 example across both generalization strategies and a spread of
/// inputs, verified against the reference interpreter.
#[test]
fn append_agrees_with_reference_on_many_inputs() {
    let pipe = Pipeline::new(CPS_APPEND).unwrap();
    for strategy in [GenStrategy::Offline, GenStrategy::Online] {
        let opts = CompileOptions { strategy, ..CompileOptions::default() };
        let vm = pipe.compile_vm("append", &opts).unwrap();
        for (x, y) in [
            ("()", "()"),
            ("()", "(1)"),
            ("(1)", "()"),
            ("(1 2 3 4 5 6 7 8 9 10)", "(a b c)"),
            ("((1 2) (3))", "((4))"),
        ] {
            let args = [Datum::parse(x).unwrap(), Datum::parse(y).unwrap()];
            let expect = pipe.run_standard("append", &args, Limits::default()).unwrap();
            let (got, _) = vm.run(&args, Limits::default()).unwrap();
            assert_eq!(got, expect, "append {x} {y} [{strategy:?}]");
        }
    }
}

/// Jones's 1987 challenge 11.5 (§Abstract/§1): automatic conversion of a
/// non-tail-recursive program into tail form.  The compiled fib is
/// executable with bounded host stack — the control stack has become an
/// ordinary runtime data structure.
#[test]
fn jones_challenge_tail_conversion() {
    let pipe =
        Pipeline::new("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))").unwrap();
    let s0 = pipe.compile("fib", &CompileOptions::default()).unwrap();
    // S0Tail has no non-tail call form at all — conversion is total by
    // construction; the verifier plus execution demonstrates it.
    assert!(realistic_pe::verify(&s0).is_clean());
    let vm = Vm::compile(&s0).unwrap();
    let (r, stats) = vm.run(&[Datum::Int(20)], Limits::default()).unwrap();
    assert_eq!(r, Datum::Int(6765));
    // The evaluation contexts live on the heap now.
    assert!(stats.allocs > 0);
}
