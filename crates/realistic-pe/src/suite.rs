//! The benchmark suite of §6 (Fig. 8): `deriv`, `tak`, `cpstak`, `takl`,
//! `fibclos`, `cps-append` and `queens`, written in the subject
//! language.
//!
//! Each [`Benchmark`] carries two input sizes: `test` (fast, used by the
//! correctness tests) and `bench` (the measured configuration, scaled so
//! the whole suite runs in seconds on the S₀ virtual machine — the paper
//! measured milliseconds on a PowerPC/250; we reproduce *shape*, not
//! absolute numbers).

use pe_interp::Datum;

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The Fig. 8 row name.
    pub name: &'static str,
    /// Subject-language source text.
    pub source: &'static str,
    /// Entry procedure.
    pub entry: &'static str,
    /// Fast arguments for tests, as parseable data.
    pub test_args: &'static [&'static str],
    /// Expected result on `test_args` (printed form).
    pub test_expect: &'static str,
    /// Measured arguments for benchmarks.
    pub bench_args: &'static [&'static str],
    /// True if the program is higher-order before compilation (the axis
    /// of the paper's Fig. 8 discussion).
    pub higher_order: bool,
    /// The paper's Fig. 8 timing for "ours" (ms on a PowerPC/250).
    pub paper_ours_ms: u32,
    /// The paper's Fig. 8 timing for Hobbit (ms).
    pub paper_hobbit_ms: u32,
}

impl Benchmark {
    /// Parses the test arguments.
    pub fn test_inputs(&self) -> Vec<Datum> {
        self.test_args.iter().map(|s| Datum::parse(s).expect("parseable")).collect()
    }

    /// Parses the benchmark arguments.
    pub fn bench_inputs(&self) -> Vec<Datum> {
        self.bench_args.iter().map(|s| Datum::parse(s).expect("parseable")).collect()
    }
}

/// `deriv` — symbolic differentiation (Gabriel suite), binary `+`/`*`.
pub const DERIV: Benchmark = Benchmark {
    name: "deriv",
    source: r"
(define (deriv e)
  (if (symbol? e) (if (eq? e 'x) 1 0)
      (if (number? e) 0
          (if (eq? (car e) '+)
              (cons '+ (cons (deriv (car (cdr e))) (cons (deriv (car (cdr (cdr e)))) '())))
              (if (eq? (car e) '*)
                  (cons '+
                    (cons (cons '* (cons (car (cdr e)) (cons (deriv (car (cdr (cdr e)))) '())))
                      (cons (cons '* (cons (deriv (car (cdr e))) (cons (car (cdr (cdr e))) '())))
                        '())))
                  e)))))
(define (deriv-n e n)
  (if (zero? n) (deriv e) (nth-junk (deriv e) e (- n 1))))
(define (nth-junk d e n) (deriv-n e n))",
    entry: "deriv-n",
    test_args: &["(+ (* 3 (* x x)) (* b x))", "3"],
    test_expect: "(+ (+ (* 3 (+ (* x 1) (* 1 x))) (* 0 (* x x))) (+ (* b 1) (* 0 x)))",
    bench_args: &["(+ (* 3 (* x x)) (+ (* a (* x x)) (+ (* b x) 5)))", "300"],
    higher_order: false,
    paper_ours_ms: 2420,
    paper_hobbit_ms: 390,
};

/// `tak` — the Takeuchi function.
pub const TAK: Benchmark = Benchmark {
    name: "tak",
    source: r"
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))",
    entry: "tak",
    test_args: &["12", "6", "3"],
    test_expect: "4",
    bench_args: &["18", "12", "6"],
    higher_order: false,
    paper_ours_ms: 5820,
    paper_hobbit_ms: 810,
};

/// `cpstak` — Takeuchi in continuation-passing style.
pub const CPSTAK: Benchmark = Benchmark {
    name: "cpstak",
    source: r"
(define (cpstak x y z) (tak-k x y z (lambda (a) a)))
(define (tak-k x y z k)
  (if (not (< y x)) (k z)
      (tak-k (- x 1) y z
        (lambda (v1)
          (tak-k (- y 1) z x
            (lambda (v2)
              (tak-k (- z 1) x y
                (lambda (v3) (tak-k v1 v2 v3 k)))))))))",
    entry: "cpstak",
    test_args: &["12", "6", "3"],
    test_expect: "4",
    bench_args: &["18", "12", "6"],
    higher_order: true,
    paper_ours_ms: 6400,
    paper_hobbit_ms: 6490,
};

/// `takl` — Takeuchi on unary (list) numbers.
pub const TAKL: Benchmark = Benchmark {
    name: "takl",
    source: r"
(define (listn n) (if (zero? n) '() (cons n (listn (- n 1)))))
(define (shorterp x y)
  (if (null? y) #f (if (null? x) #t (shorterp (cdr x) (cdr y)))))
(define (mas x y z)
  (if (not (shorterp y x)) z
      (mas (mas (cdr x) y z) (mas (cdr y) z x) (mas (cdr z) x y))))
(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
(define (takl x y z) (len (mas (listn x) (listn y) (listn z))))",
    entry: "takl",
    test_args: &["8", "4", "2"],
    test_expect: "3",
    bench_args: &["14", "10", "5"],
    higher_order: false,
    paper_ours_ms: 220,
    paper_hobbit_ms: 870,
};

/// `fibclos` — Fibonacci with the recursion threaded through closures.
pub const FIBCLOS: Benchmark = Benchmark {
    name: "fibclos",
    source: r"
(define (fibclos n) (fib-k n (lambda (r) r)))
(define (fib-k n k)
  (if (< n 2) (k n)
      (fib-k (- n 1)
        (lambda (f1) (fib-k (- n 2) (lambda (f2) (k (+ f1 f2))))))))",
    entry: "fibclos",
    test_args: &["12"],
    test_expect: "144",
    bench_args: &["21"],
    higher_order: true,
    paper_ours_ms: 15820,
    paper_hobbit_ms: 19480,
};

/// `cps-append` — the paper's §1 example, iterated.
pub const CPS_APPEND: Benchmark = Benchmark {
    name: "cps-append",
    source: r"
(define (cps-append x y c)
  (if (null? x) (c y)
      (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))
(define (append2 x y) (cps-append x y (lambda (v) v)))
(define (listn n) (if (zero? n) '() (cons n (listn (- n 1)))))
(define (append-loop n reps)
  (run-append (listn n) (listn n) reps))
(define (run-append x y reps)
  (if (zero? reps) (len (append2 x y)) (drop (append2 x y) x y (- reps 1))))
(define (drop r x y reps) (run-append x y reps))
(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))",
    entry: "append-loop",
    test_args: &["5", "3"],
    test_expect: "10",
    bench_args: &["120", "400"],
    higher_order: true,
    paper_ours_ms: 5480,
    paper_hobbit_ms: 36340,
};

/// `queens` — counting the solutions of the n-queens problem.
pub const QUEENS: Benchmark = Benchmark {
    name: "queens",
    source: r"
(define (ok? row dist placed)
  (if (null? placed) #t
      (if (= (car placed) row) #f
          (if (= (car placed) (+ row dist)) #f
              (if (= (car placed) (- row dist)) #f
                  (ok? row (+ dist 1) (cdr placed)))))))
(define (queens-col col n placed)
  (if (> col n) 1 (loop-rows 1 col n placed)))
(define (loop-rows row col n placed)
  (if (> row n) 0
      (+ (if (ok? row 1 placed) (queens-col (+ col 1) n (cons row placed)) 0)
         (loop-rows (+ row 1) col n placed))))
(define (queens n) (queens-col 1 n '()))",
    entry: "queens",
    test_args: &["6"],
    test_expect: "4",
    bench_args: &["8"],
    higher_order: false,
    paper_ours_ms: 8110,
    paper_hobbit_ms: 2370,
};

/// The full Fig. 8 suite, in the paper's row order.
pub const SUITE: &[Benchmark] = &[DERIV, TAK, CPSTAK, TAKL, FIBCLOS, CPS_APPEND, QUEENS];

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    SUITE.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::parse_source;

    #[test]
    fn suite_parses() {
        for b in SUITE {
            parse_source(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!b.test_inputs().is_empty() || b.name == "noargs");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("tak").is_some());
        assert!(benchmark("nope").is_none());
        assert_eq!(SUITE.len(), 7, "all Fig. 8 rows present");
    }
}
