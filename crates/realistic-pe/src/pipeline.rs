//! The end-to-end compilation pipeline, tying every crate together:
//!
//! ```text
//! source ──parse──▶ surface AST ──desugar──▶ tail form (Fig. 5)
//!    ──specializing compiler (Fig. 7)──▶ S₀ ──▶ VM / C back end
//! ```
//!
//! plus the two §6 comparators: the interpreter family and the
//! Hobbit-like baseline.

use pe_core::{CompileOptions, S0Program, SpecError};
use pe_frontend::{desugar, parse_program_positioned, DProgram, ParseError, Program};
use pe_hobbit::Hobbit;
use pe_interp::{Datum, InterpError, Limits};
use pe_trace::{Aggregator, Counter, NullSink, Phase, Sink};
use pe_vm::{Vm, VmStats};
use std::fmt;

/// Any error the pipeline can produce.
#[derive(Debug)]
pub enum PipelineError {
    /// Reading/parsing/validation failed.
    Parse(ParseError),
    /// Desugaring failed (programmatic ASTs only).
    Desugar(pe_frontend::DesugarError),
    /// Specialization failed.
    Spec(SpecError),
    /// The compiled program did not pass the S₀ well-formedness check.
    IllFormed(Vec<String>),
    /// Baseline compilation failed.
    Hobbit(pe_hobbit::HobError),
    /// VM compilation failed.
    Vm(pe_vm::VmError),
    /// Execution failed.
    Run(InterpError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::Desugar(e) => write!(f, "{e}"),
            PipelineError::Spec(e) => write!(f, "{e}"),
            PipelineError::IllFormed(errs) => {
                write!(f, "ill-formed residual program: {}", errs.join("; "))
            }
            PipelineError::Hobbit(e) => write!(f, "{e}"),
            PipelineError::Vm(e) => write!(f, "{e}"),
            PipelineError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<SpecError> for PipelineError {
    fn from(e: SpecError) -> Self {
        PipelineError::Spec(e)
    }
}

impl From<InterpError> for PipelineError {
    fn from(e: InterpError) -> Self {
        PipelineError::Run(e)
    }
}

/// The outcome of [`Pipeline::compile_robust`]: either a loaded VM or a
/// marker that specialization was cut off by its resource budget and
/// the program should run interpreted instead.
#[derive(Debug)]
pub enum RobustExec {
    /// Specialization finished within budget; run compiled.
    Compiled(Box<Vm>),
    /// Specialization exhausted its budget or the termination analysis
    /// refused the program; run the tail interpreter (its fuel bounds a
    /// genuinely divergent run).
    Degraded {
        /// The error that stopped specialization.
        reason: SpecError,
    },
}

impl RobustExec {
    /// True when this outcome is the degraded (interpreted) fallback.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, RobustExec::Degraded { .. })
    }
}

/// Everything a traced compilation produced: the residual program, the
/// verification report, and the aggregated observability data.
///
/// Returned by [`Pipeline::compile_traced`] and
/// [`Pipeline::compile_vm_traced`].  Phase durations appear in the
/// order the phases finished; counters in the order first emitted.
#[derive(Debug)]
pub struct CompileReport {
    /// The compiled (and verified) residual S₀ program.
    pub s0: S0Program,
    /// The full verification report, warnings included.
    pub verify: pe_verify::Report,
    /// Wall-clock nanoseconds per pipeline phase.
    pub phases: Vec<(Phase, u64)>,
    /// Summed specializer/size counters.
    pub counters: Vec<(Counter, u64)>,
}

impl CompileReport {
    /// Total nanoseconds across all recorded phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|&(_, ns)| ns).sum()
    }

    /// The summed value of `counter`, zero if never emitted.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.iter().find(|&&(c, _)| c == counter).map_or(0, |&(_, n)| n)
    }
}

/// A parsed and desugared program, ready for any engine.
pub struct Pipeline {
    /// The surface program (Fig. 2).
    pub program: Program,
    /// The desugared tail form (Fig. 5).
    pub dprog: DProgram,
}

impl Pipeline {
    /// Parses and desugars source text.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn new(source: &str) -> Result<Pipeline, PipelineError> {
        Pipeline::new_traced(source, &mut NullSink)
    }

    /// Like [`Pipeline::new`], emitting `read`, `parse`, and `desugar`
    /// phase spans to `sink`.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn new_traced(source: &str, sink: &mut dyn Sink) -> Result<Pipeline, PipelineError> {
        let t = pe_trace::begin(sink, Phase::Read);
        let forms = pe_sexpr::read_positioned(source);
        pe_trace::end(sink, t);
        let forms = forms.map_err(|e| PipelineError::Parse(ParseError::Read(e)))?;
        let (exprs, poss): (Vec<pe_sexpr::Sexpr>, Vec<pe_sexpr::Pos>) =
            forms.into_iter().unzip();
        let t = pe_trace::begin(sink, Phase::Parse);
        let program = parse_program_positioned(&exprs, &poss);
        pe_trace::end(sink, t);
        let program = program?;
        let t = pe_trace::begin(sink, Phase::Desugar);
        let dprog = desugar(&program).map_err(PipelineError::Desugar);
        pe_trace::end(sink, t);
        Ok(Pipeline { program, dprog: dprog? })
    }

    /// Compiles `entry` to S₀ and verifies it with every
    /// [`pe_verify`] pass: well-formedness, closure-shape analysis, the
    /// language-preservation certificate, and the residual-quality
    /// lints.  Error-severity findings abort compilation; warnings are
    /// available via [`Pipeline::verify`].
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn compile(&self, entry: &str, opts: &CompileOptions) -> Result<S0Program, PipelineError> {
        self.compile_verified(entry, opts, &mut NullSink).map(|(s0, _)| s0)
    }

    /// Compiles and verifies, returning the report beside the program so
    /// callers that need both never run the verifier a second time.
    /// Phase spans and specializer counters go to `sink`.  The report
    /// includes pass 7 (termination): the specializer's widening log
    /// audited against the size-change verdicts.
    fn compile_verified(
        &self,
        entry: &str,
        opts: &CompileOptions,
        sink: &mut dyn Sink,
    ) -> Result<(S0Program, pe_verify::Report), PipelineError> {
        let (s0, audit) = pe_core::compile_audited_with(&self.dprog, entry, opts, sink)?;
        let t = pe_trace::begin(sink, Phase::Verify);
        let mut report = pe_verify::verify_with(&s0, sink);
        merge_audit_attributed(&mut report, &audit, sink);
        pe_trace::end(sink, t);
        if report.has_errors() {
            return Err(PipelineError::IllFormed(report.error_messages()));
        }
        Ok((s0, report))
    }

    /// Compiles and verifies `entry` under an [`Aggregator`], returning
    /// the program, the verification report, and the aggregated
    /// phase/counter data as a [`CompileReport`].  Spans and counters
    /// also stream to `sink` as they happen.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn compile_traced(
        &self,
        entry: &str,
        opts: &CompileOptions,
        sink: &mut dyn Sink,
    ) -> Result<CompileReport, PipelineError> {
        let mut agg = Aggregator::new(sink);
        let (s0, verify) = self.compile_verified(entry, opts, &mut agg)?;
        let (phases, counters, _) = agg.into_parts();
        Ok(CompileReport { s0, verify, phases, counters })
    }

    /// [`Pipeline::compile_traced`] with warm-start: the specializer is
    /// seeded from a [`pe_core::MemoSnapshot`] captured by an earlier
    /// compile of the *same* program with the same options, and the run
    /// returns a fresh snapshot beside the report.  Verification runs
    /// in full either way — a warm result is held to exactly the same
    /// seven passes as a cold one.
    ///
    /// Callers own snapshot validity: pe-serve keys snapshots by the
    /// content fingerprint of (canonical source, options), which is the
    /// only sound cache key.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn compile_warm_traced(
        &self,
        entry: &str,
        opts: &CompileOptions,
        warm: Option<&pe_core::MemoSnapshot>,
        sink: &mut dyn Sink,
    ) -> Result<(CompileReport, pe_core::MemoSnapshot), PipelineError> {
        let mut agg = Aggregator::new(sink);
        let (s0, audit, snap) =
            pe_core::compile_warm_audited_with(&self.dprog, entry, opts, warm, &mut agg)?;
        let t = pe_trace::begin(&mut agg, Phase::Verify);
        let mut report = pe_verify::verify_with(&s0, &mut agg);
        merge_audit_attributed(&mut report, &audit, &mut agg);
        pe_trace::end(&mut agg, t);
        if report.has_errors() {
            return Err(PipelineError::IllFormed(report.error_messages()));
        }
        let (phases, counters, _) = agg.into_parts();
        Ok((CompileReport { s0, verify: report, phases, counters }, snap))
    }

    /// Compiles `entry` to S₀ and returns the full verification report,
    /// warnings included.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`] (verification findings are *returned*, not
    /// treated as errors).
    pub fn verify(
        &self,
        entry: &str,
        opts: &CompileOptions,
    ) -> Result<pe_verify::Report, PipelineError> {
        let (s0, audit) =
            pe_core::compile_audited_with(&self.dprog, entry, opts, &mut NullSink)?;
        let mut report = pe_verify::verify(&s0);
        report.merge(pe_verify::verify_audit(&audit));
        Ok(report)
    }

    /// Compiles `entry` to S₀ and loads it into the VM.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn compile_vm(&self, entry: &str, opts: &CompileOptions) -> Result<Vm, PipelineError> {
        self.compile_vm_traced(entry, opts, &mut NullSink).map(|(vm, _)| vm)
    }

    /// [`Pipeline::compile_vm`] under an [`Aggregator`]: the report
    /// additionally covers the `vm-load` phase.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn compile_vm_traced(
        &self,
        entry: &str,
        opts: &CompileOptions,
        sink: &mut dyn Sink,
    ) -> Result<(Vm, CompileReport), PipelineError> {
        let mut agg = Aggregator::new(sink);
        let (s0, report) = self.compile_verified(entry, opts, &mut agg)?;
        let t = pe_trace::begin(&mut agg, Phase::VmLoad);
        let vm = Vm::compile(&s0).map_err(PipelineError::Vm);
        pe_trace::end(&mut agg, t);
        let vm = vm?;
        // The loader and the verifier must agree on what is acceptable:
        // anything the VM takes must already have verified clean.  The
        // report is the one `compile_verified` produced — verification
        // runs once per compilation, even in debug builds.
        debug_assert!(report.is_clean(), "VM accepted a program the verifier rejects");
        let (phases, counters, _) = agg.into_parts();
        Ok((vm, CompileReport { s0, verify: report, phases, counters }))
    }

    /// Compiles the whole program with the Hobbit-like baseline.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn compile_hobbit(&self) -> Result<Hobbit, PipelineError> {
        Hobbit::compile(&self.program).map_err(PipelineError::Hobbit)
    }

    /// Runs the standard (Fig. 3) interpreter.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_standard(
        &self,
        entry: &str,
        args: &[Datum],
        limits: Limits,
    ) -> Result<Datum, PipelineError> {
        Ok(pe_interp::standard::run(&self.program, entry, args, limits)?)
    }

    /// Runs the closure-converted (Fig. 4) interpreter.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_closconv(
        &self,
        entry: &str,
        args: &[Datum],
        limits: Limits,
    ) -> Result<Datum, PipelineError> {
        Ok(pe_interp::closconv::run(&self.program, entry, args, limits)?)
    }

    /// Runs the tail-recursive (Fig. 6) interpreter.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_tail(
        &self,
        entry: &str,
        args: &[Datum],
        limits: Limits,
    ) -> Result<Datum, PipelineError> {
        Ok(pe_interp::tail::run(&self.dprog, entry, args, limits)?)
    }

    /// Compiles and runs on the VM, returning result and counters.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_compiled(
        &self,
        entry: &str,
        args: &[Datum],
        opts: &CompileOptions,
        limits: Limits,
    ) -> Result<(Datum, VmStats), PipelineError> {
        let vm = self.compile_vm(entry, opts)?;
        Ok(vm.run(args, limits)?)
    }

    /// Compiles `entry` for the VM, degrading gracefully when the
    /// specializer cannot finish: a [`SpecError::Budget`],
    /// [`SpecError::DepthExceeded`], or [`SpecError::SctDiverges`]
    /// outcome becomes [`RobustExec::Degraded`] instead of an error,
    /// since the subject program can still be handed to an interpreter
    /// (whose own fuel bounds a genuinely divergent run).  Genuine
    /// compile-time errors (missing entry, arity, internal faults) are
    /// still reported as errors.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`]; budget exhaustion is *not* an error here.
    pub fn compile_robust(
        &self,
        entry: &str,
        opts: &CompileOptions,
    ) -> Result<RobustExec, PipelineError> {
        self.compile_robust_traced(entry, opts, &mut NullSink)
    }

    /// [`Pipeline::compile_robust`] with phase spans and specializer
    /// counters streaming to `sink`.  On the degraded path the sink has
    /// still seen every event up to the budget cut-off (counters flush
    /// even when specialization errors).
    ///
    /// # Errors
    ///
    /// See [`PipelineError`]; budget exhaustion is *not* an error here.
    pub fn compile_robust_traced(
        &self,
        entry: &str,
        opts: &CompileOptions,
        sink: &mut dyn Sink,
    ) -> Result<RobustExec, PipelineError> {
        match self.compile_vm_traced(entry, opts, sink) {
            Ok((vm, _)) => Ok(RobustExec::Compiled(Box::new(vm))),
            Err(PipelineError::Spec(e)) if e.is_degradable() => {
                Ok(RobustExec::Degraded { reason: e })
            }
            Err(e) => Err(e),
        }
    }

    /// Runs `entry`, preferring compiled execution and falling back to
    /// the tail interpreter when specialization exhausts its budget.
    /// Returns the result together with the degradation reason, if any
    /// (`None` means the program ran compiled).
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_robust(
        &self,
        entry: &str,
        args: &[Datum],
        opts: &CompileOptions,
        limits: Limits,
    ) -> Result<(Datum, Option<SpecError>), PipelineError> {
        self.run_robust_traced(entry, args, opts, limits, &mut NullSink)
    }

    /// [`Pipeline::run_robust`] with the whole robust path observable:
    /// compile-side spans and counters stream to `sink` as in
    /// [`Pipeline::compile_robust_traced`], and the execution engine —
    /// the VM on the compiled path, the tail interpreter on the
    /// degraded path — flushes its run counters and, on a trap, the
    /// governor meter snapshot.  This is the hook the pe-siege chaos
    /// ladder drives: one call per budget rung, with peak meters
    /// recoverable from the gauge stream.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_robust_traced(
        &self,
        entry: &str,
        args: &[Datum],
        opts: &CompileOptions,
        limits: Limits,
        sink: &mut dyn Sink,
    ) -> Result<(Datum, Option<SpecError>), PipelineError> {
        match self.compile_robust_traced(entry, opts, sink)? {
            RobustExec::Compiled(vm) => Ok((vm.run_with(args, limits, sink)?.0, None)),
            RobustExec::Degraded { reason } => {
                let v = pe_interp::tail::run_with(&self.dprog, entry, args, limits, sink)?;
                Ok((v, Some(reason)))
            }
        }
    }

    /// Emits the §5.1 C translation of the compiled program, with `args`
    /// baked into `main`.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn emit_c(
        &self,
        entry: &str,
        args: &[Datum],
        opts: &CompileOptions,
    ) -> Result<pe_backend_c::CProgram, PipelineError> {
        self.emit_c_traced(entry, args, opts, &mut NullSink)
    }

    /// [`Pipeline::emit_c`] with phase spans (including `emit-c`) and
    /// specializer counters streaming to `sink`.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn emit_c_traced(
        &self,
        entry: &str,
        args: &[Datum],
        opts: &CompileOptions,
        sink: &mut dyn Sink,
    ) -> Result<pe_backend_c::CProgram, PipelineError> {
        let (s0, _) = self.compile_verified(entry, opts, sink)?;
        // Re-certify the exact concrete syntax the C emitter consumes.
        debug_assert!(
            pe_verify::verify_source(&s0.to_source()).is_clean(),
            "emit_c input fails the language-preservation certificate"
        );
        let t = pe_trace::begin(sink, Phase::EmitC);
        let c = pe_backend_c::emit_c(&s0, args, &pe_backend_c::COptions::default());
        pe_trace::end(sink, t);
        if sink.enabled() {
            sink.counter(Counter::MovesElided, c.moves_elided as u64);
        }
        Ok(c)
    }
}

/// Runs the termination audit (verify pass 7) and merges its findings,
/// emitting an `<audit>` attribution row so the verify phase's books
/// include the one check that is not per-procedure.
fn merge_audit_attributed(
    report: &mut pe_verify::Report,
    audit: &pe_core::CompileAudit,
    sink: &mut dyn Sink,
) {
    let t0 = sink.enabled().then(std::time::Instant::now);
    report.merge(pe_verify::verify_audit(audit));
    if let Some(t0) = t0 {
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        sink.attr(Phase::Verify, "<audit>", ns, audit.events.len() as u64);
    }
}
