//! **realistic-pe** — a full reproduction of Sperber & Thiemann,
//! *Realistic Compilation by Partial Evaluation* (PLDI 1996), in Rust.
//!
//! The system compiles a strict, higher-order, purely functional Scheme
//! subset to first-order tail-recursive code (and C) by the interpretive
//! approach: the compiler is the specializer-projection reading of a
//! two-level interpreter, performing closure conversion, conversion to
//! tail form, and aggressive constant propagation in a single pass.
//!
//! # Crates
//!
//! | crate | contents |
//! |-------|----------|
//! | `pe-sexpr` | S-expression reader/printer |
//! | `pe-frontend` | AST (Fig. 2), parser, desugarer (Fig. 5), 0CFA, §4.5 generalization analysis |
//! | `pe-interp` | the interpreter family: Fig. 3, Fig. 4, Fig. 6 |
//! | `pe-core` | the specializing compiler (Fig. 7) → S₀, online/offline generalization, post passes |
//! | `pe-sct` | size-change termination analysis: bounded/unbounded/unknown verdicts driving static specialization control |
//! | `pe-unmix` | first-order offline partial evaluator: BTA, reducer, arity raiser, Futamura projection |
//! | `pe-hobbit` | the §6 baseline: native-stack direct compiler |
//! | `pe-vm` | S₀ goto-machine (the §5.1 C execution model) with counters |
//! | `pe-backend-c` | S₀ → C translator |
//! | `pe-verify` | static verification: well-formedness, closure shapes, preservation certificate, lints, BTA audit |
//!
//! # Quickstart
//!
//! ```
//! use realistic_pe::{Pipeline, CompileOptions, Datum, Limits};
//!
//! let pipe = Pipeline::new(
//!     "(define (append x y) (cps-append x y (lambda (v) v)))
//!      (define (cps-append x y c)
//!        (if (null? x) (c y)
//!            (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
//! ).unwrap();
//! let (result, _stats) = pipe.run_compiled(
//!     "append",
//!     &[Datum::parse("(1 2)").unwrap(), Datum::parse("(3)").unwrap()],
//!     &CompileOptions::default(),
//!     Limits::default(),
//! ).unwrap();
//! assert_eq!(result.to_string(), "(1 2 3)");
//! ```

pub mod pipeline;
pub mod suite;

pub use pe_backend_c::{emit_c, COptions, CProgram};
pub use pe_core::{compile, specialize, CompileOptions, GenStrategy, S0Program, SpecError};
pub use pe_sct::{SctAnalysis, SctStats, Verdict, Verdicts};
pub use pe_frontend::{desugar, parse_source, DProgram, Program};
pub use pe_hobbit::Hobbit;
pub use pe_interp::{Datum, Fuel, InterpError, Limits, Trap};
pub use pe_unmix::{compile_by_futamura, encode_program, UnmixOptions, FUTAMURA_ENTRY, SINT};
pub use pe_verify::{
    verify, verify_division, verify_program, verify_source, Diagnostic, Report, Severity,
};
pub use pe_trace::{
    Aggregator, CollectingSink, Counter, Event, Gauge, JsonlSink, NullSink, Phase, Sink,
};
pub use pe_vm::{Vm, VmStats};
pub use pipeline::{CompileReport, Pipeline, PipelineError, RobustExec};
pub use suite::{benchmark, Benchmark, SUITE};

/// Runs `f` on a worker thread with a large stack and returns its
/// result.
///
/// The engines that model a *native-stack* execution (the Fig. 3/Fig. 4
/// interpreters and the Hobbit-like baseline) recurse on the host stack
/// by design — that is the very property the paper's Fig. 8 discusses.
/// CPS-heavy benchmarks nest tens of thousands of frames, more than a
/// default thread provides, so benchmark drivers and tests construct
/// and run everything inside this wrapper.  (The PE-compiled code needs
/// no such help: it is tail-recursive by construction.)
pub fn with_big_stack<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(1 << 30)
            .spawn_scoped(scope, f)
            .expect("spawn big-stack worker")
            .join()
            .expect("worker panicked")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every Fig. 8 benchmark runs correctly on every engine — the
    /// suite-wide equivalence theorem behind the evaluation.
    #[test]
    fn suite_equivalence_all_engines() {
        with_big_stack(suite_equivalence_all_engines_inner);
    }

    fn suite_equivalence_all_engines_inner() {
        for b in SUITE {
            let pipe = Pipeline::new(b.source).unwrap();
            let args = b.test_inputs();
            let expect = Datum::parse(b.test_expect).unwrap();
            let lim = Limits::default();

            let std = pipe.run_standard(b.entry, &args, lim).unwrap();
            assert_eq!(std, expect, "{}: standard", b.name);
            let cc = pipe.run_closconv(b.entry, &args, lim).unwrap();
            assert_eq!(cc, expect, "{}: closconv", b.name);
            let tail = pipe.run_tail(b.entry, &args, lim).unwrap();
            assert_eq!(tail, expect, "{}: tail", b.name);
            let hob = pipe.compile_hobbit().unwrap().run(b.entry, &args, lim).unwrap();
            assert_eq!(hob, expect, "{}: hobbit", b.name);
            for strategy in [GenStrategy::Offline, GenStrategy::Online] {
                let opts = CompileOptions { strategy, ..CompileOptions::default() };
                let (vm, _) = pipe.run_compiled(b.entry, &args, &opts, lim).unwrap();
                assert_eq!(vm, expect, "{}: compiled/{strategy:?}", b.name);
            }
        }
    }

    #[test]
    fn compiled_suite_is_first_order_and_tail_recursive() {
        // The language preservation property over the whole suite: the
        // residual programs pass every pe-verify pass with no errors
        // (first-order, all calls in tail position, sound closure
        // shapes).
        for b in SUITE {
            let pipe = Pipeline::new(b.source).unwrap();
            let s0 = pipe.compile(b.entry, &CompileOptions::default()).unwrap();
            let report = verify(&s0);
            assert!(report.is_clean(), "{}:\n{report}", b.name);
            assert!(!s0.to_source().contains("lambda"), "{}", b.name);
        }
    }

    #[test]
    fn pipeline_error_display() {
        let Err(e) = Pipeline::new("(define (f x) y)") else {
            panic!("unbound variable must not parse");
        };
        assert!(e.to_string().contains("unbound"));
        let pipe = Pipeline::new("(define (f x) x)").unwrap();
        let e = pipe.compile("ghost", &CompileOptions::default()).unwrap_err();
        assert!(e.to_string().contains("ghost"));
    }

    #[test]
    fn pipeline_parse_errors_carry_source_positions() {
        // The offending form starts on line 2: the error message leads
        // with its line:col.
        let Err(e) = Pipeline::new("(define (f x) x)\n(define (g y) z)") else {
            panic!("unbound variable must not parse");
        };
        let msg = e.to_string();
        assert!(msg.starts_with("2:"), "expected a position prefix, got: {msg}");
    }

    /// Ω under every engine: divergence is always cut off by a specific
    /// structured trap, never a host stack overflow or a hang.
    #[test]
    fn omega_traps_on_every_engine() {
        let pipe = Pipeline::new(
            "(define (omega) ((lambda (x) (x x)) (lambda (x) (x x))))",
        )
        .unwrap();
        // Host-stack engines: the call-depth cap fires first.
        let depth = Limits { max_call_depth: 64, ..Limits::default() };
        assert!(matches!(
            pipe.run_standard("omega", &[], depth),
            Err(PipelineError::Run(InterpError::Trap(Trap::CallDepth { limit: 64 })))
        ));
        assert!(matches!(
            pipe.run_closconv("omega", &[], depth),
            Err(PipelineError::Run(InterpError::Trap(Trap::CallDepth { limit: 64 })))
        ));
        // The flat tail machine never grows the host stack: fuel fires.
        let fuel = Limits { fuel: 10_000, ..Limits::default() };
        assert!(matches!(
            pipe.run_tail("omega", &[], fuel),
            Err(PipelineError::Run(InterpError::FuelExhausted))
        ));
        // The specializing compiler proves Ω divergent at BTA time and
        // rejects it outright, before any unfolding.
        assert!(matches!(
            pipe.run_compiled("omega", &[], &CompileOptions::default(), Limits::default()),
            Err(PipelineError::Spec(SpecError::SctDiverges(_)))
        ));
        // With the analysis off, the unfolding budget is the backstop.
        let no_sct = CompileOptions { sct: false, ..CompileOptions::default() };
        assert!(matches!(
            pipe.run_compiled("omega", &[], &no_sct, Limits::default()),
            Err(PipelineError::Spec(e)) if e.is_budget_exhaustion()
        ));
    }

    /// Graceful degradation: when specialization exhausts its residual
    /// budget, the pipeline falls back to interpreter-packaged execution
    /// and reports the reason instead of failing.
    #[test]
    fn budget_exhaustion_degrades_to_interpreted_run() {
        let pipe = Pipeline::new(
            "(define (main n) (even-p n))
             (define (even-p n) (if (zero? n) 1 (odd-p (- n 1))))
             (define (odd-p n) (if (zero? n) 0 (even-p (- n 1))))",
        )
        .unwrap();
        let opts = CompileOptions {
            limits: Limits { max_residual: 1, ..Limits::default() },
            ..CompileOptions::default()
        };
        // Plain compilation refuses under this budget…
        assert!(matches!(
            pipe.compile("main", &opts),
            Err(PipelineError::Spec(e)) if e.is_budget_exhaustion()
        ));
        // …the robust path degrades instead…
        let exec = pipe.compile_robust("main", &opts).unwrap();
        assert!(exec.is_degraded(), "expected Degraded, got {exec:?}");
        // …and still computes the right answer, flagging the fallback.
        let (v, why) =
            pipe.run_robust("main", &[Datum::Int(6)], &opts, Limits::default()).unwrap();
        assert_eq!(v, Datum::Int(1));
        assert!(why.is_some_and(|e| e.is_budget_exhaustion()));
        // With an adequate budget the same call runs compiled.
        let (v, why) = pipe
            .run_robust("main", &[Datum::Int(6)], &CompileOptions::default(), Limits::default())
            .unwrap();
        assert_eq!(v, Datum::Int(1));
        assert!(why.is_none());
    }

    /// The traced robust path streams the executing engine's counters:
    /// VM counters on the compiled path, interpreter counters on the
    /// degraded path — so a soak harness can read peak meters from one
    /// sink regardless of which engine actually ran.
    #[test]
    fn run_robust_traced_streams_engine_counters() {
        let pipe = Pipeline::new(
            "(define (main n) (even-p n))
             (define (even-p n) (if (zero? n) 1 (odd-p (- n 1))))
             (define (odd-p n) (if (zero? n) 0 (even-p (- n 1))))",
        )
        .unwrap();
        // Compiled path: vm-run span + VM step counters.
        let mut sink = CollectingSink::new();
        let (v, why) = pipe
            .run_robust_traced(
                "main",
                &[Datum::Int(4)],
                &CompileOptions::default(),
                Limits::default(),
                &mut sink,
            )
            .unwrap();
        assert_eq!(v, Datum::Int(1));
        assert!(why.is_none());
        assert!(sink.check_balanced().is_ok());
        assert!(sink.counter_total(Counter::VmSteps) > 0);
        // Degraded path: the tail interpreter's counters flush instead.
        let opts = CompileOptions {
            limits: Limits::builder().with_residual(1).build(),
            ..CompileOptions::default()
        };
        let mut sink = CollectingSink::new();
        let (v, why) = pipe
            .run_robust_traced("main", &[Datum::Int(4)], &opts, Limits::default(), &mut sink)
            .unwrap();
        assert_eq!(v, Datum::Int(1));
        assert!(why.is_some_and(|e| e.is_budget_exhaustion()));
        assert!(sink.check_balanced().is_ok());
        assert!(sink.counter_total(Counter::EvalSteps) > 0);
        assert_eq!(sink.counter_total(Counter::VmSteps), 0);
    }

    /// Genuine errors are NOT degraded: only budget exhaustion is.
    #[test]
    fn robust_compile_still_reports_genuine_errors() {
        let pipe = Pipeline::new("(define (f x) x)").unwrap();
        assert!(matches!(
            pipe.compile_robust("ghost", &CompileOptions::default()),
            Err(PipelineError::Spec(SpecError::NoSuchProc(_)))
        ));
    }
}
