//! `pe-explain` — per-phase, per-counter observability report for the
//! whole pipeline.
//!
//! For each requested benchmark (default: the whole Fig. 8 suite) the
//! program is read, parsed, desugared, compiled for the VM, and run on
//! its test inputs with a tracing sink attached, then a human-readable
//! report is printed: a span tree with wall-clock durations and the
//! specializer/VM counters.
//!
//! ```text
//! cargo run --release -p realistic-pe --example pe-explain            # all, human
//! cargo run --release -p realistic-pe --example pe-explain -- tak     # one benchmark
//! cargo run --release -p realistic-pe --example pe-explain -- --json  # JSONL stream
//! cargo run --release -p realistic-pe --example pe-explain -- --flow  # flow counters
//! cargo run --release -p realistic-pe --example pe-explain -- --sct   # termination verdicts
//! ```
//!
//! With `--json`, the full event stream is emitted as JSON Lines —
//! one `{"type":"run","benchmark":...}` header per benchmark followed
//! by its `span_open`/`span_close`/`counter`/`gauge` events — after
//! being validated against the pe-trace schema.
//!
//! With `--flow`, a per-benchmark section reports the `pe-flow`
//! optimizer's counters (copies propagated, dead bindings removed,
//! closure slots pruned, dispatch arms folded, global-parameter moves
//! elided by the C emitter, and residual CFG size).  The underlying
//! event stream is validated against the JSONL schema before the
//! section is rendered.
//!
//! With `--sct`, a per-benchmark section reports the size-change
//! termination analysis: the verdict for every procedure, the graph and
//! composition counts, and the dynamic widenings the static control
//! avoided (compiled once with the analysis on and once off).  The
//! traced stream is schema-validated the same way.

use pe_trace::{jsonl, report, CollectingSink, Counter, JsonlSink, Sink};
use realistic_pe::{benchmark, Benchmark, CompileOptions, Limits, Pipeline, SUITE};
use std::process::ExitCode;

/// Traces one benchmark end to end into `sink`.
fn trace_one(b: &Benchmark, sink: &mut dyn Sink) -> Result<(), String> {
    let pipe = Pipeline::new_traced(b.source, sink).map_err(|e| format!("{}: {e}", b.name))?;
    let (vm, _report) = pipe
        .compile_vm_traced(b.entry, &CompileOptions::default(), sink)
        .map_err(|e| format!("{}: {e}", b.name))?;
    vm.run_with(&b.test_inputs(), Limits::default(), sink)
        .map_err(|e| format!("{}: {e}", b.name))?;
    Ok(())
}

fn human(benches: &[&Benchmark]) -> Result<(), String> {
    for b in benches {
        let mut sink = CollectingSink::new();
        trace_one(b, &mut sink)?;
        sink.check_balanced().map_err(|e| format!("{}: unbalanced spans: {e}", b.name))?;
        println!("== {} ==", b.name);
        println!("{}", report::render(sink.events()));
    }
    Ok(())
}

fn json(benches: &[&Benchmark]) -> Result<(), String> {
    let mut stream = String::new();
    for b in benches {
        stream.push_str(&format!("{{\"type\":\"run\",\"benchmark\":\"{}\"}}\n", b.name));
        let mut sink = JsonlSink::new(Vec::new());
        trace_one(b, &mut sink)?;
        let bytes = sink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        stream.push_str(&String::from_utf8(bytes).expect("jsonl is ascii"));
    }
    // Self-check the stream against the schema before emitting it.
    let summary = jsonl::validate(&stream)?;
    print!("{stream}");
    eprintln!(
        "pe-explain: {} lines, {} spans, max depth {}",
        summary.lines, summary.spans_closed, summary.max_depth
    );
    Ok(())
}

/// The `--flow` section: compile each benchmark with tracing, validate
/// the JSONL event stream against the schema, then render the flow
/// counters.
fn flow(benches: &[&Benchmark]) -> Result<(), String> {
    const FLOW_COUNTERS: [Counter; 6] = [
        Counter::CopiesPropagated,
        Counter::DeadBindings,
        Counter::SlotsPruned,
        Counter::ArmsFolded,
        Counter::CfgNodes,
        Counter::CfgEdges,
    ];
    for b in benches {
        // Stream to a JSONL sink so the run is schema-checkable, and
        // aggregate counters on top of the same stream.
        let mut sink = JsonlSink::new(Vec::new());
        let pipe =
            Pipeline::new_traced(b.source, &mut sink).map_err(|e| format!("{}: {e}", b.name))?;
        let rep = pipe
            .compile_traced(b.entry, &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let c = pipe
            .emit_c_traced(b.entry, &b.test_inputs(), &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let bytes = sink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        let stream = String::from_utf8(bytes).expect("jsonl is ascii");
        jsonl::validate(&stream).map_err(|e| format!("{}: schema: {e}", b.name))?;

        println!("== {} [flow] ==", b.name);
        for k in FLOW_COUNTERS {
            let total: u64 =
                rep.counters.iter().filter(|&&(c, _)| c == k).map(|&(_, v)| v).sum();
            println!("  {:<20} {total}", k.name());
        }
        println!("  {:<20} {}", "moves-elided", c.moves_elided);
        println!("  {:<20} {}", "c-bytes", c.size_bytes());
    }
    Ok(())
}

/// The `--sct` section: size-change verdicts per procedure plus the
/// dynamic widenings the static control avoided, against a
/// schema-validated trace stream.
fn sct(benches: &[&Benchmark]) -> Result<(), String> {
    for b in benches {
        let mut sink = JsonlSink::new(Vec::new());
        let pipe =
            Pipeline::new_traced(b.source, &mut sink).map_err(|e| format!("{}: {e}", b.name))?;
        let on = pipe
            .compile_traced(b.entry, &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let off_opts = CompileOptions { sct: false, ..CompileOptions::default() };
        let off = pipe
            .compile_traced(b.entry, &off_opts, &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let bytes = sink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        let stream = String::from_utf8(bytes).expect("jsonl is ascii");
        jsonl::validate(&stream).map_err(|e| format!("{}: schema: {e}", b.name))?;

        let flow = pe_frontend::flow::FlowAnalysis::analyze(&pipe.dprog);
        let a = pe_sct::analyze(&pipe.dprog, &flow, b.entry);
        println!("== {} [sct] ==", b.name);
        for (name, v) in a.named_verdicts(&pipe.dprog) {
            println!("  {:<24} {}", name, v.name());
        }
        println!("  {:<24} {}", "size-change-graphs", a.stats.graphs);
        println!("  {:<24} {}", "compositions", a.stats.compositions);
        println!(
            "  {:<24} {}",
            "eager-generalizations",
            on.counter(Counter::EagerGeneralizations)
        );
        println!(
            "  {:<24} {} (analysis off: {})",
            "dynamic-widenings",
            on.counter(Counter::Widenings),
            off.counter(Counter::Widenings)
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let as_flow = args.iter().any(|a| a == "--flow");
    let as_sct = args.iter().any(|a| a == "--sct");
    let names: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let mut benches: Vec<&Benchmark> = Vec::new();
    if names.is_empty() {
        benches.extend(SUITE);
    } else {
        for n in names {
            match benchmark(n) {
                Some(b) => benches.push(b),
                None => {
                    eprintln!("pe-explain: no benchmark named {n:?}");
                    eprintln!(
                        "  available: {}",
                        SUITE.iter().map(|b| b.name).collect::<Vec<_>>().join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let run = if as_sct {
        sct(&benches)
    } else if as_flow {
        flow(&benches)
    } else if as_json {
        json(&benches)
    } else {
        human(&benches)
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pe-explain: {e}");
            ExitCode::FAILURE
        }
    }
}
