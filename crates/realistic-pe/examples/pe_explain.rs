//! `pe-explain` — per-phase, per-counter observability report for the
//! whole pipeline.
//!
//! For each requested benchmark (default: the whole Fig. 8 suite) the
//! program is read, parsed, desugared, compiled for the VM, and run on
//! its test inputs with a tracing sink attached, then a human-readable
//! report is printed: a span tree with wall-clock durations and the
//! specializer/VM counters.
//!
//! ```text
//! cargo run --release -p realistic-pe --example pe-explain            # all, human
//! cargo run --release -p realistic-pe --example pe-explain -- tak     # one benchmark
//! cargo run --release -p realistic-pe --example pe-explain -- --json  # JSONL stream
//! cargo run --release -p realistic-pe --example pe-explain -- --flow  # flow counters
//! cargo run --release -p realistic-pe --example pe-explain -- --sct   # termination verdicts
//! ```
//!
//! With `--json`, the full event stream is emitted as JSON Lines —
//! one `{"type":"run","benchmark":...}` header per benchmark followed
//! by its `span_open`/`span_close`/`counter`/`gauge` events — after
//! being validated against the pe-trace schema.
//!
//! With `--flow`, a per-benchmark section reports the `pe-flow`
//! optimizer's counters (copies propagated, dead bindings removed,
//! closure slots pruned, dispatch arms folded, global-parameter moves
//! elided by the C emitter, and residual CFG size).  The underlying
//! event stream is validated against the JSONL schema before the
//! section is rendered.
//!
//! With `--sct`, a per-benchmark section reports the size-change
//! termination analysis: the verdict for every procedure, the graph and
//! composition counts, and the dynamic widenings the static control
//! avoided (compiled once with the analysis on and once off).  The
//! traced stream is schema-validated the same way.
//!
//! With `--prof`, a per-benchmark section reports the per-residual-
//! procedure cost attribution: the top 5 most expensive procedures in
//! every phase that attributes cost (specialize, post, flow, verify,
//! vm-run, the latter from a hot-label profiled run).  The books are
//! audited — per-phase attributed time must sum to the phase's span
//! total within 5% — and the event stream is schema-validated; either
//! failure exits non-zero.

use pe_trace::{jsonl, report, CollectingSink, Counter, JsonlSink, Sink};
use realistic_pe::{benchmark, Benchmark, CompileOptions, Limits, Pipeline, SUITE};
use std::process::ExitCode;

/// Traces one benchmark end to end into `sink`.
fn trace_one(b: &Benchmark, sink: &mut dyn Sink) -> Result<(), String> {
    let pipe = Pipeline::new_traced(b.source, sink).map_err(|e| format!("{}: {e}", b.name))?;
    let (vm, _report) = pipe
        .compile_vm_traced(b.entry, &CompileOptions::default(), sink)
        .map_err(|e| format!("{}: {e}", b.name))?;
    vm.run_with(&b.test_inputs(), Limits::default(), sink)
        .map_err(|e| format!("{}: {e}", b.name))?;
    Ok(())
}

fn human(benches: &[&Benchmark]) -> Result<(), String> {
    for b in benches {
        let mut sink = CollectingSink::new();
        trace_one(b, &mut sink)?;
        sink.check_balanced().map_err(|e| format!("{}: unbalanced spans: {e}", b.name))?;
        println!("== {} ==", b.name);
        println!("{}", report::render(sink.events()));
    }
    Ok(())
}

fn json(benches: &[&Benchmark]) -> Result<(), String> {
    let mut stream = String::new();
    for b in benches {
        stream.push_str(&format!("{{\"type\":\"run\",\"benchmark\":\"{}\"}}\n", b.name));
        let mut sink = JsonlSink::new(Vec::new());
        trace_one(b, &mut sink)?;
        let bytes = sink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        stream.push_str(&String::from_utf8(bytes).expect("jsonl is ascii"));
    }
    // Self-check the stream against the schema before emitting it.
    let summary = jsonl::validate(&stream)?;
    print!("{stream}");
    eprintln!(
        "pe-explain: {} lines, {} spans, max depth {}",
        summary.lines, summary.spans_closed, summary.max_depth
    );
    Ok(())
}

/// The `--flow` section: compile each benchmark with tracing, validate
/// the JSONL event stream against the schema, then render the flow
/// counters.
fn flow(benches: &[&Benchmark]) -> Result<(), String> {
    const FLOW_COUNTERS: [Counter; 6] = [
        Counter::CopiesPropagated,
        Counter::DeadBindings,
        Counter::SlotsPruned,
        Counter::ArmsFolded,
        Counter::CfgNodes,
        Counter::CfgEdges,
    ];
    for b in benches {
        // Stream to a JSONL sink so the run is schema-checkable, and
        // aggregate counters on top of the same stream.
        let mut sink = JsonlSink::new(Vec::new());
        let pipe =
            Pipeline::new_traced(b.source, &mut sink).map_err(|e| format!("{}: {e}", b.name))?;
        let rep = pipe
            .compile_traced(b.entry, &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let c = pipe
            .emit_c_traced(b.entry, &b.test_inputs(), &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let bytes = sink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        let stream = String::from_utf8(bytes).expect("jsonl is ascii");
        jsonl::validate(&stream).map_err(|e| format!("{}: schema: {e}", b.name))?;

        println!("== {} [flow] ==", b.name);
        for k in FLOW_COUNTERS {
            let total: u64 =
                rep.counters.iter().filter(|&&(c, _)| c == k).map(|&(_, v)| v).sum();
            println!("  {:<20} {total}", k.name());
        }
        println!("  {:<20} {}", "moves-elided", c.moves_elided);
        println!("  {:<20} {}", "c-bytes", c.size_bytes());
    }
    Ok(())
}

/// The `--sct` section: size-change verdicts per procedure plus the
/// dynamic widenings the static control avoided, against a
/// schema-validated trace stream.
fn sct(benches: &[&Benchmark]) -> Result<(), String> {
    for b in benches {
        let mut sink = JsonlSink::new(Vec::new());
        let pipe =
            Pipeline::new_traced(b.source, &mut sink).map_err(|e| format!("{}: {e}", b.name))?;
        let on = pipe
            .compile_traced(b.entry, &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let off_opts = CompileOptions { sct: false, ..CompileOptions::default() };
        let off = pipe
            .compile_traced(b.entry, &off_opts, &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let bytes = sink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        let stream = String::from_utf8(bytes).expect("jsonl is ascii");
        jsonl::validate(&stream).map_err(|e| format!("{}: schema: {e}", b.name))?;

        let flow = pe_frontend::flow::FlowAnalysis::analyze(&pipe.dprog);
        let a = pe_sct::analyze(&pipe.dprog, &flow, b.entry);
        println!("== {} [sct] ==", b.name);
        for (name, v) in a.named_verdicts(&pipe.dprog) {
            println!("  {:<24} {}", name, v.name());
        }
        println!("  {:<24} {}", "size-change-graphs", a.stats.graphs);
        println!("  {:<24} {}", "compositions", a.stats.compositions);
        println!(
            "  {:<24} {}",
            "eager-generalizations",
            on.counter(Counter::EagerGeneralizations)
        );
        println!(
            "  {:<24} {} (analysis off: {})",
            "dynamic-widenings",
            on.counter(Counter::Widenings),
            off.counter(Counter::Widenings)
        );
    }
    Ok(())
}

/// The `--prof` section: one traced compile plus one hot-label
/// profiled run per benchmark, rendered as a top-5 cost-attribution
/// table per phase.  Before anything is printed the books are audited
/// (per-phase attributed time must sum to the phase's span total
/// within 5%, with half a millisecond of absolute slack for phases
/// that are pure jitter) and the stream is replayed through the JSONL
/// schema validator.
fn prof(benches: &[&Benchmark]) -> Result<(), String> {
    for b in benches {
        let mut sink = CollectingSink::new();
        let pipe =
            Pipeline::new_traced(b.source, &mut sink).map_err(|e| format!("{}: {e}", b.name))?;
        let (vm, _report) = pipe
            .compile_vm_traced(b.entry, &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        vm.run_profiled_with(&b.test_inputs(), Limits::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        sink.check_balanced().map_err(|e| format!("{}: unbalanced spans: {e}", b.name))?;

        let table = pe_prof::Attribution::from_events(sink.events());
        if table.is_empty() {
            return Err(format!("{}: the traced compile attributed nothing", b.name));
        }
        table
            .check_sums(sink.events(), 5, 500_000)
            .map_err(|e| format!("{}: attribution books don't balance: {e}", b.name))?;

        // The same stream must survive the JSONL schema, attr and hist
        // lines included.
        let mut jsink = JsonlSink::new(Vec::new());
        pe_trace::replay(&mut jsink, sink.events());
        let bytes = jsink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        let stream = String::from_utf8(bytes).expect("jsonl is ascii");
        jsonl::validate(&stream).map_err(|e| format!("{}: schema: {e}", b.name))?;

        println!("== {} [prof] ==", b.name);
        print!("{}", table.render_top_k(5));
    }
    Ok(())
}

/// One report mode over the selected benchmarks.
type Mode = fn(&[&Benchmark]) -> Result<(), String>;

/// Every flag pe-explain accepts: `(flag, what it selects, runner)`.
/// The default (no flag) is the human-readable span report.
const MODES: [(&str, &str, Mode); 4] = [
    ("--json", "validated JSONL event stream", json),
    ("--flow", "flow-optimizer counters", flow),
    ("--sct", "size-change termination verdicts", sct),
    ("--prof", "per-procedure cost attribution", prof),
];

fn usage() {
    eprintln!("usage: pe-explain [FLAG] [BENCHMARK...]");
    for (flag, what, _) in MODES {
        eprintln!("  {flag:<8} {what}");
    }
    eprintln!(
        "  benchmarks: {} (default: all)",
        SUITE.iter().map(|b| b.name).collect::<Vec<_>>().join(", ")
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<(&str, Mode)> = None;
    let mut benches: Vec<&Benchmark> = Vec::new();
    for arg in &args {
        if arg.starts_with('-') {
            let Some(&(flag, _, run)) = MODES.iter().find(|(f, _, _)| f == arg) else {
                eprintln!("pe-explain: unknown flag {arg:?}");
                usage();
                return ExitCode::FAILURE;
            };
            if let Some((prev, _)) = mode.replace((flag, run)) {
                eprintln!("pe-explain: {prev} and {flag} are exclusive — pick one mode");
                usage();
                return ExitCode::FAILURE;
            }
        } else {
            match benchmark(arg) {
                Some(b) => benches.push(b),
                None => {
                    eprintln!("pe-explain: no benchmark named {arg:?}");
                    usage();
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if benches.is_empty() {
        benches.extend(SUITE);
    }
    let run = mode.map_or(human as Mode, |(_, run)| run);
    match run(&benches) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pe-explain: {e}");
            ExitCode::FAILURE
        }
    }
}
