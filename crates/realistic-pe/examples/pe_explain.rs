//! `pe-explain` — per-phase, per-counter observability report for the
//! whole pipeline.
//!
//! For each requested benchmark (default: the whole Fig. 8 suite) the
//! program is read, parsed, desugared, compiled for the VM, and run on
//! its test inputs with a tracing sink attached, then a human-readable
//! report is printed: a span tree with wall-clock durations and the
//! specializer/VM counters.
//!
//! ```text
//! cargo run --release -p realistic-pe --example pe-explain            # all, human
//! cargo run --release -p realistic-pe --example pe-explain -- tak     # one benchmark
//! cargo run --release -p realistic-pe --example pe-explain -- --json  # JSONL stream
//! cargo run --release -p realistic-pe --example pe-explain -- --flow  # flow counters
//! ```
//!
//! With `--json`, the full event stream is emitted as JSON Lines —
//! one `{"type":"run","benchmark":...}` header per benchmark followed
//! by its `span_open`/`span_close`/`counter`/`gauge` events — after
//! being validated against the pe-trace schema.
//!
//! With `--flow`, a per-benchmark section reports the `pe-flow`
//! optimizer's counters (copies propagated, dead bindings removed,
//! closure slots pruned, dispatch arms folded, global-parameter moves
//! elided by the C emitter, and residual CFG size).  The underlying
//! event stream is validated against the JSONL schema before the
//! section is rendered.

use pe_trace::{jsonl, report, CollectingSink, Counter, JsonlSink, Sink};
use realistic_pe::{benchmark, Benchmark, CompileOptions, Limits, Pipeline, SUITE};
use std::process::ExitCode;

/// Traces one benchmark end to end into `sink`.
fn trace_one(b: &Benchmark, sink: &mut dyn Sink) -> Result<(), String> {
    let pipe = Pipeline::new_traced(b.source, sink).map_err(|e| format!("{}: {e}", b.name))?;
    let (vm, _report) = pipe
        .compile_vm_traced(b.entry, &CompileOptions::default(), sink)
        .map_err(|e| format!("{}: {e}", b.name))?;
    vm.run_with(&b.test_inputs(), Limits::default(), sink)
        .map_err(|e| format!("{}: {e}", b.name))?;
    Ok(())
}

fn human(benches: &[&Benchmark]) -> Result<(), String> {
    for b in benches {
        let mut sink = CollectingSink::new();
        trace_one(b, &mut sink)?;
        sink.check_balanced().map_err(|e| format!("{}: unbalanced spans: {e}", b.name))?;
        println!("== {} ==", b.name);
        println!("{}", report::render(sink.events()));
    }
    Ok(())
}

fn json(benches: &[&Benchmark]) -> Result<(), String> {
    let mut stream = String::new();
    for b in benches {
        stream.push_str(&format!("{{\"type\":\"run\",\"benchmark\":\"{}\"}}\n", b.name));
        let mut sink = JsonlSink::new(Vec::new());
        trace_one(b, &mut sink)?;
        let bytes = sink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        stream.push_str(&String::from_utf8(bytes).expect("jsonl is ascii"));
    }
    // Self-check the stream against the schema before emitting it.
    let summary = jsonl::validate(&stream)?;
    print!("{stream}");
    eprintln!(
        "pe-explain: {} lines, {} spans, max depth {}",
        summary.lines, summary.spans_closed, summary.max_depth
    );
    Ok(())
}

/// The `--flow` section: compile each benchmark with tracing, validate
/// the JSONL event stream against the schema, then render the flow
/// counters.
fn flow(benches: &[&Benchmark]) -> Result<(), String> {
    const FLOW_COUNTERS: [Counter; 6] = [
        Counter::CopiesPropagated,
        Counter::DeadBindings,
        Counter::SlotsPruned,
        Counter::ArmsFolded,
        Counter::CfgNodes,
        Counter::CfgEdges,
    ];
    for b in benches {
        // Stream to a JSONL sink so the run is schema-checkable, and
        // aggregate counters on top of the same stream.
        let mut sink = JsonlSink::new(Vec::new());
        let pipe =
            Pipeline::new_traced(b.source, &mut sink).map_err(|e| format!("{}: {e}", b.name))?;
        let rep = pipe
            .compile_traced(b.entry, &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let c = pipe
            .emit_c_traced(b.entry, &b.test_inputs(), &CompileOptions::default(), &mut sink)
            .map_err(|e| format!("{}: {e}", b.name))?;
        let bytes = sink.finish().map_err(|e| format!("{}: {e}", b.name))?;
        let stream = String::from_utf8(bytes).expect("jsonl is ascii");
        jsonl::validate(&stream).map_err(|e| format!("{}: schema: {e}", b.name))?;

        println!("== {} [flow] ==", b.name);
        for k in FLOW_COUNTERS {
            let total: u64 =
                rep.counters.iter().filter(|&&(c, _)| c == k).map(|&(_, v)| v).sum();
            println!("  {:<20} {total}", k.name());
        }
        println!("  {:<20} {}", "moves-elided", c.moves_elided);
        println!("  {:<20} {}", "c-bytes", c.size_bytes());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let as_flow = args.iter().any(|a| a == "--flow");
    let names: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let mut benches: Vec<&Benchmark> = Vec::new();
    if names.is_empty() {
        benches.extend(SUITE);
    } else {
        for n in names {
            match benchmark(n) {
                Some(b) => benches.push(b),
                None => {
                    eprintln!("pe-explain: no benchmark named {n:?}");
                    eprintln!(
                        "  available: {}",
                        SUITE.iter().map(|b| b.name).collect::<Vec<_>>().join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let run = if as_flow {
        flow(&benches)
    } else if as_json {
        json(&benches)
    } else {
        human(&benches)
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pe-explain: {e}");
            ExitCode::FAILURE
        }
    }
}
