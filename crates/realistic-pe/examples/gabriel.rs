//! Runs the whole Fig. 8 benchmark suite (test inputs) through every
//! engine and prints a correctness/cost matrix — a quick, human-readable
//! version of the evaluation before running the Criterion benches.
//!
//! ```sh
//! cargo run --release --example gabriel
//! ```

use realistic_pe::{CompileOptions, Datum, GenStrategy, Limits, Pipeline, SUITE};

fn main() {
    // The interpreters and the baseline use the host stack (by design);
    // deep CPS benchmarks need a roomy one.
    realistic_pe::with_big_stack(|| run().expect("suite runs"));
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<11} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "ok", "vm steps", "vm allocs", "s0 procs", "ho?"
    );
    for b in SUITE {
        let pipe = Pipeline::new(b.source)?;
        let args = b.test_inputs();
        let expect = Datum::parse(b.test_expect)?;
        let opts = CompileOptions { strategy: GenStrategy::Offline, ..CompileOptions::default() };
        let s0 = pipe.compile(b.entry, &opts)?;
        let (result, stats) = pipe.run_compiled(b.entry, &args, &opts, Limits::default())?;
        let hob = pipe.compile_hobbit()?.run(b.entry, &args, Limits::default())?;
        let ok = result == expect && hob == expect;
        println!(
            "{:<11} {:>6} {:>12} {:>12} {:>12} {:>10}",
            b.name,
            if ok { "yes" } else { "NO" },
            stats.steps,
            stats.allocs,
            s0.procs.len(),
            if b.higher_order { "higher" } else { "first" }
        );
        assert!(ok, "{}: engines disagree", b.name);
    }
    println!("\nAll engines agree on the whole suite.");
    Ok(())
}
