//! The first specializer projection (§1, §3): the compiler doubles as a
//! stand-alone program specializer when some entry arguments are known.
//!
//! Reproduces the paper's §1 example —
//! `(append '(foo bar) y)  ⇝  (define (append-$1 y) (cons 'foo (cons 'bar y)))`
//! — and specializes a small pattern matcher to a static pattern.
//!
//! ```sh
//! cargo run --example specializer
//! ```

use realistic_pe::{specialize, CompileOptions, Datum, GenStrategy, Limits, Pipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };

    // --- The paper's §1 example -------------------------------------
    let pipe = Pipeline::new(
        "(define (append x y) (cps-append x y (lambda (v) v)))
         (define (cps-append x y c)
           (if (null? x) (c y)
               (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
    )?;
    let s0 = specialize(
        &pipe.dprog,
        "append",
        &[Some(Datum::parse("(foo bar)")?), None],
        &opts,
    )?;
    println!("== append specialized to x = (foo bar)  (paper §1) ==\n{s0}");
    let (r, _) = realistic_pe::Vm::compile(&s0)?.run(&[Datum::parse("(baz)")?], Limits::default())?;
    println!("append-$1 '(baz)  ⇒  {r}\n");

    // --- A pattern matcher specialized to its pattern ----------------
    let matcher = Pipeline::new(
        "(define (match pat str) (loop pat str))
         (define (loop pat str)
           (if (null? pat) #t
               (if (null? str) #f
                   (if (equal? (car pat) (car str))
                       (loop (cdr pat) (cdr str))
                       #f))))",
    )?;
    let s0 = specialize(&matcher.dprog, "match", &[Some(Datum::parse("(a b c)")?), None], &opts)?;
    println!("== matcher specialized to pattern (a b c) ==\n{s0}");
    for input in ["(a b c)", "(a b x)", "(a b)"] {
        let (r, _) = realistic_pe::Vm::compile(&s0)?
            .run(&[Datum::parse(input)?], Limits::default())?;
        println!("match-$1 '{input}  ⇒  {r}");
    }
    Ok(())
}
