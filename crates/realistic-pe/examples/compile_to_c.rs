//! The full §5 pipeline: Scheme subset → S₀ → C, then (if a C compiler
//! is available) compile and run the generated binary and compare its
//! output with the VM.
//!
//! ```sh
//! cargo run --example compile_to_c
//! ```

use realistic_pe::{CompileOptions, Datum, Limits, Pipeline};
use std::process::Command;

const SRC: &str = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipe = Pipeline::new(SRC)?;
    let args = [Datum::Int(25)];
    let opts = CompileOptions::default();

    let s0 = pipe.compile("fib", &opts)?;
    println!(
        "S0: {} procedures, {} AST nodes, {} bytes of text",
        s0.procs.len(),
        s0.size(),
        s0.to_source().len()
    );

    let c = pipe.emit_c("fib", &args, &opts)?;
    let dir = std::env::temp_dir().join("realistic-pe-c-demo");
    std::fs::create_dir_all(&dir)?;
    let c_path = dir.join("fib.c");
    std::fs::write(&c_path, &c.source)?;
    println!("C translation: {} bytes → {}", c.size_bytes(), c_path.display());

    let (vm_result, stats) = pipe.run_compiled("fib", &args, &opts, Limits::default())?;
    println!("VM result      : {vm_result}  ({} steps, {} allocs)", stats.steps, stats.allocs);

    // Compile and run with the system C compiler when present.
    let bin = dir.join("fib");
    let cc_ok = Command::new("cc")
        .arg("-O2")
        .arg("-o")
        .arg(&bin)
        .arg(&c_path)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if cc_ok {
        let out = Command::new(&bin).output()?;
        let c_result = String::from_utf8_lossy(&out.stdout).trim().to_string();
        println!("C binary result: {c_result}");
        assert_eq!(c_result, vm_result.to_string(), "C and VM must agree");
        println!("C and VM agree: OK");
    } else {
        println!("(no C compiler found; skipped compiling {})", c_path.display());
    }
    Ok(())
}
