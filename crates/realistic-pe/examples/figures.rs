//! Regenerates every table and figure of the paper's evaluation, plus
//! the ablations listed in DESIGN.md.
//!
//! ```sh
//! cargo run --release --example figures            # everything
//! cargo run --release --example figures -- fig8    # one experiment
//! ```
//!
//! Experiments: `fig8`, `online`, `size`, `trick`, `post`, `arity`,
//! `speedup`.

use realistic_pe::{
    compile, specialize, CompileOptions, Datum, GenStrategy, Limits, Pipeline, UnmixOptions,
    Vm, SUITE,
};
use std::time::Instant;

fn main() {
    // Baseline/interpreter rows recurse on the host stack by design.
    realistic_pe::with_big_stack(|| run().expect("figures run"));
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty() || which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);

    if want("fig8") {
        fig8()?;
    }
    if want("online") {
        online()?;
    }
    if want("size") {
        size()?;
    }
    if want("trick") {
        trick()?;
    }
    if want("post") {
        post()?;
    }
    if want("arity") {
        arity()?;
    }
    if want("speedup") {
        speedup()?;
    }
    Ok(())
}

/// Times one closure to a stable median-ish value: best of `reps` runs.
fn time_ms(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// Figure 8: ours (PE compiler → S₀ VM) vs the Hobbit-like baseline,
/// offline generalization strategy — who wins, by what factor.
fn fig8() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 8: benchmarks (ours = PE→S0 on VM, offline strategy) ==");
    println!(
        "{:<11} {:>10} {:>10} {:>7}   {:>10} {:>10} {:>7}   match?",
        "benchmark", "ours ms", "hobbit ms", "ratio", "paper ours", "paper hob", "ratio"
    );
    for b in SUITE {
        let pipe = Pipeline::new(b.source)?;
        let args = b.bench_inputs();
        let opts = CompileOptions { strategy: GenStrategy::Offline, ..CompileOptions::default() };
        let vm = pipe.compile_vm(b.entry, &opts)?;
        let hob = pipe.compile_hobbit()?;
        let lim = Limits::default();

        let expect = vm.run(&args, lim)?.0;
        assert_eq!(expect, hob.run(b.entry, &args, lim)?, "{}: disagreement", b.name);

        let ours = time_ms(3, || {
            vm.run(&args, lim).expect("runs");
        });
        let hobbit = time_ms(3, || {
            hob.run(b.entry, &args, lim).expect("runs");
        });
        let ratio = ours / hobbit;
        let paper_ratio = f64::from(b.paper_ours_ms) / f64::from(b.paper_hobbit_ms);
        // Shape check: who wins.
        let shape = (ratio < 1.0) == (paper_ratio < 1.0);
        println!(
            "{:<11} {:>10.2} {:>10.2} {:>7.2}   {:>10} {:>10} {:>7.2}   {}",
            b.name,
            ours,
            hobbit,
            ratio,
            b.paper_ours_ms,
            b.paper_hobbit_ms,
            paper_ratio,
            if shape { "yes" } else { "no" }
        );
    }
    println!();
    Ok(())
}

/// §8: "using the online generalization strategy, the cpstak benchmark
/// ran roughly 3 times faster."
fn online() -> Result<(), Box<dyn std::error::Error>> {
    println!("== §8: online vs offline generalization ==");
    println!("{:<11} {:>12} {:>12} {:>9}", "benchmark", "offline ms", "online ms", "off/on");
    for b in SUITE {
        let pipe = Pipeline::new(b.source)?;
        let args = b.bench_inputs();
        let lim = Limits::default();
        let mut row = Vec::new();
        for strategy in [GenStrategy::Offline, GenStrategy::Online] {
            let opts = CompileOptions { strategy, ..CompileOptions::default() };
            let vm = pipe.compile_vm(b.entry, &opts)?;
            row.push(time_ms(3, || {
                vm.run(&args, lim).expect("runs");
            }));
        }
        println!("{:<11} {:>12.2} {:>12.2} {:>9.2}", b.name, row[0], row[1], row[0] / row[1]);
    }
    println!("(paper: cpstak ≈3× faster online)\n");
    Ok(())
}

/// §8 code sizes: residual program and C translation sizes per
/// benchmark (the paper: whole suite binary < 200 KB incl. collector).
fn size() -> Result<(), Box<dyn std::error::Error>> {
    println!("== §8: code sizes ==");
    println!(
        "{:<11} {:>9} {:>10} {:>12} {:>10}",
        "benchmark", "s0 procs", "s0 nodes", "s0 bytes", "C bytes"
    );
    let mut total_c = 0usize;
    for b in SUITE {
        let pipe = Pipeline::new(b.source)?;
        let opts = CompileOptions::default();
        let s0 = pipe.compile(b.entry, &opts)?;
        let c = pipe.emit_c(b.entry, &b.bench_inputs(), &opts)?;
        total_c += c.size_bytes();
        println!(
            "{:<11} {:>9} {:>10} {:>12} {:>10}",
            b.name,
            s0.procs.len(),
            s0.size(),
            s0.to_source().len(),
            c.size_bytes()
        );
    }
    println!(
        "total generated C for the suite: {} KB (paper: suite binary < 200 KB)\n",
        total_c / 1024
    );
    Ok(())
}

/// Ablation A: The Trick's dispatch with vs without the flow-analysis
/// restriction (§4.2): dispatch tests and code size.
fn trick() -> Result<(), Box<dyn std::error::Error>> {
    println!("== ablation: flow-restricted dispatch (The Trick) ==");
    println!(
        "{:<11} {:>14} {:>14} {:>12} {:>12}",
        "benchmark", "tests (flow)", "tests (all)", "size (flow)", "size (all)"
    );
    for b in SUITE {
        let pipe = Pipeline::new(b.source)?;
        let mut row = Vec::new();
        for trick_flow in [true, false] {
            let opts = CompileOptions { trick_flow, ..CompileOptions::default() };
            let s0 = pipe.compile(b.entry, &opts)?;
            let text = s0.to_source();
            row.push((text.matches("closure-label").count(), s0.size()));
        }
        println!(
            "{:<11} {:>14} {:>14} {:>12} {:>12}",
            b.name, row[0].0, row[1].0, row[0].1, row[1].1
        );
    }
    println!();
    Ok(())
}

/// Ablation B: the residual post-processor (transition compression,
/// inline-once, dead params) on/off.
fn post() -> Result<(), Box<dyn std::error::Error>> {
    println!("== ablation: residual post-processing ==");
    println!(
        "{:<11} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "procs (on)", "procs (off)", "nodes (on)", "nodes (off)"
    );
    for b in SUITE {
        let pipe = Pipeline::new(b.source)?;
        let on = pipe.compile(b.entry, &CompileOptions::default())?;
        let off = pipe
            .compile(b.entry, &CompileOptions { postprocess: false, ..CompileOptions::default() })?;
        println!(
            "{:<11} {:>12} {:>12} {:>12} {:>12}",
            b.name,
            on.procs.len(),
            off.procs.len(),
            on.size(),
            off.size()
        );
    }
    println!();
    Ok(())
}

/// Ablation C: Unmix's arity raiser / post-unfolding on the Futamura
/// residual programs ("crucial … in the absence of partially static
/// data").
fn arity() -> Result<(), Box<dyn std::error::Error>> {
    println!("== ablation: unmix post-processing (arity raising) on Futamura targets ==");
    let subjects = [
        (
            "rev",
            "(define (rev l) (rev-acc l '()))
             (define (rev-acc l acc)
               (if (null? l) acc (rev-acc (cdr l) (cons (car l) acc))))",
        ),
        (
            "sum",
            "(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))",
        ),
        (
            "member",
            "(define (member? x l)
               (if (null? l) #f (if (eq? x (car l)) #t (member? x (cdr l)))))",
        ),
    ];
    println!("{:<9} {:>12} {:>12}", "subject", "bytes (on)", "bytes (off)");
    for (name, src) in subjects {
        let subject = realistic_pe::parse_source(src)?;
        let on = realistic_pe::compile_by_futamura(&subject, &UnmixOptions::default())?;
        let off = realistic_pe::compile_by_futamura(
            &subject,
            &UnmixOptions { postprocess: false, ..UnmixOptions::default() },
        )?;
        println!(
            "{:<9} {:>12} {:>12}",
            name,
            on.to_source().len(),
            off.to_source().len()
        );
    }
    println!();
    Ok(())
}

/// The interpretive-overhead claim (§2): compiled code vs direct
/// interpretation, plus the specializer projection payoff.
fn speedup() -> Result<(), Box<dyn std::error::Error>> {
    println!("== §2: interpretive overhead removal (compiled vs Fig. 3 interpreter) ==");
    println!(
        "{:<11} {:>12} {:>12} {:>9}",
        "benchmark", "interp ms", "compiled ms", "speedup"
    );
    for b in SUITE {
        let pipe = Pipeline::new(b.source)?;
        let args = b.bench_inputs();
        let lim = Limits::default();
        let vm = pipe.compile_vm(b.entry, &CompileOptions::default())?;
        let interp = time_ms(3, || {
            pipe.run_standard(b.entry, &args, lim).expect("runs");
        });
        let compiled = time_ms(3, || {
            vm.run(&args, lim).expect("runs");
        });
        println!(
            "{:<11} {:>12.3} {:>12.3} {:>9.2}",
            b.name,
            interp,
            compiled,
            interp / compiled
        );
    }
    // Specializer projection payoff in deterministic steps.
    let pipe = Pipeline::new(
        "(define (append x y) (cps-append x y (lambda (v) v)))
         (define (cps-append x y c)
           (if (null? x) (c y)
               (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
    )?;
    let opts = CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };
    let xs = "(a b c d e f g h)";
    let general = compile(&pipe.dprog, "append", &opts)?;
    let special =
        specialize(&pipe.dprog, "append", &[Some(Datum::parse(xs)?), None], &opts)?;
    let y = Datum::parse("(tail)")?;
    let (_, s1) = Vm::compile(&general)?.run(&[Datum::parse(xs)?, y.clone()], Limits::default())?;
    let (_, s2) = Vm::compile(&special)?.run(&[y], Limits::default())?;
    println!(
        "\nappend vs append-$1 on static {xs}: {} steps → {} steps\n",
        s1.steps, s2.steps
    );
    Ok(())
}
