//! A guided tour of the §4 interpreter derivation — the same program at
//! every stage of the pipeline, printed:
//!
//! 1. the surface program (Fig. 2);
//! 2. the desugared simple/serious tail form (Fig. 5) with its hoisted
//!    context lambdas;
//! 3. what the flow analysis (§4.2) and the offline generalization
//!    analysis (§4.5) know about it;
//! 4. the residual S₀ program of the specializing compiler (Fig. 7),
//!    with and without post-processing;
//! 5. the first lines of the §5.1 C translation.
//!
//! ```sh
//! cargo run --example stages
//! ```

use pe_frontend::flow::FlowAnalysis;
use pe_frontend::gen_analysis::GenAnalysis;
use realistic_pe::{CompileOptions, Datum, Pipeline};

const SRC: &str = "(define (sum-sq l) (loop l 0))
(define (loop l acc)
  (if (null? l)
      acc
      (loop (cdr l) (+ acc (* (car l) (car l))))))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipe = Pipeline::new(SRC)?;

    println!("== 1. surface program (Fig. 2) ==\n{}\n", pipe.program.to_source());

    println!("== 2. desugared tail form (Fig. 5) ==");
    println!("{}", pipe.dprog.to_source());
    println!("hoisted lambdas (φ): {}\n", pipe.dprog.lambdas.len());

    println!("== 3. analyses ==");
    let flow = FlowAnalysis::analyze(&pipe.dprog);
    let gen = GenAnalysis::analyze(&pipe.dprog, &flow);
    println!("context lambdas (may be pushed on τ): {:?}", flow.context_lambdas());
    println!("critical lambdas  (§4.5, source 1/2): {:?}", gen.critical_lams);
    println!("critical cons sites (§4.5, source 3): {:?}\n", gen.critical_cons);

    println!("== 4. compiled S0, post-processing ON ==");
    let s0 = pipe.compile("sum-sq", &CompileOptions::default())?;
    println!("{}", s0.to_source());
    let raw = pipe.compile(
        "sum-sq",
        &CompileOptions { postprocess: false, ..CompileOptions::default() },
    )?;
    println!(
        "(post-processing: {} procs / {} nodes  →  {} procs / {} nodes)\n",
        raw.procs.len(),
        raw.size(),
        s0.procs.len(),
        s0.size()
    );

    println!("== 5. the §5.1 C translation (first 25 lines of program()) ==");
    let c = pipe.emit_c("sum-sq", &[Datum::parse("(1 2 3)")?], &CompileOptions::default())?;
    let program_part = c
        .source
        .split("static Obj *program")
        .nth(1)
        .unwrap_or("")
        .lines()
        .take(25)
        .collect::<Vec<_>>()
        .join("\n");
    println!("static Obj *program{program_part}\n  …");

    // And of course it all computes the same thing.
    let args = [Datum::parse("(1 2 3 4)")?];
    let reference = pipe.run_standard("sum-sq", &args, realistic_pe::Limits::default())?;
    let (compiled, _) = pipe.run_compiled(
        "sum-sq",
        &args,
        &CompileOptions::default(),
        realistic_pe::Limits::default(),
    )?;
    assert_eq!(reference, compiled);
    println!("\nsum-sq '(1 2 3 4) = {compiled} on every stage: OK");
    Ok(())
}
