//! Static-verification audit of the whole Gabriel suite.
//!
//! For each of the seven Fig. 8 benchmarks, compiles the program under
//! both generalization strategies and runs every `pe-verify` pass
//! (well-formedness, closure-shape analysis, the language-preservation
//! certificate, lints); for the first-order benchmarks, additionally
//! compiles by the first Futamura projection and verifies the Unmix
//! residual plus its binding-time division.  Exits non-zero if any
//! error-severity diagnostic is produced — warnings (e.g. dead dispatch
//! arms left by specialization) are reported but tolerated.
//!
//! ```sh
//! cargo run --release -p realistic-pe --example verify
//! ```

use pe_unmix::Division;
use pe_verify::Pass;
use realistic_pe::{
    compile_by_futamura, encode_program, verify_division, CompileOptions, GenStrategy, Pipeline,
    Report, UnmixOptions, FUTAMURA_ENTRY, SINT, SUITE,
};

fn show(what: &str, report: &Report) -> usize {
    println!(
        "{what:<28} {} error(s), {} warning(s)",
        report.error_count(),
        report.warning_count()
    );
    for d in &report.diagnostics {
        println!("    {d}");
    }
    report.error_count()
}

/// The flow lints mirror the flow optimizer, so *optimized* pipeline
/// output must carry zero flow-pass warnings: any that remain mean an
/// optimization silently failed to run.  Treat them as errors.
fn flow_strict(what: &str, report: &Report) -> usize {
    let stuck: Vec<_> =
        report.warnings().filter(|d| d.pass == Pass::Flow).collect();
    for d in &stuck {
        println!("    flow-strict: {d}");
    }
    if !stuck.is_empty() {
        println!("{what:<28} {} unoptimized flow finding(s)", stuck.len());
    }
    stuck.len()
}

fn main() {
    let mut total_errors = 0;
    for b in SUITE {
        let pipe = Pipeline::new(b.source).expect("suite programs parse");
        for strategy in [GenStrategy::Offline, GenStrategy::Online] {
            let opts = CompileOptions { strategy, ..CompileOptions::default() };
            let report = pipe.verify(b.entry, &opts).expect("suite programs compile");
            let what = format!("{} [{strategy:?}]", b.name);
            total_errors += show(&what, &report);
            total_errors += flow_strict(&what, &report);
        }
        if !b.higher_order {
            // First Futamura projection: specialize the self-interpreter
            // to the subject, then verify the surface-language residual
            // and audit the binding-time division it came from.
            let subject = pipe.program.clone();
            let residual = compile_by_futamura(&subject, &UnmixOptions::default())
                .expect("first-order benchmarks project");
            let report = realistic_pe::verify_program(&residual, FUTAMURA_ENTRY);
            total_errors += show(&format!("{} [Futamura]", b.name), &report);

            // The Unmix residual is itself a compilable program: push it
            // through the pipeline and run the S₀ passes — including the
            // flow pass — over *its* residual too.
            let repipe = Pipeline::new(&residual.to_source())
                .expect("Futamura residuals re-parse");
            let report = repipe
                .verify(FUTAMURA_ENTRY, &CompileOptions::default())
                .expect("Futamura residuals compile");
            let what = format!("{} [Futamura→S₀]", b.name);
            total_errors += show(&what, &report);
            total_errors += flow_strict(&what, &report);

            let sint = realistic_pe::parse_source(SINT).expect("SINT parses");
            let _ = encode_program(&subject).expect("subjects encode");
            let div = Division::analyze(&sint, "sint", &[true, false]);
            let report = verify_division(&sint, "sint", &div);
            total_errors += show(&format!("{} [BTA audit]", b.name), &report);
        }
    }
    if total_errors > 0 {
        eprintln!("verification FAILED: {total_errors} error(s)");
        std::process::exit(1);
    }
    println!("verification passed: 0 errors across the suite");
}
