//! Quickstart: compile the paper's §1 `cps-append` program and run it on
//! every engine in the suite.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use realistic_pe::{CompileOptions, Datum, Limits, Pipeline};

const SRC: &str = "(define (append x y) (cps-append x y (lambda (v) v)))
(define (cps-append x y c)
  (if (null? x)
      (c y)
      (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipe = Pipeline::new(SRC)?;
    let args = [Datum::parse("(1 2 3)")?, Datum::parse("(4 5)")?];
    let lim = Limits::default();

    println!("== source program ==\n{}\n", pipe.program.to_source());

    // 1. Reference semantics: the Fig. 3 interpreter.
    let reference = pipe.run_standard("append", &args, lim)?;
    println!("standard interpreter  : {reference}");

    // 2. The specializing compiler: higher-order → first-order
    //    tail-recursive S₀, closure conversion and tail conversion in
    //    one pass.
    let s0 = pipe.compile("append", &CompileOptions::default())?;
    println!("\n== compiled S0 (first-order, tail-recursive) ==\n{s0}");

    // 3. Run the compiled code on the goto-machine VM.
    let (result, stats) = pipe.run_compiled("append", &args, &CompileOptions::default(), lim)?;
    println!("compiled on VM        : {result}   ({stats:?})");
    assert_eq!(result, reference);

    // 4. The Hobbit-like baseline for comparison.
    let hobbit = pipe.compile_hobbit()?;
    println!("hobbit baseline       : {}", hobbit.run("append", &args, lim)?);

    // 5. And the §5.1 C translation.
    let c = pipe.emit_c("append", &args, &CompileOptions::default())?;
    println!("\nC translation: {} bytes (see compile_to_c example to run it)", c.size_bytes());
    Ok(())
}
