//! The first Futamura projection, run for real (§3, Fig. 1):
//! `[pe] sintˢᵈ P = target(P)` — specializing a self-interpreter with
//! respect to a static subject program compiles that program.
//!
//! `sint` is a self-interpreter for the first-order recursion-equation
//! language, itself written in that language; `pe-unmix` is the simple
//! first-order offline partial evaluator the paper insists suffices.
//!
//! ```sh
//! cargo run --example futamura
//! ```

use realistic_pe::{compile_by_futamura, parse_source, Datum, Limits, UnmixOptions, FUTAMURA_ENTRY};
use pe_unmix::SINT;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let subject = parse_source(
        "(define (rev l) (rev-acc l '()))
         (define (rev-acc l acc)
           (if (null? l) acc (rev-acc (cdr l) (cons (car l) acc))))",
    )?;
    println!("== subject program P ==\n{}\n", subject.to_source());
    println!("sint (self-interpreter): {} bytes of subject language\n", SINT.len());

    // target(P) = [unmix] sint^{sd} encode(P)
    let compiled = compile_by_futamura(&subject, &UnmixOptions::default())?;
    println!("== target(P) = [unmix] sint^sd P ==\n{}", compiled.to_source());

    // The compiled program agrees with P; its entry takes the subject
    // arguments as one list.
    let input = Datum::parse("(1 2 3 4 5)")?;
    let direct =
        pe_interp::standard::run(&subject, "rev", std::slice::from_ref(&input), Limits::default())?;
    let via = pe_interp::standard::run(
        &compiled,
        FUTAMURA_ENTRY,
        &[pe_interp::Value::list([input])],
        Limits::default(),
    )?;
    println!("\nP '(1 2 3 4 5)        ⇒ {direct}");
    println!("target(P) '(1 2 3 4 5) ⇒ {via}");
    assert_eq!(direct, via);

    // The interpretive overhead is gone: no tag dispatch survives.
    let text = compiled.to_source();
    assert!(!text.contains("'var") && !text.contains("bad-expression"));
    println!("\nno interpretive tag dispatch in the target: OK");
    println!(
        "sizes: subject {} bytes, target {} bytes (\"essentially the identity\")",
        subject.to_source().len(),
        text.len()
    );
    Ok(())
}
