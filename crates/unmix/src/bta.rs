//! Binding-time analysis — the first phase of an offline partial
//! evaluator (§2).
//!
//! Given the binding times of the entry procedure's parameters, the
//! analysis computes a congruent monovariant *division* for every
//! procedure (is each parameter static or dynamic at specialization
//! time?) plus each procedure's result binding time, and classifies
//! procedures as **unfoldable** or **residual**: a procedure whose body
//! contains a conditional on dynamic data becomes a specialization
//! point, exactly Unmix's classic Mix strategy.

use pe_frontend::ast::{Expr, Program};
use std::collections::HashMap;
use std::sync::Arc;

/// A binding time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bt {
    /// Known at specialization time.
    Static,
    /// Known only at run time.
    Dynamic,
}

impl Bt {
    /// The least upper bound (S ⊑ D).
    pub fn join(self, other: Bt) -> Bt {
        if self == Bt::Dynamic || other == Bt::Dynamic {
            Bt::Dynamic
        } else {
            Bt::Static
        }
    }
}

/// The analysis result.
#[derive(Debug, Clone)]
pub struct Division {
    /// Per procedure: binding time of each parameter.
    pub params: HashMap<Arc<str>, Vec<Bt>>,
    /// Per procedure: binding time of the result.
    pub result: HashMap<Arc<str>, Bt>,
    /// Procedures that must be specialized rather than unfolded.
    pub residual: HashMap<Arc<str>, bool>,
}

impl Division {
    /// Runs the analysis for `entry` with the given parameter binding
    /// times (`true` = static).
    pub fn analyze(p: &Program, entry: &str, static_params: &[bool]) -> Division {
        let mut params: HashMap<Arc<str>, Vec<Bt>> = p
            .defs
            .iter()
            .map(|d| (d.name.clone(), vec![Bt::Static; d.params.len()]))
            .collect();
        // Entry division comes from the caller; everything else starts
        // optimistic (all static) and is raised by call sites.
        if let Some(div) = params.get_mut(entry) {
            for (i, b) in div.iter_mut().enumerate() {
                *b = if static_params.get(i).copied().unwrap_or(false) {
                    Bt::Static
                } else {
                    Bt::Dynamic
                };
            }
        }
        let mut result: HashMap<Arc<str>, Bt> =
            p.defs.iter().map(|d| (d.name.clone(), Bt::Static)).collect();
        // Fixpoint: propagate argument binding times into divisions and
        // recompute result binding times.
        loop {
            let mut changed = false;
            for d in &p.defs {
                let env: HashMap<Arc<str>, Bt> = d
                    .params
                    .iter()
                    .cloned()
                    .zip(params[&d.name].iter().copied())
                    .collect();
                bt_expr(&d.body, &env, &result, &mut |callee, arg_bts| {
                    // Calls to undefined procedures are ignored here; the
                    // reducer reports them as NoSuchProc when reached.
                    let Some(div) = params.get_mut(callee) else { return };
                    for (slot, bt) in div.iter_mut().zip(arg_bts) {
                        let joined = slot.join(*bt);
                        if joined != *slot {
                            *slot = joined;
                            changed = true;
                        }
                    }
                });
                let env: HashMap<Arc<str>, Bt> = d
                    .params
                    .iter()
                    .cloned()
                    .zip(params[&d.name].iter().copied())
                    .collect();
                let r = bt_expr(&d.body, &env, &result, &mut |_, _| {});
                if let Some(slot) = result.get_mut(&d.name) {
                    let joined = slot.join(r);
                    if joined != *slot {
                        *slot = joined;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Residual = body has a conditional with a dynamic condition;
        // the entry is always residual.
        let mut residual = HashMap::new();
        for d in &p.defs {
            let env: HashMap<Arc<str>, Bt> = d
                .params
                .iter()
                .cloned()
                .zip(params[&d.name].iter().copied())
                .collect();
            let mut has_dyn_if = false;
            find_dynamic_ifs(&d.body, &env, &result, &mut has_dyn_if);
            residual.insert(d.name.clone(), has_dyn_if || &*d.name == entry);
        }
        Division { params, result, residual }
    }

    /// True if `name` is a specialization point.
    pub fn is_residual(&self, name: &str) -> bool {
        self.residual.get(name).copied().unwrap_or(true)
    }

    /// Audits this division for congruence over `p` (§2).
    ///
    /// A division is *congruent* when no static parameter can receive a
    /// dynamic argument: for every call site, the binding time of each
    /// argument (computed under the caller's recorded division) must be
    /// ⊑ the callee's recorded parameter binding time.  The audit also
    /// checks coverage (every procedure has a division of the right
    /// width) and that the recorded result binding times are a fixpoint
    /// of the bodies.  Returns human-readable violations; an empty
    /// vector means the division is congruent and specialization cannot
    /// encounter an unexpectedly-dynamic "static" value.
    pub fn audit(&self, p: &Program, entry: &str) -> Vec<String> {
        let mut out = Vec::new();
        if !self.params.contains_key(entry) {
            out.push(format!("division does not cover entry procedure {entry}"));
        }
        for d in &p.defs {
            let Some(div) = self.params.get(&d.name) else {
                out.push(format!("division does not cover procedure {}", d.name));
                continue;
            };
            if div.len() != d.params.len() {
                out.push(format!(
                    "division for {} has {} binding time(s) for {} parameter(s)",
                    d.name,
                    div.len(),
                    d.params.len()
                ));
                continue;
            }
            let env: HashMap<Arc<str>, Bt> =
                d.params.iter().cloned().zip(div.iter().copied()).collect();
            let r = bt_expr(&d.body, &env, &self.result, &mut |callee, arg_bts| {
                let Some(callee_div) = self.params.get(callee) else {
                    out.push(format!(
                        "{} calls {callee}, which the division does not cover",
                        d.name
                    ));
                    return;
                };
                for (i, (slot, bt)) in callee_div.iter().zip(arg_bts).enumerate() {
                    if *slot == Bt::Static && *bt == Bt::Dynamic {
                        let prm = p
                            .def(callee)
                            .and_then(|cd| cd.params.get(i).cloned())
                            .unwrap_or_else(|| format!("#{i}").into());
                        out.push(format!(
                            "congruence violation: {} passes a dynamic argument \
                             to static parameter {prm} of {callee}",
                            d.name
                        ));
                    }
                }
            });
            let recorded = self.result.get(&d.name).copied().unwrap_or(Bt::Dynamic);
            if recorded.join(r) != recorded {
                out.push(format!(
                    "result binding time of {} recorded as static \
                     but its body computes a dynamic result",
                    d.name
                ));
            }
        }
        out
    }
}

/// Computes the binding time of an expression; reports every call's
/// argument binding times through `on_call`.
fn bt_expr(
    e: &Expr,
    env: &HashMap<Arc<str>, Bt>,
    result: &HashMap<Arc<str>, Bt>,
    on_call: &mut impl FnMut(&Arc<str>, &[Bt]),
) -> Bt {
    match e {
        Expr::Var(_, v) => env.get(v).copied().unwrap_or(Bt::Dynamic),
        Expr::Const(_, _) => Bt::Static,
        Expr::If(_, c, t, f) => {
            let cb = bt_expr(c, env, result, on_call);
            let tb = bt_expr(t, env, result, on_call);
            let fb = bt_expr(f, env, result, on_call);
            cb.join(tb).join(fb)
        }
        Expr::Prim(_, _, args) => args
            .iter()
            .map(|a| bt_expr(a, env, result, on_call))
            .fold(Bt::Static, Bt::join),
        Expr::Call(_, p, args) => {
            let bts: Vec<Bt> =
                args.iter().map(|a| bt_expr(a, env, result, on_call)).collect();
            on_call(p, &bts);
            result.get(p).copied().unwrap_or(Bt::Dynamic)
        }
        Expr::Let(_, v, rhs, body) => {
            let rb = bt_expr(rhs, env, result, on_call);
            let mut inner = env.clone();
            inner.insert(v.clone(), rb);
            bt_expr(body, &inner, result, on_call)
        }
        Expr::Lambda(_, _, _) | Expr::App(_, _, _) => {
            unreachable!("unmix input is first-order (checked by FoProgram)")
        }
    }
}

fn find_dynamic_ifs(
    e: &Expr,
    env: &HashMap<Arc<str>, Bt>,
    result: &HashMap<Arc<str>, Bt>,
    found: &mut bool,
) {
    match e {
        Expr::Var(_, _) | Expr::Const(_, _) => {}
        Expr::If(_, c, t, f) => {
            if bt_expr(c, env, result, &mut |_, _| {}) == Bt::Dynamic {
                *found = true;
            }
            find_dynamic_ifs(c, env, result, found);
            find_dynamic_ifs(t, env, result, found);
            find_dynamic_ifs(f, env, result, found);
        }
        Expr::Prim(_, _, args) | Expr::Call(_, _, args) => {
            args.iter().for_each(|a| find_dynamic_ifs(a, env, result, found));
        }
        Expr::Let(_, v, rhs, body) => {
            find_dynamic_ifs(rhs, env, result, found);
            let rb = bt_expr(rhs, env, result, &mut |_, _| {});
            let mut inner = env.clone();
            inner.insert(v.clone(), rb);
            find_dynamic_ifs(body, &inner, result, found);
        }
        Expr::Lambda(_, _, _) | Expr::App(_, _, _) => {
            unreachable!("unmix input is first-order")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::parse_source;

    type R = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn static_params_stay_static() -> R {
        let p = parse_source(
            "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))",
        )?;
        let div = Division::analyze(&p, "power", &[false, true]);
        assert_eq!(div.params["power"], vec![Bt::Dynamic, Bt::Static]);
        // Result depends on dynamic x.
        assert_eq!(div.result["power"], Bt::Dynamic);
        // The only conditional tests static n: power is unfoldable…
        // except it is the entry, which is always residual.
        assert!(div.is_residual("power"));
        Ok(())
    }

    #[test]
    fn dynamic_conditional_makes_residual() -> R {
        let p = parse_source(
            "(define (main s d) (helper s d))
             (define (helper s d) (if (null? d) s (helper s (cdr d))))",
        )?;
        let div = Division::analyze(&p, "main", &[true, false]);
        assert_eq!(div.params["helper"], vec![Bt::Static, Bt::Dynamic]);
        assert!(div.is_residual("helper"), "dynamic conditional on d");
        Ok(())
    }

    #[test]
    fn static_helpers_are_unfoldable() -> R {
        let p = parse_source(
            "(define (main s d) (cons (len s) d))
             (define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))",
        )?;
        let div = Division::analyze(&p, "main", &[true, false]);
        assert_eq!(div.params["len"], vec![Bt::Static]);
        assert_eq!(div.result["len"], Bt::Static);
        assert!(!div.is_residual("len"));
        Ok(())
    }

    #[test]
    fn audit_accepts_analyzed_divisions_and_rejects_corrupted_ones() -> R {
        let p = parse_source(
            "(define (main s d) (f d))
             (define (f x) (g x))
             (define (g y) y)",
        )?;
        let div = Division::analyze(&p, "main", &[true, false]);
        assert!(div.audit(&p, "main").is_empty());

        // Corrupt the division: claim f's parameter is static even
        // though main passes it the dynamic d.
        let mut bad = div.clone();
        bad.params.insert("f".into(), vec![Bt::Static]);
        bad.result.insert("f".into(), Bt::Static);
        let violations = bad.audit(&p, "main");
        assert!(
            violations.iter().any(|v| v
                .contains("congruence violation: main passes a dynamic argument to static parameter x of f")),
            "{violations:?}"
        );

        // Drop a procedure from the division entirely.
        let mut partial = div.clone();
        partial.params.remove("g");
        let violations = partial.audit(&p, "main");
        assert!(
            violations.iter().any(|v| v.contains("division does not cover procedure g")),
            "{violations:?}"
        );
        Ok(())
    }

    #[test]
    fn congruence_raises_through_calls() -> R {
        let p = parse_source(
            "(define (main s d) (f d))
             (define (f x) (g x))
             (define (g y) y)",
        )?;
        let div = Division::analyze(&p, "main", &[true, false]);
        assert_eq!(div.params["f"], vec![Bt::Dynamic]);
        assert_eq!(div.params["g"], vec![Bt::Dynamic]);
        assert_eq!(div.result["g"], Bt::Dynamic);
        Ok(())
    }
}
