//! The first Futamura projection, executed for real (§3, Fig. 1).
//!
//! [`SINT`] is a self-interpreter for the first-order recursion-equation
//! language, itself written *in* that language (programs are data:
//! tagged S-expressions).  Specializing `sint` with respect to a static
//! subject program — `[unmix] sintˢᵈ P = target(P)` — yields a residual
//! program equivalent to `P`: compilation by partial evaluation.  Since
//! `sint` is a self-interpreter, the residual program is essentially `P`
//! itself (the paper: "the compilation is essentially the identity
//! function") — after arity raising has flattened the interpreter's
//! runtime argument lists, which is why the paper calls the arity
//! raiser "crucial … in the absence of partially static data".

use crate::spec::{specialize, UnmixError, UnmixOptions};
use pe_frontend::ast::{Constant, Expr, Program};
use pe_interp::{Datum, Value};

/// The self-interpreter, written in the first-order subject language.
///
/// Subject programs are encoded data: a list of `(name (param …) body)`
/// triples whose body grammar is
/// `(var v) | (const k) | (if c t e) | (let v rhs body) |
///  (prim op arg …) | (call p arg …)`.
pub const SINT: &str = r"
(define (sint prog args)
  (ev (body-of (car prog)) (params-of (car prog)) args prog))
(define (params-of def) (car (cdr def)))
(define (body-of def) (car (cdr (cdr def))))
(define (name-of def) (car def))
(define (lookup-def n prog)
  (if (eq? n (name-of (car prog)))
      (car prog)
      (lookup-def n (cdr prog))))
(define (lookup v names vals)
  (if (eq? v (car names))
      (car vals)
      (lookup v (cdr names) (cdr vals))))
(define (ev e names vals prog)
  (if (eq? (car e) 'var) (lookup (car (cdr e)) names vals)
  (if (eq? (car e) 'const) (car (cdr e))
  (if (eq? (car e) 'if)
      (if (ev (car (cdr e)) names vals prog)
          (ev (car (cdr (cdr e))) names vals prog)
          (ev (car (cdr (cdr (cdr e)))) names vals prog))
  (if (eq? (car e) 'let)
      (ev (car (cdr (cdr (cdr e))))
          (cons (car (cdr e)) names)
          (cons (ev (car (cdr (cdr e))) names vals prog) vals)
          prog)
  (if (eq? (car e) 'prim)
      (ap (car (cdr e)) (evlis (cdr (cdr e)) names vals prog))
  (if (eq? (car e) 'call)
      (evcall (lookup-def (car (cdr e)) prog)
              (evlis (cdr (cdr e)) names vals prog)
              prog)
      'bad-expression)))))))
(define (evcall def vs prog) (ev (body-of def) (params-of def) vs prog))
(define (evlis es names vals prog)
  (if (null? es)
      '()
      (cons (ev (car es) names vals prog)
            (evlis (cdr es) names vals prog))))
(define (ap op vs)
  (if (eq? op 'car) (car (car vs))
  (if (eq? op 'cdr) (cdr (car vs))
  (if (eq? op 'cons) (cons (car vs) (car (cdr vs)))
  (if (eq? op 'null?) (null? (car vs))
  (if (eq? op 'pair?) (pair? (car vs))
  (if (eq? op 'not) (not (car vs))
  (if (eq? op 'eq?) (eq? (car vs) (car (cdr vs)))
  (if (eq? op 'equal?) (equal? (car vs) (car (cdr vs)))
  (if (eq? op '+) (+ (car vs) (car (cdr vs)))
  (if (eq? op '-) (- (car vs) (car (cdr vs)))
  (if (eq? op '*) (* (car vs) (car (cdr vs)))
  (if (eq? op '=) (= (car vs) (car (cdr vs)))
  (if (eq? op '<) (< (car vs) (car (cdr vs)))
  (if (eq? op '>) (> (car vs) (car (cdr vs)))
  (if (eq? op 'zero?) (zero? (car vs))
  (if (eq? op 'add1) (add1 (car vs))
  (if (eq? op 'sub1) (sub1 (car vs))
      'bad-prim))))))))))))))))))
";

/// Encodes a first-order program as `sint` data.  The entry must be the
/// first definition.
///
/// # Errors
///
/// [`UnmixError::NotFirstOrder`] if the program uses `lambda` or
/// computed application.
pub fn encode_program(p: &Program) -> Result<Datum, UnmixError> {
    crate::spec::check_first_order(p)?;
    Ok(Value::list(
        p.defs
            .iter()
            .map(|d| {
                Value::list([
                    Value::Sym(d.name.clone()),
                    Value::list(d.params.iter().map(|v| Value::Sym(v.clone())).collect::<Vec<_>>()),
                    encode_expr(&d.body),
                ])
            })
            .collect::<Vec<_>>(),
    ))
}

fn sym(s: &str) -> Datum {
    Value::Sym(s.into())
}

fn encode_expr(e: &Expr) -> Datum {
    match e {
        Expr::Var(_, v) => Value::list([sym("var"), Value::Sym(v.clone())]),
        Expr::Const(_, k) => Value::list([sym("const"), constant_datum(k)]),
        Expr::If(_, c, t, f) => {
            Value::list([sym("if"), encode_expr(c), encode_expr(t), encode_expr(f)])
        }
        Expr::Let(_, v, rhs, body) => Value::list([
            sym("let"),
            Value::Sym(v.clone()),
            encode_expr(rhs),
            encode_expr(body),
        ]),
        Expr::Prim(_, op, args) => {
            let mut xs = vec![sym("prim"), sym(op.name())];
            xs.extend(args.iter().map(encode_expr));
            Value::list(xs)
        }
        Expr::Call(_, p, args) => {
            let mut xs = vec![sym("call"), Value::Sym(p.clone())];
            xs.extend(args.iter().map(encode_expr));
            Value::list(xs)
        }
        Expr::Lambda(_, _, _) | Expr::App(_, _, _) => {
            unreachable!("encode_program checks first-orderness")
        }
    }
}

fn constant_datum(k: &Constant) -> Datum {
    Value::from_constant(k)
}

/// Runs the first Futamura projection: specializes [`SINT`] with respect
/// to the (encoded) subject program, producing its compilation.  The
/// residual program's entry is `sint-$1(args)` where `args` is the list
/// of the subject entry's arguments.
///
/// # Errors
///
/// See [`UnmixError`].
pub fn compile_by_futamura(
    subject: &Program,
    opts: &UnmixOptions,
) -> Result<Program, UnmixError> {
    let sint = pe_frontend::parse_source(SINT)
        .map_err(|e| UnmixError::StaticError(format!("SINT failed to parse: {e}")))?;
    let encoded = encode_program(subject)?;
    specialize(&sint, "sint", &[Some(encoded), None], opts)
}

/// Convenience: the residual entry name produced by
/// [`compile_by_futamura`].
pub const FUTAMURA_ENTRY: &str = "sint-$1";

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::parse_source;
    use pe_interp::{standard, Limits};

    type R = Result<(), Box<dyn std::error::Error>>;

    fn dint(n: i64) -> Datum {
        Datum::Int(n)
    }

    #[test]
    fn sint_parses_and_interprets() -> R {
        // sint running an encoded program agrees with direct evaluation.
        let sint = parse_source(SINT)?;
        let subject =
            parse_source("(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))")?;
        let encoded = encode_program(&subject)?;
        let input = Datum::parse("(1 2 3 4)")?;
        let direct =
            standard::run(&subject, "sum", std::slice::from_ref(&input), Limits::default())?;
        let via_sint = standard::run(
            &sint,
            "sint",
            &[encoded, Value::list([input])],
            Limits::default(),
        )?;
        assert_eq!(direct, via_sint);
        assert_eq!(direct, dint(10));
        Ok(())
    }

    #[test]
    fn futamura_projection_compiles() -> R {
        let subject =
            parse_source("(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))")?;
        let compiled = compile_by_futamura(&subject, &UnmixOptions::default())?;
        // The compiled program computes the same function…
        let input = Datum::parse("(5 6 7)")?;
        let direct =
            standard::run(&subject, "sum", std::slice::from_ref(&input), Limits::default())?;
        let via = standard::run(
            &compiled,
            FUTAMURA_ENTRY,
            &[Value::list([input])],
            Limits::default(),
        )?;
        assert_eq!(direct, via);
        // …and the interpretive overhead is gone: no `ev` dispatch on
        // expression tags survives (every (eq? (car e) 'var) test was
        // static).
        let text = compiled.to_source();
        assert!(!text.contains("bad-expression"), "{text}");
        assert!(!text.contains("'var"), "{text}");
        Ok(())
    }

    #[test]
    fn futamura_identity_effect_on_self_interpreter_scale() -> R {
        // Compilation of a two-procedure program yields a residual
        // program of comparable (small) size — the "essentially the
        // identity" observation, not an interpreter-sized blowup.
        let subject = parse_source(
            "(define (main n) (double (add1 n)))
             (define (double x) (* 2 x))",
        )?;
        let compiled = compile_by_futamura(&subject, &UnmixOptions::default())?;
        let sint_size = SINT.len();
        let out_size = compiled.to_source().len();
        assert!(
            out_size < sint_size / 4,
            "residual ({out_size} bytes) should be tiny vs sint ({sint_size} bytes):\n{}",
            compiled.to_source()
        );
        let via = standard::run(
            &compiled,
            FUTAMURA_ENTRY,
            &[Value::list([dint(20)])],
            Limits::default(),
        )?;
        assert_eq!(via, dint(42));
        Ok(())
    }
}
