//! Unmix's post-processor: post-unfolding, dead-parameter elimination,
//! local simplification and — crucially, in the absence of partially
//! static data — Romanenko's **arity raiser** (§2).
//!
//! The arity raiser splits a parameter that every call site binds to a
//! `(cons a d)` and that the body only ever destructs with `car`/`cdr`
//! into two parameters, undoing the boxing that a first-order encoding
//! of environments introduces.  Iterated to a fixpoint it flattens whole
//! argument lists — which is what makes residual programs of the
//! Futamura projection look like real compiled code.

use crate::spec::{is_effect_free, subst_var};
use pe_frontend::ast::{Expr, Label, Prim, Program};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Runs every pass to a fixpoint.
pub fn postprocess(mut p: Program) -> Program {
    loop {
        let before = fingerprint(&p);
        p = simplify(p);
        p = drop_unreachable(p);
        p = compress_transitions(p);
        p = inline_once(p);
        p = drop_dead_params(p);
        p = raise_arity(p);
        if fingerprint(&p) == before {
            return p;
        }
    }
}

fn fingerprint(p: &Program) -> usize {
    // Cheap structural hash: definition count + total printed length.
    p.defs.len() * 1_000_003 + p.to_source().len()
}

/// Local simplification: `(car (cons a d)) → a`, `(cdr (cons a d)) → d`
/// (when the discarded component is effect-free), `(if #t a b) → a`.
pub fn simplify(mut p: Program) -> Program {
    fn go(e: &Expr) -> Expr {
        match e {
            Expr::Var(_, _) | Expr::Const(_, _) => e.clone(),
            Expr::If(l, c, t, f) => {
                let c = go(c);
                let t = go(t);
                let f = go(f);
                if let Expr::Const(_, k) = &c {
                    return if k.is_truthy() { t } else { f };
                }
                Expr::If(*l, Box::new(c), Box::new(t), Box::new(f))
            }
            Expr::Prim(l, op, args) => {
                let args: Vec<Expr> = args.iter().map(go).collect();
                if let (Prim::Car | Prim::Cdr, [Expr::Prim(_, Prim::Cons, parts)]) =
                    (op, args.as_slice())
                {
                    let (keep, drop) = if *op == Prim::Car {
                        (&parts[0], &parts[1])
                    } else {
                        (&parts[1], &parts[0])
                    };
                    if is_effect_free(drop) {
                        return keep.clone();
                    }
                }
                Expr::Prim(*l, *op, args)
            }
            Expr::Call(l, p, args) => {
                Expr::Call(*l, p.clone(), args.iter().map(go).collect())
            }
            Expr::Let(l, v, rhs, body) => {
                Expr::Let(*l, v.clone(), Box::new(go(rhs)), Box::new(go(body)))
            }
            Expr::Lambda(_, _, _) | Expr::App(_, _, _) => e.clone(),
        }
    }
    for d in &mut p.defs {
        d.body = go(&d.body);
    }
    p
}

/// Drops procedures unreachable from the first (entry) definition.
pub fn drop_unreachable(p: Program) -> Program {
    let Some(entry) = p.defs.first().map(|d| d.name.clone()) else {
        return p;
    };
    let mut reach: HashSet<Arc<str>> = HashSet::new();
    let mut work = vec![entry];
    while let Some(n) = work.pop() {
        if !reach.insert(n.clone()) {
            continue;
        }
        if let Some(d) = p.def(&n) {
            d.body.walk(&mut |e| {
                if let Expr::Call(_, callee, _) = e {
                    work.push(callee.clone());
                }
            });
        }
    }
    Program { defs: p.defs.into_iter().filter(|d| reach.contains(&d.name)).collect() }
}

fn rewrite_calls(e: &Expr, f: &mut impl FnMut(&Arc<str>, &[Expr]) -> Option<Expr>) -> Expr {
    match e {
        Expr::Var(_, _) | Expr::Const(_, _) => e.clone(),
        Expr::If(l, c, t, g) => Expr::If(
            *l,
            Box::new(rewrite_calls(c, f)),
            Box::new(rewrite_calls(t, f)),
            Box::new(rewrite_calls(g, f)),
        ),
        Expr::Prim(l, op, args) => {
            Expr::Prim(*l, *op, args.iter().map(|a| rewrite_calls(a, f)).collect())
        }
        Expr::Call(l, p, args) => {
            let args: Vec<Expr> = args.iter().map(|a| rewrite_calls(a, f)).collect();
            f(p, &args).unwrap_or(Expr::Call(*l, p.clone(), args))
        }
        Expr::Let(l, v, rhs, body) => Expr::Let(
            *l,
            v.clone(),
            Box::new(rewrite_calls(rhs, f)),
            Box::new(rewrite_calls(body, f)),
        ),
        Expr::Lambda(_, _, _) | Expr::App(_, _, _) => e.clone(),
    }
}

/// A trampoline body: the procedure's parameters, the call target, and
/// the call's argument expressions.
type Trampoline = (Vec<Arc<str>>, Arc<str>, Vec<Expr>);

/// Inlines procedures whose body is a single call (trampolines).
pub fn compress_transitions(mut p: Program) -> Program {
    let trivial: HashMap<Arc<str>, Trampoline> = p
        .defs
        .iter()
        .filter_map(|d| match &d.body {
            Expr::Call(_, t, args) if *t != d.name => {
                Some((d.name.clone(), (d.params.clone(), t.clone(), args.clone())))
            }
            _ => None,
        })
        .collect();
    if trivial.is_empty() {
        return p;
    }
    for d in &mut p.defs {
        d.body = rewrite_calls(&d.body, &mut |callee, args| {
            let (params, target, targs) = trivial.get(callee)?;
            if args.iter().zip(params.iter()).any(|(a, pm)| {
                // Substituting a non-trivial arg used twice duplicates
                // work; only chase when safe.
                !matches!(a, Expr::Var(_, _) | Expr::Const(_, _))
                    && targs.iter().map(|t| count(t, pm)).sum::<usize>() > 1
            }) {
                return None;
            }
            let mut out = Vec::new();
            for t in targs {
                let mut t = t.clone();
                for (pm, a) in params.iter().zip(args) {
                    t = subst_var(&t, pm, a);
                }
                out.push(t);
            }
            Some(Expr::Call(Label(u32::MAX), target.clone(), out))
        });
    }
    drop_unreachable(p)
}

fn count(e: &Expr, v: &str) -> usize {
    let mut n = 0;
    e.walk(&mut |x| {
        if let Expr::Var(_, name) = x {
            if &**name == v {
                n += 1;
            }
        }
    });
    n
}

/// Inlines non-recursive procedures with exactly one call site.
pub fn inline_once(mut p: Program) -> Program {
    loop {
        let Some(entry) = p.defs.first().map(|d| d.name.clone()) else {
            return p;
        };
        let mut counts: HashMap<Arc<str>, usize> = HashMap::new();
        for d in &p.defs {
            d.body.walk(&mut |e| {
                if let Expr::Call(_, callee, _) = e {
                    *counts.entry(callee.clone()).or_insert(0) += 1;
                }
            });
        }
        let recursive: HashSet<Arc<str>> = p
            .defs
            .iter()
            .filter(|d| {
                let mut rec = false;
                d.body.walk(&mut |e| {
                    if let Expr::Call(_, c, _) = e {
                        rec |= *c == d.name;
                    }
                });
                rec
            })
            .map(|d| d.name.clone())
            .collect();
        let victim = p.defs.iter().find(|d| {
            d.name != entry
                && counts.get(&d.name).copied().unwrap_or(0) == 1
                && !recursive.contains(&d.name)
        });
        let Some(victim) = victim else { return p };
        let vname = victim.name.clone();
        let vparams = victim.params.clone();
        let vbody = victim.body.clone();
        p.defs.retain(|d| d.name != vname);
        for d in &mut p.defs {
            d.body = rewrite_calls(&d.body, &mut |callee, args| {
                if *callee != vname {
                    return None;
                }
                let mut out = vbody.clone();
                for (pm, a) in vparams.iter().zip(args) {
                    out = subst_var(&out, pm, a);
                }
                Some(out)
            });
        }
    }
}

/// Drops parameters no body uses, when the matching arguments are
/// effect-free everywhere.
pub fn drop_dead_params(mut p: Program) -> Program {
    let Some(entry) = p.defs.first().map(|d| d.name.clone()) else {
        return p;
    };
    loop {
        let mut dead: HashMap<Arc<str>, Vec<usize>> = HashMap::new();
        for d in &p.defs {
            if d.name == entry {
                continue;
            }
            let idxs: Vec<usize> = d
                .params
                .iter()
                .enumerate()
                .filter(|(_, pm)| count(&d.body, pm) == 0)
                .map(|(i, _)| i)
                .collect();
            if !idxs.is_empty() {
                dead.insert(d.name.clone(), idxs);
            }
        }
        for d in &p.defs {
            d.body.walk(&mut |e| {
                if let Expr::Call(_, callee, args) = e {
                    if let Some(idxs) = dead.get_mut(callee) {
                        idxs.retain(|&i| args.get(i).is_none_or(is_effect_free));
                    }
                }
            });
        }
        dead.retain(|_, v| !v.is_empty());
        if dead.is_empty() {
            return p;
        }
        for d in &mut p.defs {
            if let Some(idxs) = dead.get(&d.name) {
                d.params = d
                    .params
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !idxs.contains(i))
                    .map(|(_, pm)| pm.clone())
                    .collect();
            }
            d.body = rewrite_calls(&d.body, &mut |callee, args| {
                let idxs = dead.get(callee)?;
                Some(Expr::Call(
                    Label(u32::MAX),
                    callee.clone(),
                    args.iter()
                        .enumerate()
                        .filter(|(i, _)| !idxs.contains(i))
                        .map(|(_, a)| a.clone())
                        .collect(),
                ))
            });
        }
    }
}

/// Romanenko's arity raiser: a parameter that is always bound to a
/// `(cons a d)` at every call site and only destructed with `car`/`cdr`
/// in the body is split into two parameters.
pub fn raise_arity(mut p: Program) -> Program {
    let Some(entry) = p.defs.first().map(|d| d.name.clone()) else {
        return p;
    };
    loop {
        // Find one raisable (proc, param index).
        let mut choice: Option<(Arc<str>, usize)> = None;
        'outer: for d in &p.defs {
            if d.name == entry {
                continue;
            }
            for (i, pm) in d.params.iter().enumerate() {
                if !only_destructed(&d.body, pm) {
                    continue;
                }
                // Every call site must pass a literal cons.
                let mut ok = true;
                let mut any = false;
                for q in &p.defs {
                    q.body.walk(&mut |e| {
                        if let Expr::Call(_, callee, args) = e {
                            if *callee == d.name {
                                any = true;
                                ok &= matches!(args.get(i), Some(Expr::Prim(_, Prim::Cons, _)));
                            }
                        }
                    });
                }
                if ok && any {
                    choice = Some((d.name.clone(), i));
                    break 'outer;
                }
            }
        }
        let Some((name, idx)) = choice else { return p };
        for d in &mut p.defs {
            if d.name == name {
                let pm = d.params[idx].clone();
                let hd: Arc<str> = Arc::from(format!("{pm}-hd").as_str());
                let tl: Arc<str> = Arc::from(format!("{pm}-tl").as_str());
                d.params.splice(idx..=idx, [hd.clone(), tl.clone()]);
                d.body = split_uses(&d.body, &pm, &hd, &tl);
            }
        }
        for d in &mut p.defs {
            d.body = rewrite_calls(&d.body, &mut |callee, args| {
                if *callee != name {
                    return None;
                }
                let Some(Expr::Prim(_, Prim::Cons, parts)) = args.get(idx) else {
                    unreachable!("checked: every site passes a cons");
                };
                let mut out = args.to_vec();
                out.splice(idx..=idx, [parts[0].clone(), parts[1].clone()]);
                Some(Expr::Call(Label(u32::MAX), callee.clone(), out))
            });
        }
    }
}

/// True if every occurrence of `v` is inside `(car v)` or `(cdr v)`.
fn only_destructed(e: &Expr, v: &str) -> bool {
    match e {
        Expr::Var(_, x) => &**x != v,
        Expr::Const(_, _) => true,
        Expr::Prim(_, Prim::Car | Prim::Cdr, args) => {
            matches!(&args[0], Expr::Var(_, x) if &**x == v)
                || only_destructed(&args[0], v)
        }
        Expr::Prim(_, _, args) | Expr::Call(_, _, args) => {
            args.iter().all(|a| only_destructed(a, v))
        }
        Expr::If(_, c, t, f) => {
            only_destructed(c, v) && only_destructed(t, v) && only_destructed(f, v)
        }
        Expr::Let(_, b, rhs, body) => {
            only_destructed(rhs, v) && (&**b == v || only_destructed(body, v))
        }
        Expr::Lambda(_, _, _) | Expr::App(_, _, _) => false,
    }
}

/// Rewrites `(car v) → hd`, `(cdr v) → tl`.
fn split_uses(e: &Expr, v: &str, hd: &Arc<str>, tl: &Arc<str>) -> Expr {
    match e {
        Expr::Prim(l, op @ (Prim::Car | Prim::Cdr), args)
            if matches!(&args[0], Expr::Var(_, x) if &**x == v) =>
        {
            let name = if *op == Prim::Car { hd } else { tl };
            Expr::Var(*l, name.clone())
        }
        Expr::Var(_, _) | Expr::Const(_, _) => e.clone(),
        Expr::If(l, c, t, f) => Expr::If(
            *l,
            Box::new(split_uses(c, v, hd, tl)),
            Box::new(split_uses(t, v, hd, tl)),
            Box::new(split_uses(f, v, hd, tl)),
        ),
        Expr::Prim(l, op, args) => Expr::Prim(
            *l,
            *op,
            args.iter().map(|a| split_uses(a, v, hd, tl)).collect(),
        ),
        Expr::Call(l, p, args) => Expr::Call(
            *l,
            p.clone(),
            args.iter().map(|a| split_uses(a, v, hd, tl)).collect(),
        ),
        Expr::Let(l, b, rhs, body) => Expr::Let(
            *l,
            b.clone(),
            Box::new(split_uses(rhs, v, hd, tl)),
            Box::new(if &**b == v { (**body).clone() } else { split_uses(body, v, hd, tl) }),
        ),
        Expr::Lambda(_, _, _) | Expr::App(_, _, _) => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::parse_source;

    type R = Result<(), Box<dyn std::error::Error>>;

    fn def_named<'p>(
        p: &'p pe_frontend::ast::Program,
        name: &str,
    ) -> Result<&'p pe_frontend::ast::Definition, String> {
        p.def(name).ok_or_else(|| format!("no def named {name} in:\n{}", p.to_source()))
    }

    #[test]
    fn simplify_car_of_cons() -> R {
        let p = parse_source("(define (f x) (car (cons (+ x 1) '())))")?;
        let p = simplify(p);
        assert_eq!(p.defs[0].body.to_sexpr().to_string(), "(+ x 1)");
        Ok(())
    }

    #[test]
    fn simplify_keeps_faulting_discards() -> R {
        let p = parse_source("(define (f x) (car (cons 1 (car 5))))")?;
        let p = simplify(p);
        assert!(p.defs[0].body.to_sexpr().to_string().contains("car"), "fault preserved");
        Ok(())
    }

    #[test]
    fn arity_raising_splits_cons_arguments() -> R {
        let src = "(define (main a b) (worker (cons a b)))
                   (define (worker env) (+ (car env) (cdr env)))";
        let p = raise_arity(parse_source(src)?);
        let w = def_named(&p, "worker")?;
        assert_eq!(w.params.len(), 2, "{}", p.to_source());
        assert_eq!(w.body.to_sexpr().to_string(), "(+ env-hd env-tl)");
        let m = def_named(&p, "main")?;
        assert_eq!(m.body.to_sexpr().to_string(), "(worker a b)");
        Ok(())
    }

    #[test]
    fn arity_raising_iterates_through_nested_env() -> R {
        // Environments encoded as nested conses flatten completely.
        let src = "(define (main a b c) (worker (cons a (cons b c))))
                   (define (worker env) (+ (car env) (+ (car (cdr env)) (cdr (cdr env)))))";
        let p = postprocess(parse_source(src)?);
        let m = def_named(&p, "main")?;
        // Fully inlined or flattened: no cons left anywhere.
        assert!(!m.body.to_sexpr().to_string().contains("cons"), "{}", p.to_source());
        Ok(())
    }

    #[test]
    fn bare_use_blocks_raising() -> R {
        let src = "(define (main a b) (worker (cons a b)))
                   (define (worker env) (cons (car env) env))";
        let p = raise_arity(parse_source(src)?);
        assert_eq!(def_named(&p, "worker")?.params.len(), 1);
        Ok(())
    }

    #[test]
    fn inline_once_and_compress() -> R {
        let src = "(define (main x) (step1 x))
                   (define (step1 y) (step2 (+ y 1)))
                   (define (step2 z) (* z z))";
        let p = postprocess(parse_source(src)?);
        assert_eq!(p.defs.len(), 1, "{}", p.to_source());
        assert_eq!(p.defs[0].name.as_ref(), "main");
        Ok(())
    }

    #[test]
    fn recursive_loops_survive() -> R {
        let src = "(define (main x) (loop x))
                   (define (loop n) (if (zero? n) 0 (loop (- n 1))))";
        let p = postprocess(parse_source(src)?);
        assert!(p.def("loop").is_some());
        Ok(())
    }
}
