//! An Unmix-style offline partial evaluator for a first-order, purely
//! functional Scheme subset (§2 of the paper).
//!
//! Unmix — a descendant of the Moscow specializer — is the tool the
//! paper uses to turn its two-level interpreter into a compiler.  This
//! crate is a from-scratch reimplementation of its architecture:
//!
//! * [`bta`] — a congruent monovariant binding-time analysis;
//! * [`spec`] — the reducer: evaluate static expressions, rebuild
//!   dynamic ones, unfold non-residual calls, memoize residual calls on
//!   their static argument values;
//! * [`postproc`] — post-unfolding, dead-parameter elimination, local
//!   simplification, and Romanenko's **arity raiser**, which the paper
//!   singles out as "crucial to the generation of efficient residual
//!   programs in the absence of partially static data";
//! * [`futamura`] — the first Futamura projection run for real, with a
//!   self-interpreter written in the subject language.
//!
//! ```
//! use pe_unmix::{specialize, UnmixOptions};
//! use pe_frontend::parse_source;
//! use pe_interp::Datum;
//!
//! // Specialize power to the exponent 3: x³ as straight-line code.
//! let p = parse_source(
//!     "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))",
//! )?;
//! let r = specialize(&p, "power", &[None, Some(Datum::Int(3))],
//!                    &UnmixOptions::default())?;
//! let text = r.to_source();
//! assert!(!text.contains("if"), "fully unfolded: {text}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bta;
pub mod futamura;
pub mod postproc;
pub mod spec;

pub use bta::{Bt, Division};
pub use futamura::{compile_by_futamura, encode_program, FUTAMURA_ENTRY, SINT};
pub use spec::{check_first_order, specialize, specialize_with, UnmixError, UnmixOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::parse_source;
    use pe_interp::{standard, Datum, Limits};

    type R = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn power_specializes_to_straight_line() -> R {
        let p = parse_source(
            "(define (power x n) (if (zero? n) 1 (* x (power x (- n 1)))))",
        )?;
        let r =
            specialize(&p, "power", &[None, Some(Datum::Int(5))], &UnmixOptions::default())?;
        let out =
            standard::run(&r, "power-$1", &[Datum::Int(2)], Limits::default())?;
        assert_eq!(out, Datum::Int(32));
        assert!(!r.to_source().contains("(if"), "{}", r.to_source());
        Ok(())
    }

    #[test]
    fn residual_agrees_with_source_on_mixed_inputs() -> R {
        let src = "(define (assoc-nth k alist d)
                     (if (null? alist) d
                         (if (eq? k (car (car alist)))
                             (cdr (car alist))
                             (assoc-nth k (cdr alist) d))))";
        let p = parse_source(src)?;
        // Static key, dynamic association list.
        let r = specialize(
            &p,
            "assoc-nth",
            &[Some(Datum::parse("b")?), None, None],
            &UnmixOptions::default(),
        )?;
        let alist = Datum::parse("((a . 1) (b . 2))").err().map(|_| ());
        // Dotted pairs are not readable; build the alist with cons cells.
        let _ = alist;
        let alist = {
            use pe_interp::Value;
            use std::rc::Rc;
            Value::list([
                Value::Pair(Rc::new((Value::Sym("a".into()), Value::Int(1)))),
                Value::Pair(Rc::new((Value::Sym("b".into()), Value::Int(2)))),
            ])
        };
        let direct = standard::run(
            &p,
            "assoc-nth",
            &[Datum::parse("b")?, alist.clone(), Datum::Int(0)],
            Limits::default(),
        )?;
        let via = standard::run(
            &r,
            "assoc-nth-$1",
            &[alist, Datum::Int(0)],
            Limits::default(),
        )?;
        assert_eq!(direct, via);
        assert_eq!(direct, Datum::Int(2));
        Ok(())
    }

    #[test]
    fn dynamic_loop_stays_a_loop() -> R {
        let src = "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))";
        let p = parse_source(src)?;
        let r = specialize(&p, "len", &[None], &UnmixOptions::default())?;
        // A dynamic-input loop cannot be unfolded: the residual program
        // must still be recursive.
        let mut recursive = false;
        for d in &r.defs {
            d.body.walk(&mut |e| {
                if let pe_frontend::Expr::Call(_, c, _) = e {
                    recursive |= *c == d.name;
                }
            });
        }
        assert!(recursive, "{}", r.to_source());
        let out = standard::run(
            &r,
            "len-$1",
            &[Datum::parse("(a b c)")?],
            Limits::default(),
        )?;
        assert_eq!(out, Datum::Int(3));
        Ok(())
    }

    #[test]
    fn static_divergence_is_reported() -> R {
        // Growing static data: each recursive call has a fresh memo key,
        // so specialization itself diverges and must hit a budget.
        let src = "(define (f x n) (if (zero? n) x (f x (+ n 1))))";
        let p = parse_source(src)?;
        let r = specialize(&p, "f", &[None, Some(Datum::Int(1))], &UnmixOptions::default());
        assert!(
            matches!(r, Err(UnmixError::DepthExceeded) | Err(UnmixError::Budget { .. })),
            "got {r:?}"
        );
        Ok(())
    }

    #[test]
    fn unchanging_static_loop_memoizes_to_residual_loop() -> R {
        // With unchanging static data, memoization ties the knot: the
        // divergence is *preserved* in residual code, not replayed at
        // specialization time.
        let src = "(define (f x n) (if (zero? n) x (f x n)))";
        let p = parse_source(src)?;
        let r = specialize(&p, "f", &[None, Some(Datum::Int(1))], &UnmixOptions::default())?;
        let mut recursive = false;
        for d in &r.defs {
            d.body.walk(&mut |e| {
                if let pe_frontend::Expr::Call(_, c, _) = e {
                    recursive |= *c == d.name;
                }
            });
        }
        assert!(recursive, "{}", r.to_source());
        Ok(())
    }

    #[test]
    fn higher_order_input_is_rejected() -> R {
        let p = parse_source("(define (f x) ((lambda (y) y) x))")?;
        let r = specialize(&p, "f", &[None], &UnmixOptions::default());
        assert!(matches!(r, Err(UnmixError::NotFirstOrder(_))));
        Ok(())
    }

    #[test]
    fn language_preservation_property() -> R {
        // §3: residual programs stay inside the sublanguage of the
        // dynamic expressions — here, first-order recursion equations
        // (trivially) and, more interestingly, the residual program of a
        // tail-recursive subject is tail-recursive.
        let src = "(define (drive s d)
                     (if (null? d) s (drive (cons (car d) s) (cdr d))))";
        let p = parse_source(src)?;
        let r = specialize(
            &p,
            "drive",
            &[Some(Datum::parse("()")?), None],
            &UnmixOptions::default(),
        )?;
        // Tail position check: every call in the residual body is in
        // tail position (the body is a call, or an if whose branches
        // are).
        fn tail_ok(e: &pe_frontend::Expr) -> bool {
            use pe_frontend::Expr;
            fn no_calls(e: &Expr) -> bool {
                let mut any = false;
                e.walk(&mut |x| any |= matches!(x, Expr::Call(_, _, _)));
                !any
            }
            match e {
                Expr::Call(_, _, args) => args.iter().all(no_calls),
                Expr::If(_, c, t, f) => no_calls(c) && tail_ok(t) && tail_ok(f),
                Expr::Let(_, _, rhs, body) => no_calls(rhs) && tail_ok(body),
                e => no_calls(e),
            }
        }
        for d in &r.defs {
            assert!(tail_ok(&d.body), "not tail-recursive: {}", r.to_source());
        }
        Ok(())
    }

    #[test]
    fn entry_errors() -> R {
        let p = parse_source("(define (f x) x)")?;
        assert!(matches!(
            specialize(&p, "g", &[None], &UnmixOptions::default()),
            Err(UnmixError::NoSuchProc(_))
        ));
        assert!(matches!(
            specialize(&p, "f", &[], &UnmixOptions::default()),
            Err(UnmixError::EntryArity { .. })
        ));
        Ok(())
    }
}
