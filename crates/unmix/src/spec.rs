//! The reducer (specialization phase) of the Unmix clone.
//!
//! Driven by the [`Division`](crate::bta::Division), the reducer
//! evaluates static expressions, rebuilds dynamic ones, **unfolds**
//! calls to non-residual procedures and **specializes** calls to
//! residual ones, memoizing on the tuple of static argument values —
//! classic Mix technology.  All residual binders are freshly named, so
//! unfolding never captures.

use crate::bta::{Bt, Division};
use pe_frontend::ast::{Constant, Expr, Label, Prim, Program};
use pe_frontend::Definition;
use pe_governor::Limits;
use pe_interp::value::apply_prim;
use pe_interp::Datum;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Options for the Unmix clone.
#[derive(Debug, Clone)]
pub struct UnmixOptions {
    /// Run post-unfolding, dead-parameter elimination and arity raising.
    pub postprocess: bool,
    /// Shared resource limits: `max_residual` bounds the residual
    /// procedure count and `max_unfold_depth` the call-unfolding depth.
    pub limits: Limits,
}

impl Default for UnmixOptions {
    fn default() -> Self {
        UnmixOptions {
            postprocess: true,
            // First-order residual programs are small; a tighter residual
            // budget than the pipeline default catches divergence sooner.
            limits: Limits { max_residual: 20_000, ..Limits::default() },
        }
    }
}

/// An error during first-order specialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnmixError {
    /// The subject program uses `lambda` or computed application.
    NotFirstOrder(String),
    /// The entry does not exist.
    NoSuchProc(String),
    /// Wrong number of entry binding-time slots.
    EntryArity { name: String, expected: usize, got: usize },
    /// A static expression faulted at specialization time.
    StaticError(String),
    /// Residual-procedure budget exhausted.
    Budget { procs: usize },
    /// Unfolding depth exceeded (static recursion that does not
    /// terminate, or too deep for the configured bound).
    DepthExceeded,
}

impl fmt::Display for UnmixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnmixError::NotFirstOrder(e) => {
                write!(f, "unmix: input is not first-order: {e}")
            }
            UnmixError::NoSuchProc(p) => write!(f, "unmix: no such procedure {p}"),
            UnmixError::EntryArity { name, expected, got } => {
                write!(f, "unmix: entry {name} expects {expected} slot(s), got {got}")
            }
            UnmixError::StaticError(m) => write!(f, "unmix: static evaluation faulted: {m}"),
            UnmixError::Budget { procs } => {
                write!(f, "unmix: exceeded budget of {procs} residual procedures")
            }
            UnmixError::DepthExceeded => write!(f, "unmix: unfolding depth exceeded"),
        }
    }
}

impl std::error::Error for UnmixError {}

/// A partial value: static datum or residual expression.
#[derive(Debug, Clone)]
enum Pv {
    Sta(Datum),
    Dyn(Expr),
}

impl Pv {
    fn lift(self, labels: &mut u32) -> Expr {
        match self {
            Pv::Sta(d) => Expr::Const(fresh(labels), datum_to_constant(&d)),
            Pv::Dyn(e) => e,
        }
    }
}

fn fresh(labels: &mut u32) -> Label {
    *labels += 1;
    Label(*labels)
}

fn datum_to_constant(d: &Datum) -> Constant {
    match d {
        Datum::Int(n) => Constant::Int(*n),
        Datum::Bool(b) => Constant::Bool(*b),
        Datum::Char(c) => Constant::Char(*c),
        Datum::Str(s) => Constant::Str(s.clone()),
        Datum::Sym(s) => Constant::Sym(s.clone()),
        Datum::Nil => Constant::Nil,
        Datum::Pair(p) => Constant::Pair(
            Arc::new(datum_to_constant(&p.0)),
            Arc::new(datum_to_constant(&p.1)),
        ),
        Datum::Closure(c) => match *c {},
    }
}

struct PendingProc {
    name: Arc<str>,
    proc_name: Arc<str>,
    static_args: Vec<Option<Datum>>,
    dyn_params: Vec<Arc<str>>,
}

/// Reducer event totals, accumulated as plain integers and flushed to
/// the trace sink once per specialization run.
#[derive(Debug, Default, Clone, Copy)]
struct UStats {
    memo_lookups: u64,
    memo_hits: u64,
    memo_misses: u64,
    unfold_steps: u64,
}

impl UStats {
    fn flush(&self, sink: &mut dyn pe_trace::Sink) {
        if sink.enabled() {
            use pe_trace::Counter;
            sink.counter(Counter::MemoLookups, self.memo_lookups);
            sink.counter(Counter::MemoHits, self.memo_hits);
            sink.counter(Counter::MemoMisses, self.memo_misses);
            sink.counter(Counter::UnfoldSteps, self.unfold_steps);
        }
    }
}

struct Unmix<'p> {
    prog: &'p Program,
    div: &'p Division,
    opts: UnmixOptions,
    labels: u32,
    next_var: u32,
    memo: HashMap<(Arc<str>, String), Arc<str>>,
    next_spec: HashMap<Arc<str>, u32>,
    pending: VecDeque<PendingProc>,
    done: Vec<Definition>,
    stats: UStats,
}

impl Unmix<'_> {
    fn fresh_var(&mut self) -> Arc<str> {
        self.next_var += 1;
        Arc::from(format!("u-{}", self.next_var).as_str())
    }

    fn spec_expr(
        &mut self,
        e: &Expr,
        env: &HashMap<Arc<str>, Pv>,
        depth: usize,
    ) -> Result<Pv, UnmixError> {
        if depth > self.opts.limits.max_unfold_depth {
            return Err(UnmixError::DepthExceeded);
        }
        match e {
            Expr::Var(_, v) => Ok(env
                .get(v)
                .cloned()
                .ok_or_else(|| UnmixError::StaticError(format!("unbound {v}")))?),
            Expr::Const(_, k) => Ok(Pv::Sta(constant_to_datum(k))),
            Expr::If(_, c, t, f) => match self.spec_expr(c, env, depth + 1)? {
                Pv::Sta(v) => {
                    if v.is_truthy() {
                        self.spec_expr(t, env, depth + 1)
                    } else {
                        self.spec_expr(f, env, depth + 1)
                    }
                }
                Pv::Dyn(ce) => {
                    let te = self.spec_expr(t, env, depth + 1)?.lift(&mut self.labels);
                    let fe = self.spec_expr(f, env, depth + 1)?.lift(&mut self.labels);
                    Ok(Pv::Dyn(Expr::If(
                        fresh(&mut self.labels),
                        Box::new(ce),
                        Box::new(te),
                        Box::new(fe),
                    )))
                }
            },
            Expr::Prim(_, op, args) => {
                let pvs = args
                    .iter()
                    .map(|a| self.spec_expr(a, env, depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                if pvs.iter().all(|p| matches!(p, Pv::Sta(_))) {
                    let vals: Vec<Datum> = pvs
                        .iter()
                        .map(|p| match p {
                            Pv::Sta(d) => d.clone(),
                            Pv::Dyn(_) => unreachable!(),
                        })
                        .collect();
                    return match apply_prim(*op, &vals) {
                        Ok(v) => Ok(Pv::Sta(v)),
                        // Classic Mix behaviour: a fault in a static
                        // expression aborts specialization (demoting the
                        // value to dynamic would break the congruence the
                        // binding-time analysis established and send
                        // unfolding into a loop).
                        Err(e) => Err(UnmixError::StaticError(e.to_string())),
                    };
                }
                Ok(Pv::Dyn(Expr::Prim(
                    fresh(&mut self.labels),
                    *op,
                    pvs.into_iter().map(|p| p.lift(&mut self.labels)).collect(),
                )))
            }
            Expr::Call(_, p, args) => {
                let pvs = args
                    .iter()
                    .map(|a| self.spec_expr(a, env, depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                if self.div.is_residual(p) {
                    self.spec_call(p, pvs)
                } else {
                    self.unfold_call(p, pvs, depth)
                }
            }
            Expr::Let(_, v, rhs, body) => {
                let rhs = self.spec_expr(rhs, env, depth + 1)?;
                match rhs {
                    Pv::Sta(d) => {
                        let mut inner = env.clone();
                        inner.insert(v.clone(), Pv::Sta(d));
                        self.spec_expr(body, &inner, depth + 1)
                    }
                    Pv::Dyn(re) => {
                        let fv = self.fresh_var();
                        let mut inner = env.clone();
                        inner.insert(
                            v.clone(),
                            Pv::Dyn(Expr::Var(fresh(&mut self.labels), fv.clone())),
                        );
                        let body = self.spec_expr(body, &inner, depth + 1)?;
                        let body = body.lift(&mut self.labels);
                        Ok(Pv::Dyn(self.build_let(fv, re, body)))
                    }
                }
            }
            Expr::Lambda(_, _, _) | Expr::App(_, _, _) => {
                Err(UnmixError::NotFirstOrder(e.to_sexpr().to_string()))
            }
        }
    }

    /// Builds `(let ((v rhs)) body)` with let-shrinking: the binding is
    /// dropped, substituted or kept depending on use count.
    fn build_let(&mut self, v: Arc<str>, rhs: Expr, body: Expr) -> Expr {
        let uses = count_uses(&body, &v);
        if uses == 0 && is_effect_free(&rhs) {
            return body;
        }
        if uses == 1 || matches!(rhs, Expr::Var(_, _) | Expr::Const(_, _)) {
            return subst_var(&body, &v, &rhs);
        }
        Expr::Let(fresh(&mut self.labels), v, Box::new(rhs), Box::new(body))
    }

    fn unfold_call(
        &mut self,
        p: &Arc<str>,
        pvs: Vec<Pv>,
        depth: usize,
    ) -> Result<Pv, UnmixError> {
        self.stats.unfold_steps += 1;
        let def = self
            .prog
            .def(p)
            .ok_or_else(|| UnmixError::NoSuchProc(p.to_string()))?;
        // Bind dynamic arguments to fresh lets to preserve sharing.
        let mut env = HashMap::new();
        let mut lets: Vec<(Arc<str>, Expr)> = Vec::new();
        for (param, pv) in def.params.iter().zip(pvs) {
            match pv {
                Pv::Sta(d) => {
                    env.insert(param.clone(), Pv::Sta(d));
                }
                Pv::Dyn(e) => {
                    let fv = self.fresh_var();
                    env.insert(
                        param.clone(),
                        Pv::Dyn(Expr::Var(fresh(&mut self.labels), fv.clone())),
                    );
                    lets.push((fv, e));
                }
            }
        }
        let body = self.spec_expr(&def.body, &env, depth + 1)?;
        match body {
            Pv::Sta(d) if lets.iter().all(|(_, e)| is_effect_free(e)) => Ok(Pv::Sta(d)),
            body => {
                let mut out = body.lift(&mut self.labels);
                for (v, e) in lets.into_iter().rev() {
                    out = self.build_let(v, e, out);
                }
                Ok(Pv::Dyn(out))
            }
        }
    }

    fn spec_call(&mut self, p: &Arc<str>, pvs: Vec<Pv>) -> Result<Pv, UnmixError> {
        let def = self
            .prog
            .def(p)
            .ok_or_else(|| UnmixError::NoSuchProc(p.to_string()))?;
        let division = &self.div.params[p];
        let mut static_args: Vec<Option<Datum>> = Vec::new();
        let mut dyn_args: Vec<Expr> = Vec::new();
        let mut key = String::new();
        for ((pv, bt), param) in pvs.into_iter().zip(division).zip(&def.params) {
            match (bt, pv) {
                (Bt::Static, Pv::Sta(d)) => {
                    key.push_str(&format!("{d}\u{1}"));
                    static_args.push(Some(d));
                }
                (Bt::Static, Pv::Dyn(e)) => {
                    // Congruence guarantees this cannot happen for BTA-
                    // derived divisions; fail loudly for hand-built ones.
                    return Err(UnmixError::StaticError(format!(
                        "dynamic value for static parameter {param} of {p}: {}",
                        e.to_sexpr()
                    )));
                }
                (Bt::Dynamic, pv) => {
                    dyn_args.push(pv.lift(&mut self.labels));
                    static_args.push(None);
                }
            }
        }
        self.stats.memo_lookups += 1;
        let hit = self.memo.get(&(p.clone(), key.clone())).cloned();
        let name = match hit {
            Some(n) => {
                self.stats.memo_hits += 1;
                n
            }
            None => {
                self.stats.memo_misses += 1;
                let n = self.next_spec.entry(p.clone()).or_insert(0);
                *n += 1;
                let name: Arc<str> = Arc::from(format!("{p}-${n}").as_str());
                self.memo.insert((p.clone(), key), name.clone());
                if self.memo.len() > self.opts.limits.max_residual {
                    return Err(UnmixError::Budget { procs: self.opts.limits.max_residual });
                }
                let dyn_params: Vec<Arc<str>> = static_args
                    .iter()
                    .zip(&def.params)
                    .filter(|(s, _)| s.is_none())
                    .map(|_| self.fresh_var())
                    .collect();
                self.pending.push_back(PendingProc {
                    name: name.clone(),
                    proc_name: p.clone(),
                    static_args,
                    dyn_params,
                });
                name
            }
        };
        Ok(Pv::Dyn(Expr::Call(fresh(&mut self.labels), name, dyn_args)))
    }
}

fn constant_to_datum(k: &Constant) -> Datum {
    pe_interp::Value::from_constant(k)
}

/// Counts free occurrences of `v` (first-order expressions only).
fn count_uses(e: &Expr, v: &str) -> usize {
    match e {
        Expr::Var(_, x) => usize::from(&**x == v),
        Expr::Const(_, _) => 0,
        Expr::If(_, c, t, f) => count_uses(c, v) + count_uses(t, v) + count_uses(f, v),
        Expr::Prim(_, _, args) | Expr::Call(_, _, args) => {
            args.iter().map(|a| count_uses(a, v)).sum()
        }
        Expr::Let(_, b, rhs, body) => {
            count_uses(rhs, v) + if &**b == v { 0 } else { count_uses(body, v) }
        }
        Expr::Lambda(_, _, _) | Expr::App(_, _, _) => 0,
    }
}

/// Substitutes `v := r` (safe: residual binders are all fresh/distinct).
pub(crate) fn subst_var(e: &Expr, v: &str, r: &Expr) -> Expr {
    match e {
        Expr::Var(_, x) if &**x == v => r.clone(),
        Expr::Var(_, _) | Expr::Const(_, _) => e.clone(),
        Expr::If(l, c, t, f) => Expr::If(
            *l,
            Box::new(subst_var(c, v, r)),
            Box::new(subst_var(t, v, r)),
            Box::new(subst_var(f, v, r)),
        ),
        Expr::Prim(l, op, args) => {
            Expr::Prim(*l, *op, args.iter().map(|a| subst_var(a, v, r)).collect())
        }
        Expr::Call(l, p, args) => {
            Expr::Call(*l, p.clone(), args.iter().map(|a| subst_var(a, v, r)).collect())
        }
        Expr::Let(l, b, rhs, body) => Expr::Let(
            *l,
            b.clone(),
            Box::new(subst_var(rhs, v, r)),
            if &**b == v { body.clone() } else { Box::new(subst_var(body, v, r)) },
        ),
        Expr::Lambda(_, _, _) | Expr::App(_, _, _) => e.clone(),
    }
}

/// An expression that cannot fault at run time.
pub(crate) fn is_effect_free(e: &Expr) -> bool {
    use Prim::*;
    match e {
        Expr::Var(_, _) | Expr::Const(_, _) => true,
        Expr::Prim(_, op, args) => {
            matches!(
                op,
                Cons | NullP | PairP | Not | EqP | EqvP | EqualP | SymbolP | NumberP | BooleanP
            ) && args.iter().all(is_effect_free)
        }
        _ => false,
    }
}

/// Checks that a program is first-order (no `lambda`, no computed
/// application).
pub fn check_first_order(p: &Program) -> Result<(), UnmixError> {
    for d in &p.defs {
        let mut bad = None;
        d.body.walk(&mut |e| {
            if bad.is_none() && matches!(e, Expr::Lambda(_, _, _) | Expr::App(_, _, _)) {
                bad = Some(e.to_sexpr().to_string());
            }
        });
        if let Some(b) = bad {
            return Err(UnmixError::NotFirstOrder(b));
        }
    }
    Ok(())
}

/// Specializes `entry` of the first-order program `p` with respect to
/// the static arguments in `slots` (`Some(v)` = static with value `v`).
/// Returns the residual first-order program; its entry is `entry-$1`.
///
/// # Errors
///
/// See [`UnmixError`].
pub fn specialize(
    p: &Program,
    entry: &str,
    slots: &[Option<Datum>],
    opts: &UnmixOptions,
) -> Result<Program, UnmixError> {
    specialize_with(p, entry, slots, opts, &mut pe_trace::NullSink)
}

/// Like [`specialize`], emitting bta/specialize/post phase spans plus
/// memo/unfold counters to `sink` (the counters flush even when the
/// reducer fails on a budget).
///
/// # Errors
///
/// See [`UnmixError`].
pub fn specialize_with(
    p: &Program,
    entry: &str,
    slots: &[Option<Datum>],
    opts: &UnmixOptions,
    sink: &mut dyn pe_trace::Sink,
) -> Result<Program, UnmixError> {
    check_first_order(p)?;
    let def = p
        .def(entry)
        .ok_or_else(|| UnmixError::NoSuchProc(entry.to_string()))?;
    if def.params.len() != slots.len() {
        return Err(UnmixError::EntryArity {
            name: entry.to_string(),
            expected: def.params.len(),
            got: slots.len(),
        });
    }
    let static_flags: Vec<bool> = slots.iter().map(Option::is_some).collect();
    let t = pe_trace::begin(sink, pe_trace::Phase::Bta);
    let div = Division::analyze(p, entry, &static_flags);
    pe_trace::end(sink, t);
    #[cfg(debug_assertions)]
    {
        let violations = div.audit(p, entry);
        debug_assert!(
            violations.is_empty(),
            "binding-time analysis produced a non-congruent division:\n{}",
            violations.join("\n")
        );
    }
    let mut u = Unmix {
        prog: p,
        div: &div,
        opts: opts.clone(),
        labels: 0,
        next_var: 0,
        memo: HashMap::new(),
        next_spec: HashMap::new(),
        pending: VecDeque::new(),
        done: Vec::new(),
        stats: UStats::default(),
    };
    let t = pe_trace::begin(sink, pe_trace::Phase::Specialize);
    let reduced = reduce(&mut u, def, slots);
    u.stats.flush(sink);
    pe_trace::end(sink, t);
    let residual = Program { defs: reduced? };
    let residual = if opts.postprocess {
        let t = pe_trace::begin(sink, pe_trace::Phase::Post);
        let q = crate::postproc::postprocess(residual);
        pe_trace::end(sink, t);
        q
    } else {
        residual
    };
    if sink.enabled() {
        sink.counter(pe_trace::Counter::ResidualProcs, residual.defs.len() as u64);
        let mut nodes = 0u64;
        for d in &residual.defs {
            d.body.walk(&mut |_| nodes += 1);
        }
        sink.counter(pe_trace::Counter::ResidualNodes, nodes);
    }
    Ok(residual)
}

/// The reducer loop: seeds the entry, drains the pending queue, and
/// returns the residual definitions with the entry first.
fn reduce(
    u: &mut Unmix<'_>,
    def: &Definition,
    slots: &[Option<Datum>],
) -> Result<Vec<Definition>, UnmixError> {
    // Seed with the entry itself.
    let entry_pvs: Vec<Pv> = slots
        .iter()
        .enumerate()
        .map(|(i, s)| match s {
            Some(d) => Pv::Sta(d.clone()),
            None => Pv::Dyn(Expr::Var(Label(u32::MAX - i as u32), def.params[i].clone())),
        })
        .collect();
    // The entry is residual by construction, so this enqueues it.
    let seed = u.spec_call(&def.name, entry_pvs)?;
    let entry_name = match &seed {
        Pv::Dyn(Expr::Call(_, n, _)) => n.clone(),
        _ => {
            return Err(UnmixError::StaticError(
                "entry specialization did not produce a residual call".to_string(),
            ))
        }
    };
    while let Some(pp) = u.pending.pop_front() {
        if u.done.len() >= u.opts.limits.max_residual {
            return Err(UnmixError::Budget { procs: u.opts.limits.max_residual });
        }
        // Pending procedures only come from spec_call, which resolved
        // the definition — a miss here means the program changed under
        // us, which must surface as an error, not a panic.
        let def = u
            .prog
            .def(&pp.proc_name)
            .ok_or_else(|| UnmixError::NoSuchProc(pp.proc_name.to_string()))?;
        let mut env = HashMap::new();
        let mut dyn_iter = pp.dyn_params.iter();
        for (param, sa) in def.params.iter().zip(&pp.static_args) {
            match sa {
                Some(d) => {
                    env.insert(param.clone(), Pv::Sta(d.clone()));
                }
                None => {
                    let fv = dyn_iter.next().ok_or_else(|| {
                        UnmixError::StaticError(format!(
                            "missing fresh variable for dynamic parameter {param} of {}",
                            pp.proc_name
                        ))
                    })?;
                    env.insert(
                        param.clone(),
                        Pv::Dyn(Expr::Var(fresh(&mut u.labels), fv.clone())),
                    );
                }
            }
        }
        let body = u.spec_expr(&def.body, &env, 0)?;
        let body = body.lift(&mut u.labels);
        u.done.push(Definition { name: pp.name, params: pp.dyn_params, body });
    }
    // Present the entry first.
    let mut defs = std::mem::take(&mut u.done);
    if let Some(pos) = defs.iter().position(|d| d.name == entry_name) {
        defs.swap(0, pos);
    }
    Ok(defs)
}
