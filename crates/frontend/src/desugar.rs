//! The desugaring phase of §4.3: surface syntax → tail form (Fig. 5).
//!
//! The desugarer "simply moves the non-tail expressions into parameters
//! to lambda abstractions" — every serious subexpression in a non-tail
//! position is lifted out and its evaluation context is reified as a
//! lambda:
//!
//! ```text
//! (f (g x))            ⇒  ((lambda (%t) (f %t)) (g x))
//! (let ((v e1)) e2)    ⇒  ((lambda (v) e2) e1)
//! (if (g x) a b)       ⇒  ((lambda (%t) (if %t a b)) (g x))
//! ```
//!
//! Because the subject language is pure, reordering of *simple*
//! expressions relative to serious siblings only affects which dynamic
//! error is reported first, never the value computed.
//!
//! The desugarer also alpha-renames all variables to unique [`VarId`]s
//! and hoists lambdas into the program-level table `φ` ([`DProgram::lambdas`]),
//! computing each lambda's free variables in a fixed order.

use crate::ast::{Expr, Program};
use crate::dast::{
    free_tail, DDef, DLabel, DProgram, LamId, LambdaDef, ProcId, SimpleExpr, TailExpr, VarId,
};
use std::collections::BTreeSet;
use pe_intern::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// An error produced during desugaring.
///
/// A scope-checked surface program cannot trigger these; they guard
/// against programmatically constructed ASTs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesugarError {
    /// A variable had no alpha-renaming in scope.
    UnboundVariable(String),
    /// A called procedure does not exist in the program.
    UnknownProcedure(String),
}

impl fmt::Display for DesugarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesugarError::UnboundVariable(v) => write!(f, "desugar: unbound variable {v}"),
            DesugarError::UnknownProcedure(p) => write!(f, "desugar: unknown procedure {p}"),
        }
    }
}

impl std::error::Error for DesugarError {}

/// Lexical environment: surface name → unique id.  Cloned at binders;
/// scopes are small.
type Scope = FxHashMap<Arc<str>, VarId>;

struct Ctx {
    next_label: u32,
    next_var: u32,
    var_names: Vec<Arc<str>>,
    lambdas: Vec<LambdaDef>,
    procs: FxHashMap<Arc<str>, ProcId>,
}

impl Ctx {
    fn label(&mut self) -> DLabel {
        let l = DLabel(self.next_label);
        self.next_label += 1;
        l
    }

    fn fresh_var(&mut self, name: &str) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        self.var_names.push(name.into());
        v
    }

    fn temp(&mut self) -> VarId {
        let n = self.next_var;
        self.fresh_var(&format!("%t{n}"))
    }

    /// True if `e` is a simple expression (Fig. 5's `SE`).
    fn is_simple(e: &Expr) -> bool {
        match e {
            Expr::Var(_, _) | Expr::Const(_, _) | Expr::Lambda(_, _, _) => true,
            Expr::Prim(_, _, args) => args.iter().all(Self::is_simple),
            Expr::If(_, _, _, _) | Expr::Call(_, _, _) | Expr::Let(_, _, _, _) | Expr::App(_, _, _) => {
                false
            }
        }
    }

    /// Translates a simple surface expression.
    fn simp(&mut self, e: &Expr, scope: &Scope) -> Result<SimpleExpr, DesugarError> {
        match e {
            Expr::Var(_, v) => {
                let id = scope
                    .get(v)
                    .copied()
                    .ok_or_else(|| DesugarError::UnboundVariable(v.to_string()))?;
                Ok(SimpleExpr::Var(self.label(), id))
            }
            Expr::Const(_, k) => Ok(SimpleExpr::Const(self.label(), k.clone())),
            Expr::Prim(_, op, args) => {
                let args = args
                    .iter()
                    .map(|a| self.simp(a, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(SimpleExpr::Prim(self.label(), *op, args))
            }
            Expr::Lambda(_, v, body) => {
                let param = self.fresh_var(v);
                let mut inner = scope.clone();
                inner.insert(v.clone(), param);
                let body = self.tail(body, &inner)?;
                Ok(self.make_lambda(param, body))
            }
            _ => unreachable!("simp called on serious expression"),
        }
    }

    /// Hoists a lambda with the given (already desugared) body, computing
    /// its free variables.
    fn make_lambda(&mut self, param: VarId, body: TailExpr) -> SimpleExpr {
        // Free variables need the lambda table for nested lambda leaves;
        // we build a throwaway view over the current table.
        let view = DProgram {
            defs: Vec::new(),
            lambdas: std::mem::take(&mut self.lambdas),
            var_names: Vec::new(), // free_tail never consults names
        };
        let mut fv = BTreeSet::new();
        free_tail(&view, &body, &mut fv);
        fv.remove(&param);
        self.lambdas = view.lambdas;
        let id = LamId(self.lambdas.len() as u32);
        self.lambdas.push(LambdaDef { param, freevars: fv.into_iter().collect(), body });
        SimpleExpr::Lambda(self.label(), id)
    }

    /// Wraps `serious` with the context "λ v. rest(v)": builds
    /// `((lambda (v) <rest>) <serious>)`.
    fn bind(
        &mut self,
        serious: &Expr,
        scope: &Scope,
        rest: impl FnOnce(&mut Self, SimpleExpr) -> Result<TailExpr, DesugarError>,
    ) -> Result<TailExpr, DesugarError> {
        let v = self.temp();
        let hole = SimpleExpr::Var(self.label(), v);
        let body = rest(self, hole)?;
        let ctx = self.make_lambda(v, body);
        let arg = self.tail(serious, scope)?;
        Ok(TailExpr::PushApp(self.label(), ctx, Box::new(arg)))
    }

    /// Translates an expression in tail position.
    fn tail(&mut self, e: &Expr, scope: &Scope) -> Result<TailExpr, DesugarError> {
        match e {
            _ if Self::is_simple(e) => Ok(TailExpr::Simple(self.simp(e, scope)?)),
            Expr::If(_, c, t, f) => {
                if Self::is_simple(c) {
                    let c = self.simp(c, scope)?;
                    let t = self.tail(t, scope)?;
                    let f = self.tail(f, scope)?;
                    Ok(TailExpr::If(self.label(), c, Box::new(t), Box::new(f)))
                } else {
                    let (t, f) = (t.clone(), f.clone());
                    let scope2 = scope.clone();
                    self.bind(c, scope, move |me, hole| {
                        let t = me.tail(&t, &scope2)?;
                        let f = me.tail(&f, &scope2)?;
                        Ok(TailExpr::If(me.label(), hole, Box::new(t), Box::new(f)))
                    })
                }
            }
            Expr::Prim(_, op, args) => {
                // At least one argument is serious (else is_simple).
                let i = args
                    .iter()
                    .position(|a| !Self::is_simple(a))
                    .expect("serious prim must have a serious argument");
                let (op, args) = (*op, args.clone());
                let scope2 = scope.clone();
                self.bind(&args[i].clone(), scope, move |me, hole| {
                    let mut new_args = args;
                    // Replace the serious argument with the hole variable
                    // and retranslate the (now possibly simple) prim.
                    new_args[i] = hole_expr(&hole);
                    let rebuilt = Expr::Prim(crate::ast::Label(u32::MAX), op, new_args);
                    me.tail_with_holes(&rebuilt, &scope2, &hole)
                })
            }
            Expr::Call(_, p, args) => {
                if args.iter().all(Self::is_simple) {
                    let pid = self
                        .procs
                        .get(p)
                        .copied()
                        .ok_or_else(|| DesugarError::UnknownProcedure(p.to_string()))?;
                    let args = args
                        .iter()
                        .map(|a| self.simp(a, scope))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(TailExpr::CallProc(self.label(), pid, args))
                } else {
                    let i = args
                        .iter()
                        .position(|a| !Self::is_simple(a))
                        .expect("checked above");
                    let (p, args) = (p.clone(), args.clone());
                    let scope2 = scope.clone();
                    self.bind(&args[i].clone(), scope, move |me, hole| {
                        let mut new_args = args;
                        new_args[i] = hole_expr(&hole);
                        let rebuilt = Expr::Call(crate::ast::Label(u32::MAX), p, new_args);
                        me.tail_with_holes(&rebuilt, &scope2, &hole)
                    })
                }
            }
            Expr::Let(_, v, rhs, body) => {
                // (let ((v e1)) e2) ⇒ ((lambda (v) e2) e1)
                let param = self.fresh_var(v);
                let mut inner = scope.clone();
                inner.insert(v.clone(), param);
                let body = self.tail(body, &inner)?;
                let ctx = self.make_lambda(param, body);
                let arg = self.tail(rhs, scope)?;
                Ok(TailExpr::PushApp(self.label(), ctx, Box::new(arg)))
            }
            Expr::App(_, f, a) => {
                if Self::is_simple(f) {
                    // (SE E): push the operator closure, evaluate the
                    // argument (serious or simple) under it.
                    let ctx = self.simp(f, scope)?;
                    let arg = self.tail(a, scope)?;
                    Ok(TailExpr::PushApp(self.label(), ctx, Box::new(arg)))
                } else {
                    let (a,) = (a.clone(),);
                    let scope2 = scope.clone();
                    self.bind(f, scope, move |me, hole| {
                        let arg = me.tail(&a, &scope2)?;
                        Ok(TailExpr::PushApp(me.label(), hole, Box::new(arg)))
                    })
                }
            }
            Expr::Var(_, _) | Expr::Const(_, _) | Expr::Lambda(_, _, _) => {
                unreachable!("simple cases handled by the guard")
            }
        }
    }

    /// Retranslates a rebuilt expression in which hole variables (already
    /// desugared [`SimpleExpr::Var`]s) stand for bound temporaries.  The
    /// hole's `VarId` is reachable through a synthetic scope entry.
    fn tail_with_holes(
        &mut self,
        e: &Expr,
        scope: &Scope,
        hole: &SimpleExpr,
    ) -> Result<TailExpr, DesugarError> {
        let SimpleExpr::Var(_, vid) = hole else {
            unreachable!("holes are variables")
        };
        let mut scope = scope.clone();
        scope.insert(Arc::from(hole_name(*vid).as_str()), *vid);
        self.tail(e, &scope)
    }
}

fn hole_name(v: VarId) -> String {
    format!("%hole{}", v.0)
}

fn hole_expr(hole: &SimpleExpr) -> Expr {
    let SimpleExpr::Var(_, vid) = hole else {
        unreachable!("holes are variables")
    };
    Expr::Var(crate::ast::Label(u32::MAX), Arc::from(hole_name(*vid).as_str()))
}

/// Desugars a scope-checked surface program into tail form.
///
/// # Errors
///
/// Only programmatically constructed (non-parser) ASTs can fail, with
/// [`DesugarError::UnboundVariable`] or [`DesugarError::UnknownProcedure`].
pub fn desugar(p: &Program) -> Result<DProgram, DesugarError> {
    let procs: FxHashMap<Arc<str>, ProcId> = p
        .defs
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.clone(), ProcId(i as u32)))
        .collect();
    let mut ctx = Ctx {
        next_label: 0,
        next_var: 0,
        var_names: Vec::new(),
        lambdas: Vec::new(),
        procs,
    };
    let mut defs = Vec::new();
    for d in &p.defs {
        let mut scope: Scope = FxHashMap::default();
        let params: Vec<VarId> = d
            .params
            .iter()
            .map(|name| {
                let v = ctx.fresh_var(name);
                scope.insert(name.clone(), v);
                v
            })
            .collect();
        let body = ctx.tail(&d.body, &scope)?;
        defs.push(DDef { name: d.name.clone(), params, body });
    }
    Ok(DProgram { defs, lambdas: ctx.lambdas, var_names: ctx.var_names })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dast::{SimpleExpr, TailExpr};
    use crate::parse::parse_source;

    fn d(src: &str) -> DProgram {
        desugar(&parse_source(src).expect("parse")).expect("desugar")
    }

    /// Checks the Fig. 5 grammar: conditions simple, call args simple,
    /// contexts simple.
    fn assert_tail_form(te: &TailExpr) {
        match te {
            TailExpr::Simple(_) => {}
            TailExpr::If(_, _c, t, e) => {
                assert_tail_form(t);
                assert_tail_form(e);
            }
            TailExpr::CallProc(_, _, _args) => {}
            TailExpr::PushApp(_, _ctx, body) => assert_tail_form(body),
        }
    }

    #[test]
    fn simple_body_stays_simple() {
        let p = d("(define (f x) (cons x x))");
        assert!(matches!(p.defs[0].body, TailExpr::Simple(_)));
    }

    #[test]
    fn nested_call_introduces_context() {
        let p = d("(define (f x) x) (define (g x) (f (f x)))");
        let TailExpr::PushApp(_, SimpleExpr::Lambda(_, lam), body) = &p.defs[1].body else {
            panic!("expected context push, got {:?}", p.defs[1].body);
        };
        // The serious inner call is evaluated under the pushed context.
        assert!(matches!(&**body, TailExpr::CallProc(_, _, _)));
        // The context body performs the outer call on the temp.
        let lam = p.lambda(*lam);
        assert!(matches!(&lam.body, TailExpr::CallProc(_, _, _)));
    }

    #[test]
    fn let_becomes_lambda_application() {
        let p = d("(define (f x) (let ((y (cons x x))) (cons y y)))");
        assert!(matches!(&p.defs[0].body, TailExpr::PushApp(_, SimpleExpr::Lambda(_, _), _)));
    }

    #[test]
    fn serious_condition_is_lifted() {
        let p = d("(define (f x) x) (define (g x) (if (f x) 1 2))");
        let TailExpr::PushApp(_, SimpleExpr::Lambda(_, lam), body) = &p.defs[1].body else {
            panic!("expected context push");
        };
        assert!(matches!(&**body, TailExpr::CallProc(_, _, _)));
        assert!(matches!(&p.lambda(*lam).body, TailExpr::If(_, SimpleExpr::Var(_, _), _, _)));
    }

    #[test]
    fn whole_suite_is_grammar_conformant() {
        for src in [
            "(define (append x y) (cps-append x y (lambda (v) v)))
             (define (cps-append x y c)
               (if (null? x) (c y)
                   (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
            "(define (tak x y z)
               (if (not (< y x)) z
                   (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))",
            "(define (f x) (let ((a (g x)) (b (g x))) (if (g (cons a b)) (f a) (f b))))
             (define (g x) x)",
        ] {
            let p = d(src);
            for def in &p.defs {
                assert_tail_form(&def.body);
            }
            for lam in &p.lambdas {
                assert_tail_form(&lam.body);
            }
        }
    }

    #[test]
    fn alpha_renaming_is_unique() {
        let p = d("(define (f x) ((lambda (x) x) x)) (define (g x) x)");
        // Three distinct binders named x → three distinct VarIds.
        let xs: Vec<u32> = p
            .var_names
            .iter()
            .enumerate()
            .filter(|(_, n)| &***n == "x")
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn paper_example_shape() {
        // (f (g x)) ⇒ ((lambda (t) (f t)) (g x))
        let p = d("(define (f x) x) (define (g x) x) (define (h x) (f (g x)))");
        let s = p.to_source();
        assert!(s.contains("lambda"), "context lambda expected in: {s}");
    }
}
