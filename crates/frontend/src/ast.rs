//! The surface abstract syntax of the subject language (paper Fig. 2).
//!
//! ```text
//! E ::= V | K | (if E E E) | (O E*) | (P E*) | (let ((V E)) E)
//!     | (lambda (V) E) | (E E)
//! D ::= (define (P V*) E)
//! Π ::= D+
//! ```
//!
//! Exactly as in the paper, `lambda` binds a single variable and
//! applications have a single argument, while top-level procedures take
//! any number of parameters.  Every expression carries a unique
//! [`Label`]; the closure-conversion machinery identifies lambdas by
//! their labels.

use pe_sexpr::Sexpr;
use std::fmt;
use std::sync::Arc;

/// A unique label `ℓ ∈ Label` attached to every expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Quoted, self-evaluating data (`K ∈ Constants`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// A fixnum.
    Int(i64),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character.
    Char(char),
    /// A string.
    Str(Arc<str>),
    /// A quoted symbol.
    Sym(Arc<str>),
    /// The empty list.
    Nil,
    /// A quoted pair.
    Pair(Arc<Constant>, Arc<Constant>),
}

impl Constant {
    /// Scheme truthiness: everything but `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Constant::Bool(false))
    }

    /// Renders the constant as a (quoted) S-expression datum.
    pub fn to_sexpr(&self) -> Sexpr {
        match self {
            Constant::Int(n) => Sexpr::Int(*n),
            Constant::Bool(b) => Sexpr::Bool(*b),
            Constant::Char(c) => Sexpr::Char(*c),
            Constant::Str(s) => Sexpr::Str(s.clone()),
            Constant::Sym(s) => Sexpr::Sym(s.clone()),
            Constant::Nil => Sexpr::nil(),
            Constant::Pair(_, _) => {
                // Render proper-list spines as lists, falling back to a
                // synthetic (cons a d) for improper data (which the reader
                // cannot produce, but programmatic construction can).
                let mut items = Vec::new();
                let mut cur = self.clone();
                loop {
                    match cur {
                        Constant::Pair(a, d) => {
                            items.push(a.to_sexpr());
                            cur = (*d).clone();
                        }
                        Constant::Nil => return Sexpr::List(items),
                        other => {
                            let mut out = vec![Sexpr::sym_of("cons-spine")];
                            out.extend(items);
                            out.push(other.to_sexpr());
                            return Sexpr::List(out);
                        }
                    }
                }
            }
        }
    }
}

/// Primitive operators (`O ∈ Operators`), all strict and first-order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// `(cons a d)`
    Cons,
    /// `(car p)`
    Car,
    /// `(cdr p)`
    Cdr,
    /// `(null? x)`
    NullP,
    /// `(pair? x)`
    PairP,
    /// `(not x)`
    Not,
    /// `(eq? a b)` — pointer/atom identity; on fixnums same as `=`.
    EqP,
    /// `(eqv? a b)`
    EqvP,
    /// `(equal? a b)` — structural equality.
    EqualP,
    /// `(+ a b)`
    Add,
    /// `(- a b)`
    Sub,
    /// `(* a b)`
    Mul,
    /// `(quotient a b)`
    Quotient,
    /// `(remainder a b)`
    Remainder,
    /// `(= a b)`
    NumEq,
    /// `(< a b)`
    Lt,
    /// `(> a b)`
    Gt,
    /// `(<= a b)`
    Le,
    /// `(>= a b)`
    Ge,
    /// `(zero? n)`
    ZeroP,
    /// `(add1 n)`
    Add1,
    /// `(sub1 n)`
    Sub1,
    /// `(symbol? x)`
    SymbolP,
    /// `(number? x)`
    NumberP,
    /// `(boolean? x)`
    BooleanP,
}

impl Prim {
    /// The number of arguments the primitive takes (after the parser has
    /// lowered variadic `+ - * list` forms to binary applications).
    pub fn arity(self) -> usize {
        match self {
            Prim::Car
            | Prim::Cdr
            | Prim::NullP
            | Prim::PairP
            | Prim::Not
            | Prim::ZeroP
            | Prim::Add1
            | Prim::Sub1
            | Prim::SymbolP
            | Prim::NumberP
            | Prim::BooleanP => 1,
            _ => 2,
        }
    }

    /// The surface name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            Prim::Cons => "cons",
            Prim::Car => "car",
            Prim::Cdr => "cdr",
            Prim::NullP => "null?",
            Prim::PairP => "pair?",
            Prim::Not => "not",
            Prim::EqP => "eq?",
            Prim::EqvP => "eqv?",
            Prim::EqualP => "equal?",
            Prim::Add => "+",
            Prim::Sub => "-",
            Prim::Mul => "*",
            Prim::Quotient => "quotient",
            Prim::Remainder => "remainder",
            Prim::NumEq => "=",
            Prim::Lt => "<",
            Prim::Gt => ">",
            Prim::Le => "<=",
            Prim::Ge => ">=",
            Prim::ZeroP => "zero?",
            Prim::Add1 => "add1",
            Prim::Sub1 => "sub1",
            Prim::SymbolP => "symbol?",
            Prim::NumberP => "number?",
            Prim::BooleanP => "boolean?",
        }
    }

    /// Looks a primitive up by its surface name.
    pub fn from_name(name: &str) -> Option<Prim> {
        use Prim::*;
        Some(match name {
            "cons" => Cons,
            "car" => Car,
            "cdr" => Cdr,
            "null?" => NullP,
            "pair?" => PairP,
            "not" => Not,
            "eq?" => EqP,
            "eqv?" => EqvP,
            "equal?" => EqualP,
            "+" => Add,
            "-" => Sub,
            "*" => Mul,
            "quotient" => Quotient,
            "remainder" => Remainder,
            "=" => NumEq,
            "<" => Lt,
            ">" => Gt,
            "<=" => Le,
            ">=" => Ge,
            "zero?" => ZeroP,
            "add1" => Add1,
            "sub1" => Sub1,
            "symbol?" => SymbolP,
            "number?" => NumberP,
            "boolean?" => BooleanP,
            _ => return None,
        })
    }

    /// All primitives, for exhaustive tests.
    pub fn all() -> &'static [Prim] {
        use Prim::*;
        &[
            Cons, Car, Cdr, NullP, PairP, Not, EqP, EqvP, EqualP, Add, Sub, Mul, Quotient,
            Remainder, NumEq, Lt, Gt, Le, Ge, ZeroP, Add1, Sub1, SymbolP, NumberP, BooleanP,
        ]
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A surface expression (`E` in Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A variable reference `V`.
    Var(Label, Arc<str>),
    /// A constant `K`.
    Const(Label, Constant),
    /// `(if E E E)`.
    If(Label, Box<Expr>, Box<Expr>, Box<Expr>),
    /// `(O E*)` — primitive application.
    Prim(Label, Prim, Vec<Expr>),
    /// `(P E*)` — call of a top-level procedure.
    Call(Label, Arc<str>, Vec<Expr>),
    /// `(let ((V E)) E)`.
    Let(Label, Arc<str>, Box<Expr>, Box<Expr>),
    /// `(lambda (V) E)` — single-parameter abstraction.
    Lambda(Label, Arc<str>, Box<Expr>),
    /// `(E E)` — application of a computed function to one argument.
    App(Label, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// The label of this expression.
    pub fn label(&self) -> Label {
        match self {
            Expr::Var(l, _)
            | Expr::Const(l, _)
            | Expr::If(l, _, _, _)
            | Expr::Prim(l, _, _)
            | Expr::Call(l, _, _)
            | Expr::Let(l, _, _, _)
            | Expr::Lambda(l, _, _)
            | Expr::App(l, _, _) => *l,
        }
    }

    /// Unparses back to concrete syntax.
    pub fn to_sexpr(&self) -> Sexpr {
        match self {
            Expr::Var(_, v) => Sexpr::Sym(v.clone()),
            Expr::Const(_, k) => match k {
                Constant::Int(n) => Sexpr::Int(*n),
                Constant::Bool(b) => Sexpr::Bool(*b),
                Constant::Char(c) => Sexpr::Char(*c),
                Constant::Str(s) => Sexpr::Str(s.clone()),
                k => Sexpr::list_of([Sexpr::sym_of("quote"), k.to_sexpr()]),
            },
            Expr::If(_, c, t, e) => {
                Sexpr::list_of([Sexpr::sym_of("if"), c.to_sexpr(), t.to_sexpr(), e.to_sexpr()])
            }
            Expr::Prim(_, op, args) => {
                let mut xs = vec![Sexpr::sym_of(op.name())];
                xs.extend(args.iter().map(Expr::to_sexpr));
                Sexpr::List(xs)
            }
            Expr::Call(_, p, args) => {
                let mut xs = vec![Sexpr::Sym(p.clone())];
                xs.extend(args.iter().map(Expr::to_sexpr));
                Sexpr::List(xs)
            }
            Expr::Let(_, v, rhs, body) => Sexpr::list_of([
                Sexpr::sym_of("let"),
                Sexpr::list_of([Sexpr::list_of([Sexpr::Sym(v.clone()), rhs.to_sexpr()])]),
                body.to_sexpr(),
            ]),
            Expr::Lambda(_, v, body) => Sexpr::list_of([
                Sexpr::sym_of("lambda"),
                Sexpr::list_of([Sexpr::Sym(v.clone())]),
                body.to_sexpr(),
            ]),
            Expr::App(_, f, a) => Sexpr::list_of([f.to_sexpr(), a.to_sexpr()]),
        }
    }

    /// Calls `f` on this expression and every subexpression.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Var(_, _) | Expr::Const(_, _) => {}
            Expr::If(_, c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            Expr::Prim(_, _, args) | Expr::Call(_, _, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Let(_, _, rhs, body) => {
                rhs.walk(f);
                body.walk(f);
            }
            Expr::Lambda(_, _, body) => body.walk(f),
            Expr::App(_, g, a) => {
                g.walk(f);
                a.walk(f);
            }
        }
    }
}

/// A top-level definition `(define (P V*) E)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Definition {
    /// The procedure name `P`.
    pub name: Arc<str>,
    /// The formal parameters `V*`.
    pub params: Vec<Arc<str>>,
    /// The body.
    pub body: Expr,
}

impl Definition {
    /// Unparses back to concrete syntax.
    pub fn to_sexpr(&self) -> Sexpr {
        let mut head = vec![Sexpr::Sym(self.name.clone())];
        head.extend(self.params.iter().map(|p| Sexpr::Sym(p.clone())));
        Sexpr::list_of([Sexpr::sym_of("define"), Sexpr::List(head), self.body.to_sexpr()])
    }
}

/// A whole program `Π ::= D+`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The definitions, in source order.
    pub defs: Vec<Definition>,
}

impl Program {
    /// Finds a definition by name.
    pub fn def(&self, name: &str) -> Option<&Definition> {
        self.defs.iter().find(|d| &*d.name == name)
    }

    /// Unparses the whole program.
    pub fn to_sexprs(&self) -> Vec<Sexpr> {
        self.defs.iter().map(Definition::to_sexpr).collect()
    }

    /// Renders the program as concrete syntax, one definition per line.
    pub fn to_source(&self) -> String {
        self.to_sexprs()
            .iter()
            .map(pe_sexpr::pretty)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_names_roundtrip() {
        for &p in Prim::all() {
            assert_eq!(Prim::from_name(p.name()), Some(p), "prim {p}");
        }
        assert_eq!(Prim::from_name("frobnicate"), None);
    }

    #[test]
    fn prim_arities() {
        assert_eq!(Prim::Cons.arity(), 2);
        assert_eq!(Prim::Car.arity(), 1);
        assert_eq!(Prim::NumEq.arity(), 2);
        assert_eq!(Prim::ZeroP.arity(), 1);
    }

    #[test]
    fn constant_truthiness() {
        assert!(!Constant::Bool(false).is_truthy());
        assert!(Constant::Bool(true).is_truthy());
        assert!(Constant::Int(0).is_truthy());
        assert!(Constant::Nil.is_truthy());
    }

    #[test]
    fn constant_list_rendering() {
        let k = Constant::Pair(
            Arc::new(Constant::Sym("a".into())),
            Arc::new(Constant::Pair(Arc::new(Constant::Int(2)), Arc::new(Constant::Nil))),
        );
        assert_eq!(k.to_sexpr().to_string(), "(a 2)");
    }
}
