//! The offline generalization analysis of §4.5.
//!
//! Mix-style partial evaluators do not detect static data structures
//! that grow without bounds under dynamic control.  The paper identifies
//! three sources of self-embedding data in the two-level interpreter:
//!
//! 1. the stack of evaluation contexts may contain a context that leads
//!    to its own repeated evaluation,
//! 2. a closure may contain a closure generated from the same lambda
//!    expression as part of a free variable's value,
//! 3. applications of `cons` may nest.
//!
//! Under the *offline* strategy, a flow analysis determines statically
//! which lambdas and which cons sites may lead to critical data; the
//! specializer then generalizes the corresponding value descriptions *at
//! creation* (critical evaluation contexts "are merely closures already
//! caught by the analysis", plus stack-recursion detection below).

use crate::dast::{DProgram, LamId, ProcId, SimpleExpr, TailExpr};
use crate::flow::{FlowAnalysis, LamSet};
use std::collections::BTreeSet;

/// Which lambdas and cons sites the offline strategy generalizes at
/// creation.
#[derive(Debug, Clone)]
pub struct GenAnalysis {
    /// Lambdas whose closures may (transitively) capture a closure of
    /// the same lambda — source 2 — or that may be pushed repeatedly on
    /// the context stack without an intervening pop — source 1.
    pub critical_lams: BTreeSet<LamId>,
    /// Cons sites whose results may (transitively) contain a pair from
    /// the same site — source 3.
    pub critical_cons: BTreeSet<u32>,
    /// Lambdas that may appear on a dynamic context stack (used as the
    /// dispatch candidate set when the whole stack is dynamic).
    pub stack_candidates: LamSet,
}

impl GenAnalysis {
    /// Runs the analysis on a desugared program using flow results.
    pub fn analyze(p: &DProgram, flow: &FlowAnalysis) -> GenAnalysis {
        let mut critical_lams = BTreeSet::new();
        let mut critical_cons = BTreeSet::new();

        // Source 2: a closure of ℓ can reach a closure of ℓ through its
        // free variables (via captured values and pair components).
        for (i, lam) in p.lambdas.iter().enumerate() {
            let id = LamId(i as u32);
            for &fv in &lam.freevars {
                if flow.deep_lambdas(p, flow.var(fv)).contains(id) {
                    critical_lams.insert(id);
                    break;
                }
            }
        }

        // Source 3: a cons site whose components can reach a pair from
        // the same site.
        let mut all_sites: BTreeSet<u32> = BTreeSet::new();
        collect_sites(p, &mut all_sites);
        for &site in &all_sites {
            if let Some(c) = flow.cons_components(site) {
                if flow.deep_pairs(p, c).contains(&site) {
                    critical_cons.insert(site);
                }
            }
        }

        // Source 1: a context pushed inside a recursive procedure (or
        // inside a lambda reachable from one) may pile up on the stack.
        // We approximate with the procedure-level call graph: a PushApp
        // whose surrounding procedure takes part in call-graph recursion
        // marks its context lambdas critical.  This is deliberately
        // conservative — the paper's offline strategy "necessarily
        // generalizes" more than the online one.
        let recursive = recursive_procs(p);
        for (pidx, d) in p.defs.iter().enumerate() {
            if recursive.contains(&ProcId(pidx as u32)) {
                mark_pushed_contexts(p, flow, &d.body, &mut critical_lams);
            }
        }
        // Lambdas syntactically inside a recursive proc's body live in
        // the lambda table; their pushes count too when the lambda itself
        // can be invoked from a recursive context.  Conservatively mark
        // pushes inside any lambda that a recursive procedure can create.
        for (pidx, d) in p.defs.iter().enumerate() {
            if !recursive.contains(&ProcId(pidx as u32)) {
                continue;
            }
            let mut lams = BTreeSet::new();
            lambdas_created_tail(&d.body, &mut lams);
            let mut work: Vec<LamId> = lams.iter().copied().collect();
            let mut seen = lams;
            while let Some(l) = work.pop() {
                mark_pushed_contexts(p, flow, &p.lambda(l).body, &mut critical_lams);
                let mut inner = BTreeSet::new();
                lambdas_created_tail(&p.lambda(l).body, &mut inner);
                for i in inner {
                    if seen.insert(i) {
                        work.push(i);
                    }
                }
            }
        }

        GenAnalysis {
            critical_lams,
            critical_cons,
            stack_candidates: flow.context_lambdas().clone(),
        }
    }

    /// True if closures of `l` must be generalized at creation.
    pub fn lam_is_critical(&self, l: LamId) -> bool {
        self.critical_lams.contains(&l)
    }

    /// True if pairs from cons site `site` must be generalized at
    /// creation.
    pub fn cons_is_critical(&self, site: u32) -> bool {
        self.critical_cons.contains(&site)
    }
}

fn collect_sites(p: &DProgram, out: &mut BTreeSet<u32>) {
    fn simple(se: &SimpleExpr, out: &mut BTreeSet<u32>) {
        if let SimpleExpr::Prim(l, op, args) = se {
            if *op == crate::Prim::Cons {
                out.insert(l.0);
            }
            for a in args {
                simple(a, out);
            }
        }
    }
    fn tail(te: &TailExpr, out: &mut BTreeSet<u32>) {
        match te {
            TailExpr::Simple(se) => simple(se, out),
            TailExpr::If(_, c, t, e) => {
                simple(c, out);
                tail(t, out);
                tail(e, out);
            }
            TailExpr::CallProc(_, _, args) => args.iter().for_each(|a| simple(a, out)),
            TailExpr::PushApp(_, ctx, body) => {
                simple(ctx, out);
                tail(body, out);
            }
        }
    }
    for d in &p.defs {
        tail(&d.body, out);
    }
    for l in &p.lambdas {
        tail(&l.body, out);
    }
}

/// The set of procedures taking part in call-graph recursion, where the
/// call graph includes calls made from lambdas created by a procedure
/// (the closure may be invoked later, transferring control back).
fn recursive_procs(p: &DProgram) -> BTreeSet<ProcId> {
    let n = p.defs.len();
    // edges[i] = procs callable from proc i (directly or via its lambdas).
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (i, d) in p.defs.iter().enumerate() {
        let mut lams = BTreeSet::new();
        lambdas_created_tail(&d.body, &mut lams);
        let mut work: Vec<LamId> = lams.iter().copied().collect();
        let mut seen = lams;
        calls_in_tail(&d.body, &mut edges[i]);
        while let Some(l) = work.pop() {
            calls_in_tail(&p.lambda(l).body, &mut edges[i]);
            let mut inner = BTreeSet::new();
            lambdas_created_tail(&p.lambda(l).body, &mut inner);
            for x in inner {
                if seen.insert(x) {
                    work.push(x);
                }
            }
        }
    }
    // Transitive closure (n is small).
    let mut closed = edges.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let reach: Vec<usize> = closed[i].iter().copied().collect();
            for j in reach {
                let next: Vec<usize> = closed[j].iter().copied().collect();
                for k in next {
                    if closed[i].insert(k) {
                        changed = true;
                    }
                }
            }
        }
    }
    (0..n).filter(|&i| closed[i].contains(&i)).map(|i| ProcId(i as u32)).collect()
}

fn calls_in_tail(te: &TailExpr, out: &mut BTreeSet<usize>) {
    match te {
        TailExpr::Simple(_) => {}
        TailExpr::If(_, _, t, e) => {
            calls_in_tail(t, out);
            calls_in_tail(e, out);
        }
        TailExpr::CallProc(_, pid, _) => {
            out.insert(pid.0 as usize);
        }
        TailExpr::PushApp(_, _, body) => calls_in_tail(body, out),
    }
}

fn lambdas_created_tail(te: &TailExpr, out: &mut BTreeSet<LamId>) {
    fn simple(se: &SimpleExpr, out: &mut BTreeSet<LamId>) {
        match se {
            SimpleExpr::Lambda(_, id) => {
                out.insert(*id);
            }
            SimpleExpr::Prim(_, _, args) => args.iter().for_each(|a| simple(a, out)),
            SimpleExpr::Var(_, _) | SimpleExpr::Const(_, _) => {}
        }
    }
    match te {
        TailExpr::Simple(se) => simple(se, out),
        TailExpr::If(_, c, t, e) => {
            simple(c, out);
            lambdas_created_tail(t, out);
            lambdas_created_tail(e, out);
        }
        TailExpr::CallProc(_, _, args) => args.iter().for_each(|a| simple(a, out)),
        TailExpr::PushApp(_, ctx, body) => {
            simple(ctx, out);
            lambdas_created_tail(body, out);
        }
    }
}

fn mark_pushed_contexts(
    p: &DProgram,
    flow: &FlowAnalysis,
    te: &TailExpr,
    out: &mut BTreeSet<LamId>,
) {
    let _ = p;
    match te {
        TailExpr::Simple(_) | TailExpr::CallProc(_, _, _) => {}
        TailExpr::If(_, _, t, e) => {
            mark_pushed_contexts(p, flow, t, out);
            mark_pushed_contexts(p, flow, e, out);
        }
        TailExpr::PushApp(_, ctx, body) => {
            // The pushed context can only pile up if a procedure call
            // runs while it is still on the stack; a push over a simple
            // body (such as CPS's `(c y)`) is popped immediately and can
            // never grow the stack.
            if tail_contains_call(body) {
                out.extend(flow.lambdas_of(ctx).iter());
            }
            mark_pushed_contexts(p, flow, body, out);
        }
    }
}

/// True if evaluating `te` can perform a top-level procedure call while
/// contexts pushed *around* `te` are still pending.
fn tail_contains_call(te: &TailExpr) -> bool {
    match te {
        TailExpr::Simple(_) => false,
        TailExpr::If(_, _, t, e) => tail_contains_call(t) || tail_contains_call(e),
        TailExpr::CallProc(_, _, _) => true,
        TailExpr::PushApp(_, _, body) => tail_contains_call(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desugar::desugar;
    use crate::parse::parse_source;

    fn analyze(src: &str) -> (DProgram, GenAnalysis) {
        let p = desugar(&parse_source(src).unwrap()).unwrap();
        let f = FlowAnalysis::analyze(&p);
        let g = GenAnalysis::analyze(&p, &f);
        (p, g)
    }

    #[test]
    fn cps_append_inner_continuation_is_critical() {
        let (p, g) = analyze(
            "(define (append x y) (cps-append x y (lambda (v) v)))
             (define (cps-append x y c)
               (if (null? x) (c y)
                   (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
        );
        // The inner continuation captures `c`, which can be the inner
        // continuation itself: self-embedding, hence critical.
        assert!(!g.critical_lams.is_empty(), "inner continuation must be critical");
        // The identity continuation captures nothing; it must NOT be
        // critical.
        let identity = p
            .lambdas
            .iter()
            .position(|l| l.freevars.is_empty())
            .expect("identity lambda");
        assert!(!g.lam_is_critical(LamId(identity as u32)));
    }

    #[test]
    fn rev_accumulator_cons_is_critical() {
        let (_, g) =
            analyze("(define (rev x acc) (if (null? x) acc (rev (cdr x) (cons (car x) acc))))");
        assert_eq!(g.critical_cons.len(), 1);
    }

    #[test]
    fn straightline_cons_is_not_critical() {
        let (_, g) = analyze("(define (f x) (cons 1 (cons 2 x)))");
        assert!(g.critical_cons.is_empty());
    }

    #[test]
    fn tak_contexts_are_critical_via_recursion() {
        let (_, g) = analyze(
            "(define (tak x y z)
               (if (not (< y x)) z
                   (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))",
        );
        // tak is recursive and pushes contexts for nested calls: those
        // contexts may pile up on the stack, so they are critical.
        assert!(!g.critical_lams.is_empty());
        assert!(!g.stack_candidates.is_empty());
    }

    #[test]
    fn non_recursive_pushes_are_not_critical() {
        let (_, g) = analyze("(define (g x) x) (define (f x) (g (g x)))");
        // f pushes a context for the nested call but nothing recurses.
        assert!(g.critical_lams.is_empty(), "critical: {:?}", g.critical_lams);
    }
}
