//! Parsing and validation: concrete S-expression syntax → surface AST.
//!
//! The parser resolves every head position according to the grammar of
//! Fig. 2: a lexically bound variable shadows procedures and primitives,
//! an in-scope top-level procedure name produces a [`Expr::Call`], a
//! primitive name produces [`Expr::Prim`], anything else is an error.
//! Scoping, arity and well-formedness are all checked here, so the rest
//! of the pipeline can assume a valid program.

use crate::ast::{Constant, Definition, Expr, Label, Prim, Program};
use pe_sexpr::{Pos, Sexpr};
use pe_intern::FxHashMap;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// An error produced while parsing or validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The reader rejected the input before parsing began; the inner
    /// error carries the exact source position.
    Read(pe_sexpr::ReadError),
    /// A parse error located at the top-level form starting at
    /// `line:col` (errors from [`parse_source`] are wrapped in this).
    At { line: u32, col: u32, cause: Box<ParseError> },
    /// The input was not a well-formed `(define (P V*) E)` form.
    BadDefinition(String),
    /// Two definitions share a name.
    DuplicateDefinition(String),
    /// A variable was referenced outside any binding.
    UnboundVariable(String),
    /// A procedure was called with the wrong number of arguments.
    ProcArity { name: String, expected: usize, got: usize },
    /// A primitive was applied to the wrong number of arguments.
    PrimArity { name: String, expected: usize, got: usize },
    /// A special form (`if`, `let`, `lambda`, `quote`) was malformed.
    BadForm { form: &'static str, detail: String },
    /// A computed application `(E E)` had more or fewer than one argument.
    AppArity(String),
    /// A procedure name was used as a value (procedures are not
    /// first-class in the subject language).
    ProcAsValue(String),
    /// An identifier used a reserved spelling (leading `%`).
    ReservedIdentifier(String),
    /// The program has no definitions.
    EmptyProgram,
    /// A quoted datum contained something that is not subject-language data.
    BadDatum(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Read(e) => write!(f, "{e}"),
            ParseError::At { line, col, cause } => write!(f, "{line}:{col}: {cause}"),
            ParseError::BadDefinition(d) => write!(f, "malformed definition: {d}"),
            ParseError::DuplicateDefinition(n) => write!(f, "duplicate definition of {n}"),
            ParseError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            ParseError::ProcArity { name, expected, got } => {
                write!(f, "procedure {name} expects {expected} argument(s), got {got}")
            }
            ParseError::PrimArity { name, expected, got } => {
                write!(f, "primitive {name} expects {expected} argument(s), got {got}")
            }
            ParseError::BadForm { form, detail } => write!(f, "malformed {form}: {detail}"),
            ParseError::AppArity(e) => {
                write!(f, "computed applications take exactly one argument: {e}")
            }
            ParseError::ProcAsValue(n) => {
                write!(f, "procedure {n} used as a value (procedures are not first-class)")
            }
            ParseError::ReservedIdentifier(v) => {
                write!(f, "identifier {v} is reserved (leading %)")
            }
            ParseError::EmptyProgram => write!(f, "program has no definitions"),
            ParseError::BadDatum(d) => write!(f, "unsupported quoted datum: {d}"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    next_label: u32,
    /// name → arity of every top-level procedure.
    procs: FxHashMap<Arc<str>, usize>,
}

impl Parser {
    fn fresh(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn parse_expr(&mut self, e: &Sexpr, bound: &im_set::Set) -> Result<Expr, ParseError> {
        match e {
            Sexpr::Int(n) => Ok(Expr::Const(self.fresh(), Constant::Int(*n))),
            Sexpr::Bool(b) => Ok(Expr::Const(self.fresh(), Constant::Bool(*b))),
            Sexpr::Char(c) => Ok(Expr::Const(self.fresh(), Constant::Char(*c))),
            Sexpr::Str(s) => Ok(Expr::Const(self.fresh(), Constant::Str(s.clone()))),
            Sexpr::Sym(v) => {
                check_ident(v)?;
                if bound.contains(v) {
                    Ok(Expr::Var(self.fresh(), v.clone()))
                } else if self.procs.contains_key(v) {
                    Err(ParseError::ProcAsValue(v.to_string()))
                } else {
                    Err(ParseError::UnboundVariable(v.to_string()))
                }
            }
            Sexpr::List(xs) => {
                let Some(head) = xs.first() else {
                    return Err(ParseError::BadDatum("()".to_string()));
                };
                if let Some(name) = head.sym() {
                    // Special forms first; they cannot be shadowed because
                    // `if`/`let`/`lambda`/`quote` are not valid binders
                    // (check_ident rejects them).
                    match name {
                        "quote" => return self.parse_quote(xs),
                        "if" => return self.parse_if(xs, bound),
                        "let" => return self.parse_let(xs, bound),
                        "lambda" => return self.parse_lambda(xs, bound),
                        _ => {}
                    }
                    if bound.contains(name) {
                        return self.parse_app(xs, bound);
                    }
                    if let Some(&arity) = self.procs.get(name) {
                        let args = &xs[1..];
                        if args.len() != arity {
                            return Err(ParseError::ProcArity {
                                name: name.to_string(),
                                expected: arity,
                                got: args.len(),
                            });
                        }
                        let args = args
                            .iter()
                            .map(|a| self.parse_expr(a, bound))
                            .collect::<Result<Vec<_>, _>>()?;
                        return Ok(Expr::Call(self.fresh(), name.into(), args));
                    }
                    if name == "list" {
                        return self.parse_list_sugar(&xs[1..], bound);
                    }
                    if let Some(p) = Prim::from_name(name) {
                        return self.parse_prim(p, &xs[1..], bound);
                    }
                    return Err(ParseError::UnboundVariable(name.to_string()));
                }
                self.parse_app(xs, bound)
            }
        }
    }

    fn parse_quote(&mut self, xs: &[Sexpr]) -> Result<Expr, ParseError> {
        if xs.len() != 2 {
            return Err(ParseError::BadForm {
                form: "quote",
                detail: Sexpr::List(xs.to_vec()).to_string(),
            });
        }
        Ok(Expr::Const(self.fresh(), datum(&xs[1])?))
    }

    fn parse_if(&mut self, xs: &[Sexpr], bound: &im_set::Set) -> Result<Expr, ParseError> {
        if xs.len() != 4 {
            return Err(ParseError::BadForm {
                form: "if",
                detail: format!("expected 3 subforms, got {}", xs.len() - 1),
            });
        }
        let c = self.parse_expr(&xs[1], bound)?;
        let t = self.parse_expr(&xs[2], bound)?;
        let e = self.parse_expr(&xs[3], bound)?;
        Ok(Expr::If(self.fresh(), Box::new(c), Box::new(t), Box::new(e)))
    }

    fn parse_let(&mut self, xs: &[Sexpr], bound: &im_set::Set) -> Result<Expr, ParseError> {
        // `(let ((v e) ...) body)`; multiple bindings nest left-to-right
        // (a convenience over Fig. 2's single binding; semantics identical
        // to nested single lets since rhs of later bindings may see
        // earlier ones — i.e. this is let*, the only coherent reading for
        // nested single-binding lets).
        if xs.len() != 3 {
            return Err(ParseError::BadForm {
                form: "let",
                detail: format!("expected bindings and body, got {} subforms", xs.len() - 1),
            });
        }
        let Some(bindings) = xs[1].list() else {
            return Err(ParseError::BadForm { form: "let", detail: xs[1].to_string() });
        };
        if bindings.is_empty() {
            return Err(ParseError::BadForm {
                form: "let",
                detail: "empty binding list".to_string(),
            });
        }
        self.parse_let_bindings(bindings, &xs[2], bound)
    }

    fn parse_let_bindings(
        &mut self,
        bindings: &[Sexpr],
        body: &Sexpr,
        bound: &im_set::Set,
    ) -> Result<Expr, ParseError> {
        let Some([v, rhs]) = bindings[0].list().filter(|b| b.len() == 2) else {
            return Err(ParseError::BadForm { form: "let", detail: bindings[0].to_string() });
        };
        let Some(v) = v.sym() else {
            return Err(ParseError::BadForm { form: "let", detail: bindings[0].to_string() });
        };
        check_binder(v)?;
        let rhs = self.parse_expr(rhs, bound)?;
        let inner = bound.insert(v);
        let body = if bindings.len() == 1 {
            self.parse_expr(body, &inner)?
        } else {
            self.parse_let_bindings(&bindings[1..], body, &inner)?
        };
        Ok(Expr::Let(self.fresh(), v.into(), Box::new(rhs), Box::new(body)))
    }

    fn parse_lambda(&mut self, xs: &[Sexpr], bound: &im_set::Set) -> Result<Expr, ParseError> {
        if xs.len() != 3 {
            return Err(ParseError::BadForm {
                form: "lambda",
                detail: format!("expected parameter list and body, got {} subforms", xs.len() - 1),
            });
        }
        let params = xs[1].list().ok_or(ParseError::BadForm {
            form: "lambda",
            detail: xs[1].to_string(),
        })?;
        let [param] = params else {
            return Err(ParseError::BadForm {
                form: "lambda",
                detail: format!(
                    "lambda binds exactly one variable (Fig. 2), got {}",
                    params.len()
                ),
            });
        };
        let Some(v) = param.sym() else {
            return Err(ParseError::BadForm { form: "lambda", detail: param.to_string() });
        };
        check_binder(v)?;
        let inner = bound.insert(v);
        let body = self.parse_expr(&xs[2], &inner)?;
        Ok(Expr::Lambda(self.fresh(), v.into(), Box::new(body)))
    }

    fn parse_app(&mut self, xs: &[Sexpr], bound: &im_set::Set) -> Result<Expr, ParseError> {
        if xs.len() != 2 {
            return Err(ParseError::AppArity(Sexpr::List(xs.to_vec()).to_string()));
        }
        let f = self.parse_expr(&xs[0], bound)?;
        let a = self.parse_expr(&xs[1], bound)?;
        Ok(Expr::App(self.fresh(), Box::new(f), Box::new(a)))
    }

    fn parse_prim(
        &mut self,
        p: Prim,
        args: &[Sexpr],
        bound: &im_set::Set,
    ) -> Result<Expr, ParseError> {
        let parsed = args
            .iter()
            .map(|a| self.parse_expr(a, bound))
            .collect::<Result<Vec<_>, _>>()?;
        // Variadic lowering: (+ a b c) → (+ (+ a b) c), (- a) → (- 0 a).
        // The guards guarantee the iterators are nonempty, so the
        // `ok_or` error paths below are unreachable; they exist so this
        // function stays panic-free even if a guard is edited.
        let empty = |p: Prim| ParseError::PrimArity {
            name: p.name().to_string(),
            expected: p.arity(),
            got: 0,
        };
        match p {
            Prim::Add | Prim::Mul if parsed.len() >= 2 => {
                let mut it = parsed.into_iter();
                let first = it.next().ok_or(empty(p))?;
                return Ok(it.fold(first, |acc, next| {
                    Expr::Prim(self.fresh(), p, vec![acc, next])
                }));
            }
            Prim::Sub if parsed.len() == 1 => {
                let a = parsed.into_iter().next().ok_or(empty(p))?;
                return Ok(Expr::Prim(
                    self.fresh(),
                    Prim::Sub,
                    vec![Expr::Const(self.fresh(), Constant::Int(0)), a],
                ));
            }
            Prim::Sub if parsed.len() > 2 => {
                let mut it = parsed.into_iter();
                let first = it.next().ok_or(empty(p))?;
                return Ok(it.fold(first, |acc, next| {
                    Expr::Prim(self.fresh(), Prim::Sub, vec![acc, next])
                }));
            }
            _ => {}
        }
        if parsed.len() != p.arity() {
            return Err(ParseError::PrimArity {
                name: p.name().to_string(),
                expected: p.arity(),
                got: parsed.len(),
            });
        }
        Ok(Expr::Prim(self.fresh(), p, parsed))
    }

    fn parse_list_sugar(
        &mut self,
        args: &[Sexpr],
        bound: &im_set::Set,
    ) -> Result<Expr, ParseError> {
        // (list a b) → (cons a (cons b '()))
        let mut acc = Expr::Const(self.fresh(), Constant::Nil);
        for a in args.iter().rev() {
            let a = self.parse_expr(a, bound)?;
            acc = Expr::Prim(self.fresh(), Prim::Cons, vec![a, acc]);
        }
        Ok(acc)
    }
}

/// Converts a quoted S-expression to constant data.
fn datum(e: &Sexpr) -> Result<Constant, ParseError> {
    Ok(match e {
        Sexpr::Int(n) => Constant::Int(*n),
        Sexpr::Bool(b) => Constant::Bool(*b),
        Sexpr::Char(c) => Constant::Char(*c),
        Sexpr::Str(s) => Constant::Str(s.clone()),
        Sexpr::Sym(s) => Constant::Sym(s.clone()),
        Sexpr::List(xs) => {
            let mut acc = Constant::Nil;
            for x in xs.iter().rev() {
                acc = Constant::Pair(Arc::new(datum(x)?), Arc::new(acc));
            }
            acc
        }
    })
}

fn check_ident(v: &str) -> Result<(), ParseError> {
    if v.starts_with('%') {
        return Err(ParseError::ReservedIdentifier(v.to_string()));
    }
    Ok(())
}

fn check_binder(v: &str) -> Result<(), ParseError> {
    check_ident(v)?;
    if matches!(v, "if" | "let" | "lambda" | "quote" | "define" | "list") {
        return Err(ParseError::BadForm { form: "binder", detail: format!("cannot bind {v}") });
    }
    Ok(())
}

/// A tiny persistent string set used for lexical scopes.
mod im_set {
    use std::collections::HashSet;
    use std::sync::Arc;

    /// An immutable set with O(n) insert; scopes are tiny so this is fine
    /// and it keeps the parser free of lifetime plumbing.
    #[derive(Clone, Default)]
    pub struct Set(Arc<HashSet<Arc<str>>>);

    impl Set {
        pub fn contains(&self, v: &str) -> bool {
            self.0.contains(v)
        }

        #[must_use]
        pub fn insert(&self, v: &str) -> Set {
            let mut s: HashSet<Arc<str>> = (*self.0).clone();
            s.insert(v.into());
            Set(Arc::new(s))
        }

        pub fn from_iter<'a>(it: impl IntoIterator<Item = &'a str>) -> Set {
            Set(Arc::new(it.into_iter().map(Arc::from).collect()))
        }
    }
}

/// Parses a whole program from S-expressions.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered; the program is fully
/// scope- and arity-checked on success.
pub fn parse_program(forms: &[Sexpr]) -> Result<Program, ParseError> {
    parse_forms(forms, None)
}

/// [`parse_program`], but errors carry the matching form's [`Pos`].
///
/// Lets callers that have already run the reader (and so hold positions)
/// parse as a separate step — e.g. to time reading and parsing
/// independently — without losing error locations.
///
/// # Errors
///
/// See [`parse_program`]; errors are wrapped in [`ParseError::At`].
pub fn parse_program_positioned(forms: &[Sexpr], poss: &[Pos]) -> Result<Program, ParseError> {
    parse_forms(forms, Some(poss))
}

/// Wraps a per-form error with the form's source position, when known.
fn locate(poss: Option<&[Pos]>, i: usize, e: ParseError) -> ParseError {
    match poss.and_then(|p| p.get(i)) {
        Some(pos) => ParseError::At { line: pos.line, col: pos.col, cause: Box::new(e) },
        None => e,
    }
}

/// A definition signature: name, parameters, and unparsed body form.
type Sig<'a> = (Arc<str>, Vec<Arc<str>>, &'a Sexpr);

/// Pass 1 for one form: extract its `(define (P V*) E)` signature.
fn collect_sig<'a>(
    form: &'a Sexpr,
    procs: &mut FxHashMap<Arc<str>, usize>,
) -> Result<Sig<'a>, ParseError> {
    let Some(args) = form.form_args("define") else {
        return Err(ParseError::BadDefinition(form.to_string()));
    };
    let [header, body] = args else {
        return Err(ParseError::BadDefinition(form.to_string()));
    };
    let Some(header) = header.list() else {
        return Err(ParseError::BadDefinition(form.to_string()));
    };
    let Some(name) = header.first().and_then(Sexpr::sym) else {
        return Err(ParseError::BadDefinition(form.to_string()));
    };
    check_binder(name)?;
    let mut params = Vec::new();
    let mut seen = HashSet::new();
    for p in &header[1..] {
        let Some(p) = p.sym() else {
            return Err(ParseError::BadDefinition(form.to_string()));
        };
        check_binder(p)?;
        if !seen.insert(p) {
            return Err(ParseError::BadDefinition(format!("duplicate parameter {p} in {name}")));
        }
        params.push(Arc::<str>::from(p));
    }
    if procs.insert(name.into(), params.len()).is_some() {
        return Err(ParseError::DuplicateDefinition(name.to_string()));
    }
    Ok((Arc::<str>::from(name), params, body))
}

fn parse_forms(forms: &[Sexpr], poss: Option<&[Pos]>) -> Result<Program, ParseError> {
    if forms.is_empty() {
        return Err(ParseError::EmptyProgram);
    }
    // Pass 1: collect procedure signatures (procedures may call forward).
    let mut procs: FxHashMap<Arc<str>, usize> = FxHashMap::default();
    let mut sigs = Vec::new();
    for (i, form) in forms.iter().enumerate() {
        sigs.push(collect_sig(form, &mut procs).map_err(|e| locate(poss, i, e))?);
    }
    // Pass 2: parse bodies.
    let mut parser = Parser { next_label: 0, procs };
    let mut defs = Vec::new();
    for (i, (name, params, body)) in sigs.into_iter().enumerate() {
        let bound = im_set::Set::from_iter(params.iter().map(|p| &**p));
        let body = parser.parse_expr(body, &bound).map_err(|e| locate(poss, i, e))?;
        defs.push(Definition { name, params, body });
    }
    Ok(Program { defs })
}

/// Parses a whole program from source text under default [`pe_sexpr::Limits`].
///
/// # Errors
///
/// Returns [`ParseError::Read`] (with exact position) if the reader
/// rejects the input, otherwise any [`ParseError`] wrapped in
/// [`ParseError::At`] with the position of the offending top-level form.
pub fn parse_source(src: &str) -> Result<Program, ParseError> {
    parse_source_with(src, &pe_sexpr::Limits::default())
}

/// [`parse_source`] under explicit reader [`pe_sexpr::Limits`] (nesting
/// depth, node budget).
///
/// # Errors
///
/// See [`parse_source`].
pub fn parse_source_with(src: &str, limits: &pe_sexpr::Limits) -> Result<Program, ParseError> {
    let forms = pe_sexpr::read_positioned_with(src, limits).map_err(ParseError::Read)?;
    let (exprs, poss): (Vec<Sexpr>, Vec<Pos>) = forms.into_iter().unzip();
    parse_forms(&exprs, Some(&poss))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Program {
        parse_source(src).expect("parse")
    }

    /// The underlying error, with any position wrapper stripped.
    fn perr(src: &str) -> ParseError {
        match parse_source(src).expect_err("should not parse") {
            ParseError::At { cause, .. } => *cause,
            e => e,
        }
    }

    #[test]
    fn parses_paper_append() {
        let prog = p("(define (append x y) (cps-append x y (lambda (x) x)))
                      (define (cps-append x y c)
                        (if (null? x)
                            (c y)
                            (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))");
        assert_eq!(prog.defs.len(), 2);
        let app = prog.def("append").unwrap();
        assert!(matches!(app.body, Expr::Call(_, _, _)));
        // Round-trip through unparse+parse preserves structure.
        let again = p(&prog.to_source());
        assert_eq!(again.defs.len(), 2);
    }

    #[test]
    fn labels_are_unique() {
        let prog = p("(define (f x) (if (null? x) (f (cdr x)) (cons x x)))");
        let mut labels = Vec::new();
        prog.defs[0].body.walk(&mut |e| labels.push(e.label()));
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn shadowing_primitives_and_procs() {
        // `car` bound as a lambda parameter shadows the primitive.
        let prog = p("(define (f car) (car 1))");
        match &prog.defs[0].body {
            Expr::App(_, f, _) => assert!(matches!(&**f, Expr::Var(_, v) if &**v == "car")),
            other => panic!("expected App, got {other:?}"),
        }
        // A procedure name bound as a variable shadows the procedure.
        let prog = p("(define (g x) x) (define (f g) (g 1))");
        assert!(matches!(&prog.defs[1].body, Expr::App(_, _, _)));
    }

    #[test]
    fn unbound_and_proc_as_value() {
        assert!(matches!(perr("(define (f x) y)"), ParseError::UnboundVariable(v) if v == "y"));
        assert!(matches!(
            perr("(define (f x) x) (define (g y) f)"),
            ParseError::ProcAsValue(v) if v == "f"
        ));
    }

    #[test]
    fn arity_errors() {
        assert!(matches!(
            perr("(define (f x) x) (define (g y) (f y y))"),
            ParseError::ProcArity { expected: 1, got: 2, .. }
        ));
        assert!(matches!(
            perr("(define (g y) (car y y))"),
            ParseError::PrimArity { expected: 1, got: 2, .. }
        ));
        assert!(matches!(perr("(define (g y) ((lambda (v) v) y y))"), ParseError::AppArity(_)));
    }

    #[test]
    fn variadic_lowering() {
        let prog = p("(define (f a b c) (+ a b c 1))");
        // (+ (+ (+ a b) c) 1)
        let Expr::Prim(_, Prim::Add, args) = &prog.defs[0].body else {
            panic!("expected +");
        };
        assert!(matches!(&args[0], Expr::Prim(_, Prim::Add, _)));
        let prog = p("(define (f a) (- a))");
        let Expr::Prim(_, Prim::Sub, args) = &prog.defs[0].body else {
            panic!("expected -");
        };
        assert!(matches!(&args[0], Expr::Const(_, Constant::Int(0))));
    }

    #[test]
    fn list_sugar() {
        let prog = p("(define (f a) (list a 2))");
        let Expr::Prim(_, Prim::Cons, args) = &prog.defs[0].body else {
            panic!("expected cons");
        };
        assert!(matches!(&args[1], Expr::Prim(_, Prim::Cons, _)));
    }

    #[test]
    fn quote_data() {
        let prog = p("(define (f) '(a (1 2) #t))");
        let Expr::Const(_, k) = &prog.defs[0].body else {
            panic!("expected const");
        };
        assert_eq!(k.to_sexpr().to_string(), "(a (1 2) #t)");
    }

    #[test]
    fn let_multi_bindings_nest() {
        let prog = p("(define (f x) (let ((a (car x)) (b a)) (cons a b)))");
        let Expr::Let(_, v1, _, body) = &prog.defs[0].body else {
            panic!("expected let");
        };
        assert_eq!(&**v1, "a");
        assert!(matches!(&**body, Expr::Let(_, v2, _, _) if &**v2 == "b"));
    }

    #[test]
    fn malformed_forms() {
        assert!(matches!(perr("(define f 1)"), ParseError::BadDefinition(_)));
        assert!(matches!(perr("(define (f x) (if x 1))"), ParseError::BadForm { form: "if", .. }));
        assert!(matches!(
            perr("(define (f x) (lambda (a b) a))"),
            ParseError::BadForm { form: "lambda", .. }
        ));
        assert!(matches!(
            perr("(define (f x) (let () x))"),
            ParseError::BadForm { form: "let", .. }
        ));
        assert!(matches!(perr(""), ParseError::EmptyProgram));
        assert!(matches!(
            perr("(define (f x) x) (define (f y) y)"),
            ParseError::DuplicateDefinition(_)
        ));
        assert!(matches!(perr("(define (f %x) %x)"), ParseError::ReservedIdentifier(_)));
        assert!(matches!(perr("(define (f x x) x)"), ParseError::BadDefinition(_)));
    }

    #[test]
    fn empty_application_is_error() {
        assert!(matches!(perr("(define (f x) ())"), ParseError::BadDatum(_)));
    }

    #[test]
    fn errors_carry_form_positions() {
        // The bad form is the second top-level definition, on line 2.
        let e = parse_source("(define (f x) x)\n  (define (g y) z)").expect_err("unbound");
        let ParseError::At { line, col, cause } = e else {
            panic!("expected positioned error, got {e:?}");
        };
        assert_eq!((line, col), (2, 3));
        assert!(matches!(*cause, ParseError::UnboundVariable(ref v) if v == "z"));
        // Rendered message leads with the position.
        let e = parse_source("(define (f x) x)\n(define (g y) z)").expect_err("unbound");
        assert!(e.to_string().starts_with("2:1: "), "{e}");
    }

    #[test]
    fn reader_errors_surface_with_positions() {
        let e = parse_source("(define (f x)\n  (car x").expect_err("truncated");
        let ParseError::Read(re) = e else {
            panic!("expected reader error, got {e:?}");
        };
        assert_eq!(re.pos.line, 2);
    }

    #[test]
    fn hostile_nesting_is_rejected_by_reader_limits() {
        let deep = format!("(define (f x) {}", "(".repeat(100_000));
        assert!(matches!(
            parse_source(&deep),
            Err(ParseError::Read(e)) if matches!(e.kind, pe_sexpr::ReadErrorKind::TooDeep { .. })
        ));
    }
}
