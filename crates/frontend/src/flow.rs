//! The "simple equational flow analysis" of §4.2 — a monovariant 0CFA
//! over the desugared tail form.
//!
//! The analysis computes, for every variable and every expression, which
//! lambda abstractions its value may be a closure of, and which `cons`
//! sites its value may be a pair of.  The specializer uses it to
//!
//! * restrict the set of lambdas The Trick must dispatch over when a
//!   dynamic closure is applied, and
//! * (via [`crate::gen_analysis`]) detect self-embedding closures and
//!   pairs that would make specialization diverge (§4.5).
//!
//! Abstract values track closure labels and cons-site labels precisely;
//! all other data collapses to a `base` flag.  Returned values merge in a
//! single global pool (`RET`) that feeds every context-lambda parameter —
//! the paper calls for exactly this kind of cheap equational analysis.

use crate::dast::{DProgram, LamId, SimpleExpr, TailExpr, VarId};
use crate::Prim;
use std::collections::BTreeSet;

/// A set of lambda labels — the dispatch candidates for The Trick.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LamSet(pub BTreeSet<LamId>);

impl LamSet {
    /// The empty set.
    pub fn new() -> LamSet {
        LamSet::default()
    }

    /// Set union.
    pub fn union(&self, other: &LamSet) -> LamSet {
        LamSet(self.0.union(&other.0).copied().collect())
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = LamId> + '_ {
        self.0.iter().copied()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no lambda can flow here.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, l: LamId) -> bool {
        self.0.contains(&l)
    }
}

impl FromIterator<LamId> for LamSet {
    fn from_iter<T: IntoIterator<Item = LamId>>(iter: T) -> Self {
        LamSet(iter.into_iter().collect())
    }
}

/// An abstract value: which closures / pairs / other data may flow here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsVal {
    /// Lambdas this value may be a closure of.
    pub lams: BTreeSet<LamId>,
    /// `cons` sites (by expression label `DLabel.0`) this value may be a
    /// pair of.
    pub pairs: BTreeSet<u32>,
    /// May be quoted (closure-free) structured data.
    pub quoted: bool,
    /// May be first-order base data (numbers, booleans, entry input, …).
    pub base: bool,
}

impl AbsVal {
    fn base() -> AbsVal {
        AbsVal { base: true, ..AbsVal::default() }
    }

    fn join(&mut self, other: &AbsVal) -> bool {
        let n0 = self.lams.len();
        let p0 = self.pairs.len();
        let q0 = self.quoted;
        let b0 = self.base;
        self.lams.extend(other.lams.iter().copied());
        self.pairs.extend(other.pairs.iter().copied());
        self.quoted |= other.quoted;
        self.base |= other.base;
        self.lams.len() != n0 || self.pairs.len() != p0 || self.quoted != q0 || self.base != b0
    }
}

/// The result of the flow analysis.
#[derive(Debug)]
pub struct FlowAnalysis {
    vars: Vec<AbsVal>,
    /// Per `cons` site: the join of both component values.
    cons_components: Vec<(u32, AbsVal)>,
    /// The global return pool.
    ret: AbsVal,
    /// Lambdas that may occur in context position of a `PushApp` —
    /// everything a dynamic context stack may contain.
    context_lams: LamSet,
}

impl FlowAnalysis {
    /// Runs the analysis to fixpoint.
    pub fn analyze(p: &DProgram) -> FlowAnalysis {
        let nvars = p.var_names.len();
        let mut st = Solver {
            p,
            vars: vec![AbsVal::default(); nvars],
            cons: Vec::new(),
            ret: AbsVal::default(),
            changed: true,
        };
        // Collect cons sites up front so indices are stable.
        for d in &p.defs {
            collect_cons_sites_tail(&d.body, &mut st.cons);
        }
        for l in &p.lambdas {
            collect_cons_sites_tail(&l.body, &mut st.cons);
        }
        // Entry assumption: any procedure may be called from outside with
        // first-order data.
        for d in &p.defs {
            for &v in &d.params {
                st.vars[v.0 as usize].join(&AbsVal::base());
            }
        }
        while st.changed {
            st.changed = false;
            for d in &p.defs {
                st.tail(&d.body);
            }
            for l in &p.lambdas {
                st.tail(&l.body);
            }
        }
        // Context lambdas: those that may flow into ctx position.
        let mut context_lams = BTreeSet::new();
        for d in &p.defs {
            collect_context_lams(&st, &d.body, &mut context_lams);
        }
        for l in &p.lambdas {
            collect_context_lams(&st, &l.body, &mut context_lams);
        }
        FlowAnalysis {
            vars: st.vars,
            cons_components: st.cons,
            ret: st.ret,
            context_lams: LamSet(context_lams),
        }
    }

    /// The abstract value of a variable.
    pub fn var(&self, v: VarId) -> &AbsVal {
        &self.vars[v.0 as usize]
    }

    /// The abstract value of a simple expression.
    pub fn value_of(&self, se: &SimpleExpr) -> AbsVal {
        eval_simple(&self.vars, &self.cons_components, se)
    }

    /// The lambdas a simple expression may evaluate to — The Trick's
    /// dispatch candidates for this expression.
    pub fn lambdas_of(&self, se: &SimpleExpr) -> LamSet {
        LamSet(self.value_of(se).lams.clone())
    }

    /// The lambdas a variable may hold.
    pub fn var_lambdas(&self, v: VarId) -> LamSet {
        LamSet(self.var(v).lams.clone())
    }

    /// Lambdas that may serve as evaluation contexts (may be pushed on
    /// the context stack) — the candidate set for a fully dynamic stack.
    pub fn context_lambdas(&self) -> &LamSet {
        &self.context_lams
    }

    /// Lambdas that may be returned through the global return pool.
    pub fn returned_lambdas(&self) -> LamSet {
        LamSet(self.ret.lams.clone())
    }

    /// The joined components of a `cons` site, if the site exists.
    pub fn cons_components(&self, site: u32) -> Option<&AbsVal> {
        self.cons_components.iter().find(|(s, _)| *s == site).map(|(_, v)| v)
    }

    /// All lambdas reachable *inside* an abstract value: its own closure
    /// set plus, transitively, anything stored in pairs it may contain
    /// and anything captured by closures it may be.
    pub fn deep_lambdas(&self, p: &DProgram, v: &AbsVal) -> LamSet {
        let mut seen_lams: BTreeSet<LamId> = BTreeSet::new();
        let mut seen_pairs: BTreeSet<u32> = BTreeSet::new();
        let mut lam_work: Vec<LamId> = v.lams.iter().copied().collect();
        let mut pair_work: Vec<u32> = v.pairs.iter().copied().collect();
        while !lam_work.is_empty() || !pair_work.is_empty() {
            while let Some(site) = pair_work.pop() {
                if !seen_pairs.insert(site) {
                    continue;
                }
                if let Some(c) = self.cons_components(site) {
                    lam_work.extend(c.lams.iter().copied());
                    pair_work.extend(c.pairs.iter().copied());
                }
            }
            while let Some(lam) = lam_work.pop() {
                if !seen_lams.insert(lam) {
                    continue;
                }
                for &fv in &p.lambda(lam).freevars {
                    let fvv = self.var(fv);
                    lam_work.extend(fvv.lams.iter().copied());
                    pair_work.extend(fvv.pairs.iter().copied());
                }
            }
        }
        LamSet(seen_lams)
    }

    /// All cons sites reachable inside an abstract value, transitively
    /// through pair components and closure captures.
    pub fn deep_pairs(&self, p: &DProgram, v: &AbsVal) -> BTreeSet<u32> {
        let mut seen_lams: BTreeSet<LamId> = BTreeSet::new();
        let mut seen_pairs: BTreeSet<u32> = BTreeSet::new();
        let mut lam_work: Vec<LamId> = v.lams.iter().copied().collect();
        let mut pair_work: Vec<u32> = v.pairs.iter().copied().collect();
        while !lam_work.is_empty() || !pair_work.is_empty() {
            while let Some(site) = pair_work.pop() {
                if !seen_pairs.insert(site) {
                    continue;
                }
                if let Some(c) = self.cons_components(site) {
                    lam_work.extend(c.lams.iter().copied());
                    pair_work.extend(c.pairs.iter().copied());
                }
            }
            while let Some(lam) = lam_work.pop() {
                if !seen_lams.insert(lam) {
                    continue;
                }
                for &fv in &p.lambda(lam).freevars {
                    let fvv = self.var(fv);
                    lam_work.extend(fvv.lams.iter().copied());
                    pair_work.extend(fvv.pairs.iter().copied());
                }
            }
        }
        seen_pairs
    }
}

struct Solver<'p> {
    p: &'p DProgram,
    vars: Vec<AbsVal>,
    cons: Vec<(u32, AbsVal)>,
    ret: AbsVal,
    changed: bool,
}

fn collect_cons_sites_tail(te: &TailExpr, out: &mut Vec<(u32, AbsVal)>) {
    match te {
        TailExpr::Simple(se) => collect_cons_sites_simple(se, out),
        TailExpr::If(_, c, t, e) => {
            collect_cons_sites_simple(c, out);
            collect_cons_sites_tail(t, out);
            collect_cons_sites_tail(e, out);
        }
        TailExpr::CallProc(_, _, args) => {
            for a in args {
                collect_cons_sites_simple(a, out);
            }
        }
        TailExpr::PushApp(_, ctx, body) => {
            collect_cons_sites_simple(ctx, out);
            collect_cons_sites_tail(body, out);
        }
    }
}

fn collect_cons_sites_simple(se: &SimpleExpr, out: &mut Vec<(u32, AbsVal)>) {
    if let SimpleExpr::Prim(l, op, args) = se {
        if *op == Prim::Cons {
            out.push((l.0, AbsVal::default()));
        }
        for a in args {
            collect_cons_sites_simple(a, out);
        }
    }
}

fn eval_simple(vars: &[AbsVal], cons: &[(u32, AbsVal)], se: &SimpleExpr) -> AbsVal {
    match se {
        SimpleExpr::Var(_, v) => vars[v.0 as usize].clone(),
        SimpleExpr::Const(_, k) => {
            let mut a = AbsVal::base();
            if matches!(k, crate::Constant::Pair(_, _)) {
                a.quoted = true;
            }
            a
        }
        SimpleExpr::Lambda(_, id) => AbsVal { lams: BTreeSet::from([*id]), ..AbsVal::default() },
        SimpleExpr::Prim(l, op, args) => {
            let argvals: Vec<AbsVal> = args.iter().map(|a| eval_simple(vars, cons, a)).collect();
            match op {
                Prim::Cons => AbsVal { pairs: BTreeSet::from([l.0]), ..AbsVal::default() },
                Prim::Car | Prim::Cdr => {
                    let mut out = AbsVal::default();
                    let x = &argvals[0];
                    // Components of quoted data are quoted data; base
                    // data is closure-free so its components are base.
                    out.quoted |= x.quoted;
                    out.base |= x.base || x.quoted;
                    for site in &x.pairs {
                        if let Some((_, c)) = cons.iter().find(|(s, _)| s == site) {
                            let c = c.clone();
                            out.join(&c);
                        }
                    }
                    out
                }
                _ => AbsVal::base(),
            }
        }
    }
}

impl Solver<'_> {
    fn value_of(&self, se: &SimpleExpr) -> AbsVal {
        eval_simple(&self.vars, &self.cons, se)
    }

    fn flow_into_var(&mut self, v: VarId, val: &AbsVal) {
        if self.vars[v.0 as usize].join(val) {
            self.changed = true;
        }
    }

    /// Records component flows for every `cons` nested in `se`.
    fn record_cons_flows(&mut self, se: &SimpleExpr) {
        match se {
            SimpleExpr::Prim(l, op, args) => {
                for a in args {
                    self.record_cons_flows(a);
                }
                if *op == Prim::Cons {
                    let a = self.value_of(&args[0]);
                    let d = self.value_of(&args[1]);
                    let entry = self
                        .cons
                        .iter_mut()
                        .find(|(s, _)| *s == l.0)
                        .expect("cons site collected");
                    let mut ch = entry.1.join(&a);
                    ch |= entry.1.join(&d);
                    if ch {
                        self.changed = true;
                    }
                }
            }
            SimpleExpr::Var(_, _) | SimpleExpr::Const(_, _) | SimpleExpr::Lambda(_, _) => {}
        }
    }

    fn tail(&mut self, te: &TailExpr) {
        match te {
            TailExpr::Simple(se) => {
                self.record_cons_flows(se);
                let v = self.value_of(se);
                if self.ret.join(&v) {
                    self.changed = true;
                }
            }
            TailExpr::If(_, c, t, e) => {
                self.record_cons_flows(c);
                self.tail(t);
                self.tail(e);
            }
            TailExpr::CallProc(_, pid, args) => {
                let params = self.p.proc(*pid).params.clone();
                for (param, arg) in params.iter().zip(args) {
                    self.record_cons_flows(arg);
                    let v = self.value_of(arg);
                    self.flow_into_var(*param, &v);
                }
            }
            TailExpr::PushApp(_, ctx, body) => {
                self.record_cons_flows(ctx);
                // Whatever the body returns is delivered to the pushed
                // context's parameter; with the global return pool that
                // is RET.
                let ctxv = self.value_of(ctx);
                let ret = self.ret.clone();
                for lam in ctxv.lams.iter().copied().collect::<Vec<_>>() {
                    let param = self.p.lambda(lam).param;
                    self.flow_into_var(param, &ret);
                }
                self.tail(body);
            }
        }
    }
}

fn collect_context_lams(st: &Solver<'_>, te: &TailExpr, out: &mut BTreeSet<LamId>) {
    match te {
        TailExpr::Simple(_) | TailExpr::CallProc(_, _, _) => {}
        TailExpr::If(_, _, t, e) => {
            collect_context_lams(st, t, out);
            collect_context_lams(st, e, out);
        }
        TailExpr::PushApp(_, ctx, body) => {
            out.extend(st.value_of(ctx).lams.iter().copied());
            collect_context_lams(st, body, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desugar::desugar;
    use crate::parse::parse_source;

    fn analyze(src: &str) -> (DProgram, FlowAnalysis) {
        let p = desugar(&parse_source(src).unwrap()).unwrap();
        let f = FlowAnalysis::analyze(&p);
        (p, f)
    }

    #[test]
    fn cps_append_continuation_candidates() {
        let (p, f) = analyze(
            "(define (append x y) (cps-append x y (lambda (v) v)))
             (define (cps-append x y c)
               (if (null? x) (c y)
                   (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
        );
        // `c` can be the identity lambda or the inner continuation: 2
        // candidates, exactly the paper's dispatch over labels 10 and 24.
        let cps = p.proc_id("cps-append").unwrap();
        let c = p.proc(cps).params[2];
        let cands = f.var_lambdas(c);
        assert_eq!(cands.len(), 2, "candidates: {cands:?}");
    }

    #[test]
    fn first_order_program_has_no_closure_params() {
        let (p, f) = analyze(
            "(define (tak x y z)
               (if (not (< y x)) z
                   (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))",
        );
        let tak = p.proc_id("tak").unwrap();
        for &param in &p.proc(tak).params {
            assert!(f.var_lambdas(param).is_empty());
        }
        // But desugaring introduced context lambdas.
        assert!(!f.context_lambdas().is_empty());
    }

    #[test]
    fn closures_through_pairs_are_tracked() {
        let (p, f) = analyze(
            "(define (mk x) (cons (lambda (v) x) '()))
             (define (use p a) ((car p) a))
             (define (main a) (use (mk a) a))",
        );
        let use_ = p.proc_id("use").unwrap();
        let pp = p.proc(use_).params[0];
        // p itself is a pair, not a closure…
        assert!(f.var_lambdas(pp).is_empty());
        // …but (car p) can be the stored lambda.
        let deep = f.deep_lambdas(&p, f.var(pp));
        assert_eq!(deep.len(), 1);
    }

    #[test]
    fn quoted_data_never_contains_closures() {
        let (p, f) = analyze("(define (f) (car '(a b)))");
        let _ = p;
        assert!(f.returned_lambdas().is_empty());
    }

    #[test]
    fn deep_pairs_terminates_on_cycles() {
        // A self-embedding cons: (cons x acc) where acc comes back around.
        let (p, f) =
            analyze("(define (rev x acc) (if (null? x) acc (rev (cdr x) (cons (car x) acc))))");
        let rev = p.proc_id("rev").unwrap();
        let acc = p.proc(rev).params[1];
        let deep = f.deep_pairs(&p, f.var(acc));
        assert_eq!(deep.len(), 1, "one cons site, cyclically reachable");
    }

    #[test]
    fn lamset_operations() {
        let a: LamSet = [LamId(1), LamId(2)].into_iter().collect();
        let b: LamSet = [LamId(2), LamId(3)].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(LamId(1)) && u.contains(LamId(3)));
        assert!(!LamSet::new().contains(LamId(0)));
    }
}
