//! The desugared tail form of the subject language (paper Fig. 5).
//!
//! ```text
//! E  ::= SE | (if SE E E) | (P SE*) | (SE E)
//! SE ::= V | K | (O SE*) | (lambda (V) E)
//! ```
//!
//! Serious (potentially non-terminating) computation only appears in tail
//! position; everything in a non-tail position is a *simple expression*
//! evaluating directly to a value.  The `(SE E)` form pushes the closure
//! of `SE` as an *evaluation context* and continues with `E` — this is
//! how the tail-recursive interpreter (Fig. 6) and the specializer
//! (Fig. 7) represent control without CPS.
//!
//! The desugarer alpha-renames every variable to a globally unique
//! [`VarId`] and hoists every lambda into a program-level table indexed
//! by [`LamId`] — the label/closure-body association `φ` of the paper.

use crate::ast::{Constant, Prim};
use pe_sexpr::Sexpr;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A globally unique variable after alpha renaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// A lambda abstraction's identity — the label `ℓ` that closure
/// conversion stores in closure records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LamId(pub u32);

/// A top-level procedure, by index into [`DProgram::defs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// A unique label on every desugared expression (distinct numbering from
/// the surface labels; the desugarer invents expressions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DLabel(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for LamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// A simple expression `SE` — evaluates to a value without calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleExpr {
    /// A variable reference.
    Var(DLabel, VarId),
    /// A constant.
    Const(DLabel, Constant),
    /// A primitive application with simple arguments.
    Prim(DLabel, Prim, Vec<SimpleExpr>),
    /// A lambda abstraction, by table index; evaluates to a closure.
    Lambda(DLabel, LamId),
}

impl SimpleExpr {
    /// The label of this expression.
    pub fn label(&self) -> DLabel {
        match self {
            SimpleExpr::Var(l, _)
            | SimpleExpr::Const(l, _)
            | SimpleExpr::Prim(l, _, _)
            | SimpleExpr::Lambda(l, _) => *l,
        }
    }
}

/// A serious (tail) expression `E`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailExpr {
    /// Return the value of a simple expression to the current context.
    Simple(SimpleExpr),
    /// `(if SE E E)` — the condition is always simple.
    If(DLabel, SimpleExpr, Box<TailExpr>, Box<TailExpr>),
    /// `(P SE*)` — tail call of a top-level procedure.
    CallProc(DLabel, ProcId, Vec<SimpleExpr>),
    /// `(SE E)` — push the closure of `SE` as an evaluation context and
    /// continue with `E`; when `E` delivers a value the context is
    /// applied to it.
    PushApp(DLabel, SimpleExpr, Box<TailExpr>),
}

impl TailExpr {
    /// The label of this expression.
    pub fn label(&self) -> DLabel {
        match self {
            TailExpr::Simple(se) => se.label(),
            TailExpr::If(l, _, _, _) | TailExpr::CallProc(l, _, _) | TailExpr::PushApp(l, _, _) => {
                *l
            }
        }
    }
}

/// A hoisted lambda definition: `φ(ℓ) = (lambda (V) E)` plus the fixed
/// free-variable order used by closure conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LambdaDef {
    /// The bound variable.
    pub param: VarId,
    /// Free variables in ascending [`VarId`] order — the paper's
    /// "arbitrary but fixed order" for `freevars(ℓ)`.
    pub freevars: Vec<VarId>,
    /// The body, a serious expression.
    pub body: TailExpr,
}

/// A desugared top-level procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DDef {
    /// The procedure name (unchanged from the surface program).
    pub name: Arc<str>,
    /// Alpha-renamed parameters.
    pub params: Vec<VarId>,
    /// The body in tail form.
    pub body: TailExpr,
}

/// A whole desugared program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DProgram {
    /// Top-level procedures.
    pub defs: Vec<DDef>,
    /// The lambda table `φ`, indexed by [`LamId`].
    pub lambdas: Vec<LambdaDef>,
    /// Original source names for every [`VarId`] (generated temporaries
    /// are named `%tN`).
    pub var_names: Vec<Arc<str>>,
}

impl DProgram {
    /// Looks up a lambda definition.
    pub fn lambda(&self, id: LamId) -> &LambdaDef {
        &self.lambdas[id.0 as usize]
    }

    /// Looks up a procedure definition.
    pub fn proc(&self, id: ProcId) -> &DDef {
        &self.defs[id.0 as usize]
    }

    /// Finds a procedure by name.
    pub fn proc_id(&self, name: &str) -> Option<ProcId> {
        self.defs
            .iter()
            .position(|d| &*d.name == name)
            .map(|i| ProcId(i as u32))
    }

    /// The display name of a variable: original name, suffixed with the
    /// id to keep alpha-renamed homonyms distinct.
    pub fn var_name(&self, v: VarId) -> String {
        format!("{}%{}", self.var_names[v.0 as usize], v.0)
    }

    /// Unparses a simple expression for display and golden tests.
    pub fn simple_to_sexpr(&self, se: &SimpleExpr) -> Sexpr {
        match se {
            SimpleExpr::Var(_, v) => Sexpr::sym_of(&self.var_name(*v)),
            SimpleExpr::Const(_, k) => match k {
                Constant::Int(n) => Sexpr::Int(*n),
                Constant::Bool(b) => Sexpr::Bool(*b),
                Constant::Char(c) => Sexpr::Char(*c),
                Constant::Str(s) => Sexpr::Str(s.clone()),
                k => Sexpr::list_of([Sexpr::sym_of("quote"), k.to_sexpr()]),
            },
            SimpleExpr::Prim(_, op, args) => {
                let mut xs = vec![Sexpr::sym_of(op.name())];
                xs.extend(args.iter().map(|a| self.simple_to_sexpr(a)));
                Sexpr::List(xs)
            }
            SimpleExpr::Lambda(_, id) => {
                let lam = self.lambda(*id);
                Sexpr::list_of([
                    Sexpr::sym_of("lambda"),
                    Sexpr::list_of([Sexpr::sym_of(&self.var_name(lam.param))]),
                    self.tail_to_sexpr(&lam.body),
                ])
            }
        }
    }

    /// Unparses a tail expression for display and golden tests.
    pub fn tail_to_sexpr(&self, te: &TailExpr) -> Sexpr {
        match te {
            TailExpr::Simple(se) => self.simple_to_sexpr(se),
            TailExpr::If(_, c, t, e) => Sexpr::list_of([
                Sexpr::sym_of("if"),
                self.simple_to_sexpr(c),
                self.tail_to_sexpr(t),
                self.tail_to_sexpr(e),
            ]),
            TailExpr::CallProc(_, p, args) => {
                let mut xs = vec![Sexpr::Sym(self.proc(*p).name.clone())];
                xs.extend(args.iter().map(|a| self.simple_to_sexpr(a)));
                Sexpr::List(xs)
            }
            TailExpr::PushApp(_, ctx, body) => {
                Sexpr::list_of([self.simple_to_sexpr(ctx), self.tail_to_sexpr(body)])
            }
        }
    }

    /// Renders the whole program as concrete syntax.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for d in &self.defs {
            let mut head = vec![Sexpr::Sym(d.name.clone())];
            head.extend(d.params.iter().map(|p| Sexpr::sym_of(&self.var_name(*p))));
            let form = Sexpr::list_of([
                Sexpr::sym_of("define"),
                Sexpr::List(head),
                self.tail_to_sexpr(&d.body),
            ]);
            out.push_str(&pe_sexpr::pretty(&form));
            out.push('\n');
        }
        out
    }
}

/// Free variables of a simple expression, with lambda leaves contributing
/// their (already computed) free-variable sets.
pub fn free_simple(p: &DProgram, se: &SimpleExpr, out: &mut BTreeSet<VarId>) {
    match se {
        SimpleExpr::Var(_, v) => {
            out.insert(*v);
        }
        SimpleExpr::Const(_, _) => {}
        SimpleExpr::Prim(_, _, args) => {
            for a in args {
                free_simple(p, a, out);
            }
        }
        SimpleExpr::Lambda(_, id) => out.extend(p.lambda(*id).freevars.iter().copied()),
    }
}

/// Free variables of a tail expression.
pub fn free_tail(p: &DProgram, te: &TailExpr, out: &mut BTreeSet<VarId>) {
    match te {
        TailExpr::Simple(se) => free_simple(p, se, out),
        TailExpr::If(_, c, t, e) => {
            free_simple(p, c, out);
            free_tail(p, t, out);
            free_tail(p, e, out);
        }
        TailExpr::CallProc(_, _, args) => {
            for a in args {
                free_simple(p, a, out);
            }
        }
        TailExpr::PushApp(_, ctx, body) => {
            free_simple(p, ctx, out);
            free_tail(p, body, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::desugar::desugar;
    use crate::parse::parse_source;

    #[test]
    fn freevars_are_sorted_and_deduped() {
        let p = parse_source(
            "(define (f x y) ((lambda (z) (cons x (cons y (cons z (cons x '()))))) y))",
        )
        .unwrap();
        let d = desugar(&p).unwrap();
        let lam = &d.lambdas[0];
        assert_eq!(lam.freevars.len(), 2);
        assert!(lam.freevars.windows(2).all(|w| w[0] < w[1]));
    }
}
