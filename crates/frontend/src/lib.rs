//! The frontend of the realistic-pe compiler suite.
//!
//! Implements the subject language of Sperber & Thiemann's *Realistic
//! Compilation by Partial Evaluation* (PLDI 1996):
//!
//! * [`ast`] — the surface syntax of Fig. 2 (higher-order recursion
//!   equations over a purely functional Scheme subset);
//! * [`parse`] — the scope- and arity-checking parser;
//! * [`dast`] — the desugared simple/serious tail form of Fig. 5;
//! * [`desugar`] — the desugaring phase of §4.3;
//! * [`flow`] — the "simple equational flow analysis" of §4.2 used to
//!   restrict The Trick's dispatch, a monovariant 0CFA;
//! * [`gen_analysis`] — the offline generalization analysis of §4.5
//!   marking self-embedding lambdas and cons sites.

pub mod ast;
pub mod dast;
pub mod desugar;
pub mod flow;
pub mod gen_analysis;
pub mod parse;

pub use ast::{Constant, Definition, Expr, Label, Prim, Program};
pub use dast::{DDef, DLabel, DProgram, LamId, LambdaDef, ProcId, SimpleExpr, TailExpr, VarId};
pub use desugar::{desugar, DesugarError};
pub use flow::{FlowAnalysis, LamSet};
pub use gen_analysis::GenAnalysis;
pub use parse::{
    parse_program, parse_program_positioned, parse_source, parse_source_with, ParseError,
};
