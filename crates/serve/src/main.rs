//! The `pe-serve` gate: a deterministic, CI-sized proof that the
//! compile service is sound under concurrency.
//!
//! One fixed request mix (the Fig. 8 suite with duplicates plus
//! seed-pinned pe-siege programs) is served three ways:
//!
//! 1. sequentially on a fresh server — the reference;
//! 2. cold on a fresh multi-threaded server — must be byte-identical
//!    to the reference, response by response;
//! 3. again on the *same* server — must be answered entirely from the
//!    artifact cache, again byte-identical.
//!
//! Plus an eviction pass on a capacity-starved server, which must
//! warm-start rather than recompile from scratch and still produce the
//! same bytes.  Any divergence exits non-zero with the offending
//! request named.  Cache accounting (`lookups == hits + misses`) is
//! asserted suite-wide.

use pe_serve::{CompileRequest, Outcome, Server, ServerConfig};
use pe_trace::{JsonlSink, SharedSink};
use std::process::ExitCode;

/// The fixed gate mix: every suite benchmark, each requested twice
/// (in-run duplicate → in-run hit), plus deterministic generated
/// programs from the pe-siege generator.
fn gate_mix() -> Vec<CompileRequest> {
    let mut reqs = Vec::new();
    for b in realistic_pe::SUITE {
        reqs.push(CompileRequest::new(b.name, b.source, b.entry));
    }
    let mut rng = pe_siege::rng::Rng::new(0xC0FFEE);
    for i in 0..6 {
        let case = pe_siege::gen::gen_case(&mut rng);
        reqs.push(CompileRequest::new(
            &format!("gen-{i}"),
            &case.source,
            &case.entry,
        ));
    }
    // Duplicates, shuffled to land on different workers than their
    // originals.
    let dups: Vec<CompileRequest> = reqs.iter().rev().cloned().collect();
    reqs.extend(dups);
    reqs
}

/// Compares two response streams byte-for-byte; returns the first
/// divergence.
fn diff(
    reference: &[pe_serve::CompileResponse],
    candidate: &[pe_serve::CompileResponse],
) -> Option<String> {
    if reference.len() != candidate.len() {
        return Some(format!(
            "response count diverged: {} vs {}",
            reference.len(),
            candidate.len()
        ));
    }
    for (r, c) in reference.iter().zip(candidate) {
        if r.fingerprint != c.fingerprint {
            return Some(format!("{}: fingerprint diverged", r.name));
        }
        match (r.residual_source(), c.residual_source()) {
            (Some(a), Some(b)) if a == b => {}
            (None, None) => {}
            _ => return Some(format!("{}: residual bytes diverged", r.name)),
        }
    }
    None
}

fn run_gate(threads: usize) -> Result<String, String> {
    let mix = gate_mix();
    let sequential = Server::new(ServerConfig { threads: 1, ..ServerConfig::default() });
    let reference = sequential.serve(&mix);
    let compiled = reference
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Compiled { .. }))
        .count();
    if compiled == 0 {
        return Err("gate mix compiled nothing".to_string());
    }

    let parallel = Server::new(ServerConfig { threads, ..ServerConfig::default() });
    let cold = parallel.serve(&mix);
    if let Some(d) = diff(&reference, &cold) {
        return Err(format!("parallel cold run diverged from sequential: {d}"));
    }
    let warm = parallel.serve(&mix);
    if let Some(d) = diff(&reference, &warm) {
        return Err(format!("warm re-serve diverged: {d}"));
    }
    let readable = mix.len() - reference.iter().filter(|r| r.fingerprint.is_none()).count();
    let warm_hits = warm.iter().filter(|r| r.is_hit()).count();
    if warm_hits != readable {
        return Err(format!(
            "warm re-serve expected {readable} cache hits, got {warm_hits}"
        ));
    }
    let stats = parallel.stats();
    if stats.lookups != stats.hits + stats.misses {
        return Err(format!("cache accounting broken: {stats:?}"));
    }
    // Latency observability: the cold+warm runs must have populated the
    // outcome histograms, and serving from the cache must be faster
    // than a cold compile even at histogram (power-of-two bucket)
    // resolution.
    let m = parallel.metrics_snapshot();
    if m.hit.is_empty() || m.cold_miss.is_empty() {
        return Err(format!(
            "latency histograms unpopulated: {} hits, {} cold misses",
            m.hit.count(),
            m.cold_miss.count()
        ));
    }
    if m.hit.p50() >= m.cold_miss.p50() {
        return Err(format!(
            "latency ordering violated: p50 hit {}ns >= p50 cold miss {}ns",
            m.hit.p50(),
            m.cold_miss.p50()
        ));
    }
    if m.queue_wait.count() == 0 || m.in_flight_peak == 0 {
        return Err("queue/in-flight gauges never moved".to_string());
    }

    // Eviction pressure: a server that can hold only two artifacts must
    // warm-start evicted keys and still produce identical bytes.
    let starved = Server::new(ServerConfig { threads, capacity: 2, ..ServerConfig::default() });
    starved.serve(&mix);
    let again = starved.serve(&mix);
    if let Some(d) = diff(&reference, &again) {
        return Err(format!("capacity-2 re-serve diverged: {d}"));
    }
    let s = starved.stats();
    if s.evictions == 0 || s.warm_starts == 0 {
        return Err(format!(
            "capacity-2 server should evict and warm-start, got {s:?}"
        ));
    }

    Ok(format!(
        "serve gate: OK ({} requests x4 runs, {threads} threads; \
         parallel+warm byte-identical to sequential; \
         {}/{} warm hits; p50 hit {:.3}ms < p50 cold {:.3}ms; \
         starved server: {} evictions, {} warm starts)",
        mix.len(),
        warm_hits,
        readable,
        m.hit.p50() as f64 / 1e6,
        m.cold_miss.p50() as f64 / 1e6,
        s.evictions,
        s.warm_starts,
    ))
}

/// `--stats`: serve the gate mix cold then warm, publish the metrics
/// snapshot through a validated JSONL stream, and print the latency
/// table.
fn run_stats(threads: usize) -> Result<String, String> {
    let mix = gate_mix();
    let server = Server::new(ServerConfig { threads, ..ServerConfig::default() });
    let shared = SharedSink::new(JsonlSink::new(Vec::new()));
    server.serve_with(&mix, &shared);
    server.serve_with(&mix, &shared);
    server.publish_metrics(&shared);
    let bytes = shared
        .try_unwrap()
        .ok_or("trace sink still shared")?
        .finish()
        .map_err(|e| format!("jsonl flush failed: {e}"))?;
    let stream = String::from_utf8(bytes).map_err(|e| format!("jsonl not utf-8: {e}"))?;
    let summary = pe_trace::jsonl::validate(&stream)
        .map_err(|e| format!("metrics stream failed schema validation: {e}"))?;
    let snap = server.metrics_snapshot();
    Ok(format!(
        "serve stats ({} requests x2 runs, {threads} threads; \
         {} JSONL events, schema-valid):\n{}",
        mix.len(),
        summary.lines,
        snap.render(),
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 4;
    let mut gate = false;
    let mut stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate" => gate = true,
            "--stats" => stats = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or(4);
            }
            other => {
                eprintln!("pe-serve: unknown argument `{other}`");
                eprintln!("usage: pe-serve --gate|--stats [--threads N]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if !gate && !stats {
        eprintln!("usage: pe-serve --gate|--stats [--threads N]");
        return ExitCode::FAILURE;
    }
    let result = if gate { run_gate(threads) } else { run_stats(threads) };
    match result {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("serve {}: FAIL: {msg}", if gate { "gate" } else { "stats" });
            ExitCode::FAILURE
        }
    }
}
