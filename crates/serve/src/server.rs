//! The multi-tenant compile service.
//!
//! A [`Server`] owns one [`ResidualCache`] behind a mutex and answers
//! batches of [`CompileRequest`]s on a pool of scoped worker threads.
//! The division of labour keeps the lock cold: workers only hold it for
//! map operations (lookup, snapshot fetch, insert); parsing,
//! specialization, and the seven verification passes all run outside
//! it, in parallel across requests.  Concurrent misses on one key are
//! deduplicated in flight: the first worker compiles, later ones wait
//! on a condvar and collect the landed artifact — each request still
//! counts exactly one cache hit *or* miss.
//!
//! Isolation is per request: each request carries its own
//! [`CompileOptions`] whose [`Limits`] are clamped field-by-field
//! against the server ceiling before anything runs — a tenant can lower
//! its own budgets but never raise them past the service's.  Clamping
//! happens *before* fingerprinting, so the cache key always describes
//! the options that actually took effect.
//!
//! Observability: each worker records its request into a private
//! [`CollectingSink`] under a [`Phase::Serve`] span, then publishes the
//! whole balanced event group atomically through a [`SharedSink`] —
//! concurrent requests never interleave events (or JSONL bytes)
//! mid-request.

use crate::cache::{Artifact, CacheStats, ResidualCache};
use crate::fingerprint::{fingerprint, Fingerprint};
use pe_core::{CompileOptions, MemoSnapshot};
use pe_governor::Limits;
use pe_prof::{LatencyClass, MetricsRegistry};
use pe_trace::{CollectingSink, Counter, NullSink, Phase, SharedSink, Sink};
use realistic_pe::Pipeline;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Server-side configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads per [`Server::serve`] batch.
    pub threads: usize,
    /// Artifact-cache capacity (see [`ResidualCache::new`]).
    pub capacity: usize,
    /// Per-request resource ceiling; request limits are clamped to it.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { threads: 1, capacity: 256, limits: Limits::default() }
    }
}

/// One compile request.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Caller-chosen label, echoed in the response (not part of any
    /// cache key).
    pub name: String,
    /// Subject-language source text.
    pub source: String,
    /// Entry procedure.
    pub entry: String,
    /// Compiler configuration; `opts.limits` is clamped to the server
    /// ceiling.
    pub opts: CompileOptions,
}

impl CompileRequest {
    /// A request with default options.
    #[must_use]
    pub fn new(name: &str, source: &str, entry: &str) -> CompileRequest {
        CompileRequest {
            name: name.to_string(),
            source: source.to_string(),
            entry: entry.to_string(),
            opts: CompileOptions::default(),
        }
    }
}

/// How a request was answered.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Served from the artifact cache; no compilation ran.
    Hit(Artifact),
    /// Compiled (and verified) on this request.
    Compiled {
        /// The freshly produced artifact.
        artifact: Artifact,
        /// True when the specializer replayed from a warm memo
        /// snapshot rather than starting cold.
        warm_started: bool,
    },
    /// The request never produced an artifact.
    Rejected(String),
}

/// The response to one [`CompileRequest`], in request order.
#[derive(Debug, Clone)]
pub struct CompileResponse {
    /// The request's `name`.
    pub name: String,
    /// The content fingerprint, when the source was readable.
    pub fingerprint: Option<Fingerprint>,
    /// What happened.
    pub outcome: Outcome,
}

impl CompileResponse {
    /// The residual source text, if the request succeeded.
    #[must_use]
    pub fn residual_source(&self) -> Option<&str> {
        match &self.outcome {
            Outcome::Hit(a) | Outcome::Compiled { artifact: a, .. } => {
                Some(&a.residual_source)
            }
            Outcome::Rejected(_) => None,
        }
    }

    /// The artifact, if the request succeeded.
    #[must_use]
    pub fn artifact(&self) -> Option<&Artifact> {
        match &self.outcome {
            Outcome::Hit(a) | Outcome::Compiled { artifact: a, .. } => Some(a),
            Outcome::Rejected(_) => None,
        }
    }

    /// True when this response came straight from the artifact cache.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self.outcome, Outcome::Hit(_))
    }
}

/// Saturating nanoseconds since `t0`.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The latency bucket for an outcome; rejections are not latencies of
/// successful service and stay out of the histograms.
fn latency_class(outcome: &Outcome) -> Option<LatencyClass> {
    match outcome {
        Outcome::Hit(_) => Some(LatencyClass::Hit),
        Outcome::Compiled { warm_started: true, .. } => Some(LatencyClass::WarmMiss),
        Outcome::Compiled { warm_started: false, .. } => Some(LatencyClass::ColdMiss),
        Outcome::Rejected(_) => None,
    }
}

/// Clamps request limits to the server ceiling, field by field.
fn clamp_limits(req: &Limits, ceiling: &Limits) -> Limits {
    Limits {
        fuel: req.fuel.min(ceiling.fuel),
        max_call_depth: req.max_call_depth.min(ceiling.max_call_depth),
        max_syntax_depth: req.max_syntax_depth.min(ceiling.max_syntax_depth),
        max_unfold_depth: req.max_unfold_depth.min(ceiling.max_unfold_depth),
        max_heap: req.max_heap.min(ceiling.max_heap),
        max_residual: req.max_residual.min(ceiling.max_residual),
    }
}

/// The mutex-protected server state: the cache plus the set of
/// fingerprints some worker is currently compiling.
struct State {
    cache: ResidualCache,
    in_flight: HashSet<u128>,
}

/// See the module docs.
pub struct Server {
    config: ServerConfig,
    state: Mutex<State>,
    /// Signalled whenever an in-flight compile lands (or fails), so
    /// workers waiting on that key can collect the artifact instead of
    /// duplicating the compile.
    landed: Condvar,
    /// Per-outcome latency histograms and service gauges, on their own
    /// lock so recording never contends with the cache.
    metrics: Mutex<MetricsRegistry>,
}

/// Removes a claimed fingerprint from the in-flight set on drop, so a
/// compile that panics mid-pipeline can never strand its waiters.
struct InFlightClaim<'a> {
    server: &'a Server,
    key: u128,
}

impl Drop for InFlightClaim<'_> {
    fn drop(&mut self) {
        self.server.lock().in_flight.remove(&self.key);
        self.server.landed.notify_all();
    }
}

impl Server {
    /// A server with an empty cache.
    #[must_use]
    pub fn new(config: ServerConfig) -> Server {
        let state = Mutex::new(State {
            cache: ResidualCache::new(config.capacity),
            in_flight: HashSet::new(),
        });
        Server {
            config,
            state,
            landed: Condvar::new(),
            metrics: Mutex::new(MetricsRegistry::new()),
        }
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Cache counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.lock().cache.stats()
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A worker that panicked mid-insert leaves only map-level state;
        // the cache has no torn invariants, so keep serving.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn metrics_lock(&self) -> MutexGuard<'_, MetricsRegistry> {
        // Histograms and gauges are always internally consistent; a
        // poisoned lock just means a request died mid-record.
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A point-in-time copy of the service metrics: per-outcome latency
    /// histograms, queue-wait, and in-flight gauges.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.metrics_lock().snapshot()
    }

    /// Publishes the current metrics snapshot through `shared` as one
    /// atomic event group (histograms for each populated outcome class
    /// plus the in-flight gauges).
    pub fn publish_metrics<S: Sink + Send>(&self, shared: &SharedSink<S>) {
        let snap = self.metrics_snapshot();
        let mut local = CollectingSink::new();
        snap.publish(&mut local);
        shared.append(local.events());
    }

    /// Answers `requests` on the configured worker pool, returning
    /// responses in request order.
    pub fn serve(&self, requests: &[CompileRequest]) -> Vec<CompileResponse> {
        self.serve_with(requests, &SharedSink::new(NullSink))
    }

    /// [`Server::serve`] with per-request trace groups published to
    /// `shared` (see the module docs for the atomicity guarantee).
    pub fn serve_with<S: Sink + Send>(
        &self,
        requests: &[CompileRequest],
        shared: &SharedSink<S>,
    ) -> Vec<CompileResponse> {
        if requests.is_empty() {
            return Vec::new();
        }
        let workers = self.config.threads.clamp(1, requests.len());
        let next = AtomicUsize::new(0);
        let batch_start = Instant::now();
        let slots: Vec<Mutex<Option<CompileResponse>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = requests.get(i) else { break };
                    // Queue wait: submission (batch start) to pickup.
                    {
                        let mut m = self.metrics_lock();
                        m.record_queue_wait(elapsed_ns(batch_start));
                        m.enter_flight();
                    }
                    let picked_up = Instant::now();
                    let resp = self.handle(req, shared);
                    let latency = elapsed_ns(picked_up);
                    {
                        let mut m = self.metrics_lock();
                        m.leave_flight();
                        if let Some(class) = latency_class(&resp.outcome) {
                            m.record_latency(class, latency);
                        }
                    }
                    *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                        Some(resp);
                });
            }
        });
        slots
            .into_iter()
            .zip(requests)
            .map(|(slot, req)| {
                // Unclaimed slots cannot happen while the worker loop
                // covers every index, but a structured rejection keeps
                // one lost request from sinking the whole batch.
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| CompileResponse {
                        name: req.name.clone(),
                        fingerprint: None,
                        outcome: Outcome::Rejected(
                            "request was never claimed by a worker".to_string(),
                        ),
                    })
            })
            .collect()
    }

    /// Handles one request, recording its events privately and
    /// publishing them as one atomic group.
    fn handle<S: Sink + Send>(
        &self,
        req: &CompileRequest,
        shared: &SharedSink<S>,
    ) -> CompileResponse {
        let mut local = CollectingSink::new();
        let t = pe_trace::begin(&mut local, Phase::Serve);
        let resp = self.handle_inner(req, &mut local);
        pe_trace::end(&mut local, t);
        shared.append(local.events());
        resp
    }

    fn handle_inner(&self, req: &CompileRequest, sink: &mut dyn Sink) -> CompileResponse {
        sink.counter(Counter::ServeRequests, 1);
        let mut opts = req.opts.clone();
        opts.limits = clamp_limits(&opts.limits, &self.config.limits);
        let fp = match fingerprint(&req.source, &req.entry, &opts) {
            Ok(fp) => fp,
            Err(e) => {
                return CompileResponse {
                    name: req.name.clone(),
                    fingerprint: None,
                    outcome: Outcome::Rejected(format!("unreadable source: {e}")),
                }
            }
        };
        if let Some(artifact) = self.lock().cache.lookup(fp) {
            sink.counter(Counter::CacheHits, 1);
            return CompileResponse {
                name: req.name.clone(),
                fingerprint: Some(fp),
                outcome: Outcome::Hit(artifact),
            };
        }
        sink.counter(Counter::CacheMisses, 1);
        // In-flight dedup: if another worker is already compiling this
        // key, wait for it to land and collect the artifact rather than
        // duplicating the compile.  The miss above is this request's one
        // counted cache event, so the collect path peeks without
        // counting.  When the leader lands nothing (rejection, or a
        // capacity-0 cache), fall through and compile — warm, if the
        // leader left a snapshot.
        let warm = {
            let mut st = self.lock();
            loop {
                if !st.in_flight.contains(&fp.0) {
                    if let Some(artifact) = st.cache.peek(fp) {
                        drop(st);
                        return CompileResponse {
                            name: req.name.clone(),
                            fingerprint: Some(fp),
                            outcome: Outcome::Hit(artifact),
                        };
                    }
                    st.in_flight.insert(fp.0);
                    break st.cache.warm_snapshot(fp);
                }
                st = self.landed.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let claim = InFlightClaim { server: self, key: fp.0 };
        let warm_started = warm.is_some();
        let outcome = match self.compile(fp, req, &opts, warm.as_ref(), sink) {
            Ok((artifact, snapshot)) => {
                let evicted = self.lock().cache.insert(artifact.clone(), snapshot);
                if evicted > 0 {
                    sink.counter(Counter::CacheEvictions, evicted as u64);
                }
                Outcome::Compiled { artifact, warm_started }
            }
            Err(e) => Outcome::Rejected(e),
        };
        drop(claim);
        CompileResponse { name: req.name.clone(), fingerprint: Some(fp), outcome }
    }

    /// The compile itself — everything that runs outside the lock.
    fn compile(
        &self,
        fp: Fingerprint,
        req: &CompileRequest,
        opts: &CompileOptions,
        warm: Option<&MemoSnapshot>,
        sink: &mut dyn Sink,
    ) -> Result<(Artifact, MemoSnapshot), String> {
        let pipeline = Pipeline::new_traced(&req.source, sink).map_err(|e| e.to_string())?;
        let (report, snapshot) = pipeline
            .compile_warm_traced(&req.entry, opts, warm, sink)
            .map_err(|e| e.to_string())?;
        let artifact = Artifact {
            fingerprint: fp,
            residual_source: report.s0.to_source(),
            procs: report.s0.procs.len(),
            nodes: report.s0.size(),
            s0: report.s0,
        };
        Ok((artifact, snapshot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "(define (inc x) (+ x 1))";

    #[test]
    fn duplicate_requests_hit_the_cache() {
        let server = Server::new(ServerConfig::default());
        let reqs = vec![
            CompileRequest::new("a", SRC, "inc"),
            CompileRequest::new("b", SRC, "inc"),
            CompileRequest::new("c", "  (define (inc x)  (+ x 1)) ; same", "inc"),
        ];
        let resps = server.serve(&reqs);
        assert!(matches!(resps[0].outcome, Outcome::Compiled { .. }));
        assert!(resps[1].is_hit());
        assert!(resps[2].is_hit(), "canonicalization unifies layout variants");
        assert_eq!(resps[0].residual_source(), resps[1].residual_source());
        let s = server.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (3, 2, 1));
    }

    #[test]
    fn limits_are_clamped_to_the_server_ceiling() {
        let ceiling = Limits { max_residual: 50, ..Limits::default() };
        let server = Server::new(ServerConfig {
            threads: 1,
            capacity: 8,
            limits: ceiling,
        });
        let mut greedy = CompileRequest::new("greedy", SRC, "inc");
        greedy.opts.limits.max_residual = usize::MAX;
        let mut modest = CompileRequest::new("modest", SRC, "inc");
        modest.opts.limits.max_residual = 50;
        let resps = server.serve(&[greedy, modest]);
        // Clamping happens before fingerprinting: the greedy request and
        // the one that asked for the ceiling share a cache entry.
        assert!(matches!(resps[0].outcome, Outcome::Compiled { .. }));
        assert!(resps[1].is_hit(), "clamped options unify the key");
    }

    #[test]
    fn bad_requests_are_rejected_not_cached() {
        let server = Server::new(ServerConfig::default());
        let resps = server.serve(&[
            CompileRequest::new("unreadable", "(define (f", "f"),
            CompileRequest::new("no-entry", SRC, "ghost"),
            CompileRequest::new("ok", SRC, "inc"),
        ]);
        assert!(matches!(resps[0].outcome, Outcome::Rejected(_)));
        assert!(resps[0].fingerprint.is_none(), "no key for unreadable source");
        assert!(matches!(resps[1].outcome, Outcome::Rejected(_)));
        assert!(matches!(resps[2].outcome, Outcome::Compiled { .. }));
        assert!(server.lock().cache.len() == 1, "only the success was cached");
    }

    #[test]
    fn metrics_classify_every_serviced_request() {
        let server = Server::new(ServerConfig { threads: 2, ..ServerConfig::default() });
        let reqs = vec![
            CompileRequest::new("cold", SRC, "inc"),
            CompileRequest::new("bad", "(define (f", "f"),
        ];
        server.serve(&reqs);
        server.serve(&[CompileRequest::new("hot", SRC, "inc")]);
        let m = server.metrics_snapshot();
        assert_eq!(m.cold_miss.count(), 1);
        assert_eq!(m.hit.count(), 1);
        assert_eq!(m.warm_miss.count(), 0);
        assert_eq!(m.requests(), 2, "the rejection is not a latency sample");
        assert_eq!(m.queue_wait.count(), 3, "every pickup waits in the queue");
        assert_eq!(m.in_flight, 0, "all requests have left service");
        assert!(m.in_flight_peak >= 1);

        // The snapshot publishes as a balanced, replayable event group.
        let shared = SharedSink::new(CollectingSink::new());
        server.publish_metrics(&shared);
        let sink = shared.try_unwrap().expect("sole owner");
        assert!(sink.check_balanced().is_ok());
        let hists = sink
            .events()
            .iter()
            .filter(|e| matches!(e, pe_trace::Event::Hist { .. }))
            .count();
        assert_eq!(hists, 3, "hit, cold-miss, and queue-wait histograms");
    }

    #[test]
    fn eviction_leads_to_warm_restarts() {
        // Capacity 0: artifacts are never stored, so every repeat
        // compiles — warm, after the first.
        let server = Server::new(ServerConfig {
            threads: 1,
            capacity: 0,
            limits: Limits::default(),
        });
        let req = CompileRequest::new("r", SRC, "inc");
        let first = server.serve(std::slice::from_ref(&req));
        let second = server.serve(std::slice::from_ref(&req));
        let (Outcome::Compiled { warm_started: w1, artifact: a1 },
             Outcome::Compiled { warm_started: w2, artifact: a2 }) =
            (&first[0].outcome, &second[0].outcome)
        else {
            panic!("both requests must compile");
        };
        assert!(!w1, "first compile is cold");
        assert!(w2, "second warm-starts from the retained snapshot");
        assert_eq!(
            a1.residual_source, a2.residual_source,
            "warm replay is byte-identical"
        );
        assert_eq!(server.stats().warm_starts, 1);
    }
}
