//! The content-addressed residual cache and its warm-start index.
//!
//! Two tables, one clock:
//!
//! * **Artifacts** — fingerprint → verified residual program.  A hit
//!   skips the entire pipeline; this is the ≥10× path the service
//!   lives for.
//! * **Warm index** — fingerprint → [`MemoSnapshot`].  When an artifact
//!   has been evicted (or was never cached) but the specializer's memo
//!   table survives, a recompile warm-starts: every specialization
//!   point replays from the table and the output is byte-identical to
//!   the cold compile at a fraction of the cost.
//!
//! Both tables evict least-recently-used entries against one capacity,
//! under one logical clock, so behaviour is deterministic for a given
//! operation order.  The cache itself is single-threaded; the server
//! wraps it in a mutex and keeps the critical sections to map
//! operations only (compiles happen outside the lock).

use crate::fingerprint::Fingerprint;
use pe_core::{MemoSnapshot, S0Program};
use pe_intern::FxHashMap;

/// A cached compilation product: the verified residual program plus the
/// sizes the bench harness reports.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The compile key this artifact is stored under.
    pub fingerprint: Fingerprint,
    /// The verified residual program.
    pub s0: S0Program,
    /// `s0.to_source()`, rendered once at insert time so hit responses
    /// and byte-identity checks never re-render.
    pub residual_source: String,
    /// Residual procedure count.
    pub procs: usize,
    /// Residual S₀ node count.
    pub nodes: usize,
}

/// Monotonic cache counters.  `lookups == hits + misses` is an
/// invariant the differential tests assert suite-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Artifact-table lookups.
    pub lookups: u64,
    /// Lookups answered from the artifact table.
    pub hits: u64,
    /// Lookups that fell through to a compile.
    pub misses: u64,
    /// Artifacts inserted.
    pub insertions: u64,
    /// Artifacts evicted by the LRU policy.
    pub evictions: u64,
    /// Compiles that warm-started from a memo snapshot.
    pub warm_starts: u64,
}

struct ArtifactSlot {
    artifact: Artifact,
    last_used: u64,
}

struct WarmSlot {
    snapshot: MemoSnapshot,
    last_used: u64,
}

/// See the module docs.
pub struct ResidualCache {
    artifacts: FxHashMap<u128, ArtifactSlot>,
    warm: FxHashMap<u128, WarmSlot>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl ResidualCache {
    /// An empty cache holding at most `capacity` artifacts (and as many
    /// warm snapshots).  A capacity of 0 disables artifact storage —
    /// every request compiles, which the bench harness uses to measure
    /// the pure warm-start effect.
    #[must_use]
    pub fn new(capacity: usize) -> ResidualCache {
        ResidualCache {
            artifacts: FxHashMap::default(),
            warm: FxHashMap::default(),
            capacity,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up an artifact, counting the hit or miss and refreshing
    /// recency on hit.
    pub fn lookup(&mut self, fp: Fingerprint) -> Option<Artifact> {
        self.stats.lookups += 1;
        let now = self.tick();
        match self.artifacts.get_mut(&fp.0) {
            Some(slot) => {
                self.stats.hits += 1;
                slot.last_used = now;
                Some(slot.artifact.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Fetches an artifact *without* counting a lookup, refreshing
    /// recency only.  The in-flight dedup path uses this: a waiter has
    /// already counted its miss and is just collecting the artifact
    /// the leading compile landed.
    pub fn peek(&mut self, fp: Fingerprint) -> Option<Artifact> {
        let now = self.tick();
        let slot = self.artifacts.get_mut(&fp.0)?;
        slot.last_used = now;
        Some(slot.artifact.clone())
    }

    /// The warm snapshot for a compile key, if one survives.  Counts a
    /// warm start — callers only ask on the way into a compile.
    pub fn warm_snapshot(&mut self, fp: Fingerprint) -> Option<MemoSnapshot> {
        let now = self.tick();
        let slot = self.warm.get_mut(&fp.0)?;
        slot.last_used = now;
        self.stats.warm_starts += 1;
        Some(slot.snapshot.clone())
    }

    /// Stores a freshly compiled artifact and its memo snapshot,
    /// evicting least-recently-used entries over capacity.  Returns the
    /// number of artifacts evicted.
    pub fn insert(&mut self, artifact: Artifact, snapshot: MemoSnapshot) -> usize {
        let now = self.tick();
        let key = artifact.fingerprint.0;
        if self.capacity > 0 {
            self.stats.insertions += 1;
            self.artifacts.insert(key, ArtifactSlot { artifact, last_used: now });
        }
        self.warm.insert(key, WarmSlot { snapshot, last_used: now });
        let evicted = evict_lru(&mut self.artifacts, self.capacity, |s| s.last_used);
        // The warm index is the cheaper tier (raw procs, no rendered
        // source), so it keeps 4x the artifact capacity: an artifact
        // eviction leaves the snapshot behind precisely so the
        // re-compile is warm rather than cold.
        evict_lru(&mut self.warm, self.capacity.max(1) * 4, |s| s.last_used);
        self.stats.evictions += evicted as u64;
        evicted
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Artifacts currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// True when no artifact is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// Warm snapshots currently stored.
    #[must_use]
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }
}

/// Evicts smallest-recency entries until `map` fits `capacity`.
/// Returns how many were evicted.  Linear scans are fine: capacity is
/// small (hundreds) and eviction is rare compared to lookups.
fn evict_lru<V>(
    map: &mut FxHashMap<u128, V>,
    capacity: usize,
    last_used: impl Fn(&V) -> u64,
) -> usize {
    let mut evicted = 0;
    while map.len() > capacity {
        let oldest = map
            .iter()
            .min_by_key(|(_, v)| last_used(v))
            .map(|(k, _)| *k)
            .expect("non-empty map over capacity");
        map.remove(&oldest);
        evicted += 1;
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(n: u128) -> Artifact {
        Artifact {
            fingerprint: Fingerprint(n),
            s0: S0Program { procs: Vec::new(), entry: format!("e{n}") },
            residual_source: format!("src{n}"),
            procs: 0,
            nodes: 0,
        }
    }

    #[test]
    fn hit_miss_accounting_is_exact() {
        let mut c = ResidualCache::new(4);
        assert!(c.lookup(Fingerprint(1)).is_none());
        c.insert(art(1), MemoSnapshot::default());
        assert!(c.lookup(Fingerprint(1)).is_some());
        assert!(c.lookup(Fingerprint(2)).is_none());
        let s = c.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.lookups, s.hits + s.misses);
    }

    #[test]
    fn lru_evicts_the_coldest_artifact() {
        let mut c = ResidualCache::new(2);
        c.insert(art(1), MemoSnapshot::default());
        c.insert(art(2), MemoSnapshot::default());
        assert!(c.lookup(Fingerprint(1)).is_some(), "refresh 1; 2 is now coldest");
        c.insert(art(3), MemoSnapshot::default());
        assert_eq!(c.len(), 2);
        assert!(c.lookup(Fingerprint(2)).is_none(), "2 was evicted");
        assert!(c.lookup(Fingerprint(1)).is_some());
        assert!(c.lookup(Fingerprint(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn warm_snapshot_survives_artifact_eviction() {
        let mut c = ResidualCache::new(1);
        c.insert(art(1), MemoSnapshot::default());
        c.insert(art(2), MemoSnapshot::default());
        assert!(c.lookup(Fingerprint(1)).is_none(), "artifact 1 evicted");
        assert!(c.warm_snapshot(Fingerprint(1)).is_some(), "snapshot 1 retained");
        assert_eq!(c.stats().warm_starts, 1);
    }

    #[test]
    fn zero_capacity_disables_artifact_storage_only() {
        let mut c = ResidualCache::new(0);
        c.insert(art(1), MemoSnapshot::default());
        assert!(c.is_empty());
        assert!(c.lookup(Fingerprint(1)).is_none());
        assert!(c.warm_snapshot(Fingerprint(1)).is_some(), "warm tier stays on");
    }
}
