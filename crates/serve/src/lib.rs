//! pe-serve — a parallel, content-addressed compile service over the
//! realistic-pe [`Pipeline`].
//!
//! The paper's compiler is a batch tool: one source, one entry, one
//! residual program.  A compile *service* answers a stream of such
//! requests from many tenants, and three properties make that
//! realistic rather than a thread-per-request free-for-all:
//!
//! * **Content addressing** ([`fingerprint`]) — a request is named by
//!   what it computes: canonical source, entry, every residual-shaping
//!   option, and a format version.  Compilation is deterministic, so
//!   the fingerprint is a sound cache key and layout variants of the
//!   same program share one artifact.
//! * **Warm starts** ([`ResidualCache`]) — the specializer's memo table
//!   outlives the compile that built it ([`pe_core::MemoSnapshot`]).
//!   When the artifact is gone but the snapshot survives, a recompile
//!   replays every specialization point from the table: byte-identical
//!   output at a fraction of the cost.
//! * **Isolation** ([`Server`]) — requests run on scoped worker
//!   threads with per-request [`pe_governor`] limits clamped to the
//!   server ceiling; a tenant can starve itself, never the service.
//!
//! None of this was possible while the interner (and everything above
//! it) held `Rc<str>`: the whole artifact chain —
//! [`realistic_pe::Pipeline`], residual [`realistic_pe::S0Program`]s,
//! loaded [`realistic_pe::Vm`]s — is now `Send`, and the test below
//! enforces that at compile time.
//!
//! ```
//! use pe_serve::{CompileRequest, Server, ServerConfig};
//!
//! let server = Server::new(ServerConfig { threads: 2, ..ServerConfig::default() });
//! let req = CompileRequest::new("inc", "(define (inc x) (+ x 1))", "inc");
//! let first = server.serve(std::slice::from_ref(&req));
//! let again = server.serve(std::slice::from_ref(&req));
//! assert!(first[0].residual_source().is_some());
//! assert!(again[0].is_hit(), "same content, no second compile");
//! ```

pub mod cache;
pub mod fingerprint;
pub mod server;

pub use cache::{Artifact, CacheStats, ResidualCache};
pub use fingerprint::{canonical_source, fingerprint, program_key, Fingerprint, FORMAT_VERSION};
pub use server::{CompileRequest, CompileResponse, Outcome, Server, ServerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use pe_intern::{assert_send, assert_sync};
    use realistic_pe::{Pipeline, S0Program, Vm};

    #[test]
    fn the_artifact_chain_is_send() {
        // The PR that introduced this crate exists because these types
        // were not `Send` (the interner held `Rc<str>`); keep the fix
        // pinned at compile time, one type per line so a regression
        // names its culprit.
        assert_send::<Pipeline>();
        assert_send::<S0Program>();
        assert_send::<Vm>();
        assert_send::<pe_core::MemoSnapshot>();
        assert_send::<Artifact>();
        assert_send::<CompileRequest>();
        assert_send::<CompileResponse>();
        assert_send::<Server>();
        assert_sync::<Server>();
    }
}
