//! Content-addressed compile keys.
//!
//! A [`Fingerprint`] names one compilation *by what it computes*: the
//! canonical source text, the entry procedure, every compiler option
//! that can change the residual program, and a format version.  Two
//! requests with the same fingerprint are guaranteed the same residual
//! S₀ program (compilation is deterministic), so the fingerprint is a
//! sound cache key; two requests that differ only in whitespace,
//! comments, or request metadata share one.
//!
//! Determinism matters more than speed here: the hash must be stable
//! across processes, runs, and platforms, so the cache gate in `ci.sh`
//! and the golden tests below can pin exact values.  The [`FxHasher`]
//! has no per-process seed and consumes explicit little-endian words,
//! and every variable-width field is written with its own length
//! separator — nothing about the hash depends on pointer identity,
//! `HashMap` iteration order, or `usize` width.

use pe_core::{CompileOptions, GenStrategy};
use pe_intern::FxHasher;
use pe_sexpr::ReadError;
use std::fmt;
use std::hash::Hasher;

/// Bumped whenever residual output or option semantics change in a way
/// that invalidates previously cached artifacts.  Part of every
/// fingerprint, so a version bump cold-starts the world instead of
/// serving stale residuals.
pub const FORMAT_VERSION: u32 = 1;

/// A 128-bit content address for one compilation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fp:{:032x}", self.0)
    }
}

/// The canonical form of subject-language source: read to S-expressions
/// and re-printed flat, one form per line.  Whitespace, comments, and
/// layout vanish; structure and spelling survive.
///
/// # Errors
///
/// The reader's [`ReadError`] on malformed input — which the service
/// reports as a rejected request rather than caching garbage.
pub fn canonical_source(source: &str) -> Result<String, ReadError> {
    let forms = pe_sexpr::read(source)?;
    let mut out = String::new();
    for form in &forms {
        out.push_str(&form.to_string());
        out.push('\n');
    }
    Ok(out)
}

/// One 64-bit half of the fingerprint.  `seed` domain-separates the two
/// halves; everything else is written in a fixed order with explicit
/// widths.
fn half(seed: u64, canon: &str, entry: Option<&str>, opts: &CompileOptions) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(seed);
    h.write_u32(FORMAT_VERSION);
    h.write_u64(canon.len() as u64);
    h.write(canon.as_bytes());
    match entry {
        Some(e) => {
            h.write_u8(1);
            h.write_u64(e.len() as u64);
            h.write(e.as_bytes());
        }
        None => h.write_u8(0),
    }
    h.write_u8(match opts.strategy {
        GenStrategy::Online => 0,
        GenStrategy::Offline => 1,
    });
    h.write_u8(u8::from(opts.postprocess));
    h.write_u8(u8::from(opts.flow));
    h.write_u8(u8::from(opts.trick_flow));
    h.write_u8(u8::from(opts.sct));
    h.write_u64(opts.max_desc_size as u64);
    h.write_u64(opts.widen_threshold as u64);
    let l = &opts.limits;
    h.write_u64(l.fuel);
    h.write_u64(l.max_call_depth as u64);
    h.write_u64(l.max_syntax_depth as u64);
    h.write_u64(l.max_unfold_depth as u64);
    h.write_u64(l.max_heap);
    h.write_u64(l.max_residual as u64);
    h.finish()
}

fn combine(canon: &str, entry: Option<&str>, opts: &CompileOptions) -> Fingerprint {
    // Two independently seeded 64-bit passes; the golden-ratio and
    // SplitMix increment constants keep the domains disjoint.
    let hi = half(0x9e37_79b9_7f4a_7c15, canon, entry, opts);
    let lo = half(0x2545_f491_4f6c_dd1d, canon, entry, opts);
    Fingerprint((u128::from(hi) << 64) | u128::from(lo))
}

/// The full compile key: canonical source + entry + options + format
/// version.  This is the artifact-cache key — everything the residual
/// program depends on, nothing it doesn't.
///
/// # Errors
///
/// [`ReadError`] on unreadable source.
pub fn fingerprint(
    source: &str,
    entry: &str,
    opts: &CompileOptions,
) -> Result<Fingerprint, ReadError> {
    Ok(combine(&canonical_source(source)?, Some(entry), opts))
}

/// The entry-independent program key: canonical source + options only.
/// Keys state that is shared by every entry of one program (e.g. a
/// whole-program analysis cache); the warm-start index deliberately
/// uses the *full* [`fingerprint`] instead, because a memo snapshot
/// replays byte-identically only for the entry that produced it.
///
/// # Errors
///
/// [`ReadError`] on unreadable source.
pub fn program_key(source: &str, opts: &CompileOptions) -> Result<Fingerprint, ReadError> {
    Ok(combine(&canonical_source(source)?, None, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_governor::Limits;

    #[test]
    fn whitespace_and_comments_do_not_change_the_key() {
        let opts = CompileOptions::default();
        let a = fingerprint("(define (f x) (+ x 1))", "f", &opts).unwrap();
        let b = fingerprint(
            "; a comment\n(define (f x)\n   (+ x   1))\n",
            "f",
            &opts,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn source_entry_and_options_all_separate_keys() {
        let opts = CompileOptions::default();
        let base = fingerprint("(define (f x) x)", "f", &opts).unwrap();
        assert_ne!(base, fingerprint("(define (f x) (+ x 0))", "f", &opts).unwrap());
        assert_ne!(
            base,
            fingerprint("(define (f x) x)", "g", &opts).unwrap(),
            "entry is part of the key"
        );
        for changed in [
            CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() },
            CompileOptions { postprocess: false, ..CompileOptions::default() },
            CompileOptions { flow: false, ..CompileOptions::default() },
            CompileOptions { trick_flow: false, ..CompileOptions::default() },
            CompileOptions { sct: false, ..CompileOptions::default() },
            CompileOptions { widen_threshold: 3, ..CompileOptions::default() },
            CompileOptions { max_desc_size: 99, ..CompileOptions::default() },
            CompileOptions {
                limits: Limits { fuel: 1234, ..Limits::default() },
                ..CompileOptions::default()
            },
        ] {
            assert_ne!(
                base,
                fingerprint("(define (f x) x)", "f", &changed).unwrap(),
                "option change must change the key: {changed:?}"
            );
        }
    }

    #[test]
    fn program_key_ignores_entry() {
        let opts = CompileOptions::default();
        let src = "(define (f x) x) (define (g x) (f x))";
        assert_eq!(program_key(src, &opts).unwrap(), program_key(src, &opts).unwrap());
        assert_ne!(
            program_key(src, &opts).unwrap(),
            fingerprint(src, "f", &opts).unwrap(),
            "program key and compile key live in different domains"
        );
    }

    #[test]
    fn unreadable_source_is_rejected() {
        assert!(fingerprint("(define (f", "f", &CompileOptions::default()).is_err());
    }
}
