//! Service-level guarantees, end to end:
//!
//! * golden fingerprints — the content-address scheme is pinned for the
//!   Fig. 8 suite, so an accidental hash change (iteration order,
//!   pointer identity, field reordering) fails loudly instead of
//!   silently cold-starting every deployed cache;
//! * concurrency differential — N workers over one shared cache produce
//!   byte-identical residual S₀ *and* C output to a sequential run,
//!   with exact hit/miss accounting;
//! * siege differential — the same, over generated programs, plus the
//!   compile-vs-interpret oracle on every artifact.

use pe_serve::{fingerprint, CompileRequest, Outcome, Server, ServerConfig};
use realistic_pe::{emit_c, COptions, CompileOptions, Datum, Limits, SUITE};

/// Requests for the whole Fig. 8 suite.
fn suite_requests() -> Vec<CompileRequest> {
    SUITE
        .iter()
        .map(|b| CompileRequest::new(b.name, b.source, b.entry))
        .collect()
}

#[test]
fn golden_fingerprints_for_the_suite() {
    // Computed once with FORMAT_VERSION = 1 and default options.  A
    // mismatch means the fingerprint function changed behaviour: bump
    // `pe_serve::FORMAT_VERSION` and re-pin, or fix the regression.
    let golden = [
        ("deriv", "72aa21dd2fc89eebf01a8e30739a35fc"),
        ("tak", "659c34f9ccd89235115f391b7acbe780"),
        ("cpstak", "a739ba75ade9279ce6f77e9808df26a5"),
        ("takl", "cf6c89f5e9812e55cb13ca174f9928fa"),
        ("fibclos", "324fb46ca34671803de0ba0682ab5402"),
        ("cps-append", "8e506f8fdb233c24a8176d29867718f2"),
        ("queens", "8fc2e80dc93ba4dbabe083dc618fea36"),
    ];
    let opts = CompileOptions::default();
    assert_eq!(golden.len(), SUITE.len());
    for ((name, expect), b) in golden.iter().zip(SUITE) {
        assert_eq!(*name, b.name);
        let fp = fingerprint(b.source, b.entry, &opts).expect("suite sources read");
        assert_eq!(
            fp.to_string(),
            *expect,
            "{name}: fingerprint drifted — bump FORMAT_VERSION or fix the hash"
        );
    }
}

/// The reference: every request served sequentially on a fresh server.
fn sequential_reference(reqs: &[CompileRequest]) -> Vec<pe_serve::CompileResponse> {
    Server::new(ServerConfig { threads: 1, ..ServerConfig::default() }).serve(reqs)
}

#[test]
fn concurrent_suite_is_byte_identical_to_sequential() {
    // Three interleaved copies of the suite: plenty of duplicate keys
    // in flight at once.
    let mut reqs = Vec::new();
    for _ in 0..3 {
        reqs.extend(suite_requests());
    }
    let reference = sequential_reference(&reqs);
    for threads in [2, 4] {
        let server = Server::new(ServerConfig { threads, ..ServerConfig::default() });
        let got = server.serve(&reqs);
        assert_eq!(got.len(), reference.len());
        for (r, g) in reference.iter().zip(&got) {
            assert_eq!(r.fingerprint, g.fingerprint, "{}", r.name);
            assert_eq!(
                r.residual_source(),
                g.residual_source(),
                "{} @ {threads} threads: residual S0 must be byte-identical",
                r.name
            );
        }
        let s = server.stats();
        assert_eq!(s.lookups, s.hits + s.misses, "accounting: {s:?}");
        assert_eq!(s.lookups, reqs.len() as u64, "one lookup per request");
        // 7 distinct keys.  Workers that race on the same fresh key
        // each count a miss, but in-flight dedup makes only the first
        // compile — the rest wait and collect the landed artifact — so
        // misses can exceed the distinct-key count while compiles
        // cannot.
        assert!(s.misses >= SUITE.len() as u64, "{s:?}");
        assert!(s.hits > 0, "duplicates must mostly hit: {s:?}");
    }
}

#[test]
fn concurrent_c_output_is_byte_identical_to_sequential() {
    let reqs = suite_requests();
    let reference = sequential_reference(&reqs);
    let server = Server::new(ServerConfig { threads: 4, ..ServerConfig::default() });
    let got = server.serve(&reqs);
    for ((r, g), b) in reference.iter().zip(&got).zip(SUITE) {
        let args: Vec<Datum> = b.test_inputs();
        let c_ref = emit_c(&r.artifact().expect("reference compiled").s0, &args, &COptions::default());
        let c_got = emit_c(&g.artifact().expect("parallel compiled").s0, &args, &COptions::default());
        assert_eq!(
            c_ref.source, c_got.source,
            "{}: C output must be byte-identical",
            b.name
        );
    }
}

#[test]
fn siege_programs_shared_cache_agrees_with_oracle() {
    // Generated programs, one shared cache, four threads: outputs must
    // match the sequential serve byte-for-byte, and every residual
    // program must agree with the tail interpreter on the generated
    // arguments (the pe-siege oracle relation).
    let mut rng = pe_siege::rng::Rng::new(0x5EED);
    let cases: Vec<pe_siege::gen::GenCase> =
        (0..10).map(|_| pe_siege::gen::gen_case(&mut rng)).collect();
    let mut reqs: Vec<CompileRequest> = cases
        .iter()
        .enumerate()
        .map(|(i, c)| CompileRequest::new(&format!("gen-{i}"), &c.source, &c.entry))
        .collect();
    // Duplicates in reverse order so hits land on different workers.
    let dups: Vec<CompileRequest> = reqs.iter().rev().cloned().collect();
    reqs.extend(dups);

    let reference = sequential_reference(&reqs);
    let server = Server::new(ServerConfig { threads: 4, ..ServerConfig::default() });
    let got = server.serve(&reqs);
    for (r, g) in reference.iter().zip(&got) {
        assert_eq!(r.residual_source(), g.residual_source(), "{}", r.name);
    }

    let limits = Limits::default();
    for (i, case) in cases.iter().enumerate() {
        let Some(artifact) = got[i].artifact() else {
            // The generator can produce programs the specializer
            // rejects by budget; rejection must at least be the same
            // outcome sequentially.
            assert!(reference[i].artifact().is_none(), "gen-{i}: outcome diverged");
            continue;
        };
        let pipeline = realistic_pe::Pipeline::new(&case.source).expect("generated source parses");
        let oracle = pipeline.run_tail(&case.entry, &case.args, limits);
        let vm = realistic_pe::Vm::compile(&artifact.s0).expect("residual loads");
        let compiled = vm.run(&case.args, limits).map(|(v, _)| v);
        match (oracle, compiled) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "gen-{i}: compiled result diverged"),
            (Err(_), _) | (_, Err(_)) => {
                // Budget-limited runs may trap in either engine; the
                // differential guarantee is about successful runs.
            }
        }
    }
}

#[test]
fn trace_stream_from_concurrent_serve_validates() {
    // Workers publish whole per-request event groups through the shared
    // JSONL sink; the validator rejects torn lines, unbalanced spans,
    // and unknown names.
    let shared = pe_trace::SharedSink::new(pe_trace::JsonlSink::new(Vec::new()));
    let server = Server::new(ServerConfig { threads: 4, ..ServerConfig::default() });
    let mut reqs = Vec::new();
    for _ in 0..2 {
        reqs.extend(suite_requests());
    }
    let resps = server.serve_with(&reqs, &shared);
    assert_eq!(resps.len(), reqs.len());
    let sink = shared.try_unwrap().expect("no other handles");
    let bytes = sink.finish().expect("no I/O errors on a Vec");
    let stream = String::from_utf8(bytes).expect("UTF-8 JSONL");
    let summary = pe_trace::jsonl::validate(&stream).expect("stream validates");
    assert_eq!(summary.counter("serve_requests"), reqs.len() as u64);
    assert_eq!(
        summary.counter("cache_hits") + summary.counter("cache_misses"),
        reqs.len() as u64
    );
    assert!(summary.spans_opened >= reqs.len(), "one serve span per request");
}

#[test]
fn warm_start_is_much_cheaper_than_cold() {
    // The acceptance bar: a warm answer at least 10x faster than a cold
    // compile.  Use the cache-hit path (the service's warm answer) on
    // the heaviest suite program, and give the ratio a wide margin to
    // keep CI deterministic: a hit is a map lookup + clone, orders of
    // magnitude below a full pipeline run.
    let b = realistic_pe::suite::benchmark("queens").expect("queens exists");
    let server = Server::new(ServerConfig::default());
    let req = CompileRequest::new(b.name, b.source, b.entry);

    let t0 = std::time::Instant::now();
    let cold = server.serve(std::slice::from_ref(&req));
    let cold_ns = t0.elapsed().as_nanos().max(1);
    assert!(matches!(cold[0].outcome, Outcome::Compiled { warm_started: false, .. }));

    let t1 = std::time::Instant::now();
    let warm = server.serve(std::slice::from_ref(&req));
    let warm_ns = t1.elapsed().as_nanos().max(1);
    assert!(warm[0].is_hit());
    assert_eq!(cold[0].residual_source(), warm[0].residual_source());
    assert!(
        cold_ns >= warm_ns * 10,
        "warm answer must be >=10x faster: cold {cold_ns}ns vs warm {warm_ns}ns"
    );
}
