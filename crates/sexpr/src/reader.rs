//! A recursive-descent S-expression reader with source positions.
//!
//! The reader is a governed entry point: nesting depth is capped by
//! [`Limits::max_syntax_depth`] and total node count by
//! [`Limits::max_heap`], so hostile input (a megabyte of `(`, a huge
//! quoted datum) produces a positioned [`ReadError`] instead of a stack
//! overflow or unbounded allocation.  The depth check fires *before*
//! deep structure is built, which also keeps drop glue shallow.

use crate::{Pos, Sexpr};
use pe_governor::Limits;
use std::fmt;

/// An error produced while reading S-expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// Where in the input the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub kind: ReadErrorKind,
}

/// The kinds of reader errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadErrorKind {
    /// Input ended inside a list or other composite token.
    UnexpectedEof,
    /// A `)` with no matching `(`.
    UnbalancedClose,
    /// A malformed `#...` token.
    BadHash(String),
    /// A string literal was not terminated.
    UnterminatedString,
    /// An integer literal overflowed `i64`.
    IntOverflow(String),
    /// Dotted pairs are not part of the subject language.
    DottedPair,
    /// Nesting exceeded [`Limits::max_syntax_depth`].
    TooDeep { limit: usize },
    /// Node count exceeded [`Limits::max_heap`].
    TooLarge { limit: u64 },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ReadErrorKind::UnexpectedEof => write!(f, "{}: unexpected end of input", self.pos),
            ReadErrorKind::UnbalancedClose => write!(f, "{}: unbalanced ')'", self.pos),
            ReadErrorKind::BadHash(t) => write!(f, "{}: bad token #{t}", self.pos),
            ReadErrorKind::UnterminatedString => write!(f, "{}: unterminated string", self.pos),
            ReadErrorKind::IntOverflow(t) => write!(f, "{}: integer overflows fixnum: {t}", self.pos),
            ReadErrorKind::DottedPair => {
                write!(f, "{}: dotted pairs are not supported", self.pos)
            }
            ReadErrorKind::TooDeep { limit } => {
                write!(f, "{}: nesting exceeds the depth limit of {limit}", self.pos)
            }
            ReadErrorKind::TooLarge { limit } => {
                write!(f, "{}: input exceeds the size limit of {limit} nodes", self.pos)
            }
        }
    }
}

impl std::error::Error for ReadError {}

struct Reader<'a> {
    src: &'a str,
    bytes: &'a [u8],
    offset: usize,
    line: u32,
    col: u32,
    nodes: u64,
    limits: Limits,
}

impl<'a> Reader<'a> {
    fn new(src: &'a str, limits: &Limits) -> Self {
        Reader {
            src,
            bytes: src.as_bytes(),
            offset: 0,
            line: 1,
            col: 1,
            nodes: 0,
            limits: *limits,
        }
    }

    fn pos(&self) -> Pos {
        Pos { offset: self.offset, line: self.line, col: self.col }
    }

    fn err(&self, kind: ReadErrorKind) -> ReadError {
        ReadError { pos: self.pos(), kind }
    }

    /// Charges one constructed node against the size budget.
    fn charge(&mut self) -> Result<(), ReadError> {
        self.nodes += 1;
        if self.nodes > self.limits.max_heap {
            return Err(self.err(ReadErrorKind::TooLarge { limit: self.limits.max_heap }));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    /// Reads one expression with an explicit frame stack: the host stack
    /// never grows with input nesting, so the depth limit is a purely
    /// structural bound and an over-deep input traps instead of
    /// overflowing (the old recursive reader aborted on ~100k-deep
    /// input even in release builds).
    fn read_expr(&mut self) -> Result<Sexpr, ReadError> {
        enum Frame {
            List(Vec<Sexpr>),
            Quote,
        }
        let mut stack: Vec<Frame> = Vec::new();
        loop {
            self.skip_ws_and_comments();
            let completed = match self.peek() {
                None => return Err(self.err(ReadErrorKind::UnexpectedEof)),
                Some(b'(') | Some(b'[') => {
                    if stack.len() >= self.limits.max_syntax_depth {
                        return Err(
                            self.err(ReadErrorKind::TooDeep { limit: self.limits.max_syntax_depth })
                        );
                    }
                    self.bump();
                    stack.push(Frame::List(Vec::new()));
                    continue;
                }
                Some(b')') | Some(b']') => match stack.pop() {
                    Some(Frame::List(items)) => {
                        self.bump();
                        self.charge()?;
                        Sexpr::List(items)
                    }
                    // `)` at top level, or right after a quote mark.
                    _ => return Err(self.err(ReadErrorKind::UnbalancedClose)),
                },
                Some(b'\'') => {
                    if stack.len() >= self.limits.max_syntax_depth {
                        return Err(
                            self.err(ReadErrorKind::TooDeep { limit: self.limits.max_syntax_depth })
                        );
                    }
                    self.bump();
                    stack.push(Frame::Quote);
                    continue;
                }
                Some(b'"') => self.read_string()?,
                Some(b'#') => self.read_hash()?,
                Some(b'.') if matches!(stack.last(), Some(Frame::List(_))) => {
                    // A lone dot inside a list introduces a dotted pair,
                    // which the subject language excludes; `.5`-style
                    // atoms do not occur because floats are not in the
                    // language either.
                    let next = self.bytes.get(self.offset + 1).copied();
                    if next.is_none() || next.is_some_and(|b| b.is_ascii_whitespace() || b == b')') {
                        return Err(self.err(ReadErrorKind::DottedPair));
                    }
                    self.read_atom()?
                }
                Some(_) => self.read_atom()?,
            };
            // A complete expression: unwind pending quotes, then either
            // attach it to the enclosing list or return it.
            let mut expr = completed;
            loop {
                match stack.last_mut() {
                    Some(Frame::Quote) => {
                        stack.pop();
                        self.charge()?;
                        self.charge()?;
                        expr = Sexpr::list_of([Sexpr::sym_of("quote"), expr]);
                    }
                    Some(Frame::List(items)) => {
                        items.push(expr);
                        break;
                    }
                    None => return Ok(expr),
                }
            }
        }
    }

    fn read_string(&mut self) -> Result<Sexpr, ReadError> {
        self.bump(); // consume '"'
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(ReadErrorKind::UnterminatedString)),
                Some(b'"') => {
                    self.charge()?;
                    return Ok(Sexpr::Str(s.into()));
                }
                Some(b'\\') => match self.bump() {
                    None => return Err(self.err(ReadErrorKind::UnterminatedString)),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b) => s.push(b as char),
                },
                Some(b) => s.push(b as char),
            }
        }
    }

    fn read_hash(&mut self) -> Result<Sexpr, ReadError> {
        let start = self.pos();
        self.bump(); // consume '#'
        match self.peek() {
            Some(b't') => {
                self.bump();
                self.charge()?;
                Ok(Sexpr::Bool(true))
            }
            Some(b'f') => {
                self.bump();
                self.charge()?;
                Ok(Sexpr::Bool(false))
            }
            Some(b'\\') => {
                self.bump();
                let tok_start = self.offset;
                // A character token is at least one character long; named
                // characters extend while alphabetic.
                if self.bump().is_none() {
                    return Err(ReadError { pos: start, kind: ReadErrorKind::UnexpectedEof });
                }
                while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-') {
                    self.bump();
                }
                let tok = &self.src[tok_start..self.offset];
                let single = {
                    let mut it = tok.chars();
                    match (it.next(), it.next()) {
                        (Some(c), None) => Some(c),
                        _ => None,
                    }
                };
                match tok {
                    "space" => Ok(Sexpr::Char(' ')),
                    "newline" => Ok(Sexpr::Char('\n')),
                    "tab" => Ok(Sexpr::Char('\t')),
                    _ => match single {
                        Some(c) => {
                            self.charge()?;
                            Ok(Sexpr::Char(c))
                        }
                        None => Err(ReadError {
                            pos: start,
                            kind: ReadErrorKind::BadHash(format!("\\{tok}")),
                        }),
                    },
                }
            }
            _ => {
                let tok_start = self.offset;
                while self.peek().is_some_and(|b| !b.is_ascii_whitespace() && b != b'(' && b != b')')
                {
                    self.bump();
                }
                Err(ReadError {
                    pos: start,
                    kind: ReadErrorKind::BadHash(self.src[tok_start..self.offset].to_string()),
                })
            }
        }
    }

    fn read_atom(&mut self) -> Result<Sexpr, ReadError> {
        let start = self.offset;
        while self.peek().is_some_and(|b| {
            !b.is_ascii_whitespace()
                && b != b'('
                && b != b')'
                && b != b'['
                && b != b']'
                && b != b';'
                && b != b'"'
                && b != b'\''
        }) {
            self.bump();
        }
        let tok = &self.src[start..self.offset];
        debug_assert!(!tok.is_empty());
        self.charge()?;
        // Integer literals: optional sign followed by digits.
        let body = tok.strip_prefix(['-', '+']).unwrap_or(tok);
        if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
            match tok.parse::<i64>() {
                Ok(n) => return Ok(Sexpr::Int(n)),
                Err(_) => {
                    return Err(self.err(ReadErrorKind::IntOverflow(tok.to_string())));
                }
            }
        }
        Ok(Sexpr::Sym(tok.into()))
    }
}

/// Reads every S-expression in `src` under explicit [`Limits`].
///
/// # Errors
///
/// Returns a [`ReadError`] with position information on malformed input
/// or input exceeding the depth/size limits.
pub fn read_with(src: &str, limits: &Limits) -> Result<Vec<Sexpr>, ReadError> {
    Ok(read_positioned_with(src, limits)?.into_iter().map(|(e, _)| e).collect())
}

/// Reads every top-level S-expression in `src` together with the source
/// position where each form starts — parsers above the reader use this
/// to attach positions to their own diagnostics.
///
/// # Errors
///
/// See [`read_with`].
pub fn read_positioned_with(
    src: &str,
    limits: &Limits,
) -> Result<Vec<(Sexpr, Pos)>, ReadError> {
    let mut r = Reader::new(src, limits);
    let mut out = Vec::new();
    loop {
        r.skip_ws_and_comments();
        if r.peek().is_none() {
            return Ok(out);
        }
        let pos = r.pos();
        out.push((r.read_expr()?, pos));
    }
}

/// Reads every top-level S-expression with its start position, under
/// default [`Limits`].
///
/// # Errors
///
/// See [`read_with`].
pub fn read_positioned(src: &str) -> Result<Vec<(Sexpr, Pos)>, ReadError> {
    read_positioned_with(src, &Limits::default())
}

/// Reads every S-expression in `src` under default [`Limits`].
///
/// # Errors
///
/// Returns a [`ReadError`] with position information on malformed input.
pub fn read(src: &str) -> Result<Vec<Sexpr>, ReadError> {
    read_with(src, &Limits::default())
}

/// Reads exactly one S-expression under explicit [`Limits`]; trailing
/// input after the first expression is ignored.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed or empty input.
pub fn read_one_with(src: &str, limits: &Limits) -> Result<Sexpr, ReadError> {
    let mut r = Reader::new(src, limits);
    r.read_expr()
}

/// Reads exactly one S-expression under default [`Limits`]; trailing
/// input after the first expression is ignored.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed or empty input.
pub fn read_one(src: &str) -> Result<Sexpr, ReadError> {
    read_one_with(src, &Limits::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    type R = Result<(), ReadError>;

    #[test]
    fn reads_atoms() -> R {
        assert_eq!(read_one("42")?, Sexpr::Int(42));
        assert_eq!(read_one("-42")?, Sexpr::Int(-42));
        assert_eq!(read_one("+42")?, Sexpr::Int(42));
        assert_eq!(read_one("#t")?, Sexpr::Bool(true));
        assert_eq!(read_one("#f")?, Sexpr::Bool(false));
        assert_eq!(read_one("null?")?, Sexpr::sym_of("null?"));
        assert_eq!(read_one("-")?, Sexpr::sym_of("-"));
        assert_eq!(read_one("+")?, Sexpr::sym_of("+"));
        assert_eq!(read_one("1+")?, Sexpr::sym_of("1+"));
        Ok(())
    }

    #[test]
    fn reads_chars() -> R {
        assert_eq!(read_one("#\\a")?, Sexpr::Char('a'));
        assert_eq!(read_one("#\\space")?, Sexpr::Char(' '));
        assert_eq!(read_one("#\\newline")?, Sexpr::Char('\n'));
        assert_eq!(read_one("#\\0")?, Sexpr::Char('0'));
        Ok(())
    }

    #[test]
    fn reads_strings() -> R {
        assert_eq!(read_one("\"hi\"")?, Sexpr::Str("hi".into()));
        assert_eq!(read_one("\"a\\\"b\"")?, Sexpr::Str("a\"b".into()));
        assert_eq!(read_one("\"a\\nb\"")?, Sexpr::Str("a\nb".into()));
        Ok(())
    }

    #[test]
    fn reads_lists_and_brackets() -> R {
        let e = read_one("(+ 1 (  * 2 3 ))")?;
        assert_eq!(e.to_string(), "(+ 1 (* 2 3))");
        let e = read_one("[+ 1 2]")?;
        assert_eq!(e.to_string(), "(+ 1 2)");
        assert_eq!(read_one("()")?, Sexpr::nil());
        Ok(())
    }

    #[test]
    fn reads_quote_sugar() -> R {
        let e = read_one("'(a b)")?;
        assert_eq!(e.to_string(), "(quote (a b))");
        let e = read_one("''x")?;
        assert_eq!(e.to_string(), "(quote (quote x))");
        Ok(())
    }

    #[test]
    fn skips_comments() -> R {
        let es = read("; hello\n(a) ; trailing\n(b)")?;
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].to_string(), "(a)");
        assert_eq!(es[1].to_string(), "(b)");
        Ok(())
    }

    #[test]
    fn error_positions() {
        let e = read("(a\n   b").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnexpectedEof);
        assert_eq!(e.pos.line, 2);
        let e = read(")").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnbalancedClose);
        assert_eq!(e.pos.line, 1);
        assert_eq!(e.pos.col, 1);
    }

    #[test]
    fn rejects_dotted_pairs() {
        let e = read("(a . b)").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::DottedPair);
    }

    #[test]
    fn rejects_overflow_and_bad_hash() {
        let e = read("99999999999999999999").unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::IntOverflow(_)));
        let e = read("#q").unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::BadHash(_)));
        let e = read("#\\spaces").unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::BadHash(_)));
    }

    #[test]
    fn unterminated_string() {
        let e = read("\"abc").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnterminatedString);
    }

    #[test]
    fn reads_many() -> R {
        let es = read("1 2 (3 4) five")?;
        assert_eq!(es.len(), 4);
        Ok(())
    }

    #[test]
    fn empty_input_is_empty_vec() -> R {
        assert_eq!(read("")?, vec![]);
        assert_eq!(read("  ; only a comment")?, vec![]);
        Ok(())
    }

    #[test]
    fn positions_of_top_level_forms() -> R {
        let forms = read_positioned("(a)\n  (b)")?;
        assert_eq!(forms.len(), 2);
        assert_eq!((forms[0].1.line, forms[0].1.col), (1, 1));
        assert_eq!((forms[1].1.line, forms[1].1.col), (2, 3));
        Ok(())
    }

    /// Regression test for the unbounded-recursion bug: a 100k-deep
    /// nest used to overflow the host stack; now it traps at the depth
    /// limit before building any deep structure.
    #[test]
    fn hundred_thousand_deep_nest_traps_not_overflows() {
        let deep = "(".repeat(100_000);
        let e = read(&deep).unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::TooDeep { .. }), "{e}");
        // Same for a closed (well-formed) nest and for quote chains.
        let closed = format!("{}{}", "(".repeat(100_000), ")".repeat(100_000));
        let e = read(&closed).unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::TooDeep { .. }), "{e}");
        let quotes = format!("{}x", "'".repeat(100_000));
        let e = read(&quotes).unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::TooDeep { .. }), "{e}");
    }

    #[test]
    fn depth_limit_is_configurable() {
        let lim = Limits { max_syntax_depth: 4, ..Limits::default() };
        assert!(read_with("((((0))))", &lim).is_ok());
        let e = read_with("(((((0)))))", &lim).unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::TooDeep { limit: 4 });
        // Quote sugar counts toward nesting depth too.
        let e = read_with("''''' x", &lim).unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::TooDeep { limit: 4 });
    }

    #[test]
    fn node_budget_caps_huge_data() {
        let lim = Limits { max_heap: 10, ..Limits::default() };
        let big = format!("({})", "x ".repeat(1_000));
        let e = read_with(&big, &lim).unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::TooLarge { limit: 10 });
        // Small input is unaffected.
        assert!(read_with("(x y z)", &lim).is_ok());
    }
}
