//! A recursive-descent S-expression reader with source positions.

use crate::{Pos, Sexpr};
use std::fmt;

/// An error produced while reading S-expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// Where in the input the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub kind: ReadErrorKind,
}

/// The kinds of reader errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadErrorKind {
    /// Input ended inside a list or other composite token.
    UnexpectedEof,
    /// A `)` with no matching `(`.
    UnbalancedClose,
    /// A malformed `#...` token.
    BadHash(String),
    /// A string literal was not terminated.
    UnterminatedString,
    /// An integer literal overflowed `i64`.
    IntOverflow(String),
    /// Dotted pairs are not part of the subject language.
    DottedPair,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ReadErrorKind::UnexpectedEof => write!(f, "{}: unexpected end of input", self.pos),
            ReadErrorKind::UnbalancedClose => write!(f, "{}: unbalanced ')'", self.pos),
            ReadErrorKind::BadHash(t) => write!(f, "{}: bad token #{t}", self.pos),
            ReadErrorKind::UnterminatedString => write!(f, "{}: unterminated string", self.pos),
            ReadErrorKind::IntOverflow(t) => write!(f, "{}: integer overflows fixnum: {t}", self.pos),
            ReadErrorKind::DottedPair => {
                write!(f, "{}: dotted pairs are not supported", self.pos)
            }
        }
    }
}

impl std::error::Error for ReadError {}

struct Reader<'a> {
    src: &'a str,
    bytes: &'a [u8],
    offset: usize,
    line: u32,
    col: u32,
}

impl<'a> Reader<'a> {
    fn new(src: &'a str) -> Self {
        Reader { src, bytes: src.as_bytes(), offset: 0, line: 1, col: 1 }
    }

    fn pos(&self) -> Pos {
        Pos { offset: self.offset, line: self.line, col: self.col }
    }

    fn err(&self, kind: ReadErrorKind) -> ReadError {
        ReadError { pos: self.pos(), kind }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn read_expr(&mut self) -> Result<Sexpr, ReadError> {
        self.skip_ws_and_comments();
        match self.peek() {
            None => Err(self.err(ReadErrorKind::UnexpectedEof)),
            Some(b'(') | Some(b'[') => self.read_list(),
            Some(b')') | Some(b']') => Err(self.err(ReadErrorKind::UnbalancedClose)),
            Some(b'\'') => {
                self.bump();
                let quoted = self.read_expr()?;
                Ok(Sexpr::list_of([Sexpr::sym_of("quote"), quoted]))
            }
            Some(b'"') => self.read_string(),
            Some(b'#') => self.read_hash(),
            Some(_) => self.read_atom(),
        }
    }

    fn read_list(&mut self) -> Result<Sexpr, ReadError> {
        self.bump(); // consume '(' or '['
        let mut items = Vec::new();
        loop {
            self.skip_ws_and_comments();
            match self.peek() {
                None => return Err(self.err(ReadErrorKind::UnexpectedEof)),
                Some(b')') | Some(b']') => {
                    self.bump();
                    return Ok(Sexpr::List(items));
                }
                Some(b'.') => {
                    // A lone dot introduces a dotted pair, which the
                    // subject language excludes; `.5`-style atoms do not
                    // occur because floats are not in the language either.
                    let next = self.bytes.get(self.offset + 1).copied();
                    if next.is_none() || next.is_some_and(|b| b.is_ascii_whitespace() || b == b')') {
                        return Err(self.err(ReadErrorKind::DottedPair));
                    }
                    items.push(self.read_expr()?);
                }
                Some(_) => items.push(self.read_expr()?),
            }
        }
    }

    fn read_string(&mut self) -> Result<Sexpr, ReadError> {
        self.bump(); // consume '"'
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(ReadErrorKind::UnterminatedString)),
                Some(b'"') => return Ok(Sexpr::Str(s.into())),
                Some(b'\\') => match self.bump() {
                    None => return Err(self.err(ReadErrorKind::UnterminatedString)),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b) => s.push(b as char),
                },
                Some(b) => s.push(b as char),
            }
        }
    }

    fn read_hash(&mut self) -> Result<Sexpr, ReadError> {
        let start = self.pos();
        self.bump(); // consume '#'
        match self.peek() {
            Some(b't') => {
                self.bump();
                Ok(Sexpr::Bool(true))
            }
            Some(b'f') => {
                self.bump();
                Ok(Sexpr::Bool(false))
            }
            Some(b'\\') => {
                self.bump();
                let tok_start = self.offset;
                // A character token is at least one character long; named
                // characters extend while alphabetic.
                if self.bump().is_none() {
                    return Err(ReadError { pos: start, kind: ReadErrorKind::UnexpectedEof });
                }
                while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-') {
                    self.bump();
                }
                let tok = &self.src[tok_start..self.offset];
                match tok {
                    "space" => Ok(Sexpr::Char(' ')),
                    "newline" => Ok(Sexpr::Char('\n')),
                    "tab" => Ok(Sexpr::Char('\t')),
                    t if t.chars().count() == 1 => Ok(Sexpr::Char(t.chars().next().unwrap())),
                    t => Err(ReadError {
                        pos: start,
                        kind: ReadErrorKind::BadHash(format!("\\{t}")),
                    }),
                }
            }
            _ => {
                let tok_start = self.offset;
                while self.peek().is_some_and(|b| !b.is_ascii_whitespace() && b != b'(' && b != b')')
                {
                    self.bump();
                }
                Err(ReadError {
                    pos: start,
                    kind: ReadErrorKind::BadHash(self.src[tok_start..self.offset].to_string()),
                })
            }
        }
    }

    fn read_atom(&mut self) -> Result<Sexpr, ReadError> {
        let start = self.offset;
        while self.peek().is_some_and(|b| {
            !b.is_ascii_whitespace()
                && b != b'('
                && b != b')'
                && b != b'['
                && b != b']'
                && b != b';'
                && b != b'"'
                && b != b'\''
        }) {
            self.bump();
        }
        let tok = &self.src[start..self.offset];
        debug_assert!(!tok.is_empty());
        // Integer literals: optional sign followed by digits.
        let body = tok.strip_prefix(['-', '+']).unwrap_or(tok);
        if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
            match tok.parse::<i64>() {
                Ok(n) => return Ok(Sexpr::Int(n)),
                Err(_) => {
                    return Err(self.err(ReadErrorKind::IntOverflow(tok.to_string())));
                }
            }
        }
        Ok(Sexpr::Sym(tok.into()))
    }
}

/// Reads every S-expression in `src`.
///
/// # Errors
///
/// Returns a [`ReadError`] with position information on malformed input.
pub fn read(src: &str) -> Result<Vec<Sexpr>, ReadError> {
    let mut r = Reader::new(src);
    let mut out = Vec::new();
    loop {
        r.skip_ws_and_comments();
        if r.peek().is_none() {
            return Ok(out);
        }
        out.push(r.read_expr()?);
    }
}

/// Reads exactly one S-expression; trailing input after the first
/// expression is ignored.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed or empty input.
pub fn read_one(src: &str) -> Result<Sexpr, ReadError> {
    let mut r = Reader::new(src);
    r.read_expr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_atoms() {
        assert_eq!(read_one("42").unwrap(), Sexpr::Int(42));
        assert_eq!(read_one("-42").unwrap(), Sexpr::Int(-42));
        assert_eq!(read_one("+42").unwrap(), Sexpr::Int(42));
        assert_eq!(read_one("#t").unwrap(), Sexpr::Bool(true));
        assert_eq!(read_one("#f").unwrap(), Sexpr::Bool(false));
        assert_eq!(read_one("null?").unwrap(), Sexpr::sym_of("null?"));
        assert_eq!(read_one("-").unwrap(), Sexpr::sym_of("-"));
        assert_eq!(read_one("+").unwrap(), Sexpr::sym_of("+"));
        assert_eq!(read_one("1+").unwrap(), Sexpr::sym_of("1+"));
    }

    #[test]
    fn reads_chars() {
        assert_eq!(read_one("#\\a").unwrap(), Sexpr::Char('a'));
        assert_eq!(read_one("#\\space").unwrap(), Sexpr::Char(' '));
        assert_eq!(read_one("#\\newline").unwrap(), Sexpr::Char('\n'));
        assert_eq!(read_one("#\\0").unwrap(), Sexpr::Char('0'));
    }

    #[test]
    fn reads_strings() {
        assert_eq!(read_one("\"hi\"").unwrap(), Sexpr::Str("hi".into()));
        assert_eq!(read_one("\"a\\\"b\"").unwrap(), Sexpr::Str("a\"b".into()));
        assert_eq!(read_one("\"a\\nb\"").unwrap(), Sexpr::Str("a\nb".into()));
    }

    #[test]
    fn reads_lists_and_brackets() {
        let e = read_one("(+ 1 (  * 2 3 ))").unwrap();
        assert_eq!(e.to_string(), "(+ 1 (* 2 3))");
        let e = read_one("[+ 1 2]").unwrap();
        assert_eq!(e.to_string(), "(+ 1 2)");
        assert_eq!(read_one("()").unwrap(), Sexpr::nil());
    }

    #[test]
    fn reads_quote_sugar() {
        let e = read_one("'(a b)").unwrap();
        assert_eq!(e.to_string(), "(quote (a b))");
        let e = read_one("''x").unwrap();
        assert_eq!(e.to_string(), "(quote (quote x))");
    }

    #[test]
    fn skips_comments() {
        let es = read("; hello\n(a) ; trailing\n(b)").unwrap();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].to_string(), "(a)");
        assert_eq!(es[1].to_string(), "(b)");
    }

    #[test]
    fn error_positions() {
        let e = read("(a\n   b").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnexpectedEof);
        assert_eq!(e.pos.line, 2);
        let e = read(")").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnbalancedClose);
        assert_eq!(e.pos.line, 1);
        assert_eq!(e.pos.col, 1);
    }

    #[test]
    fn rejects_dotted_pairs() {
        let e = read("(a . b)").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::DottedPair);
    }

    #[test]
    fn rejects_overflow_and_bad_hash() {
        let e = read("99999999999999999999").unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::IntOverflow(_)));
        let e = read("#q").unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::BadHash(_)));
        let e = read("#\\spaces").unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::BadHash(_)));
    }

    #[test]
    fn unterminated_string() {
        let e = read("\"abc").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnterminatedString);
    }

    #[test]
    fn reads_many() {
        let es = read("1 2 (3 4) five").unwrap();
        assert_eq!(es.len(), 4);
    }

    #[test]
    fn empty_input_is_empty_vec() {
        assert_eq!(read("").unwrap(), vec![]);
        assert_eq!(read("  ; only a comment").unwrap(), vec![]);
    }
}
