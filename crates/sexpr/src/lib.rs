//! S-expressions: the concrete syntax shared by every component of the
//! realistic-pe compiler suite.
//!
//! The paper's subject language, its desugared tail form, the residual
//! target language S₀, and the first-order input language of the Unmix
//! clone are all written as S-expressions.  This crate provides the
//! [`Sexpr`] data type, a [`read`](crate::read) function (a classic
//! recursive-descent reader with source positions), and a pretty printer.
//!
//! # Example
//!
//! ```
//! use pe_sexpr::{read_one, Sexpr};
//!
//! let e = read_one("(define (append x y) (if (null? x) y 42))").unwrap();
//! assert!(e.is_list());
//! assert_eq!(e.list().unwrap()[0].sym(), Some("define"));
//! ```

mod print;
mod reader;

pub use pe_governor::Limits;
pub use print::{pretty, pretty_width};
pub use reader::{
    read, read_one, read_one_with, read_positioned, read_positioned_with, read_with, ReadError,
    ReadErrorKind,
};

use std::fmt;
use std::sync::Arc;

/// A source position (byte offset, 1-based line and column) attached to
/// reader errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Byte offset into the input string.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An S-expression.
///
/// Symbols are interned per-expression via `Arc<str>` so that cloning large
/// trees (which the compiler pipeline does freely) stays cheap.
#[derive(Clone, PartialEq, Eq)]
pub enum Sexpr {
    /// A symbol such as `append` or `null?`.
    Sym(Arc<str>),
    /// A fixnum integer.
    Int(i64),
    /// A boolean written `#t` / `#f`.
    Bool(bool),
    /// A character written `#\a`, `#\space`, `#\newline`.
    Char(char),
    /// A string literal.
    Str(Arc<str>),
    /// A proper list `(e1 e2 ...)`; the empty list is `List(vec![])`.
    List(Vec<Sexpr>),
}

impl Sexpr {
    /// Builds a symbol.
    pub fn sym_of(name: &str) -> Sexpr {
        Sexpr::Sym(name.into())
    }

    /// Builds a proper list.
    pub fn list_of<I: IntoIterator<Item = Sexpr>>(items: I) -> Sexpr {
        Sexpr::List(items.into_iter().collect())
    }

    /// The empty list `()`.
    pub fn nil() -> Sexpr {
        Sexpr::List(Vec::new())
    }

    /// Returns the symbol name if this is a symbol.
    pub fn sym(&self) -> Option<&str> {
        match self {
            Sexpr::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer value if this is a fixnum.
    pub fn int(&self) -> Option<i64> {
        match self {
            Sexpr::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the elements if this is a list.
    pub fn list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List(xs) => Some(xs),
            _ => None,
        }
    }

    /// True if this is a list (possibly empty).
    pub fn is_list(&self) -> bool {
        matches!(self, Sexpr::List(_))
    }

    /// True if this is the empty list.
    pub fn is_nil(&self) -> bool {
        matches!(self, Sexpr::List(xs) if xs.is_empty())
    }

    /// True if this is a list whose head is the symbol `head`.
    pub fn is_form(&self, head: &str) -> bool {
        match self {
            Sexpr::List(xs) => xs.first().and_then(Sexpr::sym) == Some(head),
            _ => false,
        }
    }

    /// If this is `(head a b ...)`, returns the arguments `[a, b, ...]`.
    pub fn form_args(&self, head: &str) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List(xs) if xs.first().and_then(Sexpr::sym) == Some(head) => Some(&xs[1..]),
            _ => None,
        }
    }
}

impl Drop for Sexpr {
    fn drop(&mut self) {
        // Flatten nested lists iteratively before the automatic drop
        // glue runs: a 100k-deep residual must be droppable, not just
        // printable, without overflowing the host stack.
        if let Sexpr::List(xs) = self {
            let mut stack = std::mem::take(xs);
            while let Some(mut e) = stack.pop() {
                if let Sexpr::List(inner) = &mut e {
                    stack.append(inner);
                }
            }
        }
    }
}

impl fmt::Debug for Sexpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Sexpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_flat(self, f)
    }
}

/// Writes the single-line form of `e` using an explicit work stack, so
/// printing is total: residual programs from the specializer can nest
/// hundreds of thousands of levels deep, and a recursive `Display` would
/// overflow the host stack exactly where the reader (iterative since the
/// governor change) no longer does.  `Display` and the pretty printer
/// both funnel through here.
pub(crate) fn write_flat<W: fmt::Write>(e: &Sexpr, f: &mut W) -> fmt::Result {
    enum Step<'a> {
        Node(&'a Sexpr),
        Text(&'static str),
    }
    let mut work = vec![Step::Node(e)];
    while let Some(step) = work.pop() {
        let e = match step {
            Step::Text(s) => {
                f.write_str(s)?;
                continue;
            }
            Step::Node(e) => e,
        };
        match e {
            Sexpr::Sym(s) => f.write_str(s)?,
            Sexpr::Int(n) => write!(f, "{n}")?,
            Sexpr::Bool(true) => f.write_str("#t")?,
            Sexpr::Bool(false) => f.write_str("#f")?,
            Sexpr::Char(c) => match c {
                ' ' => f.write_str("#\\space")?,
                '\n' => f.write_str("#\\newline")?,
                '\t' => f.write_str("#\\tab")?,
                c => write!(f, "#\\{c}")?,
            },
            Sexpr::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")?;
            }
            Sexpr::List(xs) => {
                f.write_str("(")?;
                work.push(Step::Text(")"));
                for (i, x) in xs.iter().enumerate().rev() {
                    work.push(Step::Node(x));
                    if i > 0 {
                        work.push(Step::Text(" "));
                    }
                }
            }
        }
    }
    Ok(())
}

impl From<i64> for Sexpr {
    fn from(n: i64) -> Sexpr {
        Sexpr::Int(n)
    }
}

impl From<bool> for Sexpr {
    fn from(b: bool) -> Sexpr {
        Sexpr::Bool(b)
    }
}

impl From<&str> for Sexpr {
    fn from(s: &str) -> Sexpr {
        Sexpr::Sym(s.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_atoms() {
        assert_eq!(Sexpr::Int(42).to_string(), "42");
        assert_eq!(Sexpr::Int(-7).to_string(), "-7");
        assert_eq!(Sexpr::Bool(true).to_string(), "#t");
        assert_eq!(Sexpr::Bool(false).to_string(), "#f");
        assert_eq!(Sexpr::sym_of("car").to_string(), "car");
        assert_eq!(Sexpr::Char('x').to_string(), "#\\x");
        assert_eq!(Sexpr::Char(' ').to_string(), "#\\space");
        assert_eq!(Sexpr::Char('\n').to_string(), "#\\newline");
    }

    #[test]
    fn display_strings_escape() {
        assert_eq!(
            Sexpr::Str("a\"b\\c\nd".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn display_lists() {
        let e = Sexpr::list_of([Sexpr::sym_of("+"), Sexpr::Int(1), Sexpr::nil()]);
        assert_eq!(e.to_string(), "(+ 1 ())");
    }

    #[test]
    fn form_accessors() {
        let e = read_one("(define (f x) x)").unwrap();
        assert!(e.is_form("define"));
        assert!(!e.is_form("lambda"));
        let args = e.form_args("define").unwrap();
        assert_eq!(args.len(), 2);
        assert_eq!(args[1].sym(), Some("x"));
    }

    #[test]
    fn display_is_total_on_deep_trees() {
        // 200k nested lists: a recursive Display would overflow the
        // host stack long before this depth.
        let mut e = Sexpr::Int(7);
        for _ in 0..200_000 {
            e = Sexpr::list_of([e]);
        }
        let s = e.to_string();
        assert_eq!(s.len(), 2 * 200_000 + 1);
        assert!(s.starts_with("((") && s.ends_with("))"));
        assert!(s.contains('7'));
    }

    #[test]
    fn is_nil_only_for_empty_list() {
        assert!(Sexpr::nil().is_nil());
        assert!(!Sexpr::Int(0).is_nil());
        assert!(!Sexpr::list_of([Sexpr::Int(0)]).is_nil());
    }
}
