//! A simple indentation-based pretty printer for S-expressions.
//!
//! Residual programs produced by the specializer can be deeply nested;
//! the pretty printer keeps them readable in golden tests, examples and
//! `EXPERIMENTS.md` listings.  Like the reader, it is fully iterative:
//! layout decisions and emission run over explicit work stacks, so a
//! 100k-deep residual pretty-prints without touching the host stack.

use crate::{write_flat, Sexpr};

/// Pretty-prints `e` with the default line width of 78 columns.
pub fn pretty(e: &Sexpr) -> String {
    pretty_width(e, 78)
}

/// Pretty-prints `e`, breaking lists that would exceed `width` columns.
pub fn pretty_width(e: &Sexpr, width: usize) -> String {
    let mut out = String::new();
    go(e, 0, width, &mut out);
    out
}

/// Heads whose first arguments stay on the head line when broken, in the
/// style of Lisp pretty printers (`define`, `lambda`, `let`, `if`).
fn head_args_on_line(head: &str) -> usize {
    match head {
        "define" | "lambda" | "let" => 1,
        "if" => 1,
        _ => 0,
    }
}

/// Printed width of an integer, matching `Display` byte-for-byte.
fn int_len(n: i64) -> usize {
    let mag = n.unsigned_abs();
    let digits = if mag == 0 { 1 } else { mag.ilog10() as usize + 1 };
    usize::from(n < 0) + digits
}

/// True if the flat printing of `e` fits within `budget` columns.
///
/// The scan walks an explicit stack and stops as soon as the running
/// length exceeds the budget, so each call costs O(min(size, budget)).
/// The previous `flat_len` re-rendered the whole subtree with the
/// recursive `to_string` at every node, which both overflowed the host
/// stack on deep trees and made the printer O(n²).
fn fits_flat(e: &Sexpr, budget: usize) -> bool {
    let mut len = 0usize;
    let mut work = vec![e];
    while let Some(e) = work.pop() {
        len += match e {
            Sexpr::Sym(s) => s.len(),
            Sexpr::Int(n) => int_len(*n),
            Sexpr::Bool(_) => 2,
            Sexpr::Char(' ') => "#\\space".len(),
            Sexpr::Char('\n') => "#\\newline".len(),
            Sexpr::Char('\t') => "#\\tab".len(),
            Sexpr::Char(c) => 2 + c.len_utf8(),
            Sexpr::Str(s) => {
                2 + s
                    .chars()
                    .map(|c| match c {
                        '"' | '\\' | '\n' => 2,
                        c => c.len_utf8(),
                    })
                    .sum::<usize>()
            }
            Sexpr::List(xs) => {
                work.extend(xs.iter());
                // Parens plus the spaces between elements.
                2 + xs.len().saturating_sub(1)
            }
        };
        if len > budget {
            return false;
        }
    }
    true
}

fn go(root: &Sexpr, indent: usize, width: usize, out: &mut String) {
    enum Step<'a> {
        /// Lay out a node at the given indentation.
        Node(&'a Sexpr, usize),
        /// Emit a node flat (header arguments; they are small in practice).
        Flat(&'a Sexpr),
        /// Emit literal text.
        Text(&'static str),
        /// Emit a newline followed by this much indentation.
        Break(usize),
    }
    let mut work = vec![Step::Node(root, indent)];
    while let Some(step) = work.pop() {
        match step {
            Step::Text(s) => out.push_str(s),
            Step::Break(ind) => {
                out.push('\n');
                for _ in 0..ind {
                    out.push(' ');
                }
            }
            Step::Flat(e) => {
                let _ = write_flat(e, out); // writing to a String cannot fail
            }
            Step::Node(e, indent) => match e {
                Sexpr::List(xs)
                    if !xs.is_empty() && !fits_flat(e, width.saturating_sub(indent)) =>
                {
                    out.push('(');
                    let keep = xs[0]
                        .sym()
                        .map(head_args_on_line)
                        .unwrap_or(0)
                        .min(xs.len() - 1);
                    // Clamp runaway indentation: past `width` columns the
                    // indent no longer aids readability, and letting it
                    // grow makes output size quadratic in nesting depth.
                    let child_indent = (indent + 2).min(width);
                    work.push(Step::Text(")"));
                    for x in xs[1 + keep..].iter().rev() {
                        work.push(Step::Node(x, child_indent));
                        work.push(Step::Break(child_indent));
                    }
                    for x in xs[1..=keep].iter().rev() {
                        work.push(Step::Flat(x));
                        work.push(Step::Text(" "));
                    }
                    work.push(Step::Node(&xs[0], (indent + 1).min(width)));
                }
                e => {
                    let _ = write_flat(e, out); // writing to a String cannot fail
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_one;

    #[test]
    fn short_expressions_stay_flat() {
        let e = read_one("(+ 1 2)").unwrap();
        assert_eq!(pretty(&e), "(+ 1 2)");
    }

    #[test]
    fn long_expressions_break() {
        let e = read_one(
            "(define (f x) (if (null? x) something-quite-long-here \
             (another-long-function-name x x x x)))",
        )
        .unwrap();
        let p = pretty_width(&e, 40);
        assert!(p.contains('\n'));
        // Re-reading the pretty-printed form yields the same tree.
        assert_eq!(read_one(&p).unwrap(), e);
    }

    #[test]
    fn pretty_roundtrips() {
        for src in [
            "(define (append x y) (cps-append x y (lambda (v) v)))",
            "(a (b (c (d (e (f (g (h (i (j 1 2 3 4 5 6 7 8 9 10))))))))))",
            "(quote (1 2 3 #t #\\a \"str\"))",
        ] {
            let e = read_one(src).unwrap();
            let p = pretty_width(&e, 20);
            assert_eq!(read_one(&p).unwrap(), e, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn fits_flat_matches_display_length() {
        for src in [
            "(+ 1 2)",
            "()",
            "(a (b -10 0 1024) #t #f #\\x #\\space \"a\\\"b\\\\c\\nd\")",
            "(define (f x) (if (null? x) y (g x 1)))",
        ] {
            let e = read_one(src).unwrap();
            let n = e.to_string().len();
            assert!(fits_flat(&e, n), "{src} should fit in its own length");
            assert!(!fits_flat(&e, n - 1), "{src} should not fit in one less");
        }
    }

    #[test]
    fn pretty_is_total_on_deep_trees() {
        // 100k nested single-element lists: the recursive printer
        // overflowed the stack here, and the O(n²) flat_len made it
        // quadratic well before that.
        let mut e = Sexpr::Int(1);
        for _ in 0..100_000 {
            e = Sexpr::list_of([e]);
        }
        let p = pretty_width(&e, 10);
        assert_eq!(p.len(), 2 * 100_000 + 1);
        assert!(p.starts_with('(') && p.ends_with(')'));
    }

    #[test]
    fn deep_defines_break_without_recursion() {
        // Nested defines force the "broken list" path at every level.
        let mut e = read_one("(f x)").unwrap();
        for _ in 0..50_000 {
            e = Sexpr::list_of([
                Sexpr::sym_of("begin"),
                Sexpr::sym_of("this-symbol-is-long-enough-to-break-lines"),
                e,
            ]);
        }
        let p = pretty_width(&e, 30);
        assert!(p.contains('\n'));
        assert!(p.ends_with(')'));
    }
}
