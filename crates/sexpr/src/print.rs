//! A simple indentation-based pretty printer for S-expressions.
//!
//! Residual programs produced by the specializer can be deeply nested;
//! the pretty printer keeps them readable in golden tests, examples and
//! `EXPERIMENTS.md` listings.

use crate::Sexpr;

/// Pretty-prints `e` with the default line width of 78 columns.
pub fn pretty(e: &Sexpr) -> String {
    pretty_width(e, 78)
}

/// Pretty-prints `e`, breaking lists that would exceed `width` columns.
pub fn pretty_width(e: &Sexpr, width: usize) -> String {
    let mut out = String::new();
    go(e, 0, width, &mut out);
    out
}

/// Heads whose first arguments stay on the head line when broken, in the
/// style of Lisp pretty printers (`define`, `lambda`, `let`, `if`).
fn head_args_on_line(head: &str) -> usize {
    match head {
        "define" | "lambda" | "let" => 1,
        "if" => 1,
        _ => 0,
    }
}

fn flat_len(e: &Sexpr) -> usize {
    e.to_string().len()
}

fn go(e: &Sexpr, indent: usize, width: usize, out: &mut String) {
    match e {
        Sexpr::List(xs) if !xs.is_empty() && indent + flat_len(e) > width => {
            out.push('(');
            go(&xs[0], indent + 1, width, out);
            let keep = xs[0]
                .sym()
                .map(head_args_on_line)
                .unwrap_or(0)
                .min(xs.len() - 1);
            for x in &xs[1..=keep] {
                out.push(' ');
                // Keep header arguments flat; they are small in practice.
                out.push_str(&x.to_string());
            }
            let child_indent = indent + 2;
            for x in &xs[1 + keep..] {
                out.push('\n');
                out.push_str(&" ".repeat(child_indent));
                go(x, child_indent, width, out);
            }
            out.push(')');
        }
        _ => out.push_str(&e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_one;

    #[test]
    fn short_expressions_stay_flat() {
        let e = read_one("(+ 1 2)").unwrap();
        assert_eq!(pretty(&e), "(+ 1 2)");
    }

    #[test]
    fn long_expressions_break() {
        let e = read_one(
            "(define (f x) (if (null? x) something-quite-long-here \
             (another-long-function-name x x x x)))",
        )
        .unwrap();
        let p = pretty_width(&e, 40);
        assert!(p.contains('\n'));
        // Re-reading the pretty-printed form yields the same tree.
        assert_eq!(read_one(&p).unwrap(), e);
    }

    #[test]
    fn pretty_roundtrips() {
        for src in [
            "(define (append x y) (cps-append x y (lambda (v) v)))",
            "(a (b (c (d (e (f (g (h (i (j 1 2 3 4 5 6 7 8 9 10))))))))))",
            "(quote (1 2 3 #t #\\a \"str\"))",
        ] {
            let e = read_one(src).unwrap();
            let p = pretty_width(&e, 20);
            assert_eq!(read_one(&p).unwrap(), e, "roundtrip failed for {src}");
        }
    }
}
