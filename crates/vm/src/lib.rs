//! The S₀ virtual machine — an executable model of the hand-written C
//! translation of §5.1.
//!
//! The C back end turns the whole program into a single function:
//! procedures become labels, tail calls become assignments to global
//! parameter variables followed by `goto`, and closures are flat
//! vectors.  This crate implements exactly that execution model in Rust:
//! one dispatch loop, a register frame for the current procedure's
//! parameters, and resolved (index-based) operands — so benchmark
//! numbers measured here transfer to the C code's behaviour, and the
//! instruction/allocation counters give deterministic, machine-
//! independent cost figures for the evaluation tables.
//!
//! ```
//! use pe_core::{compile, CompileOptions};
//! use pe_frontend::{desugar, parse_source};
//! use pe_interp::{Datum, Limits};
//! use pe_vm::Vm;
//!
//! let p = parse_source("(define (double x) (+ x x))").unwrap();
//! let s0 = compile(&desugar(&p).unwrap(), "double", &CompileOptions::default()).unwrap();
//! let vm = Vm::compile(&s0).unwrap();
//! let (result, stats) = vm.run(&[Datum::Int(21)], Limits::default()).unwrap();
//! assert_eq!(result, Datum::Int(42));
//! assert!(stats.steps >= 1);
//! ```

use pe_core::{S0Program, S0Simple, S0Tail};
use pe_frontend::ast::{Constant, Prim};
use pe_governor::Trap;
use pe_intern::{Symbol, SymbolMap, SymbolTable};
use pe_interp::value::{apply_prim, Value};
use pe_interp::{Datum, Fuel, InterpError, Limits};
use std::fmt;
use std::rc::Rc;

/// A flat runtime closure: label + captured values, the §5.1 vector
/// representation.
#[derive(Debug, Clone, PartialEq)]
pub struct VmClosure {
    /// The label stored by `make-closure`.
    pub label: u32,
    /// Captured values.
    pub freevals: Rc<[V]>,
}

type V = Value<VmClosure>;

/// Execution counters: deterministic cost figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Machine transitions (returns, branches, tail calls).
    pub steps: u64,
    /// Heap allocations (pairs and closures).
    pub allocs: u64,
    /// Tail calls (`goto`s in the C model).
    pub calls: u64,
}

/// An error while compiling S₀ to the register machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A call targets an undefined procedure.
    UndefinedProc(String),
    /// A call has the wrong number of arguments.
    Arity { name: String, expected: usize, got: usize },
    /// A variable is not a parameter of its procedure.
    UnboundVar { proc_name: String, var: String },
    /// The entry procedure is missing.
    NoEntry(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UndefinedProc(p) => write!(f, "vm: call to undefined procedure {p}"),
            VmError::Arity { name, expected, got } => {
                write!(f, "vm: {name} expects {expected} argument(s), got {got}")
            }
            VmError::UnboundVar { proc_name, var } => {
                write!(f, "vm: unbound variable {var} in {proc_name}")
            }
            VmError::NoEntry(e) => write!(f, "vm: entry {e} not defined"),
        }
    }
}

impl std::error::Error for VmError {}

/// A resolved simple expression: variables are frame-slot indices.
#[derive(Debug, Clone)]
enum RSimple {
    Slot(usize),
    /// Index into the [`Vm`]'s constant table.  Constants are stored as
    /// [`Constant`] (which is `Send`, so the compiled `Vm` can cross
    /// threads) and materialized into runtime values once per run — the
    /// dispatch loop then clones them shallowly from the run's pool.
    Const(u32),
    Prim(Prim, Vec<RSimple>),
    MakeClosure(u32, Vec<RSimple>),
    ClosureLabel(Box<RSimple>),
    ClosureFreeval(Box<RSimple>, usize),
}

/// A resolved tail expression: calls are block indices.
#[derive(Debug, Clone)]
enum RTail {
    Return(RSimple),
    If(RSimple, Box<RTail>, Box<RTail>),
    Goto(usize, Vec<RSimple>),
    Fail(String),
}

#[derive(Debug)]
struct Block {
    arity: usize,
    body: RTail,
}

/// A compiled S₀ program, ready to run.
#[derive(Debug)]
pub struct Vm {
    blocks: Vec<Block>,
    /// Block names, parallel to `blocks` — kept for trap diagnostics.
    names: Vec<String>,
    /// The constant table `RSimple::Const` indexes into.
    consts: Vec<Constant>,
    entry: usize,
    entry_name: String,
}

impl Vm {
    /// Resolves names to indices, checking S₀ well-formedness.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] naming the first violation.
    pub fn compile(p: &S0Program) -> Result<Vm, VmError> {
        // Every name is interned exactly once; from then on, procedure
        // and parameter resolution is integer-indexed ([`SymbolMap`] /
        // [`SlotFrame`]) and never re-hashes a string.  Residual
        // programs repeat the same specialized names thousands of
        // times, so this is the resolver's hot path.
        let mut syms = SymbolTable::new();
        let mut index: SymbolMap<usize> = SymbolMap::with_capacity(p.procs.len());
        for (i, q) in p.procs.iter().enumerate() {
            index.insert(syms.intern(&q.name), i);
        }
        let entry = syms
            .get(p.entry.as_str())
            .and_then(|s| index.get(s).copied())
            .ok_or_else(|| VmError::NoEntry(p.entry.clone()))?;
        let mut blocks = Vec::with_capacity(p.procs.len());
        let mut names = Vec::with_capacity(p.procs.len());
        let mut slots = SlotFrame::default();
        let mut consts = Vec::new();
        for q in &p.procs {
            slots.begin();
            for (i, v) in q.params.iter().enumerate() {
                slots.set(syms.intern(v), i);
            }
            let body = resolve_tail(&q.body, &q.name, &syms, &slots, &index, p, &mut consts)?;
            blocks.push(Block { arity: q.params.len(), body });
            names.push(q.name.clone());
        }
        Ok(Vm { blocks, names, consts, entry, entry_name: p.entry.clone() })
    }

    /// The number of compiled blocks (procedures).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The name of the block at `pc`, as reported in traps.
    pub fn block_name(&self, pc: usize) -> Option<&str> {
        self.names.get(pc).map(String::as_str)
    }

    /// Runs the program on first-order inputs, returning the result and
    /// the execution counters.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on dynamic faults, `%fail`, exhausted
    /// budgets ([`Limits::fuel`], [`Limits::max_heap`]) or a
    /// closure-valued result.  Machine-invariant violations surface as
    /// [`Trap::UnboundLabel`] / [`Trap::BadDispatch`] carrying the
    /// program counter (block index) — never as a panic.
    pub fn run(&self, args: &[Datum], limits: Limits) -> Result<(Datum, VmStats), InterpError> {
        self.run_with(args, limits, &mut pe_trace::NullSink)
    }

    /// Like [`Vm::run`], under a `vm-run` span on `sink` with the
    /// execution counters flushed at the end — and the governor meter
    /// snapshot when the machine traps, so the trap carries its
    /// metrics.
    ///
    /// # Errors
    ///
    /// As [`Vm::run`].
    pub fn run_with(
        &self,
        args: &[Datum],
        limits: Limits,
        sink: &mut dyn pe_trace::Sink,
    ) -> Result<(Datum, VmStats), InterpError> {
        let t = pe_trace::begin(sink, pe_trace::Phase::VmRun);
        let mut stats = VmStats::default();
        let mut fuel = Fuel::new(&limits);
        let result = self.exec(args, &mut stats, &mut fuel, &mut NoProfile);
        if sink.enabled() {
            use pe_trace::Counter;
            sink.counter(Counter::VmSteps, stats.steps);
            sink.counter(Counter::VmAllocs, stats.allocs);
            sink.counter(Counter::VmCalls, stats.calls);
            if result.is_err() {
                let snap = fuel.snapshot();
                pe_trace::trap_gauges(sink, snap.steps, snap.cells, snap.peak_depth as u64);
            }
        }
        pe_trace::end(sink, t);
        result.map(|v| (v, stats))
    }

    /// [`Vm::run_with`] with the hot-label profiler switched on: the
    /// run additionally counts block entries and dispatch-arm takes
    /// per label and emits per-label `Event::Attr` rows under
    /// `vm-run`, with the run's measured execution time spread across
    /// labels by entry share.  The normal [`Vm::run_with`] path is
    /// monomorphized over a no-op profiler, so it pays nothing for
    /// this — profiling is opt-in per run, not a VM mode.
    ///
    /// # Errors
    ///
    /// As [`Vm::run`].
    pub fn run_profiled_with(
        &self,
        args: &[Datum],
        limits: Limits,
        sink: &mut dyn pe_trace::Sink,
    ) -> Result<(Datum, VmStats, VmProfile), InterpError> {
        let t = pe_trace::begin(sink, pe_trace::Phase::VmRun);
        let mut stats = VmStats::default();
        let mut fuel = Fuel::new(&limits);
        let mut profile = VmProfile::sized(self.blocks.len());
        let t0 = std::time::Instant::now();
        let result = self.exec(args, &mut stats, &mut fuel, &mut profile);
        let exec_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if sink.enabled() {
            use pe_trace::Counter;
            sink.counter(Counter::VmSteps, stats.steps);
            sink.counter(Counter::VmAllocs, stats.allocs);
            sink.counter(Counter::VmCalls, stats.calls);
            if result.is_err() {
                let snap = fuel.snapshot();
                pe_trace::trap_gauges(sink, snap.steps, snap.cells, snap.peak_depth as u64);
            }
            let parts = pe_prof::distribute_ns(exec_ns, &profile.entries);
            for (pc, (&entries, ns)) in
                profile.entries.iter().zip(parts).enumerate()
            {
                if entries > 0 {
                    let name = self.block_name(pc).unwrap_or("<unknown>");
                    sink.attr(pe_trace::Phase::VmRun, name, ns, entries);
                }
            }
        }
        pe_trace::end(sink, t);
        result.map(|v| (v, stats, profile))
    }

    fn exec<P: Profiler>(
        &self,
        args: &[Datum],
        stats: &mut VmStats,
        fuel: &mut Fuel,
        prof: &mut P,
    ) -> Result<Datum, InterpError> {
        let mut pc = self.entry;
        let entry = self.blocks.get(pc).ok_or_else(|| {
            InterpError::Trap(Trap::UnboundLabel { label: self.entry_name.clone(), pc })
        })?;
        if entry.arity != args.len() {
            return Err(InterpError::EntryArity {
                name: self.entry_name.clone(),
                expected: entry.arity,
                got: args.len(),
            });
        }
        // Materialize the constant pool for this run: one deep
        // conversion per constant, then every `RSimple::Const` in the
        // loop below is a shallow clone.
        let pool: Vec<V> = self.consts.iter().map(Value::from_constant).collect();
        // The "global parameter variables" of the C translation.
        let mut frame: Vec<V> = args.iter().map(Datum::embed).collect();
        let mut body = &entry.body;
        prof.enter(pc);
        // The machine is a flat goto loop: fuel and the heap budget
        // apply; `max_call_depth` does not (the host stack never grows).
        loop {
            fuel.step()?;
            stats.steps += 1;
            match body {
                RTail::Return(s) => {
                    let v = eval(s, &frame, &pool, pc, stats, fuel)?;
                    return v.to_datum().ok_or(InterpError::ResultNotFirstOrder);
                }
                RTail::If(c, t, e) => {
                    let taken = eval(c, &frame, &pool, pc, stats, fuel)?.is_truthy();
                    prof.branch(pc, taken);
                    body = if taken { t } else { e };
                }
                RTail::Goto(target, args) => {
                    stats.calls += 1;
                    // Arguments are simple expressions over the *current*
                    // frame; evaluate them all, then switch frames — the
                    // C translation's assign-then-goto discipline.
                    let mut next = Vec::with_capacity(args.len());
                    for a in args {
                        next.push(eval(a, &frame, &pool, pc, stats, fuel)?);
                    }
                    let block = self.blocks.get(*target).ok_or_else(|| {
                        InterpError::Trap(Trap::UnboundLabel {
                            label: format!("block {target}"),
                            pc,
                        })
                    })?;
                    frame = next;
                    body = &block.body;
                    pc = *target;
                    prof.enter(pc);
                }
                RTail::Fail(m) => return Err(InterpError::NotAProcedure(m.clone())),
            }
        }
    }
}

/// The execution loop's profiling hook.  [`NoProfile`] monomorphizes
/// to nothing (the default path); [`VmProfile`] counts label entries
/// and dispatch arms for the hot-path ranking a native tier needs.
trait Profiler {
    fn enter(&mut self, pc: usize);
    fn branch(&mut self, pc: usize, taken: bool);
}

/// The zero-cost profiler: every hook is an empty inline body.
struct NoProfile;

impl Profiler for NoProfile {
    #[inline(always)]
    fn enter(&mut self, _pc: usize) {}

    #[inline(always)]
    fn branch(&mut self, _pc: usize, _taken: bool) {}
}

/// Per-label execution counts from one profiled run
/// ([`Vm::run_profiled_with`]).  Indexes parallel the VM's block
/// table; translate with [`Vm::block_name`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmProfile {
    /// Times each block was entered (the entry block counts its
    /// initial activation).
    pub entries: Vec<u64>,
    /// Conditional dispatches per block: `(true-arm, false-arm)`
    /// takes, summed over every `if` the block executed.
    pub branches: Vec<(u64, u64)>,
}

impl VmProfile {
    fn sized(blocks: usize) -> VmProfile {
        VmProfile { entries: vec![0; blocks], branches: vec![(0, 0); blocks] }
    }

    /// Block indices ranked by entry count (descending, index as the
    /// deterministic tiebreak), hottest first, zero-entry blocks
    /// omitted.
    #[must_use]
    pub fn hottest(&self) -> Vec<usize> {
        let mut idx: Vec<usize> =
            (0..self.entries.len()).filter(|&i| self.entries[i] > 0).collect();
        idx.sort_by(|&a, &b| {
            self.entries[b].cmp(&self.entries[a]).then(a.cmp(&b))
        });
        idx
    }

    /// Total block entries across the run.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        self.entries.iter().sum()
    }
}

impl Profiler for VmProfile {
    #[inline]
    fn enter(&mut self, pc: usize) {
        if let Some(n) = self.entries.get_mut(pc) {
            *n += 1;
        }
    }

    #[inline]
    fn branch(&mut self, pc: usize, taken: bool) {
        if let Some((t, f)) = self.branches.get_mut(pc) {
            if taken {
                *t += 1;
            } else {
                *f += 1;
            }
        }
    }
}

fn eval(
    s: &RSimple,
    frame: &[V],
    pool: &[V],
    pc: usize,
    stats: &mut VmStats,
    fuel: &mut Fuel,
) -> Result<V, InterpError> {
    match s {
        RSimple::Slot(i) => frame.get(*i).cloned().ok_or_else(|| {
            InterpError::Trap(Trap::BadDispatch {
                pc,
                detail: format!("frame slot {i} out of range ({} slots)", frame.len()),
            })
        }),
        RSimple::Const(i) => pool.get(*i as usize).cloned().ok_or_else(|| {
            InterpError::Trap(Trap::BadDispatch {
                pc,
                detail: format!("constant {i} out of range ({} constants)", pool.len()),
            })
        }),
        RSimple::Prim(op, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, frame, pool, pc, stats, fuel)?);
            }
            if *op == Prim::Cons {
                stats.allocs += 1;
                fuel.alloc(1)?;
            }
            Ok(apply_prim(*op, &vals)?)
        }
        RSimple::MakeClosure(label, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, frame, pool, pc, stats, fuel)?);
            }
            stats.allocs += 1;
            fuel.alloc(1)?;
            Ok(Value::Closure(VmClosure { label: *label, freevals: vals.into() }))
        }
        RSimple::ClosureLabel(a) => match eval(a, frame, pool, pc, stats, fuel)? {
            Value::Closure(c) => Ok(Value::Int(i64::from(c.label))),
            v => Err(InterpError::Trap(Trap::BadDispatch {
                pc,
                detail: format!("closure-label of non-closure {v}"),
            })),
        },
        RSimple::ClosureFreeval(a, i) => match eval(a, frame, pool, pc, stats, fuel)? {
            Value::Closure(c) => c.freevals.get(*i).cloned().ok_or_else(|| {
                InterpError::Trap(Trap::BadDispatch {
                    pc,
                    detail: format!(
                        "closure-freeval {i} out of range ({} captured)",
                        c.freevals.len()
                    ),
                })
            }),
            v => Err(InterpError::Trap(Trap::BadDispatch {
                pc,
                detail: format!("closure-freeval of non-closure {v}"),
            })),
        },
    }
}

/// The parameter slots of the procedure currently being resolved, keyed
/// by interned [`Symbol`].  One allocation serves every procedure:
/// [`SlotFrame::begin`] bumps an epoch instead of clearing, so per-proc
/// setup costs only its own parameter count.
#[derive(Default)]
struct SlotFrame {
    stamp: Vec<u32>,
    slot: Vec<usize>,
    epoch: u32,
}

impl SlotFrame {
    fn begin(&mut self) {
        self.epoch += 1;
    }

    fn set(&mut self, sym: Symbol, slot: usize) {
        let i = sym.index();
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
            self.slot.resize(i + 1, 0);
        }
        self.stamp[i] = self.epoch;
        self.slot[i] = slot;
    }

    fn get(&self, sym: Symbol) -> Option<usize> {
        let i = sym.index();
        if self.stamp.get(i) == Some(&self.epoch) {
            Some(self.slot[i])
        } else {
            None
        }
    }
}

fn resolve_simple(
    s: &S0Simple,
    owner: &str,
    syms: &SymbolTable,
    slots: &SlotFrame,
    consts: &mut Vec<Constant>,
) -> Result<RSimple, VmError> {
    Ok(match s {
        S0Simple::Var(v) => RSimple::Slot(
            syms.get(v)
                .and_then(|sym| slots.get(sym))
                .ok_or_else(|| VmError::UnboundVar {
                    proc_name: owner.to_string(),
                    var: v.clone(),
                })?,
        ),
        S0Simple::Const(k) => {
            let i = u32::try_from(consts.len()).unwrap_or(u32::MAX);
            consts.push(k.clone());
            RSimple::Const(i)
        }
        S0Simple::Prim(op, args) => RSimple::Prim(
            *op,
            args.iter()
                .map(|a| resolve_simple(a, owner, syms, slots, consts))
                .collect::<Result<_, _>>()?,
        ),
        S0Simple::MakeClosure(l, args) => RSimple::MakeClosure(
            *l,
            args.iter()
                .map(|a| resolve_simple(a, owner, syms, slots, consts))
                .collect::<Result<_, _>>()?,
        ),
        S0Simple::ClosureLabel(a) => {
            RSimple::ClosureLabel(Box::new(resolve_simple(a, owner, syms, slots, consts)?))
        }
        S0Simple::ClosureFreeval(a, i) => {
            RSimple::ClosureFreeval(Box::new(resolve_simple(a, owner, syms, slots, consts)?), *i)
        }
    })
}

fn resolve_tail(
    t: &S0Tail,
    owner: &str,
    syms: &SymbolTable,
    slots: &SlotFrame,
    index: &SymbolMap<usize>,
    p: &S0Program,
    consts: &mut Vec<Constant>,
) -> Result<RTail, VmError> {
    Ok(match t {
        S0Tail::Return(s) => RTail::Return(resolve_simple(s, owner, syms, slots, consts)?),
        S0Tail::If(c, a, b) => RTail::If(
            resolve_simple(c, owner, syms, slots, consts)?,
            Box::new(resolve_tail(a, owner, syms, slots, index, p, consts)?),
            Box::new(resolve_tail(b, owner, syms, slots, index, p, consts)?),
        ),
        S0Tail::TailCall(callee, args) => {
            let target = *syms
                .get(callee)
                .and_then(|sym| index.get(sym))
                .ok_or_else(|| VmError::UndefinedProc(callee.clone()))?;
            let expected = p.procs[target].params.len();
            if expected != args.len() {
                return Err(VmError::Arity {
                    name: callee.clone(),
                    expected,
                    got: args.len(),
                });
            }
            RTail::Goto(
                target,
                args.iter()
                    .map(|a| resolve_simple(a, owner, syms, slots, consts))
                    .collect::<Result<_, _>>()?,
            )
        }
        S0Tail::Fail(m) => RTail::Fail(m.clone()),
    })
}

/// An error from [`run_s0`], keeping the two failure phases apart: a
/// program that does not compile is not the same fault as a compiled
/// program that traps at run time, and callers can now match on which.
#[derive(Debug, Clone, PartialEq)]
pub enum S0RunError {
    /// The S₀ program failed to compile to the register machine.
    Compile(VmError),
    /// The compiled program faulted while running.
    Run(InterpError),
}

impl fmt::Display for S0RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S0RunError::Compile(e) => write!(f, "compile: {e}"),
            S0RunError::Run(e) => write!(f, "run: {e}"),
        }
    }
}

impl std::error::Error for S0RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            S0RunError::Compile(e) => Some(e),
            S0RunError::Run(e) => Some(e),
        }
    }
}

impl From<VmError> for S0RunError {
    fn from(e: VmError) -> S0RunError {
        S0RunError::Compile(e)
    }
}

impl From<InterpError> for S0RunError {
    fn from(e: InterpError) -> S0RunError {
        S0RunError::Run(e)
    }
}

/// Compiles and runs in one call (convenience for tests and benches).
///
/// # Errors
///
/// [`S0RunError::Compile`] wraps the precise [`VmError`] when the
/// program is ill-formed; [`S0RunError::Run`] wraps the [`InterpError`]
/// from execution.
pub fn run_s0(
    p: &S0Program,
    args: &[Datum],
    limits: Limits,
) -> Result<(Datum, VmStats), S0RunError> {
    let vm = Vm::compile(p)?;
    Ok(vm.run(args, limits)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::{compile, specialize, CompileOptions, GenStrategy};
    use pe_frontend::{desugar, parse_source};

    type R = Result<(), Box<dyn std::error::Error>>;

    fn compile_to_vm(src: &str, entry: &str) -> Result<Vm, Box<dyn std::error::Error>> {
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let s0 = compile(&d, entry, &CompileOptions::default())?;
        Ok(Vm::compile(&s0)?)
    }

    #[test]
    fn vm_matches_interpreters_on_cps_append() -> R {
        let src = "(define (append x y) (cps-append x y (lambda (v) v)))
                   (define (cps-append x y c)
                     (if (null? x) (c y)
                         (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";
        let vm = compile_to_vm(src, "append")?;
        let (r, stats) =
            vm.run(&[Datum::parse("(a b)")?, Datum::parse("(c)")?], Limits::default())?;
        assert_eq!(r.to_string(), "(a b c)");
        assert!(stats.allocs >= 3, "conses + continuation closures: {stats:?}");
        Ok(())
    }

    #[test]
    fn profiled_run_matches_plain_run_and_counts_deterministically() -> R {
        let src = "(define (count n) (if (zero? n) 0 (count (- n 1))))";
        let vm = compile_to_vm(src, "count")?;
        let (plain, pstats) = vm.run(&[Datum::Int(25)], Limits::default())?;
        let mut sink = pe_trace::CollectingSink::new();
        let (profiled, stats, profile) =
            vm.run_profiled_with(&[Datum::Int(25)], Limits::default(), &mut sink)?;
        assert_eq!(plain, profiled);
        assert_eq!(pstats, stats, "profiling must not perturb the machine");
        // The loop block was entered once per count, and the branch
        // split 25 continues / 1 exit (arm polarity aside).
        assert!(profile.total_entries() >= 26, "{profile:?}");
        let hot = profile.hottest();
        assert!(!hot.is_empty());
        assert_eq!(profile.entries[hot[0]], *profile.entries.iter().max().unwrap());
        let branches: u64 = profile
            .branches
            .iter()
            .map(|&(t, f)| t + f)
            .sum();
        assert_eq!(branches, 26, "{profile:?}");
        // Per-label attribution rows landed under vm-run and sum to
        // the phase span.
        assert!(sink.attr_ns(pe_trace::Phase::VmRun) <= sink.phase_ns(pe_trace::Phase::VmRun));
        let (again, _, profile2) =
            vm.run_profiled_with(&[Datum::Int(25)], Limits::default(), &mut pe_trace::NullSink)?;
        assert_eq!(again, plain);
        assert_eq!(profile, profile2, "profiles are deterministic");
        Ok(())
    }

    #[test]
    fn vm_runs_tak() -> R {
        let src = "(define (tak x y z)
                     (if (not (< y x)) z
                         (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))";
        let vm = compile_to_vm(src, "tak")?;
        let (r, stats) =
            vm.run(&[Datum::Int(14), Datum::Int(7), Datum::Int(3)], Limits::default())?;
        assert_eq!(r, Datum::Int(7));
        // tak's contexts are heap-allocated closures in our model — the
        // §8 observation that Hobbit's native stack wins on this code.
        assert!(stats.allocs > 1000, "{stats:?}");
        Ok(())
    }

    #[test]
    fn counters_are_deterministic() -> R {
        let src = "(define (loop n) (if (zero? n) 0 (loop (- n 1))))";
        let vm = compile_to_vm(src, "loop")?;
        let (_, s1) = vm.run(&[Datum::Int(1000)], Limits::default())?;
        let (_, s2) = vm.run(&[Datum::Int(1000)], Limits::default())?;
        assert_eq!(s1, s2);
        assert!(s1.calls >= 1000);
        assert_eq!(s1.allocs, 0, "a first-order tail loop allocates nothing");
        Ok(())
    }

    #[test]
    fn specialized_code_is_cheaper() -> R {
        // The interpretive-overhead claim in miniature: append
        // specialized to its first argument does fewer steps than the
        // general compiled version.
        let src = "(define (append x y) (cps-append x y (lambda (v) v)))
                   (define (cps-append x y c)
                     (if (null? x) (c y)
                         (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";
        let p = parse_source(src)?;
        let d = desugar(&p)?;
        let opts = CompileOptions { strategy: GenStrategy::Online, ..CompileOptions::default() };
        let gen_p = compile(&d, "append", &opts)?;
        let spec_p = specialize(&d, "append", &[Some(Datum::parse("(a b c d)")?), None], &opts)?;
        let y = Datum::parse("(e f)")?;
        let x = Datum::parse("(a b c d)")?;
        let (r1, s1) = run_s0(&gen_p, &[x, y.clone()], Limits::default())?;
        let (r2, s2) = run_s0(&spec_p, &[y], Limits::default())?;
        assert_eq!(r1, r2);
        assert!(
            s2.steps < s1.steps,
            "specialized {s2:?} must beat general {s1:?}"
        );
        Ok(())
    }

    #[test]
    fn vm_compile_rejects_bad_programs() {
        use pe_core::{S0Proc, S0Program, S0Simple, S0Tail};
        let bad = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec![],
                body: S0Tail::TailCall("ghost".into(), vec![]),
            }],
        };
        assert!(matches!(Vm::compile(&bad), Err(VmError::UndefinedProc(_))));
        let bad = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec![],
                body: S0Tail::Return(S0Simple::Var("x".into())),
            }],
        };
        assert!(matches!(Vm::compile(&bad), Err(VmError::UnboundVar { .. })));
        let bad = S0Program { entry: "nope".into(), procs: vec![] };
        assert!(matches!(Vm::compile(&bad), Err(VmError::NoEntry(_))));
    }

    #[test]
    fn run_s0_separates_compile_and_run_errors() {
        use pe_core::{S0Proc, S0Program};
        let bad = S0Program { entry: "nope".into(), procs: vec![] };
        assert!(matches!(
            run_s0(&bad, &[], Limits::default()),
            Err(S0RunError::Compile(VmError::NoEntry(_)))
        ));
        let diverge = S0Program {
            entry: "f".into(),
            procs: vec![S0Proc {
                name: "f".into(),
                params: vec![],
                body: S0Tail::TailCall("f".into(), vec![]),
            }],
        };
        let lim = Limits { fuel: 100, ..Limits::default() };
        assert_eq!(
            run_s0(&diverge, &[], lim),
            Err(S0RunError::Run(InterpError::FuelExhausted))
        );
    }

    #[test]
    fn deep_tail_recursion_is_flat() -> R {
        let vm = compile_to_vm("(define (loop n) (if (zero? n) 'ok (loop (- n 1))))", "loop")?;
        let (r, _) = vm.run(&[Datum::Int(3_000_000)], Limits::default())?;
        assert_eq!(r, Datum::Sym("ok".into()));
        Ok(())
    }

    #[test]
    fn fuel_and_heap_budgets_trap() -> R {
        // A divergent loop traps on fuel … (dynamically guarded, so the
        // size-change analysis lets it through to run time)
        let vm = compile_to_vm("(define (f n) (if (zero? n) (f 1) (f 2)))", "f")?;
        let lim = Limits { fuel: 100, ..Limits::default() };
        assert_eq!(vm.run(&[Datum::Int(0)], lim), Err(InterpError::FuelExhausted));
        // … and a cons-builder traps on the heap budget first.  The
        // accumulator is tested so the flow optimizer cannot delete the
        // (otherwise unobserved) allocation.
        let vm = compile_to_vm("(define (g x) (if (pair? x) (g (cons x x)) (g (cons x x))))", "g")?;
        let lim = Limits { max_heap: 50, ..Limits::default() };
        assert_eq!(
            vm.run(&[Datum::Int(0)], lim),
            Err(InterpError::Trap(Trap::Heap { limit: 50 }))
        );
        Ok(())
    }

    #[test]
    fn closure_misuse_is_a_dispatch_trap() -> R {
        use pe_core::{S0Proc, S0Program};
        // closure-freeval on an int: compiles (S₀ is untyped) but must
        // trap with a pc, not panic.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec!["x".into()],
                body: S0Tail::Return(S0Simple::ClosureFreeval(
                    Box::new(S0Simple::Var("x".into())),
                    0,
                )),
            }],
        };
        let vm = Vm::compile(&p)?;
        let r = vm.run(&[Datum::Int(7)], Limits::default());
        assert!(
            matches!(r, Err(InterpError::Trap(Trap::BadDispatch { pc: 0, .. }))),
            "got {r:?}"
        );
        assert_eq!(vm.block_name(0), Some("main"));
        Ok(())
    }
}
