//! Differential testing: the register-machine VM and the reference S₀
//! evaluator (`pe_core::eval`) must agree exactly — values, faults and
//! fuel behaviour — since both claim to implement the §5.1 execution
//! model.

use pe_core::{compile, eval, CompileOptions, GenStrategy};
use pe_frontend::{desugar, parse_source};
use pe_interp::{Datum, Limits};
use pe_vm::Vm;

fn compile_s0(src: &str, entry: &str, strategy: GenStrategy) -> pe_core::S0Program {
    let p = parse_source(src).unwrap();
    let d = desugar(&p).unwrap();
    compile(&d, entry, &CompileOptions { strategy, ..CompileOptions::default() }).unwrap()
}

const PROGRAMS: &[(&str, &str, &[&str], &str)] = &[
    (
        "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))",
        "fact",
        &["10"],
        "3628800",
    ),
    (
        "(define (append x y) (cps-append x y (lambda (v) v)))
         (define (cps-append x y c)
           (if (null? x) (c y)
               (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))",
        "append",
        &["(1 2 3)", "(4)"],
        "(1 2 3 4)",
    ),
    (
        "(define (map-dbl l) (if (null? l) '() (cons (* 2 (car l)) (map-dbl (cdr l)))))",
        "map-dbl",
        &["(1 2 3)"],
        "(2 4 6)",
    ),
    (
        "(define (ack m n)
           (if (zero? m) (+ n 1)
               (if (zero? n) (ack (- m 1) 1) (ack (- m 1) (ack m (- n 1))))))",
        "ack",
        &["2", "3"],
        "9",
    ),
];

#[test]
fn vm_and_reference_agree_on_values() {
    for (src, entry, args, expect) in PROGRAMS {
        let args: Vec<Datum> = args.iter().map(|a| Datum::parse(a).unwrap()).collect();
        for strategy in [GenStrategy::Offline, GenStrategy::Online] {
            let s0 = compile_s0(src, entry, strategy);
            let reference = eval::run(&s0, &args, Limits::default()).unwrap();
            let (vm_result, _) =
                Vm::compile(&s0).unwrap().run(&args, Limits::default()).unwrap();
            assert_eq!(reference, vm_result, "{entry} [{strategy:?}]");
            assert_eq!(reference.to_string(), *expect, "{entry}");
        }
    }
}

#[test]
fn vm_and_reference_agree_on_faults() {
    let s0 = compile_s0("(define (f x) (car x))", "f", GenStrategy::Offline);
    let args = [Datum::Int(3)];
    assert!(eval::run(&s0, &args, Limits::default()).is_err());
    assert!(Vm::compile(&s0).unwrap().run(&args, Limits::default()).is_err());
}

#[test]
fn vm_stats_scale_with_input() {
    let s0 = compile_s0(
        "(define (loop n) (if (zero? n) 0 (loop (- n 1))))",
        "loop",
        GenStrategy::Offline,
    );
    let vm = Vm::compile(&s0).unwrap();
    let (_, small) = vm.run(&[Datum::Int(100)], Limits::default()).unwrap();
    let (_, large) = vm.run(&[Datum::Int(10_000)], Limits::default()).unwrap();
    assert!(large.steps > small.steps * 50, "{small:?} vs {large:?}");
    assert!(large.calls >= 10_000);
}
