//! pe-flow: dataflow analysis over S₀ residual programs.
//!
//! The specializer's output language S₀ (defined here, in
//! [`s0`], and re-exported by pe-core) is first-order and
//! tail-recursive: procedures bind only at entry, bodies are acyclic
//! trees of conditionals, and loops are inter-procedural tail calls.
//! That makes it an ideal target for classic dataflow analysis — and
//! this crate provides the framework plus the analyses the rest of the
//! pipeline builds on:
//!
//! * [`cfg`] — explicit per-procedure control-flow graphs;
//! * [`solver`] — a generic worklist fixpoint solver, governed by the
//!   same [`pe_governor`] fuel discipline as the rest of the pipeline;
//! * [`liveness`] — per-point liveness and the interprocedural
//!   parameter-liveness fixpoint;
//! * [`constprop`] — interprocedural copy/constant propagation;
//! * [`slots`] — closure-shape analysis: slot usage, escape pinning,
//!   dispatch-arm decidability;
//! * [`opt`] — the residual optimizer: Unmix-style syntactic
//!   post-processing plus the flow passes ([`optimize_with`]);
//! * [`check`] — flow-based verification lints (definite binding,
//!   dispatch-arm reachability, dead closure slots).
//!
//! The crate sits *below* pe-core: the specializer post-processes and
//! verifies through these analyses, and pe-core re-exports [`s0`] and
//! [`opt`] under their historical paths (`pe_core::s0`,
//! `pe_core::post`).

pub mod cfg;
pub mod check;
pub mod constprop;
pub mod liveness;
pub mod opt;
pub mod s0;
pub mod slots;
pub mod solver;

pub use check::{check, FlowDiag, FlowSeverity};
pub use opt::{
    optimize, optimize_with, optimize_with_traced, postprocess,
    postprocess_traced, FlowOptions, FlowStats,
};
pub use solver::{solve, Analysis, Direction};
