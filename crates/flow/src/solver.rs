//! A generic worklist fixpoint solver over [`Cfg`]s.
//!
//! An [`Analysis`] supplies the lattice (a fact type with `bottom`,
//! `join`) and the semantics (a `transfer` function per node); the
//! solver iterates to the least fixpoint.  Facts are reported at the
//! program point *immediately before* each node executes, in program
//! order — the natural point for both directions:
//!
//! * **forward**: `facts[n] = ⊔ transfer(p, facts[p])` over
//!   predecessors `p`, with `facts[entry] = boundary()`;
//! * **backward**: `facts[n] = transfer(n, ⊔ facts[s])` over
//!   successors `s`, with exits joining `boundary()`.
//!
//! Every node visit charges one [`Fuel`] step, so a hostile or huge
//! program degrades into a [`Trap`] instead of an unbounded loop —
//! the same governor discipline as the rest of the pipeline.

use crate::cfg::{Cfg, Node};
use pe_governor::{Fuel, Trap};

/// Direction of propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry toward the leaves.
    Forward,
    /// Facts flow from the leaves toward the entry.
    Backward,
}

/// One dataflow analysis: a join-semilattice of facts plus a transfer
/// function.  `bottom` must be the neutral element of `join`.
pub trait Analysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: procedure entry for forward analyses,
    /// every exit leaf for backward ones.
    fn boundary(&self) -> Self::Fact;

    /// The neutral element of [`Analysis::join`].
    fn bottom(&self) -> Self::Fact;

    /// Joins `from` into `into`; returns true when `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// The effect of executing `node` on a fact (the fact before the
    /// node for forward analyses, after it for backward ones).
    fn transfer(&self, node: &Node, fact: &Self::Fact) -> Self::Fact;
}

/// Runs `a` over `cfg` to its least fixpoint.
///
/// Returns one fact per node: the fact holding immediately before that
/// node executes.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the visit budget is exhausted.
pub fn solve<A: Analysis>(cfg: &Cfg, a: &A, fuel: &mut Fuel) -> Result<Vec<A::Fact>, Trap> {
    let n = cfg.node_count();
    let mut facts: Vec<A::Fact> = vec![a.bottom(); n];
    let mut queued = vec![true; n];
    let mut work: Vec<usize> = match a.direction() {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    // Visit in reverse push order (a stack): for the acyclic graphs S₀
    // produces this touches each node O(1) times per dependency chain.
    while let Some(i) = work.pop() {
        queued[i] = false;
        fuel.step()?;
        match a.direction() {
            Direction::Forward => {
                let mut fact = if i == Cfg::ENTRY { a.boundary() } else { a.bottom() };
                for &p in &cfg.pred[i] {
                    let out = a.transfer(&cfg.nodes[p], &facts[p]);
                    a.join(&mut fact, &out);
                }
                if fact != facts[i] {
                    facts[i] = fact;
                    for &s in &cfg.succ[i] {
                        if !queued[s] {
                            queued[s] = true;
                            work.push(s);
                        }
                    }
                }
            }
            Direction::Backward => {
                let mut out = if cfg.succ[i].is_empty() { a.boundary() } else { a.bottom() };
                for &s in &cfg.succ[i] {
                    a.join(&mut out, &facts[s]);
                }
                let fact = a.transfer(&cfg.nodes[i], &out);
                if fact != facts[i] {
                    facts[i] = fact;
                    for &p in &cfg.pred[i] {
                        if !queued[p] {
                            queued[p] = true;
                            work.push(p);
                        }
                    }
                }
            }
        }
    }
    Ok(facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s0::{S0Proc, S0Simple, S0Tail};
    use pe_governor::Limits;
    use std::collections::BTreeSet;

    /// Reachability-from-entry as a trivial forward analysis.
    struct Reach;

    impl Analysis for Reach {
        type Fact = bool;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn boundary(&self) -> bool {
            true
        }

        fn bottom(&self) -> bool {
            false
        }

        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let old = *into;
            *into |= *from;
            old != *into
        }

        fn transfer(&self, _node: &Node, fact: &bool) -> bool {
            *fact
        }
    }

    /// Live variables, used here only to exercise the backward path.
    struct Live;

    impl Analysis for Live {
        type Fact = BTreeSet<String>;

        fn direction(&self) -> Direction {
            Direction::Backward
        }

        fn boundary(&self) -> BTreeSet<String> {
            BTreeSet::new()
        }

        fn bottom(&self) -> BTreeSet<String> {
            BTreeSet::new()
        }

        fn join(&self, into: &mut BTreeSet<String>, from: &BTreeSet<String>) -> bool {
            let before = into.len();
            into.extend(from.iter().cloned());
            into.len() != before
        }

        fn transfer(&self, node: &Node, fact: &BTreeSet<String>) -> BTreeSet<String> {
            let mut out = fact.clone();
            let mut used = std::collections::HashSet::new();
            match node {
                Node::Entry | Node::Fail(_) => {}
                Node::Branch(c) | Node::Return(c) => c.vars(&mut used),
                Node::Call(_, args) => args.iter().for_each(|a| a.vars(&mut used)),
            }
            out.extend(used);
            out
        }
    }

    fn branchy() -> S0Proc {
        S0Proc {
            name: "f".into(),
            params: vec!["a".into(), "b".into(), "c".into()],
            body: S0Tail::If(
                S0Simple::Var("a".into()),
                Box::new(S0Tail::Return(S0Simple::Var("b".into()))),
                Box::new(S0Tail::Fail("no".into())),
            ),
        }
    }

    #[test]
    fn forward_reaches_every_node() {
        let cfg = Cfg::build(&branchy());
        let mut fuel = Fuel::new(&Limits::default());
        let facts = solve(&cfg, &Reach, &mut fuel).unwrap();
        assert!(facts.iter().all(|&r| r), "{facts:?}");
    }

    #[test]
    fn backward_liveness_sees_branch_uses() {
        let cfg = Cfg::build(&branchy());
        let mut fuel = Fuel::new(&Limits::default());
        let facts = solve(&cfg, &Live, &mut fuel).unwrap();
        let at_entry = &facts[Cfg::ENTRY];
        assert!(at_entry.contains("a") && at_entry.contains("b"), "{at_entry:?}");
        assert!(!at_entry.contains("c"), "c is dead: {at_entry:?}");
    }

    #[test]
    fn solver_respects_fuel() {
        let cfg = Cfg::build(&branchy());
        let mut fuel = Fuel::new(&Limits { fuel: 1, ..Limits::default() });
        assert!(matches!(solve(&cfg, &Reach, &mut fuel), Err(Trap::OutOfFuel { .. })));
    }
}
