//! Residual-program optimization: syntactic post-processing plus the
//! flow-based passes.
//!
//! Unmix's post-processor performs post-unfolding and arity raising; the
//! equivalents on S₀ are:
//!
//! * **reachability** — drop procedures never called from the entry;
//! * **transition compression** — a procedure whose body is a single
//!   tail call is inlined everywhere (classic Mix);
//! * **inline-once** — a non-recursive procedure with exactly one call
//!   site is inlined there (post-unfolding);
//! * **dead-parameter elimination** — now driven by the interprocedural
//!   liveness fixpoint in [`crate::liveness`], which also kills
//!   parameters that merely circulate through recursive calls.
//!
//! On top of the syntactic fixpoint, [`optimize_with`] runs the
//! dataflow passes — copy/constant propagation ([`crate::constprop`]),
//! dispatch-arm folding and closure-slot pruning ([`crate::slots`]),
//! dead-binding elimination — interleaved with clean-up rounds until
//! nothing changes, reporting a [`FlowStats`] for the trace counters.
//!
//! All passes iterate to a fixpoint.  Inlining in S₀ is sound by
//! construction: bodies only reference their own parameters, and calls
//! are always in tail position, so substitution never captures and never
//! changes evaluation order.

use crate::cfg::ProgramCfg;
use crate::s0::{S0Program, S0Simple, S0Tail};
use pe_governor::{Fuel, Limits, Trap};
use std::collections::{HashMap, HashSet};

/// Runs all syntactic post passes to a fixpoint.
pub fn postprocess(mut p: S0Program) -> S0Program {
    loop {
        let before = fingerprint(&p);
        p = simplify(p);
        p = drop_unreachable(p);
        p = compress_transitions(p);
        p = compress_returns(p);
        p = inline_once(p);
        p = drop_dead_params(p);
        p = merge_entry(p);
        if fingerprint(&p) == before {
            return p;
        }
    }
}

/// Which flow passes [`optimize_with`] runs.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Interprocedural copy/constant propagation.
    pub copy_propagation: bool,
    /// Liveness-based dead-parameter elimination.
    pub dead_params: bool,
    /// Dispatch-arm folding from closure-label sets.
    pub fold_arms: bool,
    /// Closure-slot pruning.
    pub prune_slots: bool,
    /// Upper bound on optimize rounds (each round runs every enabled
    /// pass once); the fixpoint normally lands far below it.
    pub max_rounds: usize,
}

impl Default for FlowOptions {
    fn default() -> FlowOptions {
        FlowOptions {
            copy_propagation: true,
            dead_params: true,
            fold_arms: true,
            prune_slots: true,
            max_rounds: 32,
        }
    }
}

/// What the flow optimizer did — the source of the `flow` trace
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Variable occurrences replaced by known constants.
    pub copies_propagated: usize,
    /// Parameter bindings eliminated.
    pub dead_bindings: usize,
    /// Dispatch arms folded away.
    pub arms_folded: usize,
    /// `(label, slot)` capture pairs pruned.
    pub slots_pruned: usize,
    /// Optimize rounds executed.
    pub rounds: usize,
    /// CFG nodes of the final program.
    pub cfg_nodes: usize,
    /// CFG edges of the final program.
    pub cfg_edges: usize,
}

impl FlowStats {
    /// Total rewrites across all passes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.copies_propagated + self.dead_bindings + self.arms_folded + self.slots_pruned
    }
}

/// Runs the default flow passes to a fixpoint.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted; the
/// input program is consumed, so callers wanting graceful degradation
/// should keep a clone (as [`crate::optimize`]'s pipeline callers do).
pub fn optimize(p: S0Program, fuel: &mut Fuel) -> Result<(S0Program, FlowStats), Trap> {
    optimize_with(p, &FlowOptions::default(), fuel)
}

/// Runs the enabled flow passes to a fixpoint (or `max_rounds`).
///
/// Pass order within a round: propagation first (it seeds constants),
/// then arm folding and slot pruning (shape-based), then dead-binding
/// elimination (it collects the parameters propagation just made
/// dead), then a syntactic clean-up when anything changed.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted.
pub fn optimize_with(
    mut p: S0Program,
    opts: &FlowOptions,
    fuel: &mut Fuel,
) -> Result<(S0Program, FlowStats), Trap> {
    let mut stats = FlowStats::default();
    for _ in 0..opts.max_rounds {
        fuel.step()?;
        let mut round = 0usize;
        if opts.copy_propagation {
            let (q, n) = crate::constprop::propagate(p, fuel)?;
            p = q;
            stats.copies_propagated += n;
            round += n;
        }
        if opts.fold_arms {
            let (q, n) = crate::slots::fold_arms(p, fuel)?;
            p = q;
            stats.arms_folded += n;
            round += n;
        }
        if opts.prune_slots {
            let (q, n) = crate::slots::prune(p, fuel)?;
            p = q;
            stats.slots_pruned += n;
            round += n;
        }
        if opts.dead_params {
            let (q, n) = crate::liveness::prune_dead_params(p, fuel)?;
            p = q;
            stats.dead_bindings += n;
            round += n;
        }
        stats.rounds += 1;
        if round == 0 {
            break;
        }
        // Clean up what the rewrites exposed: substituted constants
        // feeding conditionals, dispatch targets now unreachable.
        p = simplify(p);
        p = drop_unreachable(p);
    }
    let pc = ProgramCfg::build(&p);
    stats.cfg_nodes = pc.node_count();
    stats.cfg_edges = pc.edge_count();
    Ok((p, stats))
}

/// [`postprocess`] with per-residual-procedure cost attribution: the
/// pass is a whole-program fixpoint, so its measured wall time is
/// spread over the surviving procedures by node share and emitted as
/// `Event::Attr` rows under `Phase::Post`.  With a disabled sink this
/// is exactly [`postprocess`] — no clock reads.
pub fn postprocess_traced(
    p: S0Program,
    sink: &mut dyn pe_trace::Sink,
) -> S0Program {
    if !sink.enabled() {
        return postprocess(p);
    }
    let t0 = std::time::Instant::now();
    let p = postprocess(p);
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    attribute_by_size(sink, pe_trace::Phase::Post, &p, ns);
    p
}

/// [`optimize_with`] with the same size-share cost attribution as
/// [`postprocess_traced`], under `Phase::Flow`.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted.
pub fn optimize_with_traced(
    p: S0Program,
    opts: &FlowOptions,
    fuel: &mut Fuel,
    sink: &mut dyn pe_trace::Sink,
) -> Result<(S0Program, FlowStats), Trap> {
    if !sink.enabled() {
        return optimize_with(p, opts, fuel);
    }
    let t0 = std::time::Instant::now();
    let (p, stats) = optimize_with(p, opts, fuel)?;
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    attribute_by_size(sink, pe_trace::Phase::Flow, &p, ns);
    Ok((p, stats))
}

/// Spreads `total_ns` over the program's procedures proportionally to
/// AST node counts (the deterministic work measure of the syntactic
/// passes) and emits one attribution row per procedure.  The parts sum
/// exactly to `total_ns`, so the phase books always balance.
fn attribute_by_size(
    sink: &mut dyn pe_trace::Sink,
    phase: pe_trace::Phase,
    p: &S0Program,
    total_ns: u64,
) {
    let weights: Vec<u64> = p.procs.iter().map(|q| q.size() as u64).collect();
    let parts = pe_prof::distribute_ns(total_ns, &weights);
    for (proc, (ns, units)) in p.procs.iter().zip(parts.into_iter().zip(weights)) {
        sink.attr(phase, &proc.name, ns, units);
    }
}

/// Inlines procedures whose whole body is a `Return` of a simple
/// expression (return compression), with the usual duplication guard.
pub fn compress_returns(mut p: S0Program) -> S0Program {
    let returners: HashMap<String, (Vec<String>, S0Simple)> = p
        .procs
        .iter()
        .filter_map(|q| match &q.body {
            S0Tail::Return(s) => Some((q.name.clone(), (q.params.clone(), s.clone()))),
            _ => None,
        })
        .collect();
    if returners.is_empty() {
        return p;
    }
    for q in &mut p.procs {
        q.body = rewrite_calls(&q.body, &mut |callee, args| {
            if let Some((params, body)) = returners.get(callee) {
                let dup = params.iter().zip(args).any(|(pm, a)| {
                    !matches!(a, S0Simple::Var(_) | S0Simple::Const(_))
                        && occurrences(body, pm) > 1
                });
                if !dup {
                    let map: HashMap<String, S0Simple> =
                        params.iter().cloned().zip(args.iter().cloned()).collect();
                    return S0Tail::Return(body.subst(&map));
                }
            }
            S0Tail::TailCall(callee.to_string(), args.to_vec())
        });
    }
    drop_unreachable(p)
}

/// When the entry is a pure trampoline — its body forwards its own
/// parameters, in order, to one other procedure — delete the wrapper and
/// give the target the entry's public name.
pub fn merge_entry(mut p: S0Program) -> S0Program {
    let Some(entry) = p.proc(&p.entry) else { return p };
    let S0Tail::TailCall(target, args) = &entry.body else {
        return p;
    };
    let target = target.clone();
    if target == p.entry {
        return p;
    }
    let forwards_params = args.len() == entry.params.len()
        && entry
            .params
            .iter()
            .zip(args)
            .all(|(pm, a)| matches!(a, S0Simple::Var(v) if v == pm));
    if !forwards_params {
        return p;
    }
    // The target must have the same arity (it does: the call above).
    let entry_name = p.entry.clone();
    p.procs.retain(|q| q.name != entry_name);
    for q in &mut p.procs {
        if q.name == target {
            q.name = entry_name.clone();
        }
        q.body = rewrite_calls(&q.body, &mut |callee, args| {
            let callee =
                if callee == target { entry_name.clone() } else { callee.to_string() };
            S0Tail::TailCall(callee, args.to_vec())
        });
    }
    p
}

/// Peephole simplification on simple expressions:
/// `(car (cons a d)) → a`, `(cdr (cons a d)) → d`,
/// `(closure-label (make-closure ℓ …)) → ℓ`,
/// `(closure-freeval (make-closure ℓ v₀…) i) → vᵢ`,
/// `(equal? k₁ k₂) → #t/#f` on atom constants, and constant-condition
/// folding on `if` — all only when the discarded part cannot fault.
pub fn simplify(mut p: S0Program) -> S0Program {
    fn effect_free_all(args: &[S0Simple]) -> bool {
        args.iter().all(is_effect_free)
    }
    fn go_simple(s: &S0Simple) -> S0Simple {
        use pe_frontend::Prim::*;
        let s = match s {
            S0Simple::Var(_) | S0Simple::Const(_) => return s.clone(),
            S0Simple::Prim(op, args) => {
                S0Simple::Prim(*op, args.iter().map(go_simple).collect())
            }
            S0Simple::MakeClosure(l, args) => {
                S0Simple::MakeClosure(*l, args.iter().map(go_simple).collect())
            }
            S0Simple::ClosureLabel(a) => S0Simple::ClosureLabel(Box::new(go_simple(a))),
            S0Simple::ClosureFreeval(a, i) => {
                S0Simple::ClosureFreeval(Box::new(go_simple(a)), *i)
            }
        };
        match &s {
            S0Simple::Prim(op @ (Car | Cdr), args) => {
                if let [S0Simple::Prim(Cons, parts)] = args.as_slice() {
                    let (keep, drop) =
                        if *op == Car { (&parts[0], &parts[1]) } else { (&parts[1], &parts[0]) };
                    if is_effect_free(drop) {
                        return keep.clone();
                    }
                }
                s
            }
            S0Simple::Prim(NullP, args) => {
                if let [S0Simple::Prim(Cons, parts)] = args.as_slice() {
                    if effect_free_all(parts) {
                        return S0Simple::Const(pe_frontend::Constant::Bool(false));
                    }
                }
                s
            }
            S0Simple::Prim(EqualP, args) => {
                if let [S0Simple::Const(a), S0Simple::Const(b)] = args.as_slice() {
                    return S0Simple::Const(pe_frontend::Constant::Bool(a == b));
                }
                s
            }
            S0Simple::ClosureLabel(a) => {
                if let S0Simple::MakeClosure(l, args) = &**a {
                    if effect_free_all(args) {
                        return S0Simple::Const(pe_frontend::Constant::Int(i64::from(*l)));
                    }
                }
                s
            }
            S0Simple::ClosureFreeval(a, i) => {
                if let S0Simple::MakeClosure(_, args) = &**a {
                    if let Some(v) = args.get(*i) {
                        let others_free = args
                            .iter()
                            .enumerate()
                            .all(|(j, x)| j == *i || is_effect_free(x));
                        if others_free {
                            return v.clone();
                        }
                    }
                }
                s
            }
            _ => s,
        }
    }
    fn go_tail(t: &S0Tail) -> S0Tail {
        match t {
            S0Tail::Return(s) => S0Tail::Return(go_simple(s)),
            S0Tail::If(c, a, b) => {
                let c = go_simple(c);
                let a = go_tail(a);
                let b = go_tail(b);
                if let S0Simple::Const(k) = &c {
                    return if k.is_truthy() { a } else { b };
                }
                S0Tail::If(c, Box::new(a), Box::new(b))
            }
            S0Tail::TailCall(p, args) => {
                S0Tail::TailCall(p.clone(), args.iter().map(go_simple).collect())
            }
            S0Tail::Fail(_) => t.clone(),
        }
    }
    for q in &mut p.procs {
        q.body = go_tail(&q.body);
    }
    p
}

fn fingerprint(p: &S0Program) -> (usize, usize) {
    (p.procs.len(), p.size())
}

/// Drops procedures unreachable from the entry.
pub fn drop_unreachable(p: S0Program) -> S0Program {
    let mut reach: HashSet<String> = HashSet::new();
    let mut work = vec![p.entry.clone()];
    while let Some(name) = work.pop() {
        if !reach.insert(name.clone()) {
            continue;
        }
        if let Some(proc_) = p.proc(&name) {
            proc_.body.calls(&mut |callee| work.push(callee.to_string()));
        }
    }
    S0Program {
        procs: p.procs.into_iter().filter(|q| reach.contains(&q.name)).collect(),
        entry: p.entry,
    }
}

/// Inlines procedures whose whole body is a single tail call.
pub fn compress_transitions(mut p: S0Program) -> S0Program {
    // name → (params, target call) for trivial trampolines, skipping
    // self-loops.
    let trivial: HashMap<String, (Vec<String>, String, Vec<S0Simple>)> = p
        .procs
        .iter()
        .filter_map(|q| match &q.body {
            S0Tail::TailCall(t, args) if *t != q.name => {
                Some((q.name.clone(), (q.params.clone(), t.clone(), args.clone())))
            }
            _ => None,
        })
        .collect();
    if trivial.is_empty() {
        return p;
    }
    for q in &mut p.procs {
        q.body = rewrite_calls(&q.body, &mut |callee, args| {
            let mut callee = callee.to_string();
            let mut args = args.to_vec();
            // Chase trampoline chains (cycles impossible: each step
            // strictly follows a non-self edge; bounded by table size).
            let mut steps = 0;
            while let Some((params, target, targs)) = trivial.get(&callee) {
                // Duplication guard: do not substitute a non-trivial
                // argument for a parameter the target call uses twice.
                let dup = params.iter().zip(&args).any(|(pm, a)| {
                    !matches!(a, S0Simple::Var(_) | S0Simple::Const(_))
                        && targs.iter().map(|t| occurrences(t, pm)).sum::<usize>() > 1
                });
                if dup {
                    break;
                }
                let map: HashMap<String, S0Simple> =
                    params.iter().cloned().zip(args.iter().cloned()).collect();
                args = targs.iter().map(|a| a.subst(&map)).collect();
                callee = target.clone();
                steps += 1;
                if steps > trivial.len() {
                    break; // defensive: mutual trampoline cycle
                }
            }
            S0Tail::TailCall(callee, args)
        });
    }
    // Entry may itself be a trampoline; keep it (it is the public name).
    drop_unreachable(p)
}

/// Inlines non-recursive procedures called from exactly one site.
pub fn inline_once(mut p: S0Program) -> S0Program {
    loop {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for q in &p.procs {
            q.body.calls(&mut |c| *counts.entry(c.to_string()).or_insert(0) += 1);
        }
        let self_recursive: HashSet<String> = p
            .procs
            .iter()
            .filter(|q| {
                let mut rec = false;
                q.body.calls(&mut |c| rec |= c == q.name);
                rec
            })
            .map(|q| q.name.clone())
            .collect();
        // A victim is inlinable when substitution cannot duplicate a
        // non-trivial argument: each parameter is used at most once, or
        // the single call site passes only variables/constants there.
        let mut call_args: HashMap<String, Vec<S0Simple>> = HashMap::new();
        for q in &p.procs {
            visit_calls(&q.body, &mut |callee, args| {
                call_args.entry(callee.to_string()).or_insert_with(|| args.to_vec());
            });
        }
        let candidate = p.procs.iter().find(|q| {
            q.name != p.entry
                && counts.get(&q.name).copied().unwrap_or(0) == 1
                && !self_recursive.contains(&q.name)
                && call_args.get(&q.name).is_some_and(|args| {
                    q.params.iter().zip(args).all(|(pm, a)| {
                        matches!(a, S0Simple::Var(_) | S0Simple::Const(_))
                            || occurrences_tail(&q.body, pm) <= 1
                    })
                })
        });
        let Some(victim) = candidate else {
            return p;
        };
        let vname = victim.name.clone();
        let vparams = victim.params.clone();
        let vbody = victim.body.clone();
        p.procs.retain(|q| q.name != vname);
        for q in &mut p.procs {
            q.body = rewrite_calls(&q.body, &mut |callee, args| {
                if callee == vname {
                    let map: HashMap<String, S0Simple> =
                        vparams.iter().cloned().zip(args.iter().cloned()).collect();
                    vbody.subst(&map)
                } else {
                    S0Tail::TailCall(callee.to_string(), args.to_vec())
                }
            });
        }
    }
}

/// Removes parameters that cannot affect execution, when every call
/// site's corresponding argument is effect-free (cannot fault at
/// runtime).  Driven by the interprocedural liveness fixpoint — a
/// parameter that only circulates through recursive calls is dead here
/// even though a syntactic scan sees a "use".  Infallible: on a fuel
/// trap the input program is returned unchanged.
pub fn drop_dead_params(p: S0Program) -> S0Program {
    let mut fuel = Fuel::new(&Limits::default());
    match crate::liveness::prune_dead_params(p.clone(), &mut fuel) {
        Ok((q, _)) => q,
        Err(_) => p,
    }
}

/// A simple expression that can never fault at runtime.
#[must_use]
pub fn is_effect_free(s: &S0Simple) -> bool {
    use pe_frontend::Prim::*;
    match s {
        S0Simple::Var(_) | S0Simple::Const(_) => true,
        S0Simple::MakeClosure(_, args) => args.iter().all(is_effect_free),
        S0Simple::Prim(op, args) => {
            matches!(
                op,
                Cons | NullP | PairP | Not | EqP | EqvP | EqualP | SymbolP | NumberP | BooleanP
            ) && args.iter().all(is_effect_free)
        }
        // closure-label / closure-freeval fault on non-closures.
        S0Simple::ClosureLabel(_) | S0Simple::ClosureFreeval(_, _) => false,
    }
}

fn occurrences(s: &S0Simple, v: &str) -> usize {
    match s {
        S0Simple::Var(x) => usize::from(x == v),
        S0Simple::Const(_) => 0,
        S0Simple::Prim(_, args) | S0Simple::MakeClosure(_, args) => {
            args.iter().map(|a| occurrences(a, v)).sum()
        }
        S0Simple::ClosureLabel(a) | S0Simple::ClosureFreeval(a, _) => occurrences(a, v),
    }
}

fn occurrences_tail(t: &S0Tail, v: &str) -> usize {
    match t {
        S0Tail::Return(s) => occurrences(s, v),
        S0Tail::If(c, a, b) => {
            occurrences(c, v) + occurrences_tail(a, v).max(occurrences_tail(b, v))
        }
        S0Tail::TailCall(_, args) => args.iter().map(|a| occurrences(a, v)).sum(),
        S0Tail::Fail(_) => 0,
    }
}

fn rewrite_calls(t: &S0Tail, f: &mut impl FnMut(&str, &[S0Simple]) -> S0Tail) -> S0Tail {
    match t {
        S0Tail::Return(_) | S0Tail::Fail(_) => t.clone(),
        S0Tail::If(c, a, b) => S0Tail::If(
            c.clone(),
            Box::new(rewrite_calls(a, f)),
            Box::new(rewrite_calls(b, f)),
        ),
        S0Tail::TailCall(p, args) => f(p, args),
    }
}

fn visit_calls(t: &S0Tail, f: &mut impl FnMut(&str, &[S0Simple])) {
    match t {
        S0Tail::Return(_) | S0Tail::Fail(_) => {}
        S0Tail::If(_, a, b) => {
            visit_calls(a, f);
            visit_calls(b, f);
        }
        S0Tail::TailCall(p, args) => f(p, args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, FlowSeverity};
    use crate::s0::S0Proc;
    use pe_frontend::ast::Constant;
    use pe_frontend::Prim;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.into())
    }

    fn kint(n: i64) -> S0Simple {
        S0Simple::Const(Constant::Int(n))
    }

    fn fuel() -> Fuel {
        Fuel::new(&Limits::default())
    }

    /// The flow verifier must report no errors on the program.
    fn assert_wellformed(q: &S0Program) {
        let diags = check(q, &mut fuel()).unwrap();
        let errs: Vec<_> =
            diags.iter().filter(|d| d.severity == FlowSeverity::Error).collect();
        assert!(errs.is_empty(), "{errs:?}\n{q}");
    }

    #[test]
    fn unreachable_procs_are_dropped() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc { name: "main".into(), params: vec![], body: S0Tail::Return(kint(1)) },
                S0Proc { name: "junk".into(), params: vec![], body: S0Tail::Return(kint(2)) },
            ],
        };
        let p = drop_unreachable(p);
        assert_eq!(p.procs.len(), 1);
        assert_eq!(p.procs[0].name, "main");
    }

    #[test]
    fn transition_chains_are_compressed() {
        // main → a → b, both trampolines; main should call c directly.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::TailCall("a".into(), vec![var("x")]),
                },
                S0Proc {
                    name: "a".into(),
                    params: vec!["y".into()],
                    body: S0Tail::TailCall(
                        "b".into(),
                        vec![S0Simple::Prim(Prim::Cons, vec![var("y"), kint(1)])],
                    ),
                },
                S0Proc {
                    name: "b".into(),
                    params: vec!["z".into()],
                    body: S0Tail::TailCall("c".into(), vec![var("z"), var("z")]),
                },
                S0Proc {
                    name: "c".into(),
                    params: vec!["u".into(), "v".into()],
                    body: S0Tail::Return(var("u")),
                },
            ],
        };
        let p = compress_transitions(p);
        let main = p.proc("main").unwrap();
        // The chase inlines a (and substitutes its cons into b's arg),
        // then stops: b would duplicate the non-trivial cons argument
        // into c's two argument slots.
        match &main.body {
            S0Tail::TailCall(t, args) => {
                assert_eq!(t, "b");
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected direct call to b, got {other:?}"),
        }
        assert!(p.proc("a").is_none(), "trampoline a removed");
        assert!(p.proc("b").is_some(), "duplicating trampoline b kept");
    }

    #[test]
    fn transition_compression_never_duplicates_work() {
        // x → dup with a computed argument used twice: must not chase.
        let p = S0Program {
            entry: "x".into(),
            procs: vec![
                S0Proc {
                    name: "x".into(),
                    params: vec!["v".into()],
                    body: S0Tail::TailCall(
                        "dup".into(),
                        vec![S0Simple::Prim(Prim::Cons, vec![var("v"), kint(1)])],
                    ),
                },
                S0Proc {
                    name: "dup".into(),
                    params: vec!["w".into()],
                    body: S0Tail::TailCall("use2".into(), vec![var("w"), var("w")]),
                },
                S0Proc {
                    name: "use2".into(),
                    params: vec!["a".into(), "b".into()],
                    body: S0Tail::Return(S0Simple::Prim(Prim::Cons, vec![var("a"), var("b")])),
                },
            ],
        };
        let before = p.size();
        let q = postprocess(p);
        assert_wellformed(&q);
        // The cons argument appears once in the output program.
        assert!(q.size() <= before + 2, "no blowup: {} -> {}", before, q.size());
    }

    #[test]
    fn inline_once_merges_chains() {
        // The paper's append-$1 scenario: a chain of once-called procs
        // collapses into the entry.
        let p = S0Program {
            entry: "append-$1".into(),
            procs: vec![
                S0Proc {
                    name: "append-$1".into(),
                    params: vec!["y".into()],
                    body: S0Tail::TailCall("sl-eval-$1".into(), vec![var("y")]),
                },
                S0Proc {
                    name: "sl-eval-$1".into(),
                    params: vec!["cv-vals-$1".into()],
                    body: S0Tail::Return(S0Simple::Prim(
                        Prim::Cons,
                        vec![S0Simple::Const(Constant::Sym("foo".into())), var("cv-vals-$1")],
                    )),
                },
            ],
        };
        let p = postprocess(p);
        assert_eq!(p.procs.len(), 1);
        match &p.procs[0].body {
            S0Tail::Return(S0Simple::Prim(Prim::Cons, args)) => {
                assert_eq!(args[1], var("y"));
            }
            other => panic!("expected inlined cons, got {other:?}"),
        }
    }

    #[test]
    fn recursive_procs_are_not_inlined() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["n".into()],
                    body: S0Tail::TailCall("loop".into(), vec![var("n")]),
                },
                S0Proc {
                    name: "loop".into(),
                    params: vec!["n".into()],
                    body: S0Tail::If(
                        S0Simple::Prim(Prim::ZeroP, vec![var("n")]),
                        Box::new(S0Tail::Return(kint(0))),
                        Box::new(S0Tail::TailCall(
                            "loop".into(),
                            vec![S0Simple::Prim(Prim::Sub, vec![var("n"), kint(1)])],
                        )),
                    ),
                },
            ],
        };
        let q = postprocess(p.clone());
        // merge_entry renames the loop to the public entry name; the
        // self-recursive loop itself must survive under either name.
        let survivor = q.proc("loop").or_else(|| q.proc("main")).expect("loop survives");
        let mut recursive = false;
        survivor.body.calls(&mut |c| recursive |= c == survivor.name);
        assert!(recursive, "{q}");
        assert_wellformed(&q);
    }

    #[test]
    fn dead_params_are_dropped_when_safe() {
        let p2 = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::TailCall("f".into(), vec![kint(1), var("x")]),
                },
                S0Proc {
                    name: "f".into(),
                    params: vec!["dead".into(), "live".into()],
                    body: S0Tail::Return(var("live")),
                },
            ],
        };
        let q = drop_dead_params(p2);
        let f = q.proc("f").unwrap();
        assert_eq!(f.params, vec!["live".to_string()]);
        assert_wellformed(&q);

        // The unsafe case: argument can fault, parameter must stay.
        let p3 = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::TailCall(
                        "f".into(),
                        vec![S0Simple::Prim(Prim::Car, vec![var("x")]), var("x")],
                    ),
                },
                S0Proc {
                    name: "f".into(),
                    params: vec!["dead".into(), "live".into()],
                    body: S0Tail::Return(var("live")),
                },
            ],
        };
        let q = drop_dead_params(p3);
        assert_eq!(q.proc("f").unwrap().params.len(), 2, "faulting arg must stay");
    }

    #[test]
    fn postprocess_preserves_wellformedness() {
        let p = S0Program {
            entry: "e".into(),
            procs: vec![
                S0Proc {
                    name: "e".into(),
                    params: vec!["a".into()],
                    body: S0Tail::TailCall("t1".into(), vec![var("a")]),
                },
                S0Proc {
                    name: "t1".into(),
                    params: vec!["b".into()],
                    body: S0Tail::TailCall("t2".into(), vec![var("b"), kint(9)]),
                },
                S0Proc {
                    name: "t2".into(),
                    params: vec!["c".into(), "d".into()],
                    body: S0Tail::Return(S0Simple::Prim(Prim::Cons, vec![var("c"), var("d")])),
                },
            ],
        };
        let q = postprocess(p);
        assert_wellformed(&q);
        assert_eq!(q.procs.len(), 1, "everything inlined into the entry");
    }

    /// A constant circulating through a recursive loop: propagation
    /// substitutes it, liveness then kills the parameter, and the
    /// clean-up pass folds the exposed constants.
    #[test]
    fn optimize_combines_propagation_and_dead_params() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["n".into()],
                    body: S0Tail::TailCall("loop".into(), vec![var("n"), kint(7)]),
                },
                S0Proc {
                    name: "loop".into(),
                    params: vec!["n".into(), "x".into()],
                    body: S0Tail::If(
                        S0Simple::Prim(Prim::ZeroP, vec![var("n")]),
                        Box::new(S0Tail::Return(var("x"))),
                        Box::new(S0Tail::TailCall(
                            "loop".into(),
                            vec![
                                S0Simple::Prim(Prim::Sub, vec![var("n"), kint(1)]),
                                var("x"),
                            ],
                        )),
                    ),
                },
            ],
        };
        let (q, stats) = optimize(p, &mut fuel()).unwrap();
        assert_eq!(stats.copies_propagated, 2, "{stats:?}");
        assert_eq!(stats.dead_bindings, 1, "{stats:?}");
        let lp = q.proc("loop").unwrap();
        assert_eq!(lp.params, vec!["n".to_string()]);
        assert_wellformed(&q);
        assert!(stats.cfg_nodes > 0 && stats.cfg_edges > 0);
    }

    #[test]
    fn optimize_respects_fuel() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec![],
                body: S0Tail::Return(kint(1)),
            }],
        };
        let mut tiny = Fuel::new(&Limits { fuel: 1, ..Limits::default() });
        assert!(matches!(optimize(p, &mut tiny), Err(Trap::OutOfFuel { .. })));
    }
}
