//! Flow-based verification of S₀ programs.
//!
//! Three checks, all driven by the analyses in this crate rather than
//! syntax walks:
//!
//! * **definite binding** (error) — every variable read at a reachable
//!   program point is definitely bound along *all* paths reaching it,
//!   established by a forward must-analysis on the CFG (the definite
//!   set is intersected over predecessors; unreachable nodes carry no
//!   obligation).  Calls to unknown procedures and arity mismatches
//!   are reported here too — binding obligations cross procedures
//!   through calls.
//! * **dispatch-arm reachability** (warning) — a dispatch arm the label
//!   analysis proves always or never taken is residual noise the
//!   optimizer would fold; reported via [`crate::slots::arm_findings`].
//! * **dead closure slots** (warning) — capture slots never read at any
//!   definite freeval site, prunable by [`crate::slots::prune`].
//!
//! A program that went through [`crate::opt::optimize`] satisfies both
//! warning lints by construction: the lints mirror the optimizer's own
//! analyses, so anything they would flag has already been rewritten.

use crate::cfg::{Cfg, Node};
use crate::s0::{S0Program, S0Simple};
use crate::solver::{solve, Analysis, Direction};
use pe_governor::{Fuel, Trap};
use std::collections::{BTreeSet, HashMap, HashSet};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSeverity {
    /// The program is ill-formed; executing it can go wrong.
    Error,
    /// The program is correct but carries residual noise the flow
    /// optimizer would remove.
    Warning,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDiag {
    /// Severity of the finding.
    pub severity: FlowSeverity,
    /// The procedure the finding is anchored at.
    pub proc: String,
    /// Human-readable description.
    pub message: String,
}

/// Definite binding as a forward must-analysis: the fact is the set of
/// variables definitely bound on *every* path to the point, `None`
/// meaning "unreachable" (the lattice bottom, neutral for the
/// intersection join).
struct DefiniteBinding {
    params: BTreeSet<String>,
}

impl Analysis for DefiniteBinding {
    type Fact = Option<BTreeSet<String>>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Self::Fact {
        Some(self.params.clone())
    }

    fn bottom(&self) -> Self::Fact {
        None
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        match (&*into, from) {
            (_, None) => false,
            (None, Some(_)) => {
                *into = from.clone();
                true
            }
            (Some(a), Some(b)) => {
                let meet: BTreeSet<String> = a.intersection(b).cloned().collect();
                let changed = meet.len() != a.len();
                *into = Some(meet);
                changed
            }
        }
    }

    // S₀ binds only at procedure entry: nodes neither add nor kill.
    fn transfer(&self, _node: &Node, fact: &Self::Fact) -> Self::Fact {
        fact.clone()
    }
}

fn node_reads(node: &Node, out: &mut HashSet<String>) {
    match node {
        Node::Entry | Node::Fail(_) => {}
        Node::Branch(c) | Node::Return(c) => c.vars(out),
        Node::Call(_, args) => args.iter().for_each(|a| a.vars(out)),
    }
}

/// Runs all flow checks over `p`.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted.
pub fn check(p: &S0Program, fuel: &mut Fuel) -> Result<Vec<FlowDiag>, Trap> {
    let mut diags = Vec::new();
    let arities: HashMap<&str, usize> =
        p.procs.iter().map(|q| (q.name.as_str(), q.params.len())).collect();
    for q in &p.procs {
        fuel.step()?;
        // Definite binding at every reachable point.
        let cfg = Cfg::build(q);
        let analysis = DefiniteBinding { params: q.params.iter().cloned().collect() };
        let facts = solve(&cfg, &analysis, fuel)?;
        for (i, node) in cfg.nodes.iter().enumerate() {
            let Some(bound) = &facts[i] else { continue };
            let mut reads = HashSet::new();
            node_reads(node, &mut reads);
            let mut unbound: Vec<&String> =
                reads.iter().filter(|v| !bound.contains(*v)).collect();
            unbound.sort();
            for v in unbound {
                diags.push(FlowDiag {
                    severity: FlowSeverity::Error,
                    proc: q.name.clone(),
                    message: format!("variable `{v}` read but not definitely bound"),
                });
            }
            // Binding obligations across calls: target and arity.
            if let Node::Call(callee, args) = node {
                match arities.get(callee.as_str()) {
                    None => diags.push(FlowDiag {
                        severity: FlowSeverity::Error,
                        proc: q.name.clone(),
                        message: format!("call to unknown procedure `{callee}`"),
                    }),
                    Some(&n) if n != args.len() => diags.push(FlowDiag {
                        severity: FlowSeverity::Error,
                        proc: q.name.clone(),
                        message: format!(
                            "call to `{callee}` passes {} arguments, expects {n}",
                            args.len()
                        ),
                    }),
                    Some(_) => {}
                }
            }
        }
    }
    // Dispatch arms decidable from label sets alone.
    for f in crate::slots::arm_findings(p, fuel)? {
        let what = if f.always { "always" } else { "never" };
        diags.push(FlowDiag {
            severity: FlowSeverity::Warning,
            proc: f.proc,
            message: format!("dispatch on closure label {} {what} matches", f.label),
        });
    }
    // Capture slots never read at any definite site.
    let sa = crate::slots::analyze(p, fuel)?;
    for (l, idxs) in &sa.prune {
        diags.push(FlowDiag {
            severity: FlowSeverity::Warning,
            proc: proc_of_label(p, *l).unwrap_or_else(|| p.entry.clone()),
            message: format!(
                "closure label {l}: capture slot{} {} never read (prunable)",
                if idxs.len() == 1 { "" } else { "s" },
                idxs.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
            ),
        });
    }
    Ok(diags)
}

/// Finds the procedure allocating label `l`, for anchoring diagnostics.
fn proc_of_label(p: &S0Program, l: u32) -> Option<String> {
    fn in_simple(s: &S0Simple, l: u32) -> bool {
        match s {
            S0Simple::Var(_) | S0Simple::Const(_) => false,
            S0Simple::MakeClosure(m, args) => {
                *m == l || args.iter().any(|a| in_simple(a, l))
            }
            S0Simple::Prim(_, args) => args.iter().any(|a| in_simple(a, l)),
            S0Simple::ClosureLabel(a) | S0Simple::ClosureFreeval(a, _) => in_simple(a, l),
        }
    }
    fn in_tail(t: &crate::s0::S0Tail, l: u32) -> bool {
        use crate::s0::S0Tail;
        match t {
            S0Tail::Return(s) => in_simple(s, l),
            S0Tail::Fail(_) => false,
            S0Tail::If(c, a, b) => in_simple(c, l) || in_tail(a, l) || in_tail(b, l),
            S0Tail::TailCall(_, args) => args.iter().any(|a| in_simple(a, l)),
        }
    }
    p.procs.iter().find(|q| in_tail(&q.body, l)).map(|q| q.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s0::{S0Proc, S0Tail};
    use pe_frontend::ast::Constant;
    use pe_governor::Limits;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.into())
    }

    fn kint(n: i64) -> S0Simple {
        S0Simple::Const(Constant::Int(n))
    }

    fn fuel() -> Fuel {
        Fuel::new(&Limits::default())
    }

    #[test]
    fn wellformed_program_is_clean() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec!["x".into()],
                body: S0Tail::Return(var("x")),
            }],
        };
        assert!(check(&p, &mut fuel()).unwrap().is_empty());
    }

    #[test]
    fn unbound_reads_and_bad_calls_are_errors() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::If(
                        var("x"),
                        Box::new(S0Tail::Return(var("ghost"))),
                        Box::new(S0Tail::TailCall("f".into(), vec![kint(1), kint(2)])),
                    ),
                },
                S0Proc {
                    name: "f".into(),
                    params: vec!["a".into()],
                    body: S0Tail::TailCall("nowhere".into(), vec![var("a")]),
                },
            ],
        };
        let diags = check(&p, &mut fuel()).unwrap();
        let errors: Vec<&str> = diags
            .iter()
            .filter(|d| d.severity == FlowSeverity::Error)
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors.iter().any(|m| m.contains("`ghost`")));
        assert!(errors.iter().any(|m| m.contains("expects 1")));
        assert!(errors.iter().any(|m| m.contains("unknown procedure `nowhere`")));
    }

    #[test]
    fn dead_slots_are_warnings_until_optimized() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["a".into(), "b".into()],
                    body: S0Tail::TailCall(
                        "k".into(),
                        vec![S0Simple::MakeClosure(4, vec![var("a"), var("b")])],
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::Return(S0Simple::ClosureFreeval(Box::new(var("c")), 0)),
                },
            ],
        };
        let diags = check(&p, &mut fuel()).unwrap();
        let warn: Vec<_> =
            diags.iter().filter(|d| d.severity == FlowSeverity::Warning).collect();
        assert_eq!(warn.len(), 1, "{diags:?}");
        assert!(warn[0].message.contains("capture slot 1"), "{}", warn[0].message);
        assert_eq!(warn[0].proc, "main");

        // After the optimizer the very same lint comes back empty.
        let (q, stats) = crate::opt::optimize(p, &mut fuel()).unwrap();
        assert!(stats.slots_pruned >= 1, "{stats:?}");
        assert!(check(&q, &mut fuel()).unwrap().is_empty(), "{q}");
    }

    #[test]
    fn decidable_dispatch_arms_are_warnings() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["a".into()],
                    body: S0Tail::TailCall(
                        "k".into(),
                        vec![S0Simple::MakeClosure(2, vec![var("a")])],
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::If(
                        S0Simple::Prim(
                            pe_frontend::Prim::EqualP,
                            vec![kint(9), S0Simple::ClosureLabel(Box::new(var("c")))],
                        ),
                        Box::new(S0Tail::Fail("unreachable".into())),
                        Box::new(S0Tail::Return(S0Simple::ClosureFreeval(
                            Box::new(var("c")),
                            0,
                        ))),
                    ),
                },
            ],
        };
        let diags = check(&p, &mut fuel()).unwrap();
        assert!(
            diags.iter().any(|d| d.severity == FlowSeverity::Warning
                && d.proc == "k"
                && d.message.contains("never matches")),
            "{diags:?}"
        );
    }

    #[test]
    fn unreachable_nodes_carry_no_binding_obligation() {
        // A constant-false branch guards a read of a variable that is
        // bound on that (dead) path only in spirit; definite binding
        // must still flag it because the node IS reachable in the CFG.
        // Conversely a node behind no predecessors at all would carry
        // None facts — the S₀ CFG has no such nodes by construction,
        // so we assert the reachable-read error fires.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec![],
                body: S0Tail::If(
                    S0Simple::Const(Constant::Bool(false)),
                    Box::new(S0Tail::Return(var("phantom"))),
                    Box::new(S0Tail::Return(kint(0))),
                ),
            }],
        };
        let diags = check(&p, &mut fuel()).unwrap();
        assert!(diags.iter().any(|d| d.message.contains("`phantom`")), "{diags:?}");
    }
}
