//! Liveness over S₀.
//!
//! Two layers:
//!
//! * [`Liveness`], a per-procedure backward analysis on the CFG: which
//!   variables may still be read at each program point.  Because S₀
//!   procedures bind only at entry and bodies are acyclic trees, the
//!   entry fact is the procedure's used-variable set — the value of
//!   running it through the solver is that the *same* framework also
//!   answers per-point questions (the C backend asks which parameters
//!   are live at entry before materializing private copies).
//! * [`param_liveness`], an interprocedural fixpoint: parameter
//!   `(f, i)` is live when some occurrence of it is read outside call
//!   arguments, or flows into a live (or unprunable) parameter of a
//!   callee.  This is strictly stronger than the syntactic dead-code
//!   scan the old post-processor used: a parameter that only circulates
//!   through a recursive call (`f` passing `x` back to `f`) is dead
//!   here but syntactically "used".
//!
//! [`prune_dead_params`] rewrites the program by the analysis: dead,
//! non-sticky parameters of non-entry procedures are dropped together
//! with every (effect-free) argument.

use crate::cfg::{Cfg, Node};
use crate::opt::is_effect_free;
use crate::s0::{S0Proc, S0Program, S0Tail};
use crate::solver::{solve, Analysis, Direction};
use pe_governor::{Fuel, Trap};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The classic backward may-liveness analysis.
pub struct Liveness;

impl Analysis for Liveness {
    type Fact = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BTreeSet<String> {
        BTreeSet::new()
    }

    fn bottom(&self) -> BTreeSet<String> {
        BTreeSet::new()
    }

    fn join(&self, into: &mut BTreeSet<String>, from: &BTreeSet<String>) -> bool {
        let before = into.len();
        into.extend(from.iter().cloned());
        into.len() != before
    }

    fn transfer(&self, node: &Node, fact: &BTreeSet<String>) -> BTreeSet<String> {
        let mut out = fact.clone();
        let mut used = HashSet::new();
        match node {
            Node::Entry | Node::Fail(_) => {}
            Node::Branch(c) | Node::Return(c) => c.vars(&mut used),
            Node::Call(_, args) => args.iter().for_each(|a| a.vars(&mut used)),
        }
        out.extend(used);
        out
    }
}

/// Variables of `p` live at procedure entry (i.e. possibly read).
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the solver budget is exhausted.
pub fn live_at_entry(p: &S0Proc, fuel: &mut Fuel) -> Result<BTreeSet<String>, Trap> {
    let cfg = Cfg::build(p);
    let facts = solve(&cfg, &Liveness, fuel)?;
    Ok(facts[Cfg::ENTRY].clone())
}

/// Result of the interprocedural parameter-liveness fixpoint.
#[derive(Debug, Clone)]
pub struct ParamLiveness {
    /// `live[name][i]` — may parameter `i` of `name` affect execution?
    pub live: HashMap<String, Vec<bool>>,
    /// `sticky[name][i]` — does some call site pass a non-effect-free
    /// argument there (so the slot cannot be dropped even when dead)?
    pub sticky: HashMap<String, Vec<bool>>,
}

/// Per-procedure syntactic summary feeding the fixpoint.
struct Uses {
    /// Variables read outside call-argument position.
    direct: HashSet<String>,
    /// `(callee, arg index, variables inside that argument)`.
    flows: Vec<(String, usize, HashSet<String>)>,
}

fn collect_uses(t: &S0Tail, out: &mut Uses) {
    match t {
        S0Tail::Return(s) => s.vars(&mut out.direct),
        S0Tail::Fail(_) => {}
        S0Tail::If(c, a, b) => {
            c.vars(&mut out.direct);
            collect_uses(a, out);
            collect_uses(b, out);
        }
        S0Tail::TailCall(callee, args) => {
            for (i, a) in args.iter().enumerate() {
                let mut vs = HashSet::new();
                a.vars(&mut vs);
                out.flows.push((callee.clone(), i, vs));
            }
        }
    }
}

/// Computes the interprocedural parameter-liveness fixpoint.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the budget is exhausted before convergence.
pub fn param_liveness(p: &S0Program, fuel: &mut Fuel) -> Result<ParamLiveness, Trap> {
    let mut sticky: HashMap<String, Vec<bool>> =
        p.procs.iter().map(|q| (q.name.clone(), vec![false; q.params.len()])).collect();
    let mut uses: HashMap<String, Uses> = HashMap::new();
    for q in &p.procs {
        let mut u = Uses { direct: HashSet::new(), flows: Vec::new() };
        collect_uses(&q.body, &mut u);
        uses.insert(q.name.clone(), u);
    }
    // Stickiness: any site passing a non-effect-free argument.
    for q in &p.procs {
        mark_sticky(&q.body, &mut sticky);
    }
    let mut live: HashMap<String, Vec<bool>> =
        p.procs.iter().map(|q| (q.name.clone(), vec![false; q.params.len()])).collect();
    if let Some(e) = live.get_mut(&p.entry) {
        e.iter_mut().for_each(|b| *b = true);
    }
    // Round-robin to fixpoint: mark a proc's variable live when it is
    // read directly or flows into a live-or-sticky parameter slot.
    loop {
        fuel.step()?;
        let mut changed = false;
        for q in &p.procs {
            fuel.step()?;
            let u = &uses[&q.name];
            let mut live_vars: HashSet<&str> =
                u.direct.iter().map(String::as_str).collect();
            for (callee, i, vs) in &u.flows {
                let callee_live = live.get(callee).and_then(|l| l.get(*i)).copied();
                let callee_sticky =
                    sticky.get(callee).and_then(|l| l.get(*i)).copied().unwrap_or(true);
                // Unknown callee or arity overflow: be conservative.
                if callee_live.unwrap_or(true) || callee_sticky {
                    live_vars.extend(vs.iter().map(String::as_str));
                }
            }
            let slots = live.get_mut(&q.name).expect("every proc seeded");
            for (i, pm) in q.params.iter().enumerate() {
                if !slots[i] && live_vars.contains(pm.as_str()) {
                    slots[i] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(ParamLiveness { live, sticky });
        }
    }
}

fn mark_sticky(t: &S0Tail, sticky: &mut HashMap<String, Vec<bool>>) {
    match t {
        S0Tail::Return(_) | S0Tail::Fail(_) => {}
        S0Tail::If(_, a, b) => {
            mark_sticky(a, sticky);
            mark_sticky(b, sticky);
        }
        S0Tail::TailCall(callee, args) => {
            if let Some(slots) = sticky.get_mut(callee) {
                for (i, a) in args.iter().enumerate() {
                    if let Some(s) = slots.get_mut(i) {
                        *s |= !is_effect_free(a);
                    }
                }
            }
        }
    }
}

/// Drops dead, non-sticky parameters of non-entry procedures together
/// with the corresponding arguments at every call site.  Returns the
/// rewritten program and the number of parameter bindings eliminated.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted.
pub fn prune_dead_params(
    p: S0Program,
    fuel: &mut Fuel,
) -> Result<(S0Program, usize), Trap> {
    let pl = param_liveness(&p, fuel)?;
    let mut drop: HashMap<String, Vec<usize>> = HashMap::new();
    for q in &p.procs {
        if q.name == p.entry {
            continue;
        }
        let (live, sticky) = (&pl.live[&q.name], &pl.sticky[&q.name]);
        let idxs: Vec<usize> =
            (0..q.params.len()).filter(|&i| !live[i] && !sticky[i]).collect();
        if !idxs.is_empty() {
            drop.insert(q.name.clone(), idxs);
        }
    }
    if drop.is_empty() {
        return Ok((p, 0));
    }
    let dropped: usize = drop.values().map(Vec::len).sum();
    let mut p = p;
    for q in &mut p.procs {
        if let Some(idxs) = drop.get(&q.name) {
            q.params = keep_except(&q.params, idxs);
        }
        q.body = rewrite_drop_args(&q.body, &drop);
    }
    Ok((p, dropped))
}

fn keep_except<T: Clone>(xs: &[T], idxs: &[usize]) -> Vec<T> {
    xs.iter()
        .enumerate()
        .filter(|(i, _)| !idxs.contains(i))
        .map(|(_, x)| x.clone())
        .collect()
}

fn rewrite_drop_args(t: &S0Tail, drop: &HashMap<String, Vec<usize>>) -> S0Tail {
    match t {
        S0Tail::Return(_) | S0Tail::Fail(_) => t.clone(),
        S0Tail::If(c, a, b) => S0Tail::If(
            c.clone(),
            Box::new(rewrite_drop_args(a, drop)),
            Box::new(rewrite_drop_args(b, drop)),
        ),
        S0Tail::TailCall(callee, args) => {
            let args = match drop.get(callee) {
                Some(idxs) => keep_except(args, idxs),
                None => args.clone(),
            };
            S0Tail::TailCall(callee.clone(), args)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s0::S0Simple;
    use pe_frontend::ast::Constant;
    use pe_frontend::Prim;
    use pe_governor::Limits;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.into())
    }

    fn kint(n: i64) -> S0Simple {
        S0Simple::Const(Constant::Int(n))
    }

    fn fuel() -> Fuel {
        Fuel::new(&Limits::default())
    }

    #[test]
    fn recursive_passthrough_param_is_dead() {
        // x only circulates through the recursive call: the syntactic
        // scan keeps it; the interprocedural fixpoint kills it.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["n".into()],
                    body: S0Tail::TailCall("loop".into(), vec![var("n"), kint(7)]),
                },
                S0Proc {
                    name: "loop".into(),
                    params: vec!["n".into(), "x".into()],
                    body: S0Tail::If(
                        S0Simple::Prim(Prim::ZeroP, vec![var("n")]),
                        Box::new(S0Tail::Return(kint(0))),
                        Box::new(S0Tail::TailCall(
                            "loop".into(),
                            vec![
                                S0Simple::Prim(Prim::Sub, vec![var("n"), kint(1)]),
                                var("x"),
                            ],
                        )),
                    ),
                },
            ],
        };
        let (q, dropped) = prune_dead_params(p, &mut fuel()).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(q.proc("loop").unwrap().params, vec!["n".to_string()]);
    }

    #[test]
    fn sticky_args_keep_dead_params() {
        // The dead slot receives (car x) somewhere: dropping the
        // argument would drop a potential fault, so the slot stays.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::TailCall(
                        "f".into(),
                        vec![S0Simple::Prim(Prim::Car, vec![var("x")]), var("x")],
                    ),
                },
                S0Proc {
                    name: "f".into(),
                    params: vec!["dead".into(), "live".into()],
                    body: S0Tail::Return(var("live")),
                },
            ],
        };
        let (q, dropped) = prune_dead_params(p, &mut fuel()).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(q.proc("f").unwrap().params.len(), 2);
    }

    #[test]
    fn live_at_entry_is_per_branch_union() {
        let p = S0Proc {
            name: "f".into(),
            params: vec!["a".into(), "b".into(), "c".into()],
            body: S0Tail::If(
                var("a"),
                Box::new(S0Tail::Return(var("b"))),
                Box::new(S0Tail::Return(var("a"))),
            ),
        };
        let live = live_at_entry(&p, &mut fuel()).unwrap();
        assert!(live.contains("a") && live.contains("b"));
        assert!(!live.contains("c"));
    }
}
