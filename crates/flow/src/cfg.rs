//! Explicit per-procedure control-flow graphs over S₀.
//!
//! An S₀ body is a tree of tail expressions: conditionals branch, and
//! every leaf either returns a value, tail-calls another procedure, or
//! faults.  The CFG makes that flow explicit — one [`Node`] per tail
//! expression plus a distinguished entry — so the worklist solver in
//! [`crate::solver`] can run standard forward/backward analyses over
//! it.  Intra-procedural graphs are acyclic by construction (loops in
//! S₀ are inter-procedural tail calls), which the solver does not rely
//! on but every analysis gets to exploit: fixpoints converge in one
//! pass per topological order.

use crate::s0::{S0Proc, S0Program, S0Simple, S0Tail};

/// One CFG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Procedure entry; its parameters are the only binders in S₀.
    Entry,
    /// An `(if c …)` test; successor 0 is the then-branch, successor 1
    /// the else-branch.
    Branch(S0Simple),
    /// A `Return` leaf: evaluate the expression and return it.
    Return(S0Simple),
    /// A tail call leaf: evaluate the arguments, transfer control.
    Call(String, Vec<S0Simple>),
    /// A `%fail` leaf.
    Fail(String),
}

/// The control-flow graph of one procedure.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Nodes; index 0 is always [`Node::Entry`].
    pub nodes: Vec<Node>,
    /// Successor indices per node (branches list then before else).
    pub succ: Vec<Vec<usize>>,
    /// Predecessor indices per node.
    pub pred: Vec<Vec<usize>>,
}

impl Cfg {
    /// Index of the entry node.
    pub const ENTRY: usize = 0;

    /// Builds the CFG of `p`'s body.
    #[must_use]
    pub fn build(p: &S0Proc) -> Cfg {
        let mut cfg = Cfg { nodes: vec![Node::Entry], succ: vec![Vec::new()], pred: Vec::new() };
        let first = cfg.add_tail(&p.body);
        cfg.succ[Cfg::ENTRY].push(first);
        cfg.pred = vec![Vec::new(); cfg.nodes.len()];
        for (n, ss) in cfg.succ.iter().enumerate() {
            for &s in ss {
                cfg.pred[s].push(n);
            }
        }
        cfg
    }

    fn add(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.succ.push(Vec::new());
        self.nodes.len() - 1
    }

    fn add_tail(&mut self, t: &S0Tail) -> usize {
        match t {
            S0Tail::Return(s) => self.add(Node::Return(s.clone())),
            S0Tail::TailCall(p, args) => self.add(Node::Call(p.clone(), args.clone())),
            S0Tail::Fail(m) => self.add(Node::Fail(m.clone())),
            S0Tail::If(c, a, b) => {
                let n = self.add(Node::Branch(c.clone()));
                let t = self.add_tail(a);
                let e = self.add_tail(b);
                self.succ[n] = vec![t, e];
                n
            }
        }
    }

    /// Number of nodes (including the entry).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }
}

/// The CFGs of every procedure in a program.
#[derive(Debug, Clone)]
pub struct ProgramCfg {
    /// One `(name, cfg)` pair per procedure, in program order.
    pub procs: Vec<(String, Cfg)>,
}

impl ProgramCfg {
    /// Builds all per-procedure CFGs.
    #[must_use]
    pub fn build(p: &S0Program) -> ProgramCfg {
        ProgramCfg {
            procs: p.procs.iter().map(|q| (q.name.clone(), Cfg::build(q))).collect(),
        }
    }

    /// Total node count across procedures.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.procs.iter().map(|(_, c)| c.node_count()).sum()
    }

    /// Total edge count across procedures.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.procs.iter().map(|(_, c)| c.edge_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_frontend::ast::Constant;
    use pe_frontend::Prim;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.into())
    }

    #[test]
    fn straight_line_body_is_entry_plus_leaf() {
        let p = S0Proc {
            name: "f".into(),
            params: vec!["x".into()],
            body: S0Tail::Return(var("x")),
        };
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.node_count(), 2);
        assert_eq!(cfg.edge_count(), 1);
        assert_eq!(cfg.succ[Cfg::ENTRY], vec![1]);
        assert_eq!(cfg.pred[1], vec![0]);
    }

    #[test]
    fn branches_fan_out_then_before_else() {
        let p = S0Proc {
            name: "f".into(),
            params: vec!["n".into()],
            body: S0Tail::If(
                S0Simple::Prim(Prim::ZeroP, vec![var("n")]),
                Box::new(S0Tail::Return(S0Simple::Const(Constant::Int(0)))),
                Box::new(S0Tail::TailCall("f".into(), vec![var("n")])),
            ),
        };
        let cfg = Cfg::build(&p);
        // entry, branch, return, call
        assert_eq!(cfg.node_count(), 4);
        assert_eq!(cfg.edge_count(), 3);
        let branch = cfg.succ[Cfg::ENTRY][0];
        assert!(matches!(cfg.nodes[branch], Node::Branch(_)));
        let [t, e] = cfg.succ[branch][..] else { panic!("two successors") };
        assert!(matches!(cfg.nodes[t], Node::Return(_)));
        assert!(matches!(cfg.nodes[e], Node::Call(_, _)));
    }

    #[test]
    fn program_cfg_totals_are_sums() {
        let p = S0Program {
            entry: "a".into(),
            procs: vec![
                S0Proc { name: "a".into(), params: vec![], body: S0Tail::Fail("x".into()) },
                S0Proc { name: "b".into(), params: vec![], body: S0Tail::Fail("y".into()) },
            ],
        };
        let pc = ProgramCfg::build(&p);
        assert_eq!(pc.node_count(), 4);
        assert_eq!(pc.edge_count(), 2);
    }
}
