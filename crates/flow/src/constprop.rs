//! Interprocedural copy/constant propagation over S₀.
//!
//! S₀ has exactly one binding construct — procedure parameters — so
//! copies and constants propagate through *calls*: parameter `(f, i)`
//! is known to be the constant `k` when every call site's `i`-th
//! argument evaluates to `k` under the caller's own facts.  Passing a
//! parameter along (`(f x)` where `x` is itself known) chains copies
//! without any extra machinery: argument evaluation looks variables up
//! in the caller's fact row.
//!
//! The lattice per parameter is flat:
//!
//! ```text
//!      Top            (some call passes an unknown value)
//!   Known(k)          (every call passes the constant k)
//!     Bottom          (no call reaches the parameter yet)
//! ```
//!
//! The rewrite substitutes `Known` parameters by their constants inside
//! the owning body (the parameter itself stays and is collected by
//! dead-parameter pruning afterwards), counting replaced occurrences —
//! the `copies_propagated` counter.

use crate::s0::{S0Program, S0Simple, S0Tail};
use pe_frontend::ast::Constant;
use pe_governor::{Fuel, Trap};
use std::collections::HashMap;

/// One parameter's abstract value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CVal {
    /// No call site reaches this parameter (yet).
    Bottom,
    /// Every call site passes exactly this constant.
    Known(Constant),
    /// Call sites disagree or pass computed values.
    Top,
}

impl CVal {
    /// Joins `other` into `self`; returns true when `self` changed.
    fn join(&mut self, other: &CVal) -> bool {
        match (&*self, other) {
            (_, CVal::Bottom) | (CVal::Top, _) => false,
            (CVal::Bottom, _) => {
                *self = other.clone();
                true
            }
            (CVal::Known(a), CVal::Known(b)) if a == b => false,
            _ => {
                *self = CVal::Top;
                true
            }
        }
    }
}

/// Per-procedure parameter facts.
#[derive(Debug, Clone)]
pub struct ConstFacts {
    /// `params[name][i]` — abstract value of parameter `i` of `name`.
    pub params: HashMap<String, Vec<CVal>>,
}

fn eval_arg(arg: &S0Simple, env: &HashMap<&str, CVal>) -> CVal {
    match arg {
        S0Simple::Const(k) => CVal::Known(k.clone()),
        S0Simple::Var(v) => env.get(v.as_str()).cloned().unwrap_or(CVal::Top),
        _ => CVal::Top,
    }
}

fn visit_calls(t: &S0Tail, f: &mut impl FnMut(&str, &[S0Simple])) {
    match t {
        S0Tail::Return(_) | S0Tail::Fail(_) => {}
        S0Tail::If(_, a, b) => {
            visit_calls(a, f);
            visit_calls(b, f);
        }
        S0Tail::TailCall(p, args) => f(p, args),
    }
}

/// Runs the interprocedural fixpoint.  Entry parameters start at `Top`
/// (the outside world passes anything); everything else at `Bottom`.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the budget is exhausted before convergence.
pub fn analyze(p: &S0Program, fuel: &mut Fuel) -> Result<ConstFacts, Trap> {
    let mut facts: HashMap<String, Vec<CVal>> = p
        .procs
        .iter()
        .map(|q| (q.name.clone(), vec![CVal::Bottom; q.params.len()]))
        .collect();
    if let Some(e) = facts.get_mut(&p.entry) {
        e.iter_mut().for_each(|v| *v = CVal::Top);
    }
    loop {
        fuel.step()?;
        let mut changed = false;
        for q in &p.procs {
            fuel.step()?;
            let env: HashMap<&str, CVal> = {
                let row = &facts[&q.name];
                q.params
                    .iter()
                    .enumerate()
                    .map(|(i, pm)| (pm.as_str(), row[i].clone()))
                    .collect()
            };
            // Joining every syntactic call is sound (an over-approximation
            // of the real callers); unreachable callers only push facts
            // toward Top, and a Bottom-environment variable contributes
            // nothing.
            let mut updates: Vec<(String, usize, CVal)> = Vec::new();
            visit_calls(&q.body, &mut |callee, args| {
                for (i, a) in args.iter().enumerate() {
                    updates.push((callee.to_string(), i, eval_arg(a, &env)));
                }
            });
            for (callee, i, v) in updates {
                if let Some(slot) =
                    facts.get_mut(&callee).and_then(|row| row.get_mut(i))
                {
                    changed |= slot.join(&v);
                }
            }
        }
        if !changed {
            return Ok(ConstFacts { params: facts });
        }
    }
}

fn count_uses(t: &S0Tail, v: &str) -> usize {
    fn simple(s: &S0Simple, v: &str) -> usize {
        match s {
            S0Simple::Var(x) => usize::from(x == v),
            S0Simple::Const(_) => 0,
            S0Simple::Prim(_, args) | S0Simple::MakeClosure(_, args) => {
                args.iter().map(|a| simple(a, v)).sum()
            }
            S0Simple::ClosureLabel(a) | S0Simple::ClosureFreeval(a, _) => simple(a, v),
        }
    }
    match t {
        S0Tail::Return(s) => simple(s, v),
        S0Tail::If(c, a, b) => simple(c, v) + count_uses(a, v) + count_uses(b, v),
        S0Tail::TailCall(_, args) => args.iter().map(|a| simple(a, v)).sum(),
        S0Tail::Fail(_) => 0,
    }
}

/// Substitutes `Known` parameters by their constants throughout each
/// owning body.  Returns the rewritten program and the number of
/// variable occurrences replaced.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted.
pub fn propagate(p: S0Program, fuel: &mut Fuel) -> Result<(S0Program, usize), Trap> {
    let facts = analyze(&p, fuel)?;
    let mut replaced = 0usize;
    let mut p = p;
    for q in &mut p.procs {
        let row = &facts.params[&q.name];
        let map: HashMap<String, S0Simple> = q
            .params
            .iter()
            .enumerate()
            .filter_map(|(i, pm)| match &row[i] {
                CVal::Known(k) => Some((pm.clone(), S0Simple::Const(k.clone()))),
                _ => None,
            })
            .collect();
        if map.is_empty() {
            continue;
        }
        for pm in map.keys() {
            replaced += count_uses(&q.body, pm);
        }
        q.body = q.body.subst(&map);
    }
    Ok((p, replaced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s0::S0Proc;
    use pe_frontend::Prim;
    use pe_governor::Limits;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.into())
    }

    fn kint(n: i64) -> S0Simple {
        S0Simple::Const(Constant::Int(n))
    }

    fn fuel() -> Fuel {
        Fuel::new(&Limits::default())
    }

    #[test]
    fn constants_chain_through_copies() {
        // main passes 5 to f; f copies its param on to g; g's body uses
        // a known constant after two hops.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::TailCall("f".into(), vec![kint(5), var("x")]),
                },
                S0Proc {
                    name: "f".into(),
                    params: vec!["a".into(), "b".into()],
                    body: S0Tail::TailCall("g".into(), vec![var("a"), var("b")]),
                },
                S0Proc {
                    name: "g".into(),
                    params: vec!["c".into(), "d".into()],
                    body: S0Tail::Return(S0Simple::Prim(Prim::Add, vec![var("c"), var("d")])),
                },
            ],
        };
        let (q, n) = propagate(p, &mut fuel()).unwrap();
        // c := 5 in g, a := 5 in f (one use each).
        assert_eq!(n, 2);
        let g = q.proc("g").unwrap();
        match &g.body {
            S0Tail::Return(S0Simple::Prim(Prim::Add, args)) => {
                assert_eq!(args[0], kint(5));
                assert_eq!(args[1], var("d"), "d stays dynamic");
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn disagreeing_sites_stay_dynamic() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["x".into()],
                    body: S0Tail::If(
                        var("x"),
                        Box::new(S0Tail::TailCall("f".into(), vec![kint(1)])),
                        Box::new(S0Tail::TailCall("f".into(), vec![kint(2)])),
                    ),
                },
                S0Proc {
                    name: "f".into(),
                    params: vec!["a".into()],
                    body: S0Tail::Return(var("a")),
                },
            ],
        };
        let (q, n) = propagate(p.clone(), &mut fuel()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(q, p);
    }

    #[test]
    fn uncalled_procs_are_left_alone() {
        // junk's parameter is Bottom; nothing must be substituted.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec![],
                    body: S0Tail::Return(kint(1)),
                },
                S0Proc {
                    name: "junk".into(),
                    params: vec!["a".into()],
                    body: S0Tail::Return(var("a")),
                },
            ],
        };
        let (q, n) = propagate(p.clone(), &mut fuel()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(q, p);
    }
}
