//! Closure-slot usage analysis and pruning.
//!
//! Residual S₀ programs represent closures as flat vectors
//! (`make-closure ℓ v₀ … vₙ`) read by constant index
//! (`closure-freeval c i`).  This module answers "which slots of each
//! label are ever read?" and shrinks the vectors accordingly:
//!
//! 1. an interprocedural *label* analysis assigns every parameter an
//!    abstract closure value — a may-set of labels plus an `other` bit
//!    for non-closure (or unknown-provenance) values — refined inside
//!    dispatch arms (`(eq? ℓ (closure-label c))` pins `c` to `{ℓ}` in
//!    the then-branch and removes `ℓ` in the else-branch);
//! 2. a collection pass records, per label: allocation sites, slots
//!    read at *definite* freeval sites, and **pins** — labels whose
//!    closures escape the call graph (into primitive arguments, other
//!    closures' captures, or a `Return`), labels with inconsistent
//!    capture arity, and labels read at indeterminate sites.  A pinned
//!    label is never rewritten: an escaped closure can come back as an
//!    `other` value and be read at sites the rewrite cannot remap.
//!    Labels co-read at one freeval site form an equivalence class and
//!    are pruned identically (the site keeps a single index);
//! 3. the rewrite drops unread, effect-free capture slots of unpinned
//!    classes and renumbers every definite freeval index.
//!
//! The same label analysis powers [`fold_arms`]: a dispatch arm whose
//! test can be decided from the subject's label set alone is folded to
//! the surviving branch (only for variable subjects, whose test cannot
//! fault once the subject is known to be a closure).

use crate::opt::is_effect_free;
use crate::s0::{S0Program, S0Simple, S0Tail};
use pe_frontend::ast::Constant;
use pe_frontend::Prim;
use pe_governor::{Fuel, Trap};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An abstract closure value: a may-set of labels plus "anything else".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbsVal {
    /// Labels of `make-closure` values that may reach here.
    pub labels: BTreeSet<u32>,
    /// May a non-closure (or unknown-provenance) value reach here?
    pub other: bool,
}

impl AbsVal {
    fn bottom() -> AbsVal {
        AbsVal::default()
    }

    fn unknown() -> AbsVal {
        AbsVal { labels: BTreeSet::new(), other: true }
    }

    fn of_label(l: u32) -> AbsVal {
        AbsVal { labels: std::iter::once(l).collect(), other: false }
    }

    fn join_from(&mut self, o: &AbsVal) -> bool {
        let before = (self.labels.len(), self.other);
        self.labels.extend(o.labels.iter().copied());
        self.other |= o.other;
        before != (self.labels.len(), self.other)
    }

    fn without(&self, l: u32) -> AbsVal {
        let mut v = self.clone();
        v.labels.remove(&l);
        v
    }
}

/// Recognizes a dispatch test: `(eq?/eqv?/equal? ℓ (closure-label c))`
/// in either operand order, with a non-negative integer literal ℓ.
#[must_use]
pub fn parse_dispatch(c: &S0Simple) -> Option<(&S0Simple, u32)> {
    let S0Simple::Prim(op, args) = c else { return None };
    if !matches!(op, Prim::EqP | Prim::EqvP | Prim::EqualP) || args.len() != 2 {
        return None;
    }
    fn pick<'a>(a: &S0Simple, b: &'a S0Simple) -> Option<(&'a S0Simple, u32)> {
        let S0Simple::Const(Constant::Int(k)) = a else { return None };
        let S0Simple::ClosureLabel(subj) = b else { return None };
        u32::try_from(*k).ok().map(|k| (&**subj, k))
    }
    pick(&args[0], &args[1]).or_else(|| pick(&args[1], &args[0]))
}

type Env<'a> = HashMap<&'a str, AbsVal>;
type Refinements = Vec<(S0Simple, AbsVal)>;

fn eval(e: &S0Simple, env: &Env<'_>, refines: &Refinements) -> AbsVal {
    if let Some((_, v)) = refines.iter().rev().find(|(s, _)| s == e) {
        return v.clone();
    }
    match e {
        S0Simple::Var(v) => env.get(v.as_str()).cloned().unwrap_or_else(AbsVal::unknown),
        S0Simple::Const(_) | S0Simple::ClosureLabel(_) => AbsVal::bottom(),
        S0Simple::Prim(_, _) | S0Simple::ClosureFreeval(_, _) => AbsVal::unknown(),
        S0Simple::MakeClosure(l, _) => AbsVal::of_label(*l),
    }
}

/// Walks a tail, maintaining dispatch refinements, calling `f` on every
/// node (tails before their children).
fn walk_refined<'p>(
    t: &'p S0Tail,
    env: &Env<'_>,
    refines: &mut Refinements,
    f: &mut impl FnMut(&'p S0Tail, &Refinements),
) {
    f(t, refines);
    if let S0Tail::If(c, a, b) = t {
        if let Some((subj, k)) = parse_dispatch(c) {
            let sv = eval(subj, env, refines);
            refines.push((subj.clone(), AbsVal::of_label(k)));
            walk_refined(a, env, refines, f);
            refines.pop();
            refines.push((subj.clone(), sv.without(k)));
            walk_refined(b, env, refines, f);
            refines.pop();
        } else {
            walk_refined(a, env, refines, f);
            walk_refined(b, env, refines, f);
        }
    }
}

/// Everything the pruning rewrite and the flow lints need to know.
#[derive(Debug, Clone)]
pub struct SlotAnalysis {
    /// Abstract parameter values per procedure.
    pub shapes: HashMap<String, Vec<AbsVal>>,
    /// Capture arity per label (consistent across sites, else pinned).
    pub arity: BTreeMap<u32, usize>,
    /// Slots read (possibly) per label, across all definite sites.
    pub used: BTreeMap<u32, BTreeSet<usize>>,
    /// Labels that must not be rewritten.
    pub pinned: BTreeSet<u32>,
    /// Slots droppable per label: unread, unpinned class, effect-free
    /// arguments at every allocation site.  Sorted ascending.
    pub prune: BTreeMap<u32, Vec<usize>>,
}

/// Union-find over labels.
struct Classes {
    parent: HashMap<u32, u32>,
}

impl Classes {
    fn new() -> Classes {
        Classes { parent: HashMap::new() }
    }

    fn find(&mut self, l: u32) -> u32 {
        let p = *self.parent.entry(l).or_insert(l);
        if p == l {
            return l;
        }
        let r = self.find(p);
        self.parent.insert(l, r);
        r
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Runs the label fixpoint plus the usage/escape collection.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the budget is exhausted before convergence.
pub fn analyze(p: &S0Program, fuel: &mut Fuel) -> Result<SlotAnalysis, Trap> {
    let mut shapes: HashMap<String, Vec<AbsVal>> = p
        .procs
        .iter()
        .map(|q| (q.name.clone(), vec![AbsVal::bottom(); q.params.len()]))
        .collect();
    if let Some(e) = shapes.get_mut(&p.entry) {
        e.iter_mut().for_each(|v| *v = AbsVal::unknown());
    }
    // Fixpoint on parameter shapes.
    loop {
        fuel.step()?;
        let mut changed = false;
        for q in &p.procs {
            fuel.step()?;
            let env: Env<'_> = q
                .params
                .iter()
                .enumerate()
                .map(|(i, pm)| (pm.as_str(), shapes[&q.name][i].clone()))
                .collect();
            let mut flows: Vec<(String, usize, AbsVal)> = Vec::new();
            walk_refined(&q.body, &env, &mut Vec::new(), &mut |t, refines| {
                if let S0Tail::TailCall(callee, args) = t {
                    for (i, a) in args.iter().enumerate() {
                        flows.push((callee.clone(), i, eval(a, &env, refines)));
                    }
                }
            });
            for (callee, i, v) in flows {
                if let Some(slot) = shapes.get_mut(&callee).and_then(|r| r.get_mut(i)) {
                    changed |= slot.join_from(&v);
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Collection: sites, arities, usage, pins, co-occurrence classes.
    let mut sites: BTreeMap<u32, Vec<Vec<S0Simple>>> = BTreeMap::new();
    let mut arity: BTreeMap<u32, usize> = BTreeMap::new();
    let mut used: BTreeMap<u32, BTreeSet<usize>> = BTreeMap::new();
    let mut pinned: BTreeSet<u32> = BTreeSet::new();
    let mut classes = Classes::new();
    for q in &p.procs {
        fuel.step()?;
        let env: Env<'_> = q
            .params
            .iter()
            .enumerate()
            .map(|(i, pm)| (pm.as_str(), shapes[&q.name][i].clone()))
            .collect();
        walk_refined(&q.body, &env, &mut Vec::new(), &mut |t, refines| {
            let mut scan = Scan {
                env: &env,
                refines,
                sites: &mut sites,
                used: &mut used,
                pinned: &mut pinned,
                classes: &mut classes,
            };
            match t {
                S0Tail::Return(s) => scan.simple(s, true),
                S0Tail::If(c, _, _) => scan.simple(c, false),
                S0Tail::TailCall(_, args) => {
                    args.iter().for_each(|a| scan.simple(a, false));
                }
                S0Tail::Fail(_) => {}
            }
        });
    }
    for (l, ss) in &sites {
        let n = ss[0].len();
        if ss.iter().any(|s| s.len() != n) {
            pinned.insert(*l);
        }
        arity.insert(*l, n);
    }
    // Close pins over classes, then decide droppable slots per class.
    let mut roots: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let all_labels: BTreeSet<u32> = sites
        .keys()
        .copied()
        .chain(pinned.iter().copied())
        .chain(used.keys().copied())
        .collect();
    for l in &all_labels {
        roots.entry(classes.find(*l)).or_default().push(*l);
    }
    let mut prune: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for members in roots.values() {
        if members.iter().any(|l| pinned.contains(l)) {
            pinned.extend(members.iter().copied());
            continue;
        }
        // Every member needs a known, shared arity.
        let Some(&n) = members.first().and_then(|l| arity.get(l)) else {
            pinned.extend(members.iter().copied());
            continue;
        };
        if members.iter().any(|l| arity.get(l) != Some(&n)) {
            pinned.extend(members.iter().copied());
            continue;
        }
        let mut class_used: BTreeSet<usize> = BTreeSet::new();
        for l in members {
            if let Some(u) = used.get(l) {
                class_used.extend(u.iter().copied());
            }
        }
        let droppable: Vec<usize> = (0..n)
            .filter(|j| {
                !class_used.contains(j)
                    && members.iter().all(|l| {
                        sites.get(l).is_none_or(|ss| {
                            ss.iter().all(|args| is_effect_free(&args[*j]))
                        })
                    })
            })
            .collect();
        if !droppable.is_empty() {
            for l in members {
                prune.insert(*l, droppable.clone());
            }
        }
    }
    Ok(SlotAnalysis { shapes, arity, used, pinned, prune })
}

/// The escape/usage scanner for one simple expression.
struct Scan<'a, 'b> {
    env: &'a Env<'b>,
    refines: &'a Refinements,
    sites: &'a mut BTreeMap<u32, Vec<Vec<S0Simple>>>,
    used: &'a mut BTreeMap<u32, BTreeSet<usize>>,
    pinned: &'a mut BTreeSet<u32>,
    classes: &'a mut Classes,
}

impl Scan<'_, '_> {
    fn pin_val(&mut self, v: &AbsVal) {
        self.pinned.extend(v.labels.iter().copied());
    }

    /// `escapes` is true when the expression's *value* leaves the
    /// tracked world (primitive argument, capture, return value).
    fn simple(&mut self, e: &S0Simple, escapes: bool) {
        match e {
            S0Simple::Var(_) => {
                if escapes {
                    let v = eval(e, self.env, self.refines);
                    self.pin_val(&v);
                }
            }
            S0Simple::Const(_) => {}
            S0Simple::Prim(_, args) => {
                args.iter().for_each(|a| self.simple(a, true));
            }
            S0Simple::MakeClosure(l, args) => {
                if escapes {
                    self.pinned.insert(*l);
                }
                self.sites.entry(*l).or_default().push(args.clone());
                args.iter().for_each(|a| self.simple(a, true));
            }
            // Reading the label does not leak the closure itself.
            S0Simple::ClosureLabel(a) => self.simple(a, false),
            S0Simple::ClosureFreeval(a, i) => {
                self.simple(a, false);
                let v = eval(a, self.env, self.refines);
                if v.other {
                    // The subject may be an escaped (hence pinned)
                    // closure; pin the known labels too — this site
                    // cannot be renumbered for them.
                    self.pin_val(&v);
                } else {
                    let mut prev: Option<u32> = None;
                    for l in &v.labels {
                        self.used.entry(*l).or_default().insert(*i);
                        if let Some(q) = prev {
                            self.classes.union(q, *l);
                        }
                        prev = Some(*l);
                    }
                }
            }
        }
    }
}

/// Drops unread capture slots.  Returns the rewritten program and the
/// number of `(label, slot)` pairs pruned.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted.
pub fn prune(p: S0Program, fuel: &mut Fuel) -> Result<(S0Program, usize), Trap> {
    let sa = analyze(&p, fuel)?;
    if sa.prune.is_empty() {
        return Ok((p, 0));
    }
    let count: usize = sa.prune.values().map(Vec::len).sum();
    let mut procs = Vec::with_capacity(p.procs.len());
    for q in &p.procs {
        fuel.step()?;
        let env: Env<'_> = q
            .params
            .iter()
            .enumerate()
            .map(|(i, pm)| (pm.as_str(), sa.shapes[&q.name][i].clone()))
            .collect();
        let body = rw_tail(&q.body, &env, &mut Vec::new(), &sa);
        procs.push(crate::s0::S0Proc {
            name: q.name.clone(),
            params: q.params.clone(),
            body,
        });
    }
    Ok((S0Program { procs, entry: p.entry }, count))
}

fn rw_simple(e: &S0Simple, env: &Env<'_>, refines: &Refinements, sa: &SlotAnalysis) -> S0Simple {
    match e {
        S0Simple::Var(_) | S0Simple::Const(_) => e.clone(),
        S0Simple::Prim(op, args) => {
            S0Simple::Prim(*op, args.iter().map(|a| rw_simple(a, env, refines, sa)).collect())
        }
        S0Simple::MakeClosure(l, args) => {
            let dropped: &[usize] = sa.prune.get(l).map_or(&[], Vec::as_slice);
            let args = args
                .iter()
                .enumerate()
                .filter(|(j, _)| !dropped.contains(j))
                .map(|(_, a)| rw_simple(a, env, refines, sa))
                .collect();
            S0Simple::MakeClosure(*l, args)
        }
        S0Simple::ClosureLabel(a) => {
            S0Simple::ClosureLabel(Box::new(rw_simple(a, env, refines, sa)))
        }
        S0Simple::ClosureFreeval(a, i) => {
            let v = eval(a, env, refines);
            let a2 = Box::new(rw_simple(a, env, refines, sa));
            let i2 = if !v.other {
                // All definite labels share one class, hence one prune
                // set; any member gives the renumbering.
                v.labels
                    .iter()
                    .find_map(|l| sa.prune.get(l))
                    .map_or(*i, |dropped| {
                        i - dropped.iter().filter(|&&j| j < *i).count()
                    })
            } else {
                *i
            };
            S0Simple::ClosureFreeval(a2, i2)
        }
    }
}

fn rw_tail(t: &S0Tail, env: &Env<'_>, refines: &mut Refinements, sa: &SlotAnalysis) -> S0Tail {
    match t {
        S0Tail::Return(s) => S0Tail::Return(rw_simple(s, env, refines, sa)),
        S0Tail::Fail(m) => S0Tail::Fail(m.clone()),
        S0Tail::TailCall(callee, args) => S0Tail::TailCall(
            callee.clone(),
            args.iter().map(|a| rw_simple(a, env, refines, sa)).collect(),
        ),
        S0Tail::If(c, a, b) => {
            let c2 = rw_simple(c, env, refines, sa);
            if let Some((subj, k)) = parse_dispatch(c) {
                let sv = eval(subj, env, refines);
                refines.push((subj.clone(), AbsVal::of_label(k)));
                let a2 = rw_tail(a, env, refines, sa);
                refines.pop();
                refines.push((subj.clone(), sv.without(k)));
                let b2 = rw_tail(b, env, refines, sa);
                refines.pop();
                S0Tail::If(c2, Box::new(a2), Box::new(b2))
            } else {
                S0Tail::If(
                    c2,
                    Box::new(rw_tail(a, env, refines, sa)),
                    Box::new(rw_tail(b, env, refines, sa)),
                )
            }
        }
    }
}

/// One statically decidable dispatch arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmFinding {
    /// Procedure containing the dispatch.
    pub proc: String,
    /// The label tested against.
    pub label: u32,
    /// True when the test always succeeds (then-branch survives);
    /// false when it can never succeed (else-branch survives).
    pub always: bool,
}

/// Folds statically decidable dispatch arms (variable subjects only:
/// folding must not drop a faulting test).  Returns the rewritten
/// program and the arms folded; the findings alone are available via
/// [`arm_findings`].
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted.
pub fn fold_arms(p: S0Program, fuel: &mut Fuel) -> Result<(S0Program, usize), Trap> {
    let (q, findings) = fold_arms_report(p, fuel)?;
    Ok((q, findings.len()))
}

/// Reports statically decidable dispatch arms without rewriting.
///
/// # Errors
///
/// [`Trap::OutOfFuel`] when the analysis budget is exhausted.
pub fn arm_findings(p: &S0Program, fuel: &mut Fuel) -> Result<Vec<ArmFinding>, Trap> {
    let (_, findings) = fold_arms_report(p.clone(), fuel)?;
    Ok(findings)
}

fn fold_arms_report(
    p: S0Program,
    fuel: &mut Fuel,
) -> Result<(S0Program, Vec<ArmFinding>), Trap> {
    let sa = analyze(&p, fuel)?;
    let mut findings = Vec::new();
    let mut procs = Vec::with_capacity(p.procs.len());
    for q in &p.procs {
        fuel.step()?;
        let env: Env<'_> = q
            .params
            .iter()
            .enumerate()
            .map(|(i, pm)| (pm.as_str(), sa.shapes[&q.name][i].clone()))
            .collect();
        let body = fold_tail(&q.body, &env, &mut Vec::new(), &q.name, &mut findings);
        procs.push(crate::s0::S0Proc {
            name: q.name.clone(),
            params: q.params.clone(),
            body,
        });
    }
    Ok((S0Program { procs, entry: p.entry }, findings))
}

fn fold_tail(
    t: &S0Tail,
    env: &Env<'_>,
    refines: &mut Refinements,
    owner: &str,
    findings: &mut Vec<ArmFinding>,
) -> S0Tail {
    match t {
        S0Tail::Return(_) | S0Tail::Fail(_) | S0Tail::TailCall(_, _) => t.clone(),
        S0Tail::If(c, a, b) => {
            if let Some((subj, k)) = parse_dispatch(c) {
                let sv = eval(subj, env, refines);
                let definite = matches!(subj, S0Simple::Var(_))
                    && !sv.other
                    && !sv.labels.is_empty();
                if definite && !sv.labels.contains(&k) {
                    findings.push(ArmFinding {
                        proc: owner.to_string(),
                        label: k,
                        always: false,
                    });
                    refines.push((subj.clone(), sv.without(k)));
                    let out = fold_tail(b, env, refines, owner, findings);
                    refines.pop();
                    return out;
                }
                if definite && sv.labels.len() == 1 && sv.labels.contains(&k) {
                    findings.push(ArmFinding {
                        proc: owner.to_string(),
                        label: k,
                        always: true,
                    });
                    refines.push((subj.clone(), AbsVal::of_label(k)));
                    let out = fold_tail(a, env, refines, owner, findings);
                    refines.pop();
                    return out;
                }
                let sv2 = sv;
                refines.push((subj.clone(), AbsVal::of_label(k)));
                let a2 = fold_tail(a, env, refines, owner, findings);
                refines.pop();
                refines.push((subj.clone(), sv2.without(k)));
                let b2 = fold_tail(b, env, refines, owner, findings);
                refines.pop();
                S0Tail::If(c.clone(), Box::new(a2), Box::new(b2))
            } else {
                S0Tail::If(
                    c.clone(),
                    Box::new(fold_tail(a, env, refines, owner, findings)),
                    Box::new(fold_tail(b, env, refines, owner, findings)),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s0::S0Proc;
    use pe_governor::Limits;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.into())
    }

    fn kint(n: i64) -> S0Simple {
        S0Simple::Const(Constant::Int(n))
    }

    fn fuel() -> Fuel {
        Fuel::new(&Limits::default())
    }

    fn dispatch(subj: &str, k: i64) -> S0Simple {
        S0Simple::Prim(
            Prim::EqualP,
            vec![kint(k), S0Simple::ClosureLabel(Box::new(var(subj)))],
        )
    }

    /// main allocates (make-closure 3 a b) and hands it to k; k reads
    /// only slot 1.  Slot 0 must be pruned and the index renumbered.
    fn program_with_dead_slot() -> S0Program {
        S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["a".into(), "b".into()],
                    body: S0Tail::TailCall(
                        "k".into(),
                        vec![S0Simple::MakeClosure(3, vec![var("a"), var("b")])],
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::Return(S0Simple::ClosureFreeval(Box::new(var("c")), 1)),
                },
            ],
        }
    }

    #[test]
    fn dead_slot_is_pruned_and_renumbered() {
        let (q, n) = prune(program_with_dead_slot(), &mut fuel()).unwrap();
        assert_eq!(n, 1);
        let main = q.proc("main").unwrap();
        match &main.body {
            S0Tail::TailCall(_, args) => match &args[0] {
                S0Simple::MakeClosure(3, caps) => assert_eq!(caps, &vec![var("b")]),
                other => panic!("expected shrunk closure, got {other:?}"),
            },
            other => panic!("unexpected body {other:?}"),
        }
        let k = q.proc("k").unwrap();
        match &k.body {
            S0Tail::Return(S0Simple::ClosureFreeval(_, i)) => assert_eq!(*i, 0),
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn escaping_closures_are_pinned() {
        // The closure is consed into a pair: it escapes, nothing is
        // pruned even though no slot is read.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![S0Proc {
                name: "main".into(),
                params: vec!["a".into()],
                body: S0Tail::Return(S0Simple::Prim(
                    Prim::Cons,
                    vec![S0Simple::MakeClosure(7, vec![var("a")]), kint(0)],
                )),
            }],
        };
        let sa = analyze(&p, &mut fuel()).unwrap();
        assert!(sa.pinned.contains(&7));
        let (q, n) = prune(p.clone(), &mut fuel()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(q, p);
    }

    #[test]
    fn non_effect_free_captures_stay() {
        // Slot 0 is dead but its argument (car a) can fault.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["a".into()],
                    body: S0Tail::TailCall(
                        "k".into(),
                        vec![S0Simple::MakeClosure(
                            1,
                            vec![S0Simple::Prim(Prim::Car, vec![var("a")]), var("a")],
                        )],
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::Return(S0Simple::ClosureFreeval(Box::new(var("c")), 1)),
                },
            ],
        };
        let (q, n) = prune(p.clone(), &mut fuel()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(q, p);
    }

    #[test]
    fn impossible_dispatch_arm_folds_to_else() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["a".into()],
                    body: S0Tail::TailCall(
                        "k".into(),
                        vec![S0Simple::MakeClosure(2, vec![var("a")])],
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::If(
                        dispatch("c", 9),
                        Box::new(S0Tail::Fail("unreachable arm".into())),
                        Box::new(S0Tail::Return(S0Simple::ClosureFreeval(
                            Box::new(var("c")),
                            0,
                        ))),
                    ),
                },
            ],
        };
        let (q, n) = fold_arms(p, &mut fuel()).unwrap();
        assert_eq!(n, 1);
        let k = q.proc("k").unwrap();
        assert!(
            matches!(&k.body, S0Tail::Return(_)),
            "arm folded to else: {:?}",
            k.body
        );
    }

    #[test]
    fn singleton_dispatch_folds_to_then() {
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["a".into()],
                    body: S0Tail::TailCall(
                        "k".into(),
                        vec![S0Simple::MakeClosure(2, vec![var("a")])],
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::If(
                        dispatch("c", 2),
                        Box::new(S0Tail::Return(S0Simple::ClosureFreeval(
                            Box::new(var("c")),
                            0,
                        ))),
                        Box::new(S0Tail::Fail("no such label".into())),
                    ),
                },
            ],
        };
        let (q, n) = fold_arms(p, &mut fuel()).unwrap();
        assert_eq!(n, 1);
        assert!(matches!(&q.proc("k").unwrap().body, S0Tail::Return(_)));
    }

    #[test]
    fn multi_label_subjects_share_a_prune_class() {
        // Two labels reach the same freeval site with different dead
        // slots; the class intersection leaves nothing to prune unless
        // both agree.  Label 1 uses slot 0, label 2 uses slot 1 — the
        // shared site reads both, so nothing is droppable.
        let p = S0Program {
            entry: "main".into(),
            procs: vec![
                S0Proc {
                    name: "main".into(),
                    params: vec!["a".into(), "t".into()],
                    body: S0Tail::If(
                        var("t"),
                        Box::new(S0Tail::TailCall(
                            "k".into(),
                            vec![S0Simple::MakeClosure(1, vec![var("a"), kint(0)])],
                        )),
                        Box::new(S0Tail::TailCall(
                            "k".into(),
                            vec![S0Simple::MakeClosure(2, vec![kint(0), var("a")])],
                        )),
                    ),
                },
                S0Proc {
                    name: "k".into(),
                    params: vec!["c".into()],
                    body: S0Tail::If(
                        dispatch("c", 1),
                        Box::new(S0Tail::Return(S0Simple::ClosureFreeval(
                            Box::new(var("c")),
                            0,
                        ))),
                        Box::new(S0Tail::Return(S0Simple::ClosureFreeval(
                            Box::new(var("c")),
                            1,
                        ))),
                    ),
                },
            ],
        };
        let sa = analyze(&p, &mut fuel()).unwrap();
        // Refinement separates the sites: label 1 only reads slot 0,
        // label 2 (the else arm) only reads slot 1.
        assert_eq!(sa.used[&1], std::iter::once(0).collect());
        assert_eq!(sa.used[&2], std::iter::once(1).collect());
        // Each label can therefore prune its own dead slot.
        let (q, n) = prune(p, &mut fuel()).unwrap();
        assert_eq!(n, 2, "{q}");
    }
}
