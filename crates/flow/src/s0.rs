//! S₀ — the target language: a first-order, tail-recursive subset of
//! Scheme (§5).
//!
//! ```text
//! proc ::= (define (P V*) T)
//! T    ::= S | (if S T T) | (P S*) | (%fail "msg")
//! S    ::= V | K | (O S*) | (make-closure ℓ S*)
//!        | (closure-label S) | (closure-freeval S i)
//! ```
//!
//! Simple expressions never call; every call is a tail call — which is
//! exactly what makes the hand-written C translation (labels + `goto`s)
//! possible.  Closures are an abstract data type with `make-closure`,
//! `closure-label` and `closure-freeval`; back ends pick the flat-vector
//! representation.
//!
//! The definitions live in `pe-flow` (below `pe-core`) so the dataflow
//! analyses can see them without a dependency cycle; `pe_core::s0`
//! re-exports everything, so downstream code is unaffected.

use pe_frontend::ast::{Constant, Prim};
use pe_sexpr::Sexpr;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A simple expression: evaluates to a value without any calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S0Simple {
    /// Variable reference.
    Var(String),
    /// Constant.
    Const(Constant),
    /// Primitive application.
    Prim(Prim, Vec<S0Simple>),
    /// `(make-closure ℓ v₁ … vₙ)` — allocate a flat closure record.
    MakeClosure(u32, Vec<S0Simple>),
    /// `(closure-label c)` — the label component.
    ClosureLabel(Box<S0Simple>),
    /// `(closure-freeval c i)` — the i-th captured value.
    ClosureFreeval(Box<S0Simple>, usize),
}

/// A tail expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S0Tail {
    /// Return a value to the caller of `program`.
    Return(S0Simple),
    /// Conditional with simple condition.
    If(S0Simple, Box<S0Tail>, Box<S0Tail>),
    /// Tail call of another procedure.
    TailCall(String, Vec<S0Simple>),
    /// A runtime failure discovered during specialization (e.g. applying
    /// a non-procedure on a path the program may never take).
    Fail(String),
}

/// A first-order procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct S0Proc {
    /// Procedure name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body in tail form.
    pub body: S0Tail,
}

/// A whole S₀ program with a designated entry procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct S0Program {
    /// All procedures; the entry comes first by convention.
    pub procs: Vec<S0Proc>,
    /// Name of the entry procedure.
    pub entry: String,
}

impl S0Simple {
    /// Counts AST nodes (for the §8 code-size experiment).
    pub fn size(&self) -> usize {
        match self {
            S0Simple::Var(_) | S0Simple::Const(_) => 1,
            S0Simple::Prim(_, args) | S0Simple::MakeClosure(_, args) => {
                1 + args.iter().map(S0Simple::size).sum::<usize>()
            }
            S0Simple::ClosureLabel(a) => 1 + a.size(),
            S0Simple::ClosureFreeval(a, _) => 1 + a.size(),
        }
    }

    /// Collects free variable names.
    pub fn vars(&self, out: &mut HashSet<String>) {
        match self {
            S0Simple::Var(v) => {
                out.insert(v.clone());
            }
            S0Simple::Const(_) => {}
            S0Simple::Prim(_, args) | S0Simple::MakeClosure(_, args) => {
                args.iter().for_each(|a| a.vars(out));
            }
            S0Simple::ClosureLabel(a) | S0Simple::ClosureFreeval(a, _) => a.vars(out),
        }
    }

    /// Substitutes variables by expressions (capture is impossible in S₀:
    /// there are no binders inside expressions).
    pub fn subst(&self, map: &HashMap<String, S0Simple>) -> S0Simple {
        match self {
            S0Simple::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            S0Simple::Const(_) => self.clone(),
            S0Simple::Prim(op, args) => {
                S0Simple::Prim(*op, args.iter().map(|a| a.subst(map)).collect())
            }
            S0Simple::MakeClosure(l, args) => {
                S0Simple::MakeClosure(*l, args.iter().map(|a| a.subst(map)).collect())
            }
            S0Simple::ClosureLabel(a) => S0Simple::ClosureLabel(Box::new(a.subst(map))),
            S0Simple::ClosureFreeval(a, i) => {
                S0Simple::ClosureFreeval(Box::new(a.subst(map)), *i)
            }
        }
    }

    fn to_sexpr(&self) -> Sexpr {
        match self {
            S0Simple::Var(v) => Sexpr::sym_of(v),
            S0Simple::Const(k) => match k {
                Constant::Int(n) => Sexpr::Int(*n),
                Constant::Bool(b) => Sexpr::Bool(*b),
                Constant::Char(c) => Sexpr::Char(*c),
                Constant::Str(s) => Sexpr::Str(s.clone()),
                k => Sexpr::list_of([Sexpr::sym_of("quote"), k.to_sexpr()]),
            },
            S0Simple::Prim(op, args) => {
                let mut xs = vec![Sexpr::sym_of(op.name())];
                xs.extend(args.iter().map(S0Simple::to_sexpr));
                Sexpr::List(xs)
            }
            S0Simple::MakeClosure(l, args) => {
                let mut xs = vec![Sexpr::sym_of("make-closure"), Sexpr::Int(i64::from(*l))];
                xs.extend(args.iter().map(S0Simple::to_sexpr));
                Sexpr::List(xs)
            }
            S0Simple::ClosureLabel(a) => {
                Sexpr::list_of([Sexpr::sym_of("closure-label"), a.to_sexpr()])
            }
            S0Simple::ClosureFreeval(a, i) => Sexpr::list_of([
                Sexpr::sym_of("closure-freeval"),
                a.to_sexpr(),
                Sexpr::Int(*i as i64),
            ]),
        }
    }
}

impl S0Tail {
    /// Counts AST nodes.
    pub fn size(&self) -> usize {
        match self {
            S0Tail::Return(s) => s.size(),
            S0Tail::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            S0Tail::TailCall(_, args) => 1 + args.iter().map(S0Simple::size).sum::<usize>(),
            S0Tail::Fail(_) => 1,
        }
    }

    /// Calls `f` on every tail call's procedure name.
    pub fn calls(&self, f: &mut impl FnMut(&str)) {
        match self {
            S0Tail::Return(_) | S0Tail::Fail(_) => {}
            S0Tail::If(_, t, e) => {
                t.calls(f);
                e.calls(f);
            }
            S0Tail::TailCall(p, _) => f(p),
        }
    }

    /// Collects free variable names.
    pub fn vars(&self, out: &mut HashSet<String>) {
        match self {
            S0Tail::Return(s) => s.vars(out),
            S0Tail::If(c, t, e) => {
                c.vars(out);
                t.vars(out);
                e.vars(out);
            }
            S0Tail::TailCall(_, args) => args.iter().for_each(|a| a.vars(out)),
            S0Tail::Fail(_) => {}
        }
    }

    /// Substitutes variables by simple expressions throughout.
    pub fn subst(&self, map: &HashMap<String, S0Simple>) -> S0Tail {
        match self {
            S0Tail::Return(s) => S0Tail::Return(s.subst(map)),
            S0Tail::If(c, t, e) => {
                S0Tail::If(c.subst(map), Box::new(t.subst(map)), Box::new(e.subst(map)))
            }
            S0Tail::TailCall(p, args) => {
                S0Tail::TailCall(p.clone(), args.iter().map(|a| a.subst(map)).collect())
            }
            S0Tail::Fail(m) => S0Tail::Fail(m.clone()),
        }
    }

    fn to_sexpr(&self) -> Sexpr {
        match self {
            S0Tail::Return(s) => s.to_sexpr(),
            S0Tail::If(c, t, e) => Sexpr::list_of([
                Sexpr::sym_of("if"),
                c.to_sexpr(),
                t.to_sexpr(),
                e.to_sexpr(),
            ]),
            S0Tail::TailCall(p, args) => {
                let mut xs = vec![Sexpr::sym_of(p)];
                xs.extend(args.iter().map(S0Simple::to_sexpr));
                Sexpr::List(xs)
            }
            S0Tail::Fail(m) => {
                Sexpr::list_of([Sexpr::sym_of("%fail"), Sexpr::Str(m.as_str().into())])
            }
        }
    }
}

impl S0Proc {
    /// Renders as a `(define …)` form.
    pub fn to_sexpr(&self) -> Sexpr {
        let mut head = vec![Sexpr::sym_of(&self.name)];
        head.extend(self.params.iter().map(|p| Sexpr::sym_of(p)));
        Sexpr::list_of([Sexpr::sym_of("define"), Sexpr::List(head), self.body.to_sexpr()])
    }

    /// Counts AST nodes.
    pub fn size(&self) -> usize {
        1 + self.params.len() + self.body.size()
    }
}

impl S0Program {
    /// Finds a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&S0Proc> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// Total AST node count (for the §8 code-size experiment).
    pub fn size(&self) -> usize {
        self.procs.iter().map(S0Proc::size).sum()
    }

    /// Renders the program as concrete syntax.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for p in &self.procs {
            out.push_str(&pe_sexpr::pretty(&p.to_sexpr()));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for S0Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: &str) -> S0Simple {
        S0Simple::Var(v.to_string())
    }

    #[test]
    fn print_shape_matches_paper_style() {
        let p = S0Proc {
            name: "sl-eval-$3".into(),
            params: vec!["cv-vals-$1".into(), "cv-vals-$2".into()],
            body: S0Tail::If(
                S0Simple::Prim(Prim::NullP, vec![var("cv-vals-$1")]),
                Box::new(S0Tail::Return(var("cv-vals-$2"))),
                Box::new(S0Tail::TailCall(
                    "sl-eval-$3".into(),
                    vec![
                        S0Simple::Prim(Prim::Cdr, vec![var("cv-vals-$1")]),
                        S0Simple::MakeClosure(24, vec![var("cv-vals-$2")]),
                    ],
                )),
            ),
        };
        let s = p.to_sexpr().to_string();
        assert!(s.contains("(make-closure 24 cv-vals-$2)"), "{s}");
        assert!(s.starts_with("(define (sl-eval-$3 cv-vals-$1 cv-vals-$2)"), "{s}");
    }

    #[test]
    fn subst_replaces_free_vars() {
        let t = S0Tail::TailCall("f".into(), vec![var("x"), S0Simple::Prim(Prim::Car, vec![var("y")])]);
        let mut m = HashMap::new();
        m.insert("x".to_string(), S0Simple::Const(Constant::Int(1)));
        let t2 = t.subst(&m);
        assert_eq!(
            t2,
            S0Tail::TailCall(
                "f".into(),
                vec![
                    S0Simple::Const(Constant::Int(1)),
                    S0Simple::Prim(Prim::Car, vec![var("y")])
                ]
            )
        );
    }

    #[test]
    fn sizes_are_positive_and_additive() {
        let s = S0Simple::Prim(Prim::Cons, vec![var("a"), var("b")]);
        assert_eq!(s.size(), 3);
        let t = S0Tail::Return(s);
        assert_eq!(t.size(), 3);
    }
}
