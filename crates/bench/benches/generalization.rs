//! §8 — generalization-strategy comparison: the same benchmarks compiled
//! with the online vs the offline strategy (the paper: "using the online
//! generalization strategy, the cpstak benchmark ran roughly 3 times
//! faster").  Run with `cargo bench -p pe-bench --bench generalization`.

use criterion::{BenchmarkId, Criterion};
use std::time::Duration;
use realistic_pe::{CompileOptions, GenStrategy, Limits, Pipeline, SUITE};

fn generalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("generalization");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for b in SUITE {
        let pipe = Pipeline::new(b.source).expect("suite parses");
        let args = b.bench_inputs();
        let lim = Limits::default();
        for (label, strategy) in
            [("offline", GenStrategy::Offline), ("online", GenStrategy::Online)]
        {
            let opts = CompileOptions { strategy, ..CompileOptions::default() };
            let vm = pipe.compile_vm(b.entry, &opts).expect("compiles");
            group.bench_with_input(
                BenchmarkId::new(label, b.name),
                &args,
                |bench, args| {
                    bench.iter(|| vm.run(args, lim).expect("runs"));
                },
            );
        }
    }
    group.finish();
}

fn main() {
    // Baseline/interpreter engines recurse on the host stack by design;
    // run the whole harness on a big-stack worker.
    realistic_pe::with_big_stack(|| {
        let mut c = Criterion::default().configure_from_args();
        generalization(&mut c);
        c.final_summary();
    });
}
