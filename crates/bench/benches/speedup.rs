//! §2 — interpretive overhead: the compiled S₀ program vs the Fig. 6
//! tail-recursive interpreter on the same (test-sized) inputs, plus the
//! cost of compilation itself.  Run with
//! `cargo bench -p pe-bench --bench speedup`.

use criterion::{BenchmarkId, Criterion};
use std::time::Duration;
use realistic_pe::{CompileOptions, Limits, Pipeline, SUITE};

fn speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for b in SUITE {
        let pipe = Pipeline::new(b.source).expect("suite parses");
        let args = b.test_inputs();
        let lim = Limits::default();
        let vm = pipe.compile_vm(b.entry, &CompileOptions::default()).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("interpreted", b.name),
            &args,
            |bench, args| {
                bench.iter(|| pipe.run_tail(b.entry, args, lim).expect("runs"));
            },
        );
        group.bench_with_input(BenchmarkId::new("compiled", b.name), &args, |bench, args| {
            bench.iter(|| vm.run(args, lim).expect("runs"));
        });
    }
    group.finish();
}

fn compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile-time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for b in SUITE {
        group.bench_function(BenchmarkId::new("compile", b.name), |bench| {
            bench.iter(|| {
                let pipe = Pipeline::new(b.source).expect("parses");
                pipe.compile(b.entry, &CompileOptions::default()).expect("compiles")
            });
        });
    }
    group.finish();
}

fn main() {
    // Baseline/interpreter engines recurse on the host stack by design;
    // run the whole harness on a big-stack worker.
    realistic_pe::with_big_stack(|| {
        let mut c = Criterion::default().configure_from_args();
        speedup(&mut c);
    compile_time(&mut c);
        c.final_summary();
    });
}
