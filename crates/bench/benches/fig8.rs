//! Figure 8 — the paper's benchmark table: each Fig. 8 program compiled
//! by the PE pipeline (offline generalization, as in the paper's runs)
//! and executed on the S₀ VM, against the Hobbit-like baseline.
//!
//! The paper reports ms on an IBM PowerPC/250; we reproduce the *shape*
//! (who wins per row).  Run with `cargo bench -p pe-bench --bench fig8`.

use criterion::{BenchmarkId, Criterion};
use std::time::Duration;
use realistic_pe::{CompileOptions, GenStrategy, Limits, Pipeline, SUITE};

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for b in SUITE {
        let pipe = Pipeline::new(b.source).expect("suite parses");
        let args = b.bench_inputs();
        let opts = CompileOptions { strategy: GenStrategy::Offline, ..CompileOptions::default() };
        let vm = pipe.compile_vm(b.entry, &opts).expect("compiles");
        let hob = pipe.compile_hobbit().expect("compiles");
        let lim = Limits::default();
        // Correctness before timing.
        assert_eq!(
            vm.run(&args, lim).expect("vm runs").0,
            hob.run(b.entry, &args, lim).expect("hobbit runs"),
            "{}: engines disagree",
            b.name
        );
        group.bench_with_input(BenchmarkId::new("ours", b.name), &args, |bench, args| {
            bench.iter(|| vm.run(args, lim).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("hobbit", b.name), &args, |bench, args| {
            bench.iter(|| hob.run(b.entry, args, lim).expect("runs"));
        });
    }
    group.finish();
}

fn main() {
    // Baseline/interpreter engines recurse on the host stack by design;
    // run the whole harness on a big-stack worker.
    realistic_pe::with_big_stack(|| {
        let mut c = Criterion::default().configure_from_args();
        fig8(&mut c);
        c.final_summary();
    });
}
