//! The many-request compile-service workload: K requests (the Fig. 8
//! suite plus pe-siege generated programs, with duplicates) served cold
//! and warm on 1..N worker threads.
//!
//! Three quantities per thread count:
//!
//! * `cold_ms` — a fresh server answers the whole mix (every distinct
//!   key compiles once; duplicates hit);
//! * `warm_ms` — the same server answers the mix again (pure cache-hit
//!   traffic);
//! * `byte_identical` — whether the parallel responses matched a
//!   sequential reference byte-for-byte (a measurement that fails this
//!   check is a bug, and `run_serve` errors out).
//!
//! Plus one pair measured on a capacity-0 server (artifact storage
//! off), isolating the memo-snapshot warm-start path: every repeat
//! request *recompiles*, warm, and the cold/warm ratio is the
//! specializer work the snapshot saved.

use crate::{time_min_ms, BenchConfig};
use pe_serve::{CompileRequest, Server, ServerConfig};
use realistic_pe::SUITE;

/// One thread-count row of the serve workload.
#[derive(Debug, Clone, Copy)]
pub struct ServeRow {
    /// Worker threads.
    pub threads: usize,
    /// Best wall-clock ms for the full mix on a fresh server.
    pub cold_ms: f64,
    /// Best wall-clock ms for the full mix on the warmed server.
    pub warm_ms: f64,
    /// Requests per second on the cold pass.
    pub throughput_cold_rps: f64,
    /// Requests per second on the warm pass.
    pub throughput_warm_rps: f64,
    /// Cache hits after the timed passes.
    pub hits: u64,
    /// Cache misses after the timed passes.
    pub misses: u64,
    /// LRU evictions after the timed passes.
    pub evictions: u64,
    /// Warm-started compiles after the timed passes.
    pub warm_starts: u64,
}

/// The whole serve section of the bench output.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Requests in the mix.
    pub requests: usize,
    /// Distinct compile keys in the mix.
    pub distinct: usize,
    /// Per-thread-count measurements, ascending thread order.
    pub rows: Vec<ServeRow>,
    /// Full-mix ms on a capacity-0 server, first (cold) pass.
    pub cold_compile_ms: f64,
    /// Full-mix ms on the same capacity-0 server, second pass — every
    /// request recompiles from its memo snapshot.
    pub warm_compile_ms: f64,
    /// Per-outcome latency histograms pooled across every timed server
    /// (all thread counts, cold and warm passes).
    pub metrics: pe_prof::MetricsRegistry,
}

/// The fixed workload: every suite benchmark plus seed-pinned generated
/// programs, three interleaved copies (so two of every three requests
/// are duplicate-key traffic).
#[must_use]
pub fn serve_mix(cfg: &BenchConfig) -> Vec<CompileRequest> {
    let mut base: Vec<CompileRequest> = SUITE
        .iter()
        .map(|b| CompileRequest::new(b.name, b.source, b.entry))
        .collect();
    let generated = if cfg.quick { 5 } else { 15 };
    let mut rng = pe_siege::rng::Rng::new(0xBE7C4);
    for i in 0..generated {
        let case = pe_siege::gen::gen_case(&mut rng);
        base.push(CompileRequest::new(&format!("gen-{i}"), &case.source, &case.entry));
    }
    let mut mix = Vec::with_capacity(base.len() * 3);
    mix.extend(base.iter().cloned());
    mix.extend(base.iter().rev().cloned());
    mix.extend(base.iter().cloned());
    mix
}

/// Runs the serve workload across `thread_counts`.
///
/// # Errors
///
/// A message naming the first divergence when any parallel pass is not
/// byte-identical to the sequential reference — divergent runs must
/// never be reported as measurements.
pub fn run_serve(cfg: &BenchConfig, thread_counts: &[usize]) -> Result<ServeBench, String> {
    let mix = serve_mix(cfg);
    let reference =
        Server::new(ServerConfig { threads: 1, ..ServerConfig::default() }).serve(&mix);
    let distinct = {
        let mut keys: Vec<_> = reference.iter().filter_map(|r| r.fingerprint).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };

    let mut rows = Vec::new();
    let mut metrics = pe_prof::MetricsRegistry::new();
    for &threads in thread_counts {
        // Cold: a fresh server per repetition (the pass mutates the
        // cache); keep the last server for the warm pass.
        let mut server = Server::new(ServerConfig { threads, ..ServerConfig::default() });
        let mut last = Vec::new();
        let cold_ms = time_min_ms(cfg.reps, || {
            server = Server::new(ServerConfig { threads, ..ServerConfig::default() });
            last = server.serve(&mix);
        });
        check_identical(&reference, &last, threads, "cold")?;
        // Warm: pure hit traffic, idempotent — reps on the same server.
        let warm_ms = time_min_ms(cfg.reps, || {
            last = server.serve(&mix);
        });
        check_identical(&reference, &last, threads, "warm")?;
        let s = server.stats();
        if s.lookups != s.hits + s.misses {
            return Err(format!("{threads} threads: cache accounting broken: {s:?}"));
        }
        metrics.merge(&server.metrics_snapshot());
        rows.push(ServeRow {
            threads,
            cold_ms,
            warm_ms,
            throughput_cold_rps: rps(mix.len(), cold_ms),
            throughput_warm_rps: rps(mix.len(), warm_ms),
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            warm_starts: s.warm_starts,
        });
    }

    // The warm-start isolate: artifact storage off, so the second pass
    // recompiles everything from memo snapshots.
    let starved = Server::new(ServerConfig { capacity: 0, ..ServerConfig::default() });
    let t0 = std::time::Instant::now();
    let cold_pass = starved.serve(&mix);
    let cold_compile_ms = t0.elapsed().as_secs_f64() * 1000.0;
    check_identical(&reference, &cold_pass, 1, "capacity-0 cold")?;
    let t1 = std::time::Instant::now();
    let warm_pass = starved.serve(&mix);
    let warm_compile_ms = t1.elapsed().as_secs_f64() * 1000.0;
    check_identical(&reference, &warm_pass, 1, "capacity-0 warm")?;
    if starved.stats().warm_starts == 0 {
        return Err("capacity-0 server never warm-started".to_string());
    }

    Ok(ServeBench {
        requests: mix.len(),
        distinct,
        rows,
        cold_compile_ms,
        warm_compile_ms,
        metrics,
    })
}

fn rps(requests: usize, ms: f64) -> f64 {
    if ms <= 0.0 {
        0.0
    } else {
        requests as f64 / (ms / 1000.0)
    }
}

fn check_identical(
    reference: &[pe_serve::CompileResponse],
    got: &[pe_serve::CompileResponse],
    threads: usize,
    pass: &str,
) -> Result<(), String> {
    if reference.len() != got.len() {
        return Err(format!("{threads} threads ({pass}): response count diverged"));
    }
    for (r, g) in reference.iter().zip(got) {
        if r.fingerprint != g.fingerprint || r.residual_source() != g.residual_source() {
            return Err(format!(
                "{threads} threads ({pass}): `{}` diverged from the sequential reference",
                r.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_serve_workload_measures_and_agrees() {
        let cfg = BenchConfig { quick: true, reps: 1 };
        let serve = run_serve(&cfg, &[1, 2]).expect("serve workload runs");
        assert_eq!(serve.rows.len(), 2);
        assert_eq!(serve.requests, serve_mix(&cfg).len());
        assert!(serve.distinct >= SUITE.len());
        assert!(serve.distinct < serve.requests, "the mix must contain duplicates");
        for row in &serve.rows {
            assert!(row.cold_ms > 0.0 && row.warm_ms > 0.0);
            assert!(row.throughput_cold_rps > 0.0);
            assert!(
                row.warm_ms < row.cold_ms,
                "hit traffic must beat compile traffic ({} threads)",
                row.threads
            );
            assert!(row.misses > 0 && row.hits > 0);
        }
        // The capacity-0 pair is a single unoptimised run under whatever
        // load the test harness adds, so only sanity-check it here; the
        // release-mode bench run is where the ratio is reported.
        assert!(serve.cold_compile_ms > 0.0 && serve.warm_compile_ms > 0.0);
        // The pooled latency histograms saw both hit and miss traffic.
        assert!(serve.metrics.hit.count() > 0, "no hit latencies pooled");
        assert!(serve.metrics.cold_miss.count() > 0, "no cold-miss latencies pooled");
        assert!(serve.metrics.queue_wait.count() > 0, "no queue waits pooled");
    }
}
