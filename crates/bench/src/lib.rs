//! The benchmark harness regenerating the paper's evaluation.
//!
//! Criterion benches (run with `cargo bench -p pe-bench`):
//!
//! * `fig8` — the Figure 8 table: every benchmark, ours (PE → S₀ VM,
//!   offline generalization) vs the Hobbit-like baseline;
//! * `generalization` — the §8 online-vs-offline comparison (the paper:
//!   cpstak ≈3× faster with the online strategy);
//! * `speedup` — the §2 interpretive-overhead claim: compiled code vs
//!   the Fig. 6 interpreter, plus compile-time costs.
//!
//! The human-readable row printer for every table and figure — including
//! the code-size table and the ablations — is
//! `cargo run --release --example figures` in the `realistic-pe` crate.

pub use realistic_pe::{Benchmark, SUITE};
