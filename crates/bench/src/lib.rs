//! The offline benchmark harness regenerating the paper's §8 evaluation.
//!
//! The previous harness depended on criterion from the registry, so it
//! was excluded from the workspace and never ran in offline CI.  This
//! one is dependency-free: a `std::time::Instant` min-of-N timer, a
//! parallel compile phase over `std::thread::scope`, and a hand-rolled
//! deterministic JSON writer.  Every PR leaves a bench data point.
//!
//! Per [`SUITE`] benchmark (in the fixed Fig. 8 row order) it measures:
//!
//! * `vm` — "ours": the specializing compiler's S₀ residual on the
//!   goto-machine (the §5.1 execution model);
//! * `tail` — the Fig. 6 tail-recursive interpreter, the engine the
//!   compiler is a specializer-projection of (the interpretive
//!   overhead the paper's §2 speedup claim is measured against);
//! * `hobbit` — the §6 Hobbit-like native-stack baseline.
//!
//! Use `cargo run --release -p pe-bench` (full mode: `bench_args`) or
//! `-- --quick` (test-sized inputs, for CI).  The output schema is
//! documented in the workspace README ("Benchmark harness").

use realistic_pe::{
    with_big_stack, Benchmark, COptions, CompileOptions, Datum, Limits, Pipeline, SUITE,
};
use std::time::Instant;

pub mod check;
pub mod serve;

pub use check::{check_regressions, Tolerances};
pub use serve::{run_serve, serve_mix, ServeBench, ServeRow};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Quick mode uses the fast `test_args` inputs; full mode uses the
    /// measured `bench_args` configuration.
    pub quick: bool,
    /// Timing runs per engine; the minimum is reported.
    pub reps: u32,
}

impl BenchConfig {
    /// CI-sized configuration: test inputs, min of 3.
    #[must_use]
    pub fn quick() -> BenchConfig {
        BenchConfig { quick: true, reps: 3 }
    }

    /// The measured configuration: bench inputs, min of 5.
    #[must_use]
    pub fn full() -> BenchConfig {
        BenchConfig { quick: false, reps: 5 }
    }

    fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }
}

/// Residual-size measurements with and without the pe-flow optimizer
/// (the §8 code-size axis, extended with the flow delta).
#[derive(Debug, Clone, Copy)]
pub struct ResidualSizes {
    /// Residual S₀ procedures, flow optimizer disabled.
    pub procs_base: usize,
    /// Residual S₀ nodes, flow optimizer disabled.
    pub nodes_base: usize,
    /// Emitted C bytes (`CProgram::size_bytes`), flow and move elision
    /// disabled.
    pub c_bytes_base: usize,
    /// Residual S₀ procedures after pe-flow optimization.
    pub procs_flow: usize,
    /// Residual S₀ nodes after pe-flow optimization.
    pub nodes_flow: usize,
    /// Emitted C bytes after pe-flow optimization and move elision.
    pub c_bytes_flow: usize,
    /// Global-parameter moves/prologue copies the C emitter elided.
    pub moves_elided: usize,
}

/// Size-change termination measurements: the verdict census from the
/// traced compilation plus the dynamic-control comparison against a
/// compile with the analysis off (the §8 axis the pe-sct control adds:
/// how much widening became statically anticipated generalization).
#[derive(Debug, Clone, Copy)]
pub struct SctNumbers {
    /// Procedures classified bounded.
    pub bounded: u64,
    /// Procedures classified unbounded.
    pub unbounded: u64,
    /// Procedures the analysis could not classify.
    pub unknown: u64,
    /// Eager generalizations performed under static control.
    pub eager_generalizations: u64,
    /// Dynamic widenings with the analysis on (should be ~0).
    pub widenings_on: u64,
    /// Dynamic widenings with the analysis off (the baseline).
    pub widenings_off: u64,
}

/// One engine's timing on one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct EngineTiming {
    /// Best wall-clock time over `runs` repetitions, in milliseconds.
    pub min_ms: f64,
    /// How many repetitions were timed.
    pub runs: u32,
}

/// One row of the output: a benchmark measured on every engine.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// The Fig. 8 row name.
    pub name: &'static str,
    /// True if the source program is higher-order (the paper's axis).
    pub higher_order: bool,
    /// The inputs that were timed (printed form).
    pub args: Vec<String>,
    /// Best wall-clock time of `compile_vm` (specialize + verify +
    /// load) over the same number of repetitions as the runs.
    pub compile_ms: f64,
    /// The S₀ VM ("ours").
    pub vm: EngineTiming,
    /// The Fig. 6 tail interpreter.
    pub tail: EngineTiming,
    /// The Hobbit-like baseline.
    pub hobbit: EngineTiming,
    /// The paper's Fig. 8 "ours" timing (ms on a PowerPC/250).
    pub paper_ours_ms: u32,
    /// The paper's Fig. 8 Hobbit timing (ms).
    pub paper_hobbit_ms: u32,
    /// Per-phase compile durations (phase name → ms) from one traced
    /// compilation, alphabetically sorted.  Not a min-of-N: a single
    /// instrumented run breaking `compile_ms` down by phase.
    pub phases: Vec<(String, f64)>,
    /// Specializer/size counters from the same traced compilation,
    /// alphabetically sorted.  These are exact and deterministic.
    pub counters: Vec<(String, u64)>,
    /// The most expensive residual procedures from the traced
    /// compilation (label → attributed ms summed across phases), the
    /// top 5 by cost, alphabetically sorted for a deterministic shape.
    pub attribution: Vec<(String, f64)>,
    /// Residual sizes before/after pe-flow optimization.
    pub residual: ResidualSizes,
    /// Size-change termination verdicts and widening comparison.
    pub sct: SctNumbers,
}

/// Best-of-`reps` wall-clock time of `f`, in milliseconds.
pub fn time_min_ms(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// Runs the whole suite: a parallel compile-and-check phase followed by
/// a sequential timing phase (timing is serialized so runs never compete
/// for cores).
///
/// # Errors
///
/// Returns a message naming the benchmark if compilation fails or any
/// engine disagrees with the expected result — a benchmark that computes
/// the wrong answer must never be timed.
pub fn run_suite(cfg: &BenchConfig) -> Result<Vec<BenchRow>, String> {
    // Phase 1 — compile every benchmark in parallel and gate on
    // correctness (each engine must reproduce `test_expect`).  No
    // timing happens here — parallel workers compete for cores, so
    // anything measured in this phase would be contention noise.
    std::thread::scope(|scope| {
        let workers: Vec<_> = SUITE
            .iter()
            .map(|b| {
                std::thread::Builder::new()
                    .name(format!("pe-bench-compile-{}", b.name))
                    // Host-stack engines (Hobbit) recurse by design.
                    .stack_size(1 << 28)
                    .spawn_scoped(scope, move || compile_and_check(b))
                    .expect("spawn compile worker")
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("compile worker panicked"))
            .collect::<Result<Vec<()>, String>>()
    })?;

    // Phase 2 — every timed number (compile and run) is measured
    // sequentially on one big-stack worker, min of `reps`.
    let cfg = cfg.clone();
    with_big_stack(move || SUITE.iter().map(|b| time_benchmark(b, &cfg)).collect())
}

/// Phase 1 body: compile for every engine and check every engine
/// against `test_expect`.
fn compile_and_check(b: &Benchmark) -> Result<(), String> {
    let fail = |stage: &str, e: &dyn std::fmt::Display| format!("{}: {stage}: {e}", b.name);
    let pipe = Pipeline::new(b.source).map_err(|e| fail("parse", &e))?;
    let opts = CompileOptions::default();
    let vm = pipe.compile_vm(b.entry, &opts).map_err(|e| fail("compile", &e))?;
    let hob = pipe.compile_hobbit().map_err(|e| fail("hobbit", &e))?;

    let args = b.test_inputs();
    let expect = Datum::parse(b.test_expect).expect("parseable expectation");
    let lim = Limits::default();
    let check = |engine: &str, got: Datum| {
        if got == expect {
            Ok(())
        } else {
            Err(format!("{}: {engine} computed {got}, expected {expect}", b.name))
        }
    };
    check("vm", vm.run(&args, lim).map_err(|e| fail("vm run", &e))?.0)?;
    check("tail", pipe.run_tail(b.entry, &args, lim).map_err(|e| fail("tail run", &e))?)?;
    check("hobbit", hob.run(b.entry, &args, lim).map_err(|e| fail("hobbit run", &e))?)?;
    Ok(())
}

/// Phase 2 body: min-of-N timing of every engine on one benchmark.
fn time_benchmark(b: &Benchmark, cfg: &BenchConfig) -> Result<BenchRow, String> {
    let fail = |stage: &str, e: &dyn std::fmt::Display| format!("{}: {stage}: {e}", b.name);
    let pipe = Pipeline::new(b.source).map_err(|e| fail("parse", &e))?;
    let opts = CompileOptions::default();
    // Compile time (specialize + verify + VM load) is as much a
    // measured quantity as the runs: min of `reps`, sequential.
    let compile_ms = time_min_ms(cfg.reps, || {
        pipe.compile_vm(b.entry, &opts).expect("compile rep");
    });
    // One traced compilation (after the timed reps, so the tracing
    // can't perturb them) supplies the per-phase breakdown, the
    // specializer counters, and the per-procedure cost attribution.
    let mut events = pe_trace::CollectingSink::new();
    let (vm, report) = pipe
        .compile_vm_traced(b.entry, &opts, &mut events)
        .map_err(|e| fail("compile", &e))?;
    let table = pe_prof::Attribution::from_events(events.events());
    let mut by_label: Vec<(String, u64)> = Vec::new();
    for row in table.rows() {
        match by_label.iter_mut().find(|(l, _)| *l == row.label) {
            Some((_, ns)) => *ns = ns.saturating_add(row.ns),
            None => by_label.push((row.label.clone(), row.ns)),
        }
    }
    by_label.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    by_label.truncate(5);
    let mut attribution: Vec<(String, f64)> =
        by_label.into_iter().map(|(l, ns)| (l, ns as f64 / 1e6)).collect();
    attribution.sort_by(|a, b| a.0.cmp(&b.0));
    let mut phases: Vec<(String, f64)> = report
        .phases
        .iter()
        .map(|&(p, ns)| (p.name().to_string(), ns as f64 / 1e6))
        .collect();
    phases.sort_by(|a, b| a.0.cmp(&b.0));
    let mut counters: Vec<(String, u64)> =
        report.counters.iter().map(|&(c, n)| (c.name().to_string(), n)).collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    // Residual sizes with the flow optimizer off vs. on — exact,
    // deterministic quantities, measured once.
    let base_opts = CompileOptions { flow: false, ..CompileOptions::default() };
    let s0_base = pipe.compile(b.entry, &base_opts).map_err(|e| fail("compile", &e))?;
    let s0_flow = pipe.compile(b.entry, &opts).map_err(|e| fail("compile", &e))?;
    let size_inputs = b.test_inputs();
    let c_base = realistic_pe::emit_c(
        &s0_base,
        &size_inputs,
        &COptions { elide_moves: false, ..COptions::default() },
    );
    let c_flow = realistic_pe::emit_c(&s0_flow, &size_inputs, &COptions::default());
    let residual = ResidualSizes {
        procs_base: s0_base.procs.len(),
        nodes_base: s0_base.size(),
        c_bytes_base: c_base.size_bytes(),
        procs_flow: s0_flow.procs.len(),
        nodes_flow: s0_flow.size(),
        c_bytes_flow: c_flow.size_bytes(),
        moves_elided: c_flow.moves_elided,
    };
    // The size-change verdict census comes from the traced compile's
    // counters; the widening baseline from one compile with the
    // analysis off.  Exact, deterministic quantities.
    let sct_off = CompileOptions { sct: false, ..CompileOptions::default() };
    let off_report = pipe
        .compile_traced(b.entry, &sct_off, &mut realistic_pe::NullSink)
        .map_err(|e| fail("compile", &e))?;
    use realistic_pe::Counter;
    let sct = SctNumbers {
        bounded: report.counter(Counter::SctBounded),
        unbounded: report.counter(Counter::SctUnbounded),
        unknown: report.counter(Counter::SctUnknown),
        eager_generalizations: report.counter(Counter::EagerGeneralizations),
        widenings_on: report.counter(Counter::Widenings),
        widenings_off: off_report.counter(Counter::Widenings),
    };
    let hob = pipe.compile_hobbit().map_err(|e| fail("hobbit", &e))?;
    let (arg_texts, args) = if cfg.quick {
        (b.test_args, b.test_inputs())
    } else {
        (b.bench_args, b.bench_inputs())
    };
    let lim = Limits::default();

    // Warm-up runs double as an engine-agreement check on the timed
    // input size.
    let expect = vm.run(&args, lim).map_err(|e| fail("vm run", &e))?.0;
    let tail0 = pipe.run_tail(b.entry, &args, lim).map_err(|e| fail("tail run", &e))?;
    let hob0 = hob.run(b.entry, &args, lim).map_err(|e| fail("hobbit run", &e))?;
    if tail0 != expect || hob0 != expect {
        return Err(format!("{}: engines disagree on timed inputs", b.name));
    }

    let reps = cfg.reps;
    let vm_t = time_min_ms(reps, || {
        vm.run(&args, lim).expect("vm rep");
    });
    let tail_t = time_min_ms(reps, || {
        pipe.run_tail(b.entry, &args, lim).expect("tail rep");
    });
    let hob_t = time_min_ms(reps, || {
        hob.run(b.entry, &args, lim).expect("hobbit rep");
    });

    Ok(BenchRow {
        name: b.name,
        higher_order: b.higher_order,
        args: arg_texts.iter().map(|s| (*s).to_string()).collect(),
        compile_ms,
        vm: EngineTiming { min_ms: vm_t, runs: reps },
        tail: EngineTiming { min_ms: tail_t, runs: reps },
        hobbit: EngineTiming { min_ms: hob_t, runs: reps },
        paper_ours_ms: b.paper_ours_ms,
        paper_hobbit_ms: b.paper_hobbit_ms,
        phases,
        counters,
        attribution,
        residual,
        sct,
    })
}

// ----------------------------------------------------------------------
// Deterministic JSON
// ----------------------------------------------------------------------

/// Renders the result as JSON with a deterministic shape: object keys
/// are alphabetically sorted at every level, benchmarks appear in the
/// fixed Fig. 8 order, and floats use a fixed precision — so two runs
/// differ only in the measured digits and diffs stay reviewable.
#[must_use]
pub fn to_json(cfg: &BenchConfig, rows: &[BenchRow]) -> String {
    to_json_with_serve(cfg, rows, None)
}

/// [`to_json`] with the optional compile-service workload section
/// (`"serve"`, sorted after `"schema"`).
#[must_use]
pub fn to_json_with_serve(
    cfg: &BenchConfig,
    rows: &[BenchRow],
    serve: Option<&ServeBench>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str("      \"args\": [");
        for (j, a) in r.args.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(a));
        }
        s.push_str("],\n");
        s.push_str("      \"attribution\": {");
        for (j, (name, ms)) in r.attribution.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {ms:.3}", json_str(name)));
        }
        s.push_str("},\n");
        s.push_str(&format!("      \"compile_ms\": {:.3},\n", r.compile_ms));
        s.push_str("      \"counters\": {");
        for (j, (name, n)) in r.counters.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{name}\": {n}"));
        }
        s.push_str("},\n");
        s.push_str("      \"engines\": {\n");
        let engines = [("hobbit", r.hobbit), ("tail", r.tail), ("vm", r.vm)];
        for (j, (name, t)) in engines.iter().enumerate() {
            s.push_str(&format!(
                "        \"{name}\": {{\"min_ms\": {:.3}, \"runs\": {}}}{}\n",
                t.min_ms,
                t.runs,
                if j + 1 < engines.len() { "," } else { "" }
            ));
        }
        s.push_str("      },\n");
        s.push_str(&format!("      \"higher_order\": {},\n", r.higher_order));
        s.push_str(&format!("      \"name\": {},\n", json_str(r.name)));
        s.push_str(&format!("      \"paper_hobbit_ms\": {},\n", r.paper_hobbit_ms));
        s.push_str(&format!("      \"paper_ours_ms\": {},\n", r.paper_ours_ms));
        s.push_str("      \"phases\": {");
        for (j, (name, ms)) in r.phases.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{name}\": {ms:.3}"));
        }
        s.push_str("},\n");
        let z = &r.residual;
        s.push_str(&format!(
            "      \"residual\": {{\"c_bytes_base\": {}, \"c_bytes_flow\": {}, \
             \"moves_elided\": {}, \"nodes_base\": {}, \"nodes_flow\": {}, \
             \"procs_base\": {}, \"procs_flow\": {}}},\n",
            z.c_bytes_base,
            z.c_bytes_flow,
            z.moves_elided,
            z.nodes_base,
            z.nodes_flow,
            z.procs_base,
            z.procs_flow
        ));
        let t = &r.sct;
        s.push_str(&format!(
            "      \"sct\": {{\"bounded\": {}, \"eager_generalizations\": {}, \
             \"unbounded\": {}, \"unknown\": {}, \"widenings_off\": {}, \
             \"widenings_on\": {}}}\n",
            t.bounded,
            t.eager_generalizations,
            t.unbounded,
            t.unknown,
            t.widenings_off,
            t.widenings_on
        ));
        s.push_str(if i + 1 < rows.len() { "    },\n" } else { "    }\n" });
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", cfg.mode()));
    s.push_str(&format!("  \"reps\": {},\n", cfg.reps));
    match serve {
        None => s.push_str("  \"schema\": \"pe-bench/5\"\n}\n"),
        Some(sv) => {
            s.push_str("  \"schema\": \"pe-bench/5\",\n");
            s.push_str("  \"serve\": {\n");
            s.push_str(&format!("    \"cold_compile_ms\": {:.3},\n", sv.cold_compile_ms));
            s.push_str(&format!("    \"distinct\": {},\n", sv.distinct));
            s.push_str("    \"latency\": {\n");
            let classes = [
                ("cold_miss", &sv.metrics.cold_miss),
                ("hit", &sv.metrics.hit),
                ("queue_wait", &sv.metrics.queue_wait),
                ("warm_miss", &sv.metrics.warm_miss),
            ];
            for (j, (name, h)) in classes.iter().enumerate() {
                s.push_str(&format!(
                    "      \"{name}\": {{\"count\": {}, \"p50_ms\": {:.3}, \
                     \"p90_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
                    h.count(),
                    h.p50() as f64 / 1e6,
                    h.p90() as f64 / 1e6,
                    h.p99() as f64 / 1e6,
                    if j + 1 < classes.len() { "," } else { "" }
                ));
            }
            s.push_str("    },\n");
            s.push_str(&format!("    \"requests\": {},\n", sv.requests));
            s.push_str("    \"rows\": [\n");
            for (i, r) in sv.rows.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"cold_ms\": {:.3}, \"evictions\": {}, \"hits\": {}, \
                     \"misses\": {}, \"threads\": {}, \"throughput_cold_rps\": {:.1}, \
                     \"throughput_warm_rps\": {:.1}, \"warm_ms\": {:.3}, \
                     \"warm_starts\": {}}}{}\n",
                    r.cold_ms,
                    r.evictions,
                    r.hits,
                    r.misses,
                    r.threads,
                    r.throughput_cold_rps,
                    r.throughput_warm_rps,
                    r.warm_ms,
                    r.warm_starts,
                    if i + 1 < sv.rows.len() { "," } else { "" }
                ));
            }
            s.push_str("    ],\n");
            s.push_str(&format!("    \"warm_compile_ms\": {:.3}\n", sv.warm_compile_ms));
            s.push_str("  }\n}\n");
        }
    }
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_row(name: &'static str) -> BenchRow {
        BenchRow {
            name,
            higher_order: false,
            args: vec!["(a \"b\")".to_string(), "3".to_string()],
            compile_ms: 1.5,
            vm: EngineTiming { min_ms: 0.25, runs: 3 },
            tail: EngineTiming { min_ms: 0.75, runs: 3 },
            hobbit: EngineTiming { min_ms: 0.5, runs: 3 },
            paper_ours_ms: 100,
            paper_hobbit_ms: 200,
            phases: vec![("cfa".to_string(), 0.1), ("specialize".to_string(), 0.4)],
            counters: vec![("memo_hits".to_string(), 2), ("memo_lookups".to_string(), 5)],
            attribution: vec![("main_1".to_string(), 0.3), ("loop_2".to_string(), 0.1)],
            residual: ResidualSizes {
                procs_base: 4,
                nodes_base: 40,
                c_bytes_base: 900,
                procs_flow: 3,
                nodes_flow: 30,
                c_bytes_flow: 800,
                moves_elided: 2,
            },
            sct: SctNumbers {
                bounded: 2,
                unbounded: 0,
                unknown: 1,
                eager_generalizations: 4,
                widenings_on: 0,
                widenings_off: 4,
            },
        }
    }

    #[test]
    fn json_shape_is_deterministic_and_sorted() {
        let cfg = BenchConfig::quick();
        let rows = vec![fake_row("tak"), fake_row("queens")];
        let a = to_json(&cfg, &rows);
        let b = to_json(&cfg, &rows);
        assert_eq!(a, b, "identical inputs must render identically");
        // Keys appear in alphabetical order at every level.
        for keys in [
            vec!["\"benchmarks\"", "\"mode\"", "\"reps\"", "\"schema\""],
            vec![
                "\"args\"",
                "\"attribution\"",
                "\"compile_ms\"",
                "\"counters\"",
                "\"engines\"",
                "\"higher_order\"",
                "\"name\"",
                "\"paper_hobbit_ms\"",
                "\"paper_ours_ms\"",
                "\"phases\"",
                "\"residual\"",
                "\"sct\"",
            ],
            vec!["\"hobbit\"", "\"tail\"", "\"vm\""],
            vec!["\"memo_hits\"", "\"memo_lookups\""],
            vec![
                "\"c_bytes_base\"",
                "\"c_bytes_flow\"",
                "\"moves_elided\"",
                "\"nodes_base\"",
                "\"nodes_flow\"",
                "\"procs_base\"",
                "\"procs_flow\"",
            ],
            vec![
                "\"bounded\"",
                "\"eager_generalizations\"",
                "\"unbounded\"",
                "\"unknown\"",
                "\"widenings_off\"",
                "\"widenings_on\"",
            ],
        ] {
            let idx: Vec<usize> =
                keys.iter().map(|k| a.find(k).unwrap_or_else(|| panic!("missing {k}"))).collect();
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "keys out of order: {keys:?}");
        }
        // Rows keep their given order (callers pass SUITE order).
        assert!(a.find("\"tak\"").unwrap() < a.find("\"queens\"").unwrap());
        // Strings are escaped.
        assert!(a.contains(r#""(a \"b\")""#));
    }

    #[test]
    fn serve_section_renders_sorted_and_deterministic() {
        let cfg = BenchConfig::quick();
        let sv = ServeBench {
            requests: 36,
            distinct: 12,
            rows: vec![
                ServeRow {
                    threads: 1,
                    cold_ms: 10.0,
                    warm_ms: 0.5,
                    throughput_cold_rps: 3600.0,
                    throughput_warm_rps: 72000.0,
                    hits: 48,
                    misses: 24,
                    evictions: 0,
                    warm_starts: 0,
                },
                ServeRow {
                    threads: 4,
                    cold_ms: 4.0,
                    warm_ms: 0.3,
                    throughput_cold_rps: 9000.0,
                    throughput_warm_rps: 120000.0,
                    hits: 48,
                    misses: 24,
                    evictions: 0,
                    warm_starts: 0,
                },
            ],
            cold_compile_ms: 30.0,
            warm_compile_ms: 3.0,
            metrics: {
                let mut m = pe_prof::MetricsRegistry::new();
                m.record_latency(pe_prof::LatencyClass::Hit, 250_000);
                m.record_latency(pe_prof::LatencyClass::ColdMiss, 9_000_000);
                m.record_queue_wait(10_000);
                m
            },
        };
        let rows = vec![fake_row("tak")];
        let a = to_json_with_serve(&cfg, &rows, Some(&sv));
        assert_eq!(a, to_json_with_serve(&cfg, &rows, Some(&sv)));
        for keys in [
            vec!["\"schema\"", "\"serve\""],
            vec![
                "\"cold_compile_ms\"",
                "\"distinct\"",
                "\"latency\"",
                "\"requests\"",
                "\"rows\"",
                "\"warm_compile_ms\"",
            ],
            vec!["\"cold_miss\"", "\"hit\"", "\"queue_wait\"", "\"warm_miss\""],
            vec!["\"count\"", "\"p50_ms\"", "\"p90_ms\"", "\"p99_ms\""],
            vec![
                "\"cold_ms\"",
                "\"evictions\"",
                "\"hits\"",
                "\"misses\"",
                "\"threads\"",
                "\"throughput_cold_rps\"",
                "\"throughput_warm_rps\"",
                "\"warm_ms\"",
                "\"warm_starts\"",
            ],
        ] {
            let idx: Vec<usize> =
                keys.iter().map(|k| a.find(k).unwrap_or_else(|| panic!("missing {k}"))).collect();
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "keys out of order: {keys:?}");
        }
        assert!(a.contains("\"schema\": \"pe-bench/5\""));
        // Without the section the schema still reads pe-bench/5.
        assert!(to_json(&cfg, &rows).contains("\"schema\": \"pe-bench/5\""));
    }

    #[test]
    fn time_min_ms_takes_the_minimum() {
        let mut calls = 0;
        let t = time_min_ms(4, || calls += 1);
        assert_eq!(calls, 4);
        assert!(t >= 0.0 && t.is_finite());
    }

    #[test]
    fn quick_suite_measures_every_benchmark_on_three_engines() {
        let cfg = BenchConfig { quick: true, reps: 1 };
        let rows = run_suite(&cfg).expect("quick suite runs");
        assert_eq!(rows.len(), SUITE.len());
        for (row, b) in rows.iter().zip(SUITE) {
            assert_eq!(row.name, b.name, "fixed Fig. 8 order");
            for t in [row.vm, row.tail, row.hobbit] {
                assert!(t.min_ms.is_finite() && t.min_ms >= 0.0, "{}", row.name);
                assert_eq!(t.runs, 1);
            }
            assert!(row.compile_ms > 0.0, "{}", row.name);
            // The traced compilation populated the breakdown.
            assert!(!row.phases.is_empty(), "{}", row.name);
            assert!(
                row.counters.iter().any(|(n, v)| n == "memo_lookups" && *v > 0),
                "{}: no memo counters",
                row.name
            );
            assert!(row.phases.windows(2).all(|w| w[0].0 < w[1].0), "phases sorted");
            assert!(row.counters.windows(2).all(|w| w[0].0 < w[1].0), "counters sorted");
            assert!(!row.attribution.is_empty(), "{}: no cost attribution", row.name);
            assert!(
                row.attribution.windows(2).all(|w| w[0].0 < w[1].0),
                "attribution sorted"
            );
            // The flow optimizer never grows a residual.
            let z = row.residual;
            assert!(z.nodes_flow <= z.nodes_base, "{}: flow grew S0", row.name);
            assert!(z.procs_flow <= z.procs_base, "{}: flow grew procs", row.name);
            assert!(z.c_bytes_flow <= z.c_bytes_base, "{}: flow grew C", row.name);
            assert!(z.procs_base > 0 && z.nodes_base > 0 && z.c_bytes_base > 0);
        }
        // The ISSUE's acceptance bar: at least one benchmark records a
        // measured residual-size reduction.
        assert!(
            rows.iter().any(|r| r.residual.nodes_flow < r.residual.nodes_base
                || r.residual.c_bytes_flow < r.residual.c_bytes_base),
            "no benchmark shrank under pe-flow"
        );
        // Every benchmark is classified, and static control never adds
        // dynamic widenings; suite-wide they must drop.
        for row in &rows {
            let t = row.sct;
            assert!(t.bounded + t.unbounded + t.unknown > 0, "{}: unclassified", row.name);
            assert!(t.widenings_on <= t.widenings_off, "{}: sct added widenings", row.name);
        }
        let on: u64 = rows.iter().map(|r| r.sct.widenings_on).sum();
        let off: u64 = rows.iter().map(|r| r.sct.widenings_off).sum();
        assert!(on < off, "suite-wide widenings did not drop ({off} → {on})");
    }
}
