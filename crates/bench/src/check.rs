//! The perf-regression gate: compares a fresh `BENCH_pe.json` against a
//! committed baseline and fails on regressions.
//!
//! Two metric families, two tolerance regimes:
//!
//! * **timing** (`compile_ms`, each engine's `min_ms`) is noisy across
//!   machines and CI load, so the gate only trips on a large multiple
//!   of the baseline plus an absolute slack — it catches "the compiler
//!   got 3× slower", not jitter;
//! * **size** (`residual.nodes_flow`, `residual.c_bytes_flow`) is
//!   deterministic, so the tolerance is tight: a few percent of growth
//!   headroom for benign codegen drift.
//!
//! Improvements never fail; the gate is one-sided.  The workspace is
//! dependency-free, so this module carries its own ~100-line recursive
//! JSON reader (the bench writer emits full nested JSON, unlike the
//! flat trace stream `pe_trace::jsonl` validates).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (numbers as `f64`, like the format).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key-sorted; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// A message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    #[must_use]
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn str_(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                m.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut a = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(a));
            }
            loop {
                a.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(a));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let mut buf = [0u8; 4];
                        let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

/// The gate's per-metric headroom; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// A timed metric regresses when it exceeds
    /// `baseline * timing_ratio + timing_abs_ms`.
    pub timing_ratio: f64,
    /// Absolute slack added to every timing limit, in ms (absorbs
    /// jitter on sub-millisecond baselines).
    pub timing_abs_ms: f64,
    /// A deterministic size metric regresses when it exceeds
    /// `baseline * size_ratio`.
    pub size_ratio: f64,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        // Timing must survive a different machine under CI load; sizes
        // are exact modulo deliberate codegen changes.
        Tolerances { timing_ratio: 2.5, timing_abs_ms: 25.0, size_ratio: 1.05 }
    }
}

/// Compares `candidate` (a fresh `pe-bench` JSON document) against
/// `baseline`, returning one message per regression — empty means the
/// gate passes.  Metrics may improve freely; only the listed regressions
/// fail.
///
/// # Errors
///
/// When either document does not parse, lacks the expected shape, or
/// the two were produced under different modes/schemas (such runs are
/// not comparable and must not silently pass).
pub fn check_regressions(
    baseline: &str,
    candidate: &str,
    tol: &Tolerances,
) -> Result<Vec<String>, String> {
    let base = Json::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand = Json::parse(candidate).map_err(|e| format!("candidate: {e}"))?;
    for key in ["schema", "mode"] {
        let b = base.get(key).and_then(Json::str_).ok_or(format!("baseline has no {key}"))?;
        let c = cand.get(key).and_then(Json::str_).ok_or(format!("candidate has no {key}"))?;
        if b != c {
            return Err(format!("{key} mismatch: baseline {b:?} vs candidate {c:?}"));
        }
    }
    let base_rows = base
        .get("benchmarks")
        .and_then(Json::arr)
        .ok_or("baseline has no benchmarks array")?;
    let cand_rows = cand
        .get("benchmarks")
        .and_then(Json::arr)
        .ok_or("candidate has no benchmarks array")?;
    let mut regressions = Vec::new();
    for brow in base_rows {
        let name = brow
            .get("name")
            .and_then(Json::str_)
            .ok_or("baseline benchmark without a name")?;
        let Some(crow) = cand_rows
            .iter()
            .find(|r| r.get("name").and_then(Json::str_) == Some(name))
        else {
            regressions.push(format!("{name}: missing from the candidate run"));
            continue;
        };
        let mut timing = |label: &str, path: &[&str]| {
            check_metric(brow, crow, name, label, path, tol.timing_ratio, tol.timing_abs_ms, &mut regressions);
        };
        timing("compile_ms", &["compile_ms"]);
        timing("vm min_ms", &["engines", "vm", "min_ms"]);
        timing("tail min_ms", &["engines", "tail", "min_ms"]);
        timing("hobbit min_ms", &["engines", "hobbit", "min_ms"]);
        let mut size = |label: &str, path: &[&str]| {
            check_metric(brow, crow, name, label, path, tol.size_ratio, 0.0, &mut regressions);
        };
        size("residual nodes", &["residual", "nodes_flow"]);
        size("emitted C bytes", &["residual", "c_bytes_flow"]);
    }
    Ok(regressions)
}

/// One metric comparison: walks `path` in both rows and records a
/// regression when the candidate exceeds `base * ratio + abs`.
#[allow(clippy::too_many_arguments)]
fn check_metric(
    brow: &Json,
    crow: &Json,
    name: &str,
    label: &str,
    path: &[&str],
    ratio: f64,
    abs: f64,
    regressions: &mut Vec<String>,
) {
    let walk = |mut v: &Json| {
        for key in path {
            v = v.get(key)?;
        }
        v.num()
    };
    let (Some(b), Some(c)) = (walk(brow), walk(crow)) else {
        regressions.push(format!("{name}: {label} missing from a row"));
        return;
    };
    let limit = b * ratio + abs;
    if c > limit {
        let mut msg = String::new();
        let _ = write!(msg, "{name}: {label} regressed: {b:.3} -> {c:.3} (limit {limit:.3})");
        regressions.push(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "benchmarks": [
        {
          "compile_ms": 10.0,
          "engines": {
            "hobbit": {"min_ms": 0.5, "runs": 3},
            "tail": {"min_ms": 0.8, "runs": 3},
            "vm": {"min_ms": 0.2, "runs": 3}
          },
          "name": "tak",
          "residual": {"c_bytes_flow": 800, "nodes_flow": 30}
        }
      ],
      "mode": "quick",
      "schema": "pe-bench/5"
    }"#;

    #[test]
    fn parser_round_trips_the_shapes_the_writer_emits() {
        let v = Json::parse(DOC).expect("parses");
        assert_eq!(
            v.get("benchmarks").and_then(Json::arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("schema").and_then(Json::str_), Some("pe-bench/5"));
        let esc = Json::parse(r#"{"s": "a\"b\\c\nd A"}"#).expect("escapes");
        assert_eq!(esc.get("s").and_then(Json::str_), Some("a\"b\\c\nd A"));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn identical_runs_and_improvements_pass() {
        let tol = Tolerances::default();
        assert_eq!(check_regressions(DOC, DOC, &tol).unwrap(), Vec::<String>::new());
        let faster = DOC.replace("\"compile_ms\": 10.0", "\"compile_ms\": 1.0");
        assert_eq!(check_regressions(DOC, &faster, &tol).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn synthetic_regressions_are_caught() {
        let tol = Tolerances::default();
        // Timing: 10ms -> 100ms blows through 10*2.5+25.
        let slow = DOC.replace("\"compile_ms\": 10.0", "\"compile_ms\": 100.0");
        let r = check_regressions(DOC, &slow, &tol).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("tak: compile_ms regressed"), "{r:?}");
        // Timing within tolerance: 10ms -> 20ms is jitter, not a bug.
        let jitter = DOC.replace("\"compile_ms\": 10.0", "\"compile_ms\": 20.0");
        assert!(check_regressions(DOC, &jitter, &tol).unwrap().is_empty());
        // Deterministic size: 30 -> 32 nodes exceeds the 5% headroom.
        let grown = DOC.replace("\"nodes_flow\": 30", "\"nodes_flow\": 32");
        let r = check_regressions(DOC, &grown, &tol).unwrap();
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("residual nodes"), "{r:?}");
        // A benchmark that vanished is a regression, not a skip.
        let gone = DOC.replace("\"name\": \"tak\"", "\"name\": \"renamed\"");
        let r = check_regressions(DOC, &gone, &tol).unwrap();
        assert!(r[0].contains("missing from the candidate run"), "{r:?}");
    }

    #[test]
    fn incomparable_runs_error_instead_of_passing() {
        let tol = Tolerances::default();
        let full = DOC.replace("\"mode\": \"quick\"", "\"mode\": \"full\"");
        assert!(check_regressions(DOC, &full, &tol).is_err());
        let old = DOC.replace("pe-bench/5", "pe-bench/4");
        assert!(check_regressions(DOC, &old, &tol).is_err());
        assert!(check_regressions("not json", DOC, &tol).is_err());
    }
}
