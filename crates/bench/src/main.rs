//! `pe-bench` — offline benchmark runner.
//!
//! ```text
//! cargo run --release -p pe-bench                # full mode, bench_args
//! cargo run --release -p pe-bench -- --quick     # CI mode, test_args
//! cargo run --release -p pe-bench -- --out x.json --reps 7
//! cargo run --release -p pe-bench -- --no-serve  # skip the service workload
//! ```
//!
//! Writes `BENCH_pe.json` (deterministic shape: sorted keys, fixed
//! Fig. 8 benchmark order) and prints a Fig. 8-style table.  The
//! compile-service workload (pe-serve, cold vs warm on 1/2/4 threads)
//! runs by default and lands in the `"serve"` section.

use pe_bench::{check_regressions, run_serve, run_suite, to_json_with_serve, BenchConfig, Tolerances};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg: Option<BenchConfig> = None;
    let mut out = String::from("BENCH_pe.json");
    let mut reps: Option<u32> = None;
    let mut with_serve = true;
    let mut check: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = Some(BenchConfig::quick()),
            "--full" => cfg = Some(BenchConfig::full()),
            "--no-serve" => with_serve = false,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check = Some(p),
                None => return usage("--check needs a baseline path"),
            },
            "--reps" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => reps = Some(n),
                _ => return usage("--reps needs a positive integer"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: pe-bench [--quick | --full] [--reps N] [--out PATH] [--no-serve] [--check BASELINE]\n\
                     Times every Fig. 8 benchmark on the S0 VM, the tail\n\
                     interpreter and the Hobbit baseline, plus the pe-serve\n\
                     many-request workload; writes PATH (default BENCH_pe.json).\n\
                     With --check, compares the fresh run against BASELINE\n\
                     and exits non-zero on any perf or size regression."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    let mut cfg = cfg.unwrap_or_else(BenchConfig::full);
    if let Some(n) = reps {
        cfg.reps = n;
    }

    let rows = match run_suite(&cfg) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("pe-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<11} {:>10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "benchmark", "compile", "vm ms", "tail ms", "hobbit ms", "tail/vm", "s0 nodes"
    );
    for r in &rows {
        println!(
            "{:<11} {:>10.2} {:>10.3} {:>10.3} {:>10.3} {:>9.2} {:>12}",
            r.name,
            r.compile_ms,
            r.vm.min_ms,
            r.tail.min_ms,
            r.hobbit.min_ms,
            r.tail.min_ms / r.vm.min_ms,
            format!("{}→{}", r.residual.nodes_base, r.residual.nodes_flow)
        );
    }

    let serve = if with_serve {
        match run_serve(&cfg, &[1, 2, 4]) {
            Ok(sv) => {
                println!(
                    "\n{:<8} {:>10} {:>10} {:>12} {:>12}",
                    "threads", "cold ms", "warm ms", "cold rps", "warm rps"
                );
                for r in &sv.rows {
                    println!(
                        "{:<8} {:>10.2} {:>10.3} {:>12.0} {:>12.0}",
                        r.threads,
                        r.cold_ms,
                        r.warm_ms,
                        r.throughput_cold_rps,
                        r.throughput_warm_rps
                    );
                }
                println!(
                    "serve: {} requests ({} distinct); capacity-0 recompile {:.2} ms cold vs {:.2} ms warm",
                    sv.requests, sv.distinct, sv.cold_compile_ms, sv.warm_compile_ms
                );
                Some(sv)
            }
            Err(e) => {
                eprintln!("pe-bench: serve workload: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let json = to_json_with_serve(&cfg, &rows, serve.as_ref());
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("pe-bench: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out} ({} mode, min of {} runs)", if cfg.quick { "quick" } else { "full" }, cfg.reps);

    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pe-bench: reading baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_regressions(&baseline, &json, &Tolerances::default()) {
            Ok(regressions) if regressions.is_empty() => {
                println!("regression gate: OK against {baseline_path}");
            }
            Ok(regressions) => {
                eprintln!("regression gate: FAIL against {baseline_path}:");
                for r in &regressions {
                    eprintln!("  {r}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("regression gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pe-bench: {msg} (try --help)");
    ExitCode::FAILURE
}
