//! `pe-bench` — offline benchmark runner.
//!
//! ```text
//! cargo run --release -p pe-bench                # full mode, bench_args
//! cargo run --release -p pe-bench -- --quick     # CI mode, test_args
//! cargo run --release -p pe-bench -- --out x.json --reps 7
//! ```
//!
//! Writes `BENCH_pe.json` (deterministic shape: sorted keys, fixed
//! Fig. 8 benchmark order) and prints a Fig. 8-style table.

use pe_bench::{run_suite, to_json, BenchConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg: Option<BenchConfig> = None;
    let mut out = String::from("BENCH_pe.json");
    let mut reps: Option<u32> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = Some(BenchConfig::quick()),
            "--full" => cfg = Some(BenchConfig::full()),
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            "--reps" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => reps = Some(n),
                _ => return usage("--reps needs a positive integer"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: pe-bench [--quick | --full] [--reps N] [--out PATH]\n\
                     Times every Fig. 8 benchmark on the S0 VM, the tail\n\
                     interpreter and the Hobbit baseline; writes PATH\n\
                     (default BENCH_pe.json)."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    let mut cfg = cfg.unwrap_or_else(BenchConfig::full);
    if let Some(n) = reps {
        cfg.reps = n;
    }

    let rows = match run_suite(&cfg) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("pe-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<11} {:>10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "benchmark", "compile", "vm ms", "tail ms", "hobbit ms", "tail/vm", "s0 nodes"
    );
    for r in &rows {
        println!(
            "{:<11} {:>10.2} {:>10.3} {:>10.3} {:>10.3} {:>9.2} {:>12}",
            r.name,
            r.compile_ms,
            r.vm.min_ms,
            r.tail.min_ms,
            r.hobbit.min_ms,
            r.tail.min_ms / r.vm.min_ms,
            format!("{}→{}", r.residual.nodes_base, r.residual.nodes_flow)
        );
    }

    let json = to_json(&cfg, &rows);
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("pe-bench: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out} ({} mode, min of {} runs)", if cfg.quick { "quick" } else { "full" }, cfg.reps);
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pe-bench: {msg} (try --help)");
    ExitCode::FAILURE
}
