//! Symbol interning and fast hashing for the compiler suite's hot paths.
//!
//! The §8 comparison between PE-compiled code and the baseline is only
//! meaningful when neither engine pays accidental interpretation
//! overheads — and the biggest such overhead in a name-based pipeline is
//! repeated string hashing: every `HashMap<String, _>` lookup re-hashes
//! the full name with the standard library's DoS-resistant SipHash.
//! This crate provides the two tools that remove it:
//!
//! * [`SymbolTable`] — interning: each distinct name is hashed **once**
//!   and mapped to a dense [`Symbol`] (`u32`); all later comparisons and
//!   lookups are integer operations.  [`SymbolMap`] is the matching
//!   dense `Symbol → T` map (a plain vector, no hashing at all).
//! * [`FxHashMap`]/[`FxHashSet`] — for keys that are already structural
//!   (memo keys, ids), the rustc/Firefox "Fx" multiply-xor hash, which
//!   is several times faster than SipHash on short keys.  Nothing in
//!   this pipeline hashes attacker-controlled keys into long-lived
//!   tables (names come from the subject program the user chose to
//!   compile, and every table dies with its compilation), so the
//!   HashDoS resistance being traded away buys nothing here.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

// ----------------------------------------------------------------------
// Fx hashing
// ----------------------------------------------------------------------

/// The rustc / Firefox "Fx" hash: a multiply-xor loop over 8-byte words.
/// Not DoS-resistant; see the module docs for why that is acceptable.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The Fx multiplier (the 64-bit golden-ratio constant).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "a" and "a\0" differ.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

// ----------------------------------------------------------------------
// Symbols
// ----------------------------------------------------------------------

/// An interned name: a dense `u32` id handed out by a [`SymbolTable`].
///
/// Comparison, hashing and [`SymbolMap`] lookup are all integer
/// operations; the spelling lives in the table that interned it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of this symbol (0-based interning order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An interning table: names in, dense [`Symbol`] ids out.
///
/// ```
/// use pe_intern::SymbolTable;
///
/// let mut t = SymbolTable::new();
/// let a = t.intern("append");
/// let b = t.intern("cps-append");
/// assert_eq!(t.intern("append"), a);
/// assert_ne!(a, b);
/// assert_eq!(t.resolve(a), "append");
/// ```
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<Arc<str>>,
    map: FxHashMap<Arc<str>, Symbol>,
}

impl SymbolTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Interns `name`, hashing it at most once per distinct spelling.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("fewer than 2^32 symbols"));
        let shared: Arc<str> = name.into();
        self.names.push(shared.clone());
        self.map.insert(shared, sym);
        sym
    }

    /// The symbol for `name`, if it has been interned.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The spelling of an interned symbol.
    ///
    /// # Panics
    ///
    /// If `sym` was not produced by this table.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// The number of distinct symbols interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A dense map from [`Symbol`] to `T`: lookup is a vector index — no
/// hashing at all.  Built for the per-program tables whose key space is
/// exactly one [`SymbolTable`]'s output.
#[derive(Debug, Clone)]
pub struct SymbolMap<T> {
    slots: Vec<Option<T>>,
}

impl<T> Default for SymbolMap<T> {
    fn default() -> Self {
        SymbolMap { slots: Vec::new() }
    }
}

impl<T> SymbolMap<T> {
    /// An empty map.
    #[must_use]
    pub fn new() -> SymbolMap<T> {
        SymbolMap::default()
    }

    /// An empty map with room for `n` symbols.
    #[must_use]
    pub fn with_capacity(n: usize) -> SymbolMap<T> {
        SymbolMap { slots: Vec::with_capacity(n) }
    }

    /// Inserts a value, returning the previous one if present.
    pub fn insert(&mut self, sym: Symbol, value: T) -> Option<T> {
        let i = sym.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i].replace(value)
    }

    /// The value for `sym`, if any.
    #[must_use]
    pub fn get(&self, sym: Symbol) -> Option<&T> {
        self.slots.get(sym.index()).and_then(Option::as_ref)
    }

    /// True if `sym` has a value.
    #[must_use]
    pub fn contains(&self, sym: Symbol) -> bool {
        self.get(sym).is_some()
    }
}

/// Compile-time proof that a type can cross threads.  The compile
/// service executes independent requests on a worker pool, so every
/// artifact that flows through it — the interner, the pipeline, residual
/// programs, loaded VMs — must be `Send`.  Call sites are zero-cost:
/// they exist only to make a regression (e.g. an `Rc` sneaking back into
/// [`SymbolTable`]) a compile error rather than a runtime surprise.
pub fn assert_send<T: Send>() {}

/// Compile-time proof that a type can be shared between threads — the
/// companion to [`assert_send`] for the service objects workers borrow
/// (`&Server` crosses every worker in the pool).
pub fn assert_sync<T: Sync>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn symbol_types_are_send() {
        // `SymbolTable` stored `Rc<str>` until the compile service
        // needed to move pipelines across worker threads; this pins the
        // `Arc<str>` fix at compile time.
        assert_send::<SymbolTable>();
        assert_send::<SymbolMap<String>>();
        assert_send::<Symbol>();
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let syms: Vec<Symbol> = ["car", "cdr", "cons", "car", "cdr"]
            .iter()
            .map(|n| t.intern(n))
            .collect();
        assert_eq!(syms[0], syms[3]);
        assert_eq!(syms[1], syms[4]);
        assert_eq!(t.len(), 3, "three distinct names");
        assert_eq!(syms[0].index(), 0);
        assert_eq!(syms[2].index(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut t = SymbolTable::new();
        for name in ["sl-eval-$1", "cv-vals-$2", "x", ""] {
            let s = t.intern(name);
            assert_eq!(t.resolve(s), name);
            assert_eq!(t.get(name), Some(s));
        }
        assert_eq!(t.get("ghost"), None);
    }

    #[test]
    fn symbol_map_is_a_dense_store() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let mut m: SymbolMap<usize> = SymbolMap::with_capacity(t.len());
        assert_eq!(m.insert(b, 7), None);
        assert_eq!(m.get(b), Some(&7));
        assert_eq!(m.get(a), None);
        assert!(!m.contains(a));
        assert_eq!(m.insert(b, 9), Some(7));
        assert_eq!(m.get(b), Some(&9));
    }

    #[test]
    fn fx_hash_distinguishes_lengths_and_content() {
        fn h(s: &str) -> u64 {
            FxBuildHasher::default().hash_one(s)
        }
        assert_ne!(h("a"), h("b"));
        assert_ne!(h("a"), h("a\0"));
        assert_ne!(h("sl-eval-$1"), h("sl-eval-$2"));
        assert_eq!(h("cv-vals-$1"), h("cv-vals-$1"));
    }

    #[test]
    fn fx_maps_behave_like_maps() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("x".to_string(), 1);
        m.insert("y".to_string(), 2);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(4));
        assert!(!s.insert(4));
    }
}
