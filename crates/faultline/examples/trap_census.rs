//! `trap-census` — runs every divergence scenario against the engine
//! whose governor should cut it off and prints the trap-time meter
//! snapshots as a table.
//!
//! ```text
//! cargo run --release -p pe-faultline --example trap_census
//! ```

use pe_faultline::{render_census, trap_census};
use std::process::ExitCode;

fn main() -> ExitCode {
    match trap_census() {
        Ok(rows) => {
            print!("{}", render_census(&rows));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trap-census: {e}");
            ExitCode::FAILURE
        }
    }
}
