//! Debug-profile stack smoke: drives pathologically deep input through
//! the entry points that historically recursed on the host stack.  Run
//! by CI *without* `--release` so any recursion the governor fails to
//! bound overflows loudly here instead of in a user's process.

use pe_faultline::{deep_nest, deep_program, huge_quoted, no_panic};
use pe_governor::Limits;

fn main() {
    // The reader scans iteratively: a 1M-deep nest must come back as a
    // structured TooDeep error under default limits — the depth cap
    // fires before any deep structure (or its drop glue) exists.  The
    // old recursive reader aborted here in the debug profile.
    let deep = deep_nest(1_000_000);
    let r = no_panic(|| pe_sexpr::read(&deep)).expect("reader panicked on deep nesting");
    assert!(r.is_err(), "reader accepted a 1M-deep nest");

    // A raised-but-sane cap admits nests far beyond what a recursive
    // descent could survive at this profile's frame sizes.
    let lim = Limits::builder().with_syntax_depth(20_000).build();
    let r = no_panic(|| pe_sexpr::read_with(&deep_nest(10_000), &lim))
        .expect("iterative reader overflowed");
    assert!(r.is_ok(), "reader rejected a legal deep nest: {r:?}");

    // Huge flat data: a node-budget error, not memory exhaustion.
    let big = huge_quoted(2_000_000);
    let small = Limits::builder().with_heap(100_000).build();
    let r = no_panic(|| pe_sexpr::read_with(&big, &small)).expect("reader panicked on huge data");
    assert!(r.is_err(), "reader accepted data over its node budget");

    // The parser and desugarer are recursive by design; the default
    // syntax-depth cap must stop deep programs before reaching them.
    let prog = deep_program(500_000);
    let r = no_panic(|| pe_frontend::parse_source(&prog)).expect("parser panicked on deep input");
    assert!(r.is_err(), "parser accepted a 500k-deep program");

    println!("stack smoke: ok");
}
