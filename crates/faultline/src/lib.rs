//! Fault-injection harness: adversarial inputs against every pipeline
//! entry point.
//!
//! The resource governor (`pe-governor`) promises that no public entry
//! point of the suite panics, overflows the host stack, or hangs on
//! hostile input — divergence, pathological nesting, huge quoted data,
//! and malformed syntax must all come back as structured `Err` values
//! (or as a `Degraded` outcome from the robust pipeline) within a
//! bounded number of steps.  This crate is the test bed for that
//! promise: generators for each class of hostile input, and a test per
//! entry point that drives them through under `catch_unwind`.
//!
//! Nothing here is used by the pipeline itself; the crate exists so CI
//! exercises the failure paths as systematically as the success paths.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// The Ω combinator: every engine diverges on it, and the specializing
/// compiler diverges *at compile time* unless its unfolding budget cuts
/// it off.
#[must_use]
pub fn omega_src() -> &'static str {
    "(define (omega) ((lambda (x) (x x)) (lambda (x) (x x))))"
}

/// Mutual divergence through top-level recursion — exercises the
/// call-depth cap of the host-stack engines and the fuel meter of the
/// flat ones.
#[must_use]
pub fn mutual_divergence_src() -> &'static str {
    "(define (ping n) (pong (+ n 1)))
     (define (pong n) (ping (+ n 1)))
     (define (main n) (ping n))"
}

/// A first-order program whose specialization diverges (growing static
/// data: every recursive call has a fresh memo key) although it is a
/// perfectly good program dynamically.
#[must_use]
pub fn static_divergence_src() -> &'static str {
    "(define (f x n) (if (zero? n) x (f x (+ n 1))))"
}

/// An expression nested `n` parens deep — hostile to any recursive
/// reader or evaluator.
#[must_use]
pub fn deep_nest(n: usize) -> String {
    let mut s = String::with_capacity(2 * n + 16);
    for _ in 0..n {
        s.push('(');
    }
    s.push('x');
    for _ in 0..n {
        s.push(')');
    }
    s
}

/// A deeply nested *program*: `(define (f x) (add1 (add1 … x)))`.
#[must_use]
pub fn deep_program(n: usize) -> String {
    let mut s = String::from("(define (f x) ");
    for _ in 0..n {
        s.push_str("(add1 ");
    }
    s.push('x');
    for _ in 0..n {
        s.push(')');
    }
    s.push(')');
    s
}

/// A quoted list of `n` atoms — hostile to any reader without a node
/// budget.
#[must_use]
pub fn huge_quoted(n: usize) -> String {
    let mut s = String::with_capacity(2 * n + 8);
    s.push_str("'(");
    for _ in 0..n {
        s.push_str("1 ");
    }
    s.push(')');
    s
}

/// The Ω self-application as a bare *expression*, for grafting into an
/// otherwise-valid program (expression position, any scope).
#[must_use]
pub fn omega_expr() -> &'static str {
    "((lambda (x) (x x)) (lambda (x) (x x)))"
}

/// An arithmetic-ascent loop: structurally identical to a descent loop
/// but counting *up*, so it sits exactly on the far side of the
/// size-change Bounded/Unbounded line.
#[must_use]
pub fn ascent_src() -> &'static str {
    "(define (climb n) (if (zero? n) 0 (climb (add1 n))))"
}

/// Wraps `expr` in `n` layers of `(add1 …)` — deep but *valid* nesting,
/// hostile to any recursive evaluator while still parsing (below the
/// syntax-depth cap).
#[must_use]
pub fn deep_wrap(expr: &str, n: usize) -> String {
    let mut s = String::with_capacity(expr.len() + 7 * n);
    for _ in 0..n {
        s.push_str("(add1 ");
    }
    s.push_str(expr);
    for _ in 0..n {
        s.push(')');
    }
    s
}

/// Malformed concrete syntax covering every reader error class.
#[must_use]
pub fn hostile_inputs() -> Vec<&'static str> {
    vec![
        "(",                       // unexpected EOF
        ")",                       // unbalanced close
        "(a (b c)",                // unbalanced open
        "\"no closing quote",      // unterminated string
        "#bogus",                  // bad hash token
        "99999999999999999999999", // fixnum overflow
        "(a . b)",                 // dotted pair (unsupported)
        "'",                       // quote with nothing to quote
        "(define (f x)",           // truncated definition
        "\u{0}\u{1}\u{2}",         // control characters
    ]
}

thread_local! {
    /// True while this thread is inside [`no_panic`]: the shared hook
    /// swallows the backtrace spray for exactly those panics.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Installs the suppressing panic hook exactly once, process-wide.
static INSTALL_HOOK: Once = Once::new();

/// Runs `f` under `catch_unwind`, turning a panic into a test-friendly
/// `Err(message)`.  The harness asserts entry points *return* errors
/// rather than unwinding.
///
/// The default panic hook is suppressed for the duration of the call:
/// a trap-census or siege run probes thousands of failure paths, and a
/// backtrace per *expected* panic would drown the real output.  The
/// suppression is implemented as a process-wide wrapper hook (installed
/// once) consulting a thread-local flag, **not** as a
/// `take_hook`/`set_hook` swap around the call — tests run in parallel
/// threads, and swapping the global hook from two `no_panic` calls at
/// once would race, losing the real hook on some interleaving.  The
/// flag is restored on every path (including when `f` panics) by a
/// drop guard, and panics on *other* threads still reach the original
/// hook untouched.
///
/// # Errors
///
/// The panic payload's message, if `f` panicked.
pub fn no_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    INSTALL_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                prev(info);
            }
        }));
    });
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SUPPRESS_PANIC_OUTPUT.with(|s| s.replace(true)));
    catch_unwind(AssertUnwindSafe(f)).map_err(|e| {
        e.downcast_ref::<&str>().map(|s| (*s).to_string()).unwrap_or_else(|| {
            e.downcast_ref::<String>().cloned().unwrap_or_else(|| "panic".to_string())
        })
    })
}

/// One row of the [`trap_census`]: a hostile case, the structured
/// outcome it produced, and the governor meters at the moment the trap
/// fired (flushed as pe-trace gauges by the engine's `run_with`).
#[derive(Debug, Clone)]
pub struct TrapRecord {
    /// Which hostile scenario ran, as `input/engine` .
    pub case: &'static str,
    /// The structured outcome (the trap or degradation reason).
    pub outcome: String,
    /// Fuel steps consumed when the trap fired.
    pub fuel_steps: u64,
    /// Heap cells allocated when the trap fired.
    pub heap_cells: u64,
    /// Peak call depth reached (host-stack engines; 0 for flat ones).
    pub peak_depth: u64,
}

/// Runs every divergence scenario against the engine whose governor
/// should cut it off and collects the trap-time meter snapshots — the
/// observability half of the fault-injection story: not just *that*
/// hostile inputs come back as structured errors, but *what the meters
/// read* when they did.
///
/// # Errors
///
/// A message naming the case, if an engine returned success (or the
/// wrong error class) on input that must trap.
pub fn trap_census() -> Result<Vec<TrapRecord>, String> {
    use pe_trace::{CollectingSink, Gauge};
    use realistic_pe::{CompileOptions, Datum, Limits, Pipeline, RobustExec};

    let tight =
        Limits::builder().with_fuel(100_000).with_depth(256).with_heap(100_000).build();
    let gauges = |sink: &CollectingSink| {
        (
            sink.gauge_last(Gauge::FuelUsed).unwrap_or(0),
            sink.gauge_last(Gauge::HeapUsed).unwrap_or(0),
            sink.gauge_last(Gauge::CallDepth).unwrap_or(0),
        )
    };
    let record = |case: &'static str,
                  sink: &CollectingSink,
                  r: Result<(), String>|
     -> Result<TrapRecord, String> {
        let outcome = r.err().ok_or_else(|| format!("{case}: expected a trap, got success"))?;
        let (fuel_steps, heap_cells, peak_depth) = gauges(sink);
        Ok(TrapRecord { case, outcome, fuel_steps, heap_cells, peak_depth })
    };
    let mut rows = Vec::new();

    // Ω on the flat tail machine: fuel fires, the host stack never grows.
    let omega = pe_frontend::parse_source(omega_src()).map_err(|e| e.to_string())?;
    let domega = pe_frontend::desugar(&omega).map_err(|e| e.to_string())?;
    let mut sink = CollectingSink::new();
    let r = pe_interp::tail::run_with(&domega, "omega", &[], tight, &mut sink);
    rows.push(record("omega/tail", &sink, r.map(|_| ()).map_err(|e| e.to_string()))?);

    // Mutual divergence on the host-stack engine: the depth cap fires.
    let mutual = pe_frontend::parse_source(mutual_divergence_src()).map_err(|e| e.to_string())?;
    let mut sink = CollectingSink::new();
    let r = pe_interp::standard::run_with(&mutual, "main", &[Datum::Int(0)], tight, &mut sink);
    rows.push(record("mutual/standard", &sink, r.map(|_| ()).map_err(|e| e.to_string()))?);

    // Unbounded consing: the heap meter fires on the flat machine.
    let grow = pe_frontend::parse_source(
        "(define (grow l) (grow (cons 1 l))) (define (main) (grow '()))",
    )
    .map_err(|e| e.to_string())?;
    let dgrow = pe_frontend::desugar(&grow).map_err(|e| e.to_string())?;
    let heap_lim = Limits { max_heap: 100, ..tight };
    let mut sink = CollectingSink::new();
    let r = pe_interp::tail::run_with(&dgrow, "main", &[], heap_lim, &mut sink);
    rows.push(record("heap-growth/tail", &sink, r.map(|_| ()).map_err(|e| e.to_string()))?);

    // A compilable divergent program on the VM: fuel fires at run time.
    let spin = Pipeline::new("(define (spin n) (if (zero? n) (spin 1) (spin 2)))")
        .map_err(|e| e.to_string())?;
    let vm = spin.compile_vm("spin", &CompileOptions::default()).map_err(|e| e.to_string())?;
    let mut sink = CollectingSink::new();
    let r = vm.run_with(&[Datum::Int(0)], tight, &mut sink);
    rows.push(record("spin/vm", &sink, r.map(|_| ()).map_err(|e| e.to_string()))?);

    // Ω against the specializing compiler: the size-change analysis
    // rejects it statically — zero fuel, zero heap, zero unfolding.
    let mut sink = CollectingSink::new();
    let r = pe_core::compile_with(
        &domega,
        "omega",
        &CompileOptions::default(),
        &mut sink,
    );
    rows.push(TrapRecord {
        case: "omega/sct",
        outcome: r.err().map_or_else(
            || "expected a static reject, got success".to_string(),
            |e| e.to_string(),
        ),
        fuel_steps: sink.counter_total(pe_trace::Counter::UnfoldSteps),
        heap_cells: 0,
        peak_depth: 0,
    });

    // Mutual divergence on the Hobbit baseline: native recursion, depth
    // cap fires.
    let hob = pe_hobbit::Hobbit::compile(&mutual).map_err(|e| e.to_string())?;
    let mut sink = CollectingSink::new();
    let r = hob.run_with("main", &[Datum::Int(0)], tight, &mut sink);
    rows.push(record("mutual/hobbit", &sink, r.map(|_| ()).map_err(|e| e.to_string()))?);

    // Graceful degradation: a hostile residual budget on a benign
    // program.  No governor gauges here — the snapshot is the
    // specializer's own work counter at cut-off.
    let pipe = Pipeline::new(
        "(define (main n) (even-p n))
         (define (even-p n) (if (zero? n) 1 (odd-p (- n 1))))
         (define (odd-p n) (if (zero? n) 0 (even-p (- n 1))))",
    )
    .map_err(|e| e.to_string())?;
    let opts = CompileOptions {
        limits: Limits::builder().with_residual(1).build(),
        ..CompileOptions::default()
    };
    let mut sink = CollectingSink::new();
    match pipe.compile_robust_traced("main", &opts, &mut sink) {
        Ok(RobustExec::Degraded { reason }) => rows.push(TrapRecord {
            case: "budget/robust",
            outcome: format!("degraded: {reason}"),
            fuel_steps: sink.counter_total(pe_trace::Counter::MemoLookups),
            heap_cells: 0,
            peak_depth: 0,
        }),
        other => return Err(format!("budget/robust: expected Degraded, got {other:?}")),
    }

    Ok(rows)
}

/// Renders the census as an aligned table.
#[must_use]
pub fn render_census(rows: &[TrapRecord]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<18} {:>10} {:>10} {:>10}  outcome\n",
        "case", "fuel", "heap", "depth"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<18} {:>10} {:>10} {:>10}  {}\n",
            r.case, r.fuel_steps, r.heap_cells, r.peak_depth, r.outcome
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::{CompileOptions, Limits, SpecError, Trap};
    use pe_interp::{closconv, standard, tail, Datum, InterpError};
    use pe_unmix::{specialize, UnmixError, UnmixOptions};
    use realistic_pe::{Pipeline, PipelineError};

    type R = Result<(), Box<dyn std::error::Error>>;

    /// Limits small enough that every divergence test finishes in
    /// milliseconds.
    fn tight() -> Limits {
        Limits::builder().with_fuel(100_000).with_depth(256).with_heap(100_000).build()
    }

    // ---- reader ----------------------------------------------------

    #[test]
    fn reader_survives_hostile_syntax() -> R {
        for src in hostile_inputs() {
            let r = no_panic(|| pe_sexpr::read(src))?;
            // The reader is lenient about atom spelling (control
            // characters read as symbols — the parser rejects them);
            // everything structurally malformed must error.
            if src.chars().any(char::is_control) {
                continue;
            }
            assert!(r.is_err(), "reader accepted hostile input {src:?}");
        }
        Ok(())
    }

    #[test]
    fn reader_bounds_nesting_and_size() -> R {
        // 1M-deep nesting: a structured TooDeep error, no stack overflow.
        let deep = deep_nest(1_000_000);
        let r = no_panic(|| pe_sexpr::read(&deep))?;
        assert!(
            matches!(r, Err(ref e) if matches!(e.kind, pe_sexpr::ReadErrorKind::TooDeep { .. })),
            "got {r:?}"
        );
        // Huge quoted data against a small node budget: TooLarge.
        let big = huge_quoted(100_000);
        let lim = Limits::builder().with_heap(1_000).build();
        let r = no_panic(|| pe_sexpr::read_with(&big, &lim))?;
        assert!(
            matches!(r, Err(ref e) if matches!(e.kind, pe_sexpr::ReadErrorKind::TooLarge { .. })),
            "got {r:?}"
        );
        Ok(())
    }

    // ---- frontend --------------------------------------------------

    #[test]
    fn parser_survives_hostile_syntax() -> R {
        for src in hostile_inputs() {
            let r = no_panic(|| pe_frontend::parse_source(src))?;
            assert!(r.is_err(), "parser accepted hostile input {src:?}");
        }
        // Deep nesting is cut off by the reader's syntax-depth cap
        // *before* it can reach the recursive parser and desugarer —
        // that cap is what protects the recursive layers' host stack,
        // so it must fire under default limits.
        let deep = deep_program(50_000);
        let r = no_panic(|| pe_frontend::parse_source(&deep))?;
        assert!(
            matches!(r, Err(pe_frontend::ParseError::Read(ref e))
                if matches!(e.kind, pe_sexpr::ReadErrorKind::TooDeep { .. })),
            "expected the syntax-depth cap, got {r:?}"
        );
        // Within the cap, deep programs still parse.
        let ok = deep_program(200);
        assert!(no_panic(|| pe_frontend::parse_source(&ok))?.is_ok());
        Ok(())
    }

    // ---- the interpreter family ------------------------------------

    #[test]
    fn interpreters_trap_divergence() -> R {
        let omega = pe_frontend::parse_source(omega_src())?;
        let mutual = pe_frontend::parse_source(mutual_divergence_src())?;
        let lim = tight();

        // Host-stack engines: the depth cap fires before the native
        // stack can overflow.
        for run in [standard::run, closconv::run] {
            let r = no_panic(|| run(&omega, "omega", &[], lim))?;
            assert_eq!(r, Err(InterpError::Trap(Trap::CallDepth { limit: 256 })));
            let r = no_panic(|| run(&mutual, "main", &[Datum::Int(0)], lim))?;
            assert_eq!(r, Err(InterpError::Trap(Trap::CallDepth { limit: 256 })));
        }

        // The flat tail machine burns fuel instead.
        let domega = pe_frontend::desugar(&omega)?;
        let r = no_panic(|| tail::run(&domega, "omega", &[], lim))?;
        assert_eq!(r, Err(InterpError::FuelExhausted));
        let dmutual = pe_frontend::desugar(&mutual)?;
        let r = no_panic(|| tail::run(&dmutual, "main", &[Datum::Int(0)], lim))?;
        assert_eq!(r, Err(InterpError::FuelExhausted));
        Ok(())
    }

    #[test]
    fn interpreters_trap_heap_growth() -> R {
        // Unbounded consing against a small heap budget.
        // The heap budget stays small so the host-stack engine traps
        // long before its (debug-profile) thread stack fills up.
        let src = "(define (grow l) (grow (cons 1 l)))
                   (define (main) (grow '()))";
        let p = pe_frontend::parse_source(src)?;
        let lim = Limits::builder().with_heap(100).with_depth(1_000_000).build();
        let r = no_panic(|| standard::run(&p, "main", &[], lim))?;
        assert_eq!(r, Err(InterpError::Trap(Trap::Heap { limit: 100 })));
        let d = pe_frontend::desugar(&p)?;
        let r = no_panic(|| tail::run(&d, "main", &[], lim))?;
        assert_eq!(r, Err(InterpError::Trap(Trap::Heap { limit: 100 })));
        Ok(())
    }

    // ---- the specializing compiler + S₀ engines --------------------

    #[test]
    fn compiler_rejects_static_divergence_before_burning_fuel() -> R {
        // Ω and the ping/pong loop: size-change analysis proves both
        // divergent at BTA time, so the compiler refuses them with a
        // structured trap *before* the specializer unfolds a single
        // call — the budget is never touched.
        for (src, entry) in
            [(omega_src(), "omega"), (mutual_divergence_src(), "main")]
        {
            let p = pe_frontend::parse_source(src)?;
            let d = pe_frontend::desugar(&p)?;
            let mut sink = pe_trace::CollectingSink::new();
            let r = no_panic(|| {
                pe_core::compile_with(&d, entry, &CompileOptions::default(), &mut sink)
            })?;
            assert!(
                matches!(r, Err(SpecError::SctDiverges(Trap::StaticDivergence { .. }))),
                "{entry}: expected the static early reject, got {r:?}"
            );
            assert_eq!(
                sink.counter_total(pe_trace::Counter::UnfoldSteps),
                0,
                "{entry}: the reject must fire before any unfolding"
            );
            assert_eq!(
                sink.counter_total(pe_trace::Counter::SctEarlyRejects),
                1,
                "{entry}: the reject must be counted"
            );
        }
        Ok(())
    }

    #[test]
    fn compiler_traps_static_divergence() -> R {
        // With the analysis off, the dynamic fuel path still works: Ω
        // burns its unfolding budget instead of hanging the compiler.
        let omega = pe_frontend::parse_source(omega_src())?;
        let d = pe_frontend::desugar(&omega)?;
        let opts = CompileOptions { sct: false, ..CompileOptions::default() };
        let r = no_panic(|| pe_core::compile(&d, "omega", &opts))?;
        assert!(
            matches!(r, Err(ref e) if e.is_budget_exhaustion()),
            "expected budget exhaustion, got {r:?}"
        );
        Ok(())
    }

    #[test]
    fn s0_engines_trap_divergence() -> R {
        // A compilable divergent program (dynamic condition, so the
        // specializer terminates but the residual program loops).
        let src = "(define (spin n) (if (zero? n) (spin 1) (spin 2)))";
        let p = pe_frontend::parse_source(src)?;
        let d = pe_frontend::desugar(&p)?;
        let s0 = pe_core::compile(&d, "spin", &CompileOptions::default())
            .map_err(|e| e.to_string())?;
        let lim = tight();
        let r = no_panic(|| pe_core::eval::run(&s0, &[Datum::Int(0)], lim))?;
        assert_eq!(r, Err(InterpError::FuelExhausted));
        let vm = pe_vm::Vm::compile(&s0).map_err(|e| e.to_string())?;
        let r = no_panic(|| vm.run(&[Datum::Int(0)], lim))?;
        assert_eq!(r, Err(InterpError::FuelExhausted));
        Ok(())
    }

    // ---- flow optimizer --------------------------------------------

    #[test]
    fn flow_optimizer_respects_the_governor() -> R {
        // A real residual (closures, dispatch, prunable slots) as the
        // optimization subject.
        let src = "(define (append x y) (cps-append x y (lambda (v) v)))
                   (define (cps-append x y c)
                     (if (null? x) (c y)
                         (cps-append (cdr x) y (lambda (xy) (c (cons (car x) xy))))))";
        let p = pe_frontend::parse_source(src)?;
        let d = pe_frontend::desugar(&p)?;
        let opts = CompileOptions { flow: false, ..CompileOptions::default() };
        let s0 = pe_core::compile(&d, "append", &opts).map_err(|e| e.to_string())?;

        // A starved budget is a structured trap — no panic, no hang,
        // and never a silently wrong program.
        let r = no_panic(|| {
            let mut fuel = pe_governor::Fuel::new(&Limits::builder().with_fuel(1).build());
            pe_flow::optimize(s0.clone(), &mut fuel)
        })?;
        assert!(
            matches!(r, Err(pe_governor::Trap::OutOfFuel { .. })),
            "expected OutOfFuel, got {r:?}"
        );

        // The pipeline never *fails* because the flow budget trapped:
        // `compile` degrades to the unoptimized residual instead, and
        // the result still runs and verifies.  (With the default budget
        // the optimizer simply finishes; either way compile succeeds.)
        let compiled =
            no_panic(|| pe_core::compile(&d, "append", &CompileOptions::default()))?;
        let s0_opt = compiled.map_err(|e| e.to_string())?;
        assert!(pe_verify::verify(&s0_opt).is_clean());
        let args = [Datum::parse("(1 2)").unwrap(), Datum::parse("(3)").unwrap()];
        let base = pe_core::eval::run(&s0, &args, Limits::default());
        let flow = pe_core::eval::run(&s0_opt, &args, Limits::default());
        assert_eq!(base, flow, "flow changed the program's meaning");
        Ok(())
    }

    // ---- unmix -----------------------------------------------------

    #[test]
    fn unmix_traps_static_divergence() -> R {
        let p = pe_frontend::parse_source(static_divergence_src())?;
        let r = no_panic(|| {
            specialize(&p, "f", &[None, Some(Datum::Int(1))], &UnmixOptions::default())
        })?;
        assert!(
            matches!(r, Err(UnmixError::Budget { .. }) | Err(UnmixError::DepthExceeded)),
            "expected a budget error, got {r:?}"
        );
        Ok(())
    }

    // ---- hobbit ----------------------------------------------------

    #[test]
    fn hobbit_traps_divergence() -> R {
        let p = pe_frontend::parse_source(mutual_divergence_src())?;
        let h = pe_hobbit::Hobbit::compile(&p)?;
        let r = no_panic(|| h.run("main", &[Datum::Int(0)], tight()))?;
        assert_eq!(r, Err(InterpError::Trap(Trap::CallDepth { limit: 256 })));
        Ok(())
    }

    // ---- printer ---------------------------------------------------

    #[test]
    fn printer_is_total_on_deep_values() {
        // The reader refuses deep structure (its syntax-depth cap), but
        // nothing stops the *pipeline* from building deep residuals in
        // memory — printing them must not be the recursive layer that
        // overflows.  A 150k-deep value on a 512 KiB stack proves the
        // printer, `Display`, and the drop glue are all iterative.
        std::thread::Builder::new()
            .name("small-stack-printer".into())
            .stack_size(512 * 1024)
            .spawn(|| {
                let n = 150_000;
                let mut e = pe_sexpr::Sexpr::sym_of("x");
                for _ in 0..n {
                    e = pe_sexpr::Sexpr::List(vec![e]);
                }
                let flat = e.to_string();
                assert_eq!(flat.len(), 2 * n + 1);
                let p = pe_sexpr::pretty(&e);
                assert_eq!(p.len(), 2 * n + 1, "single-child lists print flat");
                let narrow = pe_sexpr::pretty_width(&e, 4);
                assert!(narrow.len() > 2 * n);
            })
            .expect("spawn")
            .join()
            .expect("deep printing must not overflow a small stack");
    }

    #[test]
    fn residual_pretty_roundtrips_through_the_reader() -> R {
        // read ∘ pretty = id over every residual the Gabriel suite
        // produces, at several widths: breaking lines and indenting must
        // never change what the reader sees.
        realistic_pe::with_big_stack(|| -> Result<(), String> {
            for b in realistic_pe::SUITE {
                let pipe = Pipeline::new(b.source).map_err(|e| e.to_string())?;
                let s0 = pipe
                    .compile(b.entry, &CompileOptions::default())
                    .map_err(|e| e.to_string())?;
                for p in &s0.procs {
                    let e = p.to_sexpr();
                    for width in [10, 40, 80] {
                        let printed = pe_sexpr::pretty_width(&e, width);
                        let back = pe_sexpr::read_one(&printed)
                            .map_err(|err| format!("{} / {}: {err}", b.name, p.name))?;
                        assert_eq!(back, e, "width {width}, proc {} of {}", p.name, b.name);
                    }
                }
            }
            Ok(())
        })?;
        Ok(())
    }

    // ---- the whole pipeline ----------------------------------------

    #[test]
    fn pipeline_survives_hostile_syntax() -> R {
        for src in hostile_inputs() {
            let r = no_panic(|| Pipeline::new(src).map(|_| ()))?;
            assert!(r.is_err(), "pipeline accepted hostile input {src:?}");
        }
        Ok(())
    }

    #[test]
    fn pipeline_degrades_instead_of_failing_on_budget() -> R {
        // A specialization-hostile budget on a benign program: the
        // robust path must degrade to interpreted execution, not error.
        let pipe = Pipeline::new(
            "(define (main n) (even-p n))
             (define (even-p n) (if (zero? n) 1 (odd-p (- n 1))))
             (define (odd-p n) (if (zero? n) 0 (even-p (- n 1))))",
        )?;
        let opts = CompileOptions {
            limits: Limits::builder().with_residual(1).build(),
            ..CompileOptions::default()
        };
        let (v, why) = no_panic(|| {
            pipe.run_robust("main", &[Datum::Int(4)], &opts, Limits::default())
        })??;
        assert_eq!(v, Datum::Int(1));
        assert!(why.is_some_and(|e| e.is_budget_exhaustion()));
        Ok(())
    }

    #[test]
    fn pipeline_robust_run_bounds_runtime_divergence() -> R {
        // Ω through the robust path: the compile stage degrades (the
        // size-change analysis rejects the program statically) and the
        // interpreted fallback then traps on fuel — a structured error,
        // not a hang.
        let pipe = Pipeline::new(omega_src())?;
        let r = no_panic(|| {
            pipe.run_robust("omega", &[], &CompileOptions::default(), tight())
        })?;
        assert!(
            matches!(r, Err(PipelineError::Run(InterpError::FuelExhausted))),
            "got {r:?}"
        );
        Ok(())
    }

    // ---- trap census -----------------------------------------------

    #[test]
    fn trap_census_snapshots_the_meters() -> R {
        let rows = trap_census()?;
        let by_case = |c: &str| {
            rows.iter().find(|r| r.case == c).unwrap_or_else(|| panic!("missing case {c}"))
        };
        // Fuel traps read the exhausted meter exactly.
        assert_eq!(by_case("omega/tail").fuel_steps, 100_000);
        assert_eq!(by_case("spin/vm").fuel_steps, 100_000);
        // Depth traps report the peak depth — the cap itself.
        assert_eq!(by_case("mutual/standard").peak_depth, 256);
        assert_eq!(by_case("mutual/hobbit").peak_depth, 256);
        // The heap trap fired at (or just past) its budget.
        assert!(by_case("heap-growth/tail").heap_cells >= 100);
        // The static reject burns nothing: zero unfolding at cut-off.
        let sct = by_case("omega/sct");
        assert_eq!(sct.fuel_steps, 0, "static reject consumed fuel");
        assert!(sct.outcome.contains("diverges"), "{}", sct.outcome);
        // Degradation reports the specializer's work at cut-off.
        let deg = by_case("budget/robust");
        assert!(deg.outcome.starts_with("degraded:"), "{}", deg.outcome);
        assert!(deg.fuel_steps > 0, "no memo work recorded");
        // Every row rendered; the table mentions every case.
        let table = render_census(&rows);
        for r in &rows {
            assert!(table.contains(r.case));
        }
        Ok(())
    }

    // ---- degradation policy ----------------------------------------

    /// Every [`Trap`] variant maps to a *conscious* degradation
    /// decision.  The match below is exhaustive on purpose: adding a
    /// variant to `Trap` fails compilation here, forcing the author to
    /// decide — and record — whether the new class degrades to
    /// interpretation in the robust pipeline or surfaces as an error.
    #[test]
    fn every_trap_variant_has_a_degradation_decision() {
        fn degrades_to_interpretation(t: &Trap) -> bool {
            match t {
                // Budget classes: the *input* outgrew a configured
                // bound.  The subject program may still run fine under
                // an interpreter whose own fuel bounds a doomed run.
                Trap::OutOfFuel { .. }
                | Trap::CallDepth { .. }
                | Trap::SyntaxDepth { .. }
                | Trap::UnfoldDepth { .. }
                | Trap::Heap { .. }
                | Trap::Residual { .. }
                | Trap::StaticDivergence { .. } => true,
                // Machine classes: compiled code broke an
                // execution-model invariant.  Degrading would mask a
                // miscompile — these must surface as errors.
                Trap::UnboundLabel { .. } | Trap::BadDispatch { .. } => false,
            }
        }
        let exemplars = [
            Trap::OutOfFuel { budget: 1 },
            Trap::CallDepth { limit: 1 },
            Trap::SyntaxDepth { limit: 1 },
            Trap::UnfoldDepth { limit: 1 },
            Trap::Heap { limit: 1 },
            Trap::Residual { limit: 1 },
            Trap::StaticDivergence { witness: "ω".into() },
            Trap::UnboundLabel { label: "f".into(), pc: 0 },
            Trap::BadDispatch { pc: 0, detail: "int 5".into() },
        ];
        for t in &exemplars {
            // The policy the pipeline actually consults must agree
            // with the recorded decision.
            assert_eq!(
                t.is_budget(),
                degrades_to_interpretation(t),
                "degradation policy drifted for {t}"
            );
            // The SpecError wrapper for statically-detected traps must
            // agree as well.
            if matches!(t, Trap::StaticDivergence { .. }) {
                assert!(SpecError::SctDiverges(t.clone()).is_degradable());
            }
        }
        // Every exemplar class appears in the census vocabulary.
        for t in &exemplars {
            assert!(
                pe_governor::TrapClass::ALL.contains(&t.class()),
                "class {} missing from TrapClass::ALL",
                t.class()
            );
        }
        // And the exemplar list itself is exhaustive: one per class
        // arm above, so variant count changes are caught even if the
        // match is edited carelessly.
        assert_eq!(exemplars.len(), 9);
    }

    #[test]
    fn no_panic_restores_suppression_on_all_paths() {
        // A panicking closure comes back as Err with its message…
        let r = no_panic(|| -> i32 { panic!("boom {}", 41 + 1) });
        assert_eq!(r, Err("boom 42".to_string()));
        // …and the harness stays usable afterwards (the thread-local
        // suppression flag was restored by the drop guard).
        assert_eq!(no_panic(|| 7), Ok(7));
        // Nested calls restore the *outer* state, not just `false`.
        let r = no_panic(|| {
            let inner = no_panic(|| -> i32 { panic!("inner") });
            assert!(inner.is_err());
            3
        });
        assert_eq!(r, Ok(3));
    }

    #[test]
    fn genuine_errors_are_not_masked() -> R {
        // The harness must not be so lenient that real errors vanish:
        // a missing entry point is an error on every path.
        let pipe = Pipeline::new("(define (f x) x)")?;
        let r = no_panic(|| pipe.compile_robust("ghost", &CompileOptions::default()))?;
        assert!(matches!(r, Err(PipelineError::Spec(SpecError::NoSuchProc(_)))));
        Ok(())
    }
}
