//! The fixed-shape log-bucketed histogram behind every published
//! latency distribution.

use pe_trace::{Hist, Sink, HIST_BUCKETS};

/// A 64-bucket base-2 log histogram over `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i` (1 ≤ i ≤ 62) holds samples
/// in `[2^(i-1), 2^i - 1]`; bucket 63 holds everything from `2^62` up.
/// The shape is fixed, so histograms from different threads, runs, and
/// processes merge by element-wise addition — no bound negotiation,
/// no floats, and identical inputs always produce identical buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram { buckets: [0; HIST_BUCKETS] }
    }

    /// Rebuilds a histogram from published bucket counts.
    #[must_use]
    pub fn from_buckets(buckets: [u64; HIST_BUCKETS]) -> Histogram {
        Histogram { buckets }
    }

    /// The bucket index a sample lands in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (HIST_BUCKETS - 1).min(64 - value.leading_zeros() as usize)
        }
    }

    /// The inclusive sample range bucket `i` covers.
    ///
    /// # Panics
    ///
    /// When `i >= HIST_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HIST_BUCKETS, "bucket {i} out of range");
        match i {
            0 => (0, 0),
            63 => (1 << 62, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let i = Histogram::bucket_of(value);
        self.buckets[i] = self.buckets[i].saturating_add(1);
    }

    /// Total recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// The `p`-th percentile (0–100), reported as the *upper bound* of
    /// the bucket holding the rank-`ceil(p/100 · count)` sample — a
    /// deterministic over-estimate within one power of two of the true
    /// order statistic.  Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: u8) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let p = u64::from(p.min(100));
        // rank = ceil(p * count / 100), clamped into [1, count].
        let rank = ((p.saturating_mul(count)).div_ceil(100)).clamp(1, count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return Histogram::bucket_bounds(i).1;
            }
        }
        Histogram::bucket_bounds(HIST_BUCKETS - 1).1
    }

    /// Median estimate (see [`Histogram::percentile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Publishes this histogram as `id` into a sink.
    pub fn publish(&self, sink: &mut dyn Sink, id: Hist) {
        if sink.enabled() {
            sink.hist(id, &self.buckets);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rule_is_monotone_and_total() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut prev = 0;
        for shift in 0..64 {
            let b = Histogram::bucket_of(1u64 << shift);
            assert!(b >= prev, "bucket index must be monotone in the sample");
            prev = b;
        }
        // Every bucket's bounds round-trip through bucket_of.
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_of(lo), i);
            assert_eq!(Histogram::bucket_of(hi), i);
        }
    }

    #[test]
    fn percentiles_bound_the_exact_order_statistics() {
        let samples: Vec<u64> =
            (0..1000).map(|i| (i * i) % 9973 + 1).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [1u8, 10, 50, 90, 99, 100] {
            let rank = ((u64::from(p) * sorted.len() as u64).div_ceil(100))
                .clamp(1, sorted.len() as u64) as usize;
            let exact = sorted[rank - 1];
            let est = h.percentile(p);
            assert!(est >= exact, "p{p}: estimate {est} below exact {exact}");
            // Upper-bound estimate stays within one bucket (2× + 1).
            assert!(
                est <= exact.saturating_mul(2),
                "p{p}: estimate {est} more than a bucket above exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_pooled_recording() {
        let xs: Vec<u64> = (0..200).map(|i| i * 37 % 501).collect();
        let (a_s, rest) = xs.split_at(50);
        let (b_s, c_s) = rest.split_at(70);
        let rec = |s: &[u64]| {
            let mut h = Histogram::new();
            s.iter().for_each(|&v| h.record(v));
            h
        };
        let (a, b, c) = (rec(a_s), rec(b_s), rec(c_s));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(left, rec(&xs), "merge must equal pooled recording");
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }
}
