//! # pe-prof — profiling and metrics over the pe-trace event stream
//!
//! pe-trace answers "how long did each phase take"; this crate answers
//! the two follow-up questions the ROADMAP's next tentpoles need:
//!
//! * **where inside a phase did the time go** — [`Attribution`] groups
//!   the [`Event::Attr`] rows the engines emit per residual procedure
//!   (and per VM label) into a ranked table whose per-phase sums are
//!   checked against the phase span totals, so the report can never
//!   silently drop cost;
//! * **what does the latency *distribution* look like** — [`Histogram`]
//!   is a fixed 64-bucket log histogram (mergeable, deterministic,
//!   dependency-free) and [`MetricsRegistry`] is the compile service's
//!   snapshot of per-outcome latency histograms plus in-flight gauges,
//!   published through the shared JSONL stream.
//!
//! Everything here is std-only and rides the existing `&mut dyn Sink`
//! threading; engines that trace into a `NullSink` pay nothing.

mod attr;
mod hist;
mod metrics;

pub use attr::{AttrRow, Attribution};
pub use hist::Histogram;
pub use metrics::{LatencyClass, MetricsRegistry};

/// Distributes a measured total over items proportionally to their
/// deterministic weights, such that the attributed parts sum *exactly*
/// to `total_ns`.  Used by whole-program passes (post, flow, verify)
/// that cannot time one procedure in isolation: the pass measures its
/// own wall time once and spreads it by node share.
///
/// The exact-sum property comes from attributing cumulative-prefix
/// differences instead of rounding each share independently.
#[must_use]
pub fn distribute_ns(total_ns: u64, weights: &[u64]) -> Vec<u64> {
    let total_w: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total_w == 0 {
        let mut out = vec![0; weights.len()];
        if let Some(first) = out.first_mut() {
            *first = total_ns;
        }
        return out;
    }
    let mut out = Vec::with_capacity(weights.len());
    let mut cum_w: u128 = 0;
    let mut prev: u64 = 0;
    for &w in weights {
        cum_w += u128::from(w);
        // cum_ns = total_ns * cum_w / total_w, exact at the last item.
        let cum_ns = u64::try_from(u128::from(total_ns) * cum_w / total_w)
            .unwrap_or(u64::MAX);
        out.push(cum_ns - prev);
        prev = cum_ns;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribute_sums_exactly_and_respects_weights() {
        for total in [0u64, 1, 999, 1_000_003] {
            for weights in [
                vec![1u64, 1, 1],
                vec![7, 0, 3],
                vec![0, 0, 0],
                vec![1],
                vec![u64::MAX / 4, 1, 1],
            ] {
                let parts = distribute_ns(total, &weights);
                assert_eq!(parts.len(), weights.len());
                assert_eq!(parts.iter().sum::<u64>(), total, "{weights:?}");
            }
        }
        let parts = distribute_ns(100, &[3, 1]);
        assert_eq!(parts, vec![75, 25]);
        // Zero total weight: everything lands on the first item.
        assert_eq!(distribute_ns(42, &[0, 0]), vec![42, 0]);
    }
}
