//! The compile service's metrics registry: per-outcome latency
//! histograms plus queue and in-flight gauges, snapshot-cloneable and
//! publishable through any [`Sink`].

use crate::Histogram;
use pe_trace::{Gauge, Hist, Sink};

/// How a served request was satisfied, for latency bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyClass {
    /// Artifact-cache hit (including in-flight dedup waits).
    Hit,
    /// Compile miss that warm-started from a memo snapshot.
    WarmMiss,
    /// Compile miss from a cold start.
    ColdMiss,
}

/// Per-outcome latency histograms and service gauges.  The service
/// keeps one behind its state lock; [`MetricsRegistry::snapshot`]
/// clones it out for reporting and [`MetricsRegistry::publish`] emits
/// it into the shared JSONL stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// Latency of artifact-hit requests (ns).
    pub hit: Histogram,
    /// Latency of warm-started compile requests (ns).
    pub warm_miss: Histogram,
    /// Latency of cold compile requests (ns).
    pub cold_miss: Histogram,
    /// Time requests waited for a worker (ns).
    pub queue_wait: Histogram,
    /// Requests currently in flight.
    pub in_flight: u64,
    /// High-water in-flight count.
    pub in_flight_peak: u64,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one finished request's latency under its outcome class.
    pub fn record_latency(&mut self, class: LatencyClass, ns: u64) {
        match class {
            LatencyClass::Hit => self.hit.record(ns),
            LatencyClass::WarmMiss => self.warm_miss.record(ns),
            LatencyClass::ColdMiss => self.cold_miss.record(ns),
        }
    }

    /// Records how long a request sat in the queue before pickup.
    pub fn record_queue_wait(&mut self, ns: u64) {
        self.queue_wait.record(ns);
    }

    /// A request entered service; tracks the high-water mark.
    pub fn enter_flight(&mut self) {
        self.in_flight = self.in_flight.saturating_add(1);
        self.in_flight_peak = self.in_flight_peak.max(self.in_flight);
    }

    /// A request left service.
    pub fn leave_flight(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Total requests recorded across all outcome classes.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.hit
            .count()
            .saturating_add(self.warm_miss.count())
            .saturating_add(self.cold_miss.count())
    }

    /// A point-in-time copy for reporting outside the service lock.
    #[must_use]
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// Merges another registry (e.g. a per-batch snapshot) into this
    /// one; gauges take the maximum.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.hit.merge(&other.hit);
        self.warm_miss.merge(&other.warm_miss);
        self.cold_miss.merge(&other.cold_miss);
        self.queue_wait.merge(&other.queue_wait);
        self.in_flight = self.in_flight.max(other.in_flight);
        self.in_flight_peak = self.in_flight_peak.max(other.in_flight_peak);
    }

    /// Publishes populated histograms and both gauges into `sink`.
    pub fn publish(&self, sink: &mut dyn Sink) {
        if !sink.enabled() {
            return;
        }
        for (hist, id) in [
            (&self.hit, Hist::ServeHitNs),
            (&self.warm_miss, Hist::ServeWarmMissNs),
            (&self.cold_miss, Hist::ServeColdMissNs),
            (&self.queue_wait, Hist::ServeQueueNs),
        ] {
            if !hist.is_empty() {
                hist.publish(sink, id);
            }
        }
        sink.gauge(Gauge::InFlight, self.in_flight);
        sink.gauge(Gauge::InFlightPeak, self.in_flight_peak);
    }

    /// Renders the snapshot as the `pe-serve -- --stats` table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("outcome          count    p50 ms    p90 ms    p99 ms\n");
        for (name, h) in [
            ("hit", &self.hit),
            ("warm miss", &self.warm_miss),
            ("cold miss", &self.cold_miss),
            ("queue wait", &self.queue_wait),
        ] {
            out.push_str(&format!(
                "  {name:<14} {:>6} {:>9.3} {:>9.3} {:>9.3}\n",
                h.count(),
                h.p50() as f64 / 1e6,
                h.p90() as f64 / 1e6,
                h.p99() as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "  in flight {} (peak {})\n",
            self.in_flight, self.in_flight_peak
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_trace::CollectingSink;

    #[test]
    fn records_classifies_and_publishes() {
        let mut m = MetricsRegistry::new();
        m.enter_flight();
        m.enter_flight();
        m.record_queue_wait(1_000);
        m.record_latency(LatencyClass::Hit, 10_000);
        m.record_latency(LatencyClass::ColdMiss, 4_000_000);
        m.leave_flight();
        assert_eq!(m.requests(), 2);
        assert_eq!(m.in_flight, 1);
        assert_eq!(m.in_flight_peak, 2);
        assert!(m.hit.p50() < m.cold_miss.p50());

        let snap = m.snapshot();
        let mut sink = CollectingSink::new();
        snap.publish(&mut sink);
        let hists = sink
            .events()
            .iter()
            .filter(|e| matches!(e, pe_trace::Event::Hist { .. }))
            .count();
        assert_eq!(hists, 3, "warm_miss is empty and must be skipped");
        assert_eq!(sink.gauge_last(pe_trace::Gauge::InFlightPeak), Some(2));
        let text = snap.render();
        assert!(text.contains("cold miss"), "{text}");
    }

    #[test]
    fn merge_pools_histograms_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        a.record_latency(LatencyClass::Hit, 5);
        a.in_flight_peak = 3;
        let mut b = MetricsRegistry::new();
        b.record_latency(LatencyClass::Hit, 7);
        b.in_flight_peak = 2;
        a.merge(&b);
        assert_eq!(a.hit.count(), 2);
        assert_eq!(a.in_flight_peak, 3);
    }
}
