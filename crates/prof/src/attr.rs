//! The per-residual-procedure cost-attribution table.

use pe_trace::{Event, Phase};

/// One attribution row: within `phase`, `label` accounted for `ns`
/// wall nanoseconds and `units` deterministic work units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRow {
    /// The phase the cost belongs to.
    pub phase: Phase,
    /// What the cost is attributed to (residual procedure, VM label).
    pub label: String,
    /// Attributed wall nanoseconds.
    pub ns: u64,
    /// Deterministic work units (AST nodes, block entries, …).
    pub units: u64,
}

/// An attribution table assembled from a recorded event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    rows: Vec<AttrRow>,
}

impl Attribution {
    /// Collects every [`Event::Attr`] row from `events`, summing
    /// duplicate `(phase, label)` pairs (a warm re-compile can emit a
    /// label twice) while preserving first-emission order.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Attribution {
        let mut rows: Vec<AttrRow> = Vec::new();
        for ev in events {
            if let Event::Attr { phase, label, ns, units } = ev {
                match rows
                    .iter_mut()
                    .find(|r| r.phase == *phase && r.label == *label)
                {
                    Some(r) => {
                        r.ns = r.ns.saturating_add(*ns);
                        r.units = r.units.saturating_add(*units);
                    }
                    None => rows.push(AttrRow {
                        phase: *phase,
                        label: label.clone(),
                        ns: *ns,
                        units: *units,
                    }),
                }
            }
        }
        Attribution { rows }
    }

    /// All rows, in first-emission order.
    #[must_use]
    pub fn rows(&self) -> &[AttrRow] {
        &self.rows
    }

    /// True when no attribution was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The phases that have at least one row, in [`Phase::ALL`] order.
    #[must_use]
    pub fn phases(&self) -> Vec<Phase> {
        Phase::ALL
            .into_iter()
            .filter(|p| self.rows.iter().any(|r| r.phase == *p))
            .collect()
    }

    /// Summed attributed nanoseconds for one phase.
    #[must_use]
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.phase == phase)
            .fold(0u64, |a, r| a.saturating_add(r.ns))
    }

    /// The top `k` rows of one phase, ranked by attributed time, then
    /// units, then label — a total, deterministic order.
    #[must_use]
    pub fn top_k(&self, phase: Phase, k: usize) -> Vec<&AttrRow> {
        let mut rows: Vec<&AttrRow> =
            self.rows.iter().filter(|r| r.phase == phase).collect();
        rows.sort_by(|a, b| {
            b.ns.cmp(&a.ns)
                .then(b.units.cmp(&a.units))
                .then(a.label.cmp(&b.label))
        });
        rows.truncate(k);
        rows
    }

    /// The table with wall times dropped — rank by `units`, compare
    /// across runs.  Two traced compiles of the same program must
    /// produce equal redacted tables.
    #[must_use]
    pub fn redacted(&self) -> Attribution {
        Attribution {
            rows: self
                .rows
                .iter()
                .map(|r| AttrRow { ns: 0, ..r.clone() })
                .collect(),
        }
    }

    /// Checks, for every phase that carries attribution, that the
    /// attributed nanoseconds sum to the phase's span total within
    /// `rel_pct` percent or `abs_ns` nanoseconds (whichever allows
    /// more — tiny phases are all jitter).  Span totals are read from
    /// the same event stream.
    ///
    /// # Errors
    ///
    /// A message naming the first phase whose books don't balance.
    pub fn check_sums(
        &self,
        events: &[Event],
        rel_pct: u64,
        abs_ns: u64,
    ) -> Result<(), String> {
        for phase in self.phases() {
            let span: u64 = events
                .iter()
                .filter_map(|e| match e {
                    Event::SpanClose { phase: p, dur_ns, .. } if *p == phase => {
                        Some(*dur_ns)
                    }
                    _ => None,
                })
                .sum();
            let attributed = self.phase_ns(phase);
            let tol = (span.saturating_mul(rel_pct) / 100).max(abs_ns);
            let gap = span.abs_diff(attributed);
            if gap > tol {
                return Err(format!(
                    "phase {phase}: attributed {attributed}ns vs span {span}ns \
                     (gap {gap}ns > tolerance {tol}ns)"
                ));
            }
        }
        Ok(())
    }

    /// Renders the top-`k` table for every populated phase.
    #[must_use]
    pub fn render_top_k(&self, k: usize) -> String {
        let mut out = String::new();
        for phase in self.phases() {
            out.push_str(&format!(
                "{phase}: {:.3}ms attributed\n",
                self.phase_ns(phase) as f64 / 1e6
            ));
            for r in self.top_k(phase, k) {
                out.push_str(&format!(
                    "  {:<30} {:>9.3}ms {:>8} units\n",
                    r.label,
                    r.ns as f64 / 1e6,
                    r.units
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_trace::{CollectingSink, Sink};

    fn sample() -> CollectingSink {
        let mut s = CollectingSink::new();
        s.span_open(Phase::Specialize);
        s.attr(Phase::Specialize, "entry", 600, 10);
        s.attr(Phase::Specialize, "sl-eval-$1", 400, 30);
        s.span_close(Phase::Specialize, 1_000);
        s
    }

    #[test]
    fn builds_ranks_and_balances() {
        let s = sample();
        let a = Attribution::from_events(s.events());
        assert_eq!(a.phases(), vec![Phase::Specialize]);
        assert_eq!(a.phase_ns(Phase::Specialize), 1_000);
        let top = a.top_k(Phase::Specialize, 1);
        assert_eq!(top[0].label, "entry");
        a.check_sums(s.events(), 5, 0).expect("books balance");
    }

    #[test]
    fn detects_unbalanced_books() {
        let mut s = CollectingSink::new();
        s.span_open(Phase::Post);
        s.attr(Phase::Post, "entry", 10, 1);
        s.span_close(Phase::Post, 1_000_000);
        let a = Attribution::from_events(s.events());
        assert!(a.check_sums(s.events(), 5, 100).is_err());
        // A generous absolute tolerance accepts the same gap.
        assert!(a.check_sums(s.events(), 5, 2_000_000).is_ok());
    }

    #[test]
    fn duplicate_labels_merge_and_redaction_drops_ns() {
        let mut s = sample();
        s.attr(Phase::Specialize, "entry", 50, 5);
        let a = Attribution::from_events(s.events());
        assert_eq!(a.rows().len(), 2);
        let entry = a
            .rows()
            .iter()
            .find(|r| r.label == "entry")
            .expect("entry row");
        assert_eq!((entry.ns, entry.units), (650, 15));
        let red = a.redacted();
        assert!(red.rows().iter().all(|r| r.ns == 0));
        assert_eq!(red, Attribution::from_events(&s.redacted_events()));
    }
}
